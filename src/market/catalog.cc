#include "market/catalog.h"

#include <algorithm>

#include "common/logging.h"
#include "common/telemetry.h"

namespace nimbus::market {
namespace {

// FNV-1a, the same stable hash the fault registry uses for seeds.
uint64_t Fnv64(const std::string& key) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

telemetry::Gauge& CatalogShardsGauge() {
  static telemetry::Gauge& gauge =
      telemetry::Registry::Global().GetGauge("catalog_shards");
  return gauge;
}

telemetry::Gauge& CatalogRevenueGauge() {
  static telemetry::Gauge& gauge =
      telemetry::Registry::Global().GetGauge("catalog_revenue");
  return gauge;
}

}  // namespace

Catalog::Catalog(CatalogOptions options) : options_(std::move(options)) {}

Catalog::~Catalog() { StopRecoveryLoop(); }

Status Catalog::AddProduct(const std::string& product_id,
                           MarketplaceFactory factory) {
  if (by_product_.count(product_id) > 0) {
    return InvalidArgumentError("product '" + product_id +
                                "' already in the catalog");
  }
  if (product_id.find('/') != std::string::npos) {
    return InvalidArgumentError("product id '" + product_id +
                                "' must not contain '/'");
  }
  ShardOptions shard_options = options_.shard_defaults;
  shard_options.dir = options_.root_dir + "/shards/" + product_id;
  NIMBUS_ASSIGN_OR_RETURN(
      std::unique_ptr<Shard> shard,
      Shard::Open(product_id, std::move(factory), std::move(shard_options)));
  const int index = static_cast<int>(shards_.size());
  shards_.push_back(std::move(shard));
  backoff_.push_back(BackoffState{});
  by_product_.emplace(product_id, index);
  // Ring points for the new shard; kept sorted for binary-search routing.
  const int replicas = std::max(1, options_.ring_replicas);
  for (int r = 0; r < replicas; ++r) {
    ring_.push_back(RingPoint{
        Fnv64(product_id + "#" + std::to_string(r)), index});
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const RingPoint& a, const RingPoint& b) {
              return a.hash < b.hash || (a.hash == b.hash &&
                                         a.shard_index < b.shard_index);
            });
  CatalogShardsGauge().Set(static_cast<double>(shards_.size()));
  return OkStatus();
}

Shard* Catalog::Find(const std::string& product_id) {
  auto it = by_product_.find(product_id);
  return it == by_product_.end() ? nullptr : shards_[it->second].get();
}

Shard* Catalog::Route(const std::string& key) {
  if (Shard* exact = Find(key)) {
    return exact;
  }
  if (ring_.empty()) {
    return nullptr;
  }
  // Successor on the ring (wrap past the last point).
  const uint64_t h = Fnv64(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const RingPoint& p, uint64_t value) { return p.hash < value; });
  if (it == ring_.end()) {
    it = ring_.begin();
  }
  return shards_[it->shard_index].get();
}

int Catalog::RecoverQuarantined(bool force) {
  const auto now = std::chrono::steady_clock::now();
  int recovered = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard* shard = shards_[i].get();
    if (shard->state() != ShardState::kQuarantined) {
      backoff_[i].failures = 0;
      continue;
    }
    if (!force && now < backoff_[i].next_attempt) {
      continue;
    }
    if (shard->TryRecover().ok()) {
      backoff_[i].failures = 0;
      ++recovered;
    } else {
      const double delay = std::min(
          options_.recovery_backoff_cap_seconds,
          options_.recovery_backoff_base_seconds *
              static_cast<double>(1 << std::min(backoff_[i].failures, 10)));
      ++backoff_[i].failures;
      backoff_[i].next_attempt =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(static_cast<int64_t>(delay * 1e6));
    }
  }
  return recovered;
}

void Catalog::RecoveryLoop() {
  std::unique_lock<std::mutex> lock(loop_mu_);
  while (!loop_stop_) {
    loop_cv_.wait_for(
        lock, std::chrono::microseconds(static_cast<int64_t>(
                  options_.recovery_interval_seconds * 1e6)));
    if (loop_stop_) {
      break;
    }
    lock.unlock();
    RecoverQuarantined();
    CatalogRevenueGauge().Set(GetRollup().total_revenue);
    lock.lock();
  }
}

void Catalog::StartRecoveryLoop() {
  std::lock_guard<std::mutex> lock(loop_mu_);
  if (loop_running_) {
    return;
  }
  loop_stop_ = false;
  loop_running_ = true;
  loop_ = std::thread([this] { RecoveryLoop(); });
}

void Catalog::StopRecoveryLoop() {
  {
    std::lock_guard<std::mutex> lock(loop_mu_);
    if (!loop_running_) {
      return;
    }
    loop_stop_ = true;
  }
  loop_cv_.notify_all();
  loop_.join();
  std::lock_guard<std::mutex> lock(loop_mu_);
  loop_running_ = false;
}

bool Catalog::recovery_loop_running() const {
  std::lock_guard<std::mutex> lock(loop_mu_);
  return loop_running_;
}

Catalog::Rollup Catalog::GetRollup() const {
  Rollup rollup;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    // Cached booked totals: the live ledger belongs to the shard's
    // committer, and this runs on the recovery-loop / admin thread.
    const Shard::Stats stats = shard->stats();
    rollup.total_revenue += stats.revenue;
    rollup.total_sales += stats.sales;
    switch (shard->state()) {
      case ShardState::kServing:
        ++rollup.serving;
        break;
      case ShardState::kDegraded:
        ++rollup.degraded;
        break;
      case ShardState::kRecovering:
        ++rollup.recovering;
        break;
      case ShardState::kQuarantined:
        ++rollup.quarantined;
        break;
    }
  }
  return rollup;
}

}  // namespace nimbus::market
