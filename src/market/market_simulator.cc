#include "market/market_simulator.h"

#include <memory>

#include "common/parallel.h"
#include "common/telemetry.h"
#include "revenue/dp_optimizer.h"

namespace nimbus::market {
namespace {

telemetry::Counter& BuyersEvaluatedCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("market_buyers_evaluated_total");
  return counter;
}

telemetry::Counter& TransactionsCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("market_transactions_total");
  return counter;
}

telemetry::Histogram& SimulateLatency() {
  static telemetry::Histogram& histogram =
      telemetry::Registry::Global().GetHistogram("market_simulate_latency_us");
  return histogram;
}

}  // namespace

StatusOr<Seller> Seller::Create(
    std::vector<revenue::BuyerPoint> market_research) {
  NIMBUS_RETURN_IF_ERROR(revenue::ValidateBuyerPoints(
      market_research, /*require_monotone_valuations=*/true));
  return Seller(std::move(market_research));
}

StatusOr<std::shared_ptr<const pricing::PricingFunction>>
Seller::NegotiatePricing() const {
  NIMBUS_ASSIGN_OR_RETURN(revenue::DpResult dp,
                          revenue::OptimizeRevenueDp(market_research_));
  NIMBUS_ASSIGN_OR_RETURN(
      pricing::PiecewiseLinearPricing pricing,
      revenue::MakeDpPricingFunction(market_research_, dp));
  predicted_revenue_ = dp.revenue;
  return std::shared_ptr<const pricing::PricingFunction>(
      std::make_shared<pricing::PiecewiseLinearPricing>(std::move(pricing)));
}

StatusOr<SimulationResult> SimulateMarket(
    Broker& broker, const std::vector<revenue::BuyerPoint>& buyers,
    const std::string& report_loss_name) {
  telemetry::TraceSpan span("market.simulate");
  telemetry::ScopedTimer timer(SimulateLatency());
  NIMBUS_RETURN_IF_ERROR(revenue::ValidateBuyerPoints(
      buyers, /*require_monotone_valuations=*/false));
  NIMBUS_ASSIGN_OR_RETURN(std::shared_ptr<const ml::Loss> loss,
                          broker.model().FindReportLoss(report_loss_name));

  // Force the error curve once up front so the parallel quotes below hit
  // a read-only broker.
  NIMBUS_ASSIGN_OR_RETURN(std::shared_ptr<const pricing::ErrorCurve> curve,
                          broker.GetErrorCurve(report_loss_name));

  // Phase 1 (parallel): price every buyer point and quote the affordable
  // ones. Buyer i draws noise from the child stream base.Fork(i), so the
  // replay is bit-identical at every NIMBUS_THREADS setting.
  struct BuyerOutcome {
    bool bought = false;
    Status status;
    Broker::Purchase purchase;
  };
  const Rng base = broker.ForkRng();
  const int64_t n = static_cast<int64_t>(buyers.size());
  std::vector<BuyerOutcome> outcomes(buyers.size());
  ParallelFor(0, n, [&](int64_t i) {
    telemetry::TraceSpan buyer_span("market.buyer_eval");
    BuyersEvaluatedCounter().Increment();
    const revenue::BuyerPoint& buyer = buyers[static_cast<size_t>(i)];
    BuyerOutcome& outcome = outcomes[static_cast<size_t>(i)];
    const double price =
        broker.pricing_function().PriceAtInverseNcp(buyer.a);
    if (price > buyer.v * (1.0 + 1e-9) + 1e-9) {
      return;  // Buyer cannot afford this version.
    }
    Rng buyer_rng = base.Fork(static_cast<uint64_t>(i));
    StatusOr<Broker::Purchase> purchase =
        broker.QuoteAtInverseNcp(buyer.a, *curve, buyer_rng);
    outcome.status = purchase.status();
    if (purchase.ok()) {
      outcome.bought = true;
      outcome.purchase = *std::move(purchase);
    }
  });

  // Phase 2 (serial, in buyer order): book the sales and reduce the
  // accounting deterministically.
  telemetry::TraceSpan booking_span("market.record_sales");
  SimulationResult result;
  double total_mass = 0.0;
  double affordable_mass = 0.0;
  double error_sum = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const BuyerOutcome& outcome = outcomes[static_cast<size_t>(i)];
    NIMBUS_RETURN_IF_ERROR(outcome.status);
    total_mass += buyers[static_cast<size_t>(i)].b;
    if (!outcome.bought) {
      continue;
    }
    broker.RecordSale(outcome.purchase);
    TransactionsCounter().Increment();
    affordable_mass += buyers[static_cast<size_t>(i)].b;
    ++result.transactions;
    // Weight revenue by the buyer mass this point represents, mirroring
    // TBV = Σ b_j z_j 1[z_j <= v_j].
    result.revenue += buyers[static_cast<size_t>(i)].b * outcome.purchase.price;
    error_sum += outcome.purchase.expected_error;
  }
  result.affordability = total_mass > 0.0 ? affordable_mass / total_mass : 0.0;
  result.mean_delivered_error =
      result.transactions > 0 ? error_sum / result.transactions : 0.0;
  return result;
}

}  // namespace nimbus::market
