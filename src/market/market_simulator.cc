#include "market/market_simulator.h"

#include <memory>

#include "revenue/dp_optimizer.h"

namespace nimbus::market {

StatusOr<Seller> Seller::Create(
    std::vector<revenue::BuyerPoint> market_research) {
  NIMBUS_RETURN_IF_ERROR(revenue::ValidateBuyerPoints(
      market_research, /*require_monotone_valuations=*/true));
  return Seller(std::move(market_research));
}

StatusOr<std::shared_ptr<const pricing::PricingFunction>>
Seller::NegotiatePricing() const {
  NIMBUS_ASSIGN_OR_RETURN(revenue::DpResult dp,
                          revenue::OptimizeRevenueDp(market_research_));
  NIMBUS_ASSIGN_OR_RETURN(
      pricing::PiecewiseLinearPricing pricing,
      revenue::MakeDpPricingFunction(market_research_, dp));
  predicted_revenue_ = dp.revenue;
  return std::shared_ptr<const pricing::PricingFunction>(
      std::make_shared<pricing::PiecewiseLinearPricing>(std::move(pricing)));
}

StatusOr<SimulationResult> SimulateMarket(
    Broker& broker, const std::vector<revenue::BuyerPoint>& buyers,
    const std::string& report_loss_name) {
  NIMBUS_RETURN_IF_ERROR(revenue::ValidateBuyerPoints(
      buyers, /*require_monotone_valuations=*/false));
  NIMBUS_ASSIGN_OR_RETURN(std::shared_ptr<const ml::Loss> loss,
                          broker.model().FindReportLoss(report_loss_name));

  SimulationResult result;
  const double revenue_before = broker.revenue_collected();
  double total_mass = 0.0;
  double affordable_mass = 0.0;
  double error_sum = 0.0;
  for (const revenue::BuyerPoint& buyer : buyers) {
    total_mass += buyer.b;
    const double price =
        broker.pricing_function().PriceAtInverseNcp(buyer.a);
    if (price > buyer.v * (1.0 + 1e-9) + 1e-9) {
      continue;  // Buyer cannot afford this version.
    }
    NIMBUS_ASSIGN_OR_RETURN(Broker::Purchase purchase,
                            broker.BuyAtInverseNcp(buyer.a, report_loss_name));
    affordable_mass += buyer.b;
    ++result.transactions;
    // Weight revenue by the buyer mass this point represents, mirroring
    // TBV = Σ b_j z_j 1[z_j <= v_j].
    result.revenue += buyer.b * purchase.price;
    error_sum += purchase.expected_error;
  }
  result.affordability = total_mass > 0.0 ? affordable_mass / total_mass : 0.0;
  result.mean_delivered_error =
      result.transactions > 0 ? error_sum / result.transactions : 0.0;
  // The broker's till grew by the unweighted sum of prices; consistency
  // between the two accountings is asserted by tests, not here.
  (void)revenue_before;
  return result;
}

}  // namespace nimbus::market
