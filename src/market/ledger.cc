#include "market/ledger.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <limits>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "common/telemetry.h"
#include "market/journal.h"

namespace nimbus::market {
namespace {

// Audit counters mirrored into the telemetry registry on every Record,
// so benches and the metrics snapshot report revenue without re-walking
// the ledger — labeled per offering (the entry's model kind), matching
// the broker's per-offering families. Per-price-point counters are
// keyed by the formatted inverse-NCP (cardinality is bounded by the
// broker's version grid).
telemetry::CounterVec& LedgerSalesVec() {
  static telemetry::CounterVec& vec =
      telemetry::Registry::Global().GetCounterVec("ledger_sales_total",
                                                  "offering");
  return vec;
}

telemetry::GaugeVec& LedgerRevenueVec() {
  static telemetry::GaugeVec& vec =
      telemetry::Registry::Global().GetGaugeVec("ledger_revenue_total",
                                                "offering");
  return vec;
}

telemetry::Counter& RecoveredRecordsCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("journal_recovered_records");
  return counter;
}

std::string PricePointMetricName(double inverse_ncp) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", inverse_ncp);
  std::string name = "ledger_sales_point_";
  for (const char* p = buf; *p != '\0'; ++p) {
    const char c = *p;
    name += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return name;
}

// RFC-4180 field quoting: fields containing the separator, quotes or
// line breaks are wrapped in quotes with embedded quotes doubled, so a
// buyer id like `mallory",,"0` cannot inject audit columns.
std::string CsvField(const std::string& field) {
  if (field.find_first_of(",\"\r\n") == std::string::npos) {
    return field;
  }
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (char c : field) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

// Splits RFC-4180 text into rows of fields, honoring quoted fields
// (which may contain commas, doubled quotes, and line breaks).
StatusOr<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t i = 0;
  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };
  while (i < text.size()) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    switch (c) {
      case '"':
        if (field_started || !field.empty()) {
          return InvalidArgumentError(
              "CSV quote opened mid-field at byte " + std::to_string(i));
        }
        in_quotes = true;
        field_started = true;
        ++i;
        break;
      case ',':
        end_field();
        ++i;
        break;
      case '\r':
        if (i + 1 < text.size() && text[i + 1] == '\n') {
          ++i;
        }
        end_row();
        ++i;
        break;
      case '\n':
        end_row();
        ++i;
        break;
      default:
        field += c;
        field_started = true;
        ++i;
    }
  }
  if (in_quotes) {
    return InvalidArgumentError("CSV ends inside a quoted field");
  }
  if (field_started || !field.empty() || !row.empty()) {
    end_row();
  }
  return rows;
}

StatusOr<double> ParseDouble(const std::string& token, const char* what,
                             size_t row) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (errno != 0 || end == token.c_str() || *end != '\0') {
    return InvalidArgumentError("bad " + std::string(what) + " '" + token +
                                "' on CSV row " + std::to_string(row));
  }
  return value;
}

}  // namespace

Ledger::Ledger() = default;
Ledger::~Ledger() = default;
Ledger::Ledger(Ledger&&) noexcept = default;
Ledger& Ledger::operator=(Ledger&&) noexcept = default;

Status Ledger::ValidateFields(const std::string& buyer_id, double inverse_ncp,
                              double price, double expected_error) {
  if (buyer_id.empty()) {
    return InvalidArgumentError("buyer id must be non-empty");
  }
  if (!(inverse_ncp > 0.0) || !std::isfinite(inverse_ncp)) {
    return InvalidArgumentError("inverse NCP must be positive and finite");
  }
  if (price < 0.0 || !std::isfinite(price)) {
    return InvalidArgumentError("price must be non-negative and finite");
  }
  if (!std::isfinite(expected_error)) {
    return InvalidArgumentError("expected error must be finite");
  }
  return OkStatus();
}

void Ledger::Commit(const LedgerEntry& entry) {
  entries_.push_back(entry);
  ++next_sequence_;
  total_revenue_ += entry.price;
  spend_by_buyer_[entry.buyer_id] += entry.price;
  ++sales_per_price_point_[entry.inverse_ncp];
  revenue_by_model_[entry.model] += entry.price;
  ++sales_by_model_[entry.model];
  const std::string offering(ml::ModelKindToString(entry.model));
  LedgerSalesVec().WithLabel(offering).Increment();
  LedgerRevenueVec().WithLabel(offering).Add(entry.price);
  telemetry::Registry::Global()
      .GetCounter(PricePointMetricName(entry.inverse_ncp))
      .Increment();
}

StatusOr<int64_t> Ledger::Record(const std::string& buyer_id,
                                 ml::ModelKind model, double inverse_ncp,
                                 double price, double expected_error,
                                 const telemetry::TraceContext* trace) {
  NIMBUS_RETURN_IF_ERROR(
      ValidateFields(buyer_id, inverse_ncp, price, expected_error));
  LedgerEntry entry;
  entry.sequence = next_sequence_;
  entry.buyer_id = buyer_id;
  entry.model = model;
  entry.inverse_ncp = inverse_ncp;
  entry.price = price;
  entry.expected_error = expected_error;
  // Durability first: the sale is acknowledged only after the journal
  // accepts it, so a crashed process never has acknowledged sales
  // missing from the WAL and a failed append never half-records.
  if (journal_ != nullptr) {
    NIMBUS_RETURN_IF_ERROR(journal_->Append(entry, trace));
  }
  Commit(entry);
  return entry.sequence;
}

Status Ledger::AttachJournal(std::unique_ptr<Journal> journal) {
  if (journal == nullptr) {
    return InvalidArgumentError("cannot attach a null journal");
  }
  journal_ = std::move(journal);
  return OkStatus();
}

std::unique_ptr<Journal> Ledger::DetachJournal() {
  return std::move(journal_);
}

Status Ledger::FlushJournal() {
  return journal_ == nullptr ? OkStatus() : journal_->Flush();
}

StatusOr<Ledger> Ledger::Recover(const std::string& path) {
  NIMBUS_ASSIGN_OR_RETURN(std::vector<LedgerEntry> entries,
                          Journal::Replay(path));
  NIMBUS_ASSIGN_OR_RETURN(Ledger ledger, FromEntries(entries));
  RecoveredRecordsCounter().Increment(static_cast<int64_t>(entries.size()));
  return ledger;
}

StatusOr<Ledger> Ledger::FromEntries(const std::vector<LedgerEntry>& entries) {
  Ledger ledger;
  for (const LedgerEntry& entry : entries) {
    if (entry.sequence != ledger.size()) {
      return FailedPreconditionError(
          "journal sequence gap: expected " + std::to_string(ledger.size()) +
          ", found " + std::to_string(entry.sequence));
    }
    NIMBUS_RETURN_IF_ERROR(ValidateFields(entry.buyer_id, entry.inverse_ncp,
                                          entry.price, entry.expected_error));
    ledger.Commit(entry);
  }
  return ledger;
}

StatusOr<Ledger> Ledger::FromRecoveredState(
    int64_t count, double total_revenue,
    std::map<std::string, double> spend_by_buyer,
    std::map<double, int64_t> sales_per_price_point,
    std::map<ml::ModelKind, double> revenue_by_model,
    std::map<ml::ModelKind, int64_t> sales_by_model, EntryLoader loader) {
  if (count < 0) {
    return InvalidArgumentError("recovered entry count must be >= 0");
  }
  if (count > 0 && loader == nullptr) {
    return InvalidArgumentError(
        "a recovered ledger covering entries needs an entry loader");
  }
  Ledger ledger;
  ledger.next_sequence_ = count;
  ledger.entries_base_ = count;
  ledger.base_loader_ = count > 0 ? std::move(loader) : nullptr;
  ledger.total_revenue_ = total_revenue;
  ledger.spend_by_buyer_ = std::move(spend_by_buyer);
  ledger.sales_per_price_point_ = std::move(sales_per_price_point);
  ledger.revenue_by_model_ = std::move(revenue_by_model);
  ledger.sales_by_model_ = std::move(sales_by_model);
  // Bulk-mirror the audit telemetry the per-commit path would have
  // produced, so scraped totals survive the restart.
  for (const auto& [model, sales] : ledger.sales_by_model_) {
    LedgerSalesVec()
        .WithLabel(std::string(ml::ModelKindToString(model)))
        .Increment(sales);
  }
  for (const auto& [model, revenue] : ledger.revenue_by_model_) {
    LedgerRevenueVec()
        .WithLabel(std::string(ml::ModelKindToString(model)))
        .Add(revenue);
  }
  for (const auto& [inverse_ncp, sales] : ledger.sales_per_price_point_) {
    telemetry::Registry::Global()
        .GetCounter(PricePointMetricName(inverse_ncp))
        .Increment(sales);
  }
  return ledger;
}

Status Ledger::ApplyRecovered(const LedgerEntry& entry) {
  if (entry.sequence != next_sequence_) {
    return FailedPreconditionError(
        "journal sequence gap: expected " + std::to_string(next_sequence_) +
        ", found " + std::to_string(entry.sequence));
  }
  NIMBUS_RETURN_IF_ERROR(ValidateFields(entry.buyer_id, entry.inverse_ncp,
                                        entry.price, entry.expected_error));
  Commit(entry);
  return OkStatus();
}

Status Ledger::Hydrate() {
  if (entries_base_ == 0) {
    return OkStatus();
  }
  NIMBUS_ASSIGN_OR_RETURN(std::vector<LedgerEntry> base, base_loader_());
  if (static_cast<int64_t>(base.size()) != entries_base_) {
    return InternalError("hydration loader returned " +
                         std::to_string(base.size()) + " entries, want " +
                         std::to_string(entries_base_));
  }
  for (size_t i = 0; i < base.size(); ++i) {
    if (base[i].sequence != static_cast<int64_t>(i)) {
      return InternalError("hydration loader entry " + std::to_string(i) +
                           " carries sequence " +
                           std::to_string(base[i].sequence));
    }
    NIMBUS_RETURN_IF_ERROR(ValidateFields(base[i].buyer_id,
                                          base[i].inverse_ncp, base[i].price,
                                          base[i].expected_error));
  }
  base.insert(base.end(), std::make_move_iterator(entries_.begin()),
              std::make_move_iterator(entries_.end()));
  entries_ = std::move(base);
  entries_base_ = 0;
  base_loader_ = nullptr;
  return OkStatus();
}

const std::vector<LedgerEntry>& Ledger::entries() const {
  NIMBUS_CHECK(hydrated())
      << "ledger entry rows accessed before Hydrate() on a "
         "hydration-deferred restore";
  return entries_;
}

std::map<double, int64_t> Ledger::SalesPerPricePoint() const {
  return sales_per_price_point_;
}

double Ledger::TotalRevenue() const { return total_revenue_; }

double Ledger::RevenueForModel(ml::ModelKind model) const {
  const auto it = revenue_by_model_.find(model);
  return it == revenue_by_model_.end() ? 0.0 : it->second;
}

std::vector<std::pair<std::string, double>> Ledger::TopBuyers(
    int limit) const {
  std::vector<std::pair<std::string, double>> buyers(spend_by_buyer_.begin(),
                                                     spend_by_buyer_.end());
  std::sort(buyers.begin(), buyers.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) {
                return a.second > b.second;
              }
              return a.first < b.first;
            });
  if (limit >= 0 && static_cast<size_t>(limit) < buyers.size()) {
    buyers.resize(static_cast<size_t>(limit));
  }
  return buyers;
}

std::vector<LedgerEntry> Ledger::EntriesForBuyer(
    const std::string& buyer_id) const {
  std::vector<LedgerEntry> out;
  for (const LedgerEntry& e : entries()) {
    if (e.buyer_id == buyer_id) {
      out.push_back(e);
    }
  }
  return out;
}

std::string Ledger::ToCsv() const {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "sequence,buyer,model,inverse_ncp,price,expected_error\n";
  for (const LedgerEntry& e : entries()) {
    out << e.sequence << ',' << CsvField(e.buyer_id) << ','
        << ml::ModelKindToString(e.model) << ',' << e.inverse_ncp << ','
        << e.price << ',' << e.expected_error << '\n';
  }
  return out.str();
}

StatusOr<Ledger> Ledger::FromCsv(const std::string& text) {
  NIMBUS_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                          ParseCsv(text));
  if (rows.empty() || rows.front().size() != 6 ||
      rows.front().front() != "sequence") {
    return InvalidArgumentError("missing ledger CSV header");
  }
  std::vector<LedgerEntry> entries;
  for (size_t r = 1; r < rows.size(); ++r) {
    const std::vector<std::string>& row = rows[r];
    if (row.size() != 6) {
      return InvalidArgumentError("ledger CSV row " + std::to_string(r) +
                                  " has " + std::to_string(row.size()) +
                                  " fields, want 6");
    }
    LedgerEntry entry;
    NIMBUS_ASSIGN_OR_RETURN(const double sequence,
                            ParseDouble(row[0], "sequence", r));
    entry.sequence = static_cast<int64_t>(sequence);
    entry.buyer_id = row[1];
    NIMBUS_ASSIGN_OR_RETURN(entry.model, ml::ModelKindFromString(row[2]));
    NIMBUS_ASSIGN_OR_RETURN(entry.inverse_ncp,
                            ParseDouble(row[3], "inverse_ncp", r));
    NIMBUS_ASSIGN_OR_RETURN(entry.price, ParseDouble(row[4], "price", r));
    NIMBUS_ASSIGN_OR_RETURN(entry.expected_error,
                            ParseDouble(row[5], "expected_error", r));
    entries.push_back(std::move(entry));
  }
  return FromEntries(entries);
}

}  // namespace nimbus::market
