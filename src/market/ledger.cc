#include "market/ledger.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <utility>

#include "common/telemetry.h"
#include "market/journal.h"

namespace nimbus::market {
namespace {

// Audit counters mirrored into the telemetry registry on every Record,
// so benches and the metrics snapshot report revenue without re-walking
// the ledger — labeled per offering (the entry's model kind), matching
// the broker's per-offering families. Per-price-point counters are
// keyed by the formatted inverse-NCP (cardinality is bounded by the
// broker's version grid).
telemetry::CounterVec& LedgerSalesVec() {
  static telemetry::CounterVec& vec =
      telemetry::Registry::Global().GetCounterVec("ledger_sales_total",
                                                  "offering");
  return vec;
}

telemetry::GaugeVec& LedgerRevenueVec() {
  static telemetry::GaugeVec& vec =
      telemetry::Registry::Global().GetGaugeVec("ledger_revenue_total",
                                                "offering");
  return vec;
}

telemetry::Counter& RecoveredRecordsCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("journal_recovered_records");
  return counter;
}

std::string PricePointMetricName(double inverse_ncp) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", inverse_ncp);
  std::string name = "ledger_sales_point_";
  for (const char* p = buf; *p != '\0'; ++p) {
    const char c = *p;
    name += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return name;
}

// RFC-4180 field quoting: fields containing the separator, quotes or
// line breaks are wrapped in quotes with embedded quotes doubled, so a
// buyer id like `mallory",,"0` cannot inject audit columns.
std::string CsvField(const std::string& field) {
  if (field.find_first_of(",\"\r\n") == std::string::npos) {
    return field;
  }
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (char c : field) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

// Splits RFC-4180 text into rows of fields, honoring quoted fields
// (which may contain commas, doubled quotes, and line breaks).
StatusOr<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t i = 0;
  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };
  while (i < text.size()) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    switch (c) {
      case '"':
        if (field_started || !field.empty()) {
          return InvalidArgumentError(
              "CSV quote opened mid-field at byte " + std::to_string(i));
        }
        in_quotes = true;
        field_started = true;
        ++i;
        break;
      case ',':
        end_field();
        ++i;
        break;
      case '\r':
        if (i + 1 < text.size() && text[i + 1] == '\n') {
          ++i;
        }
        end_row();
        ++i;
        break;
      case '\n':
        end_row();
        ++i;
        break;
      default:
        field += c;
        field_started = true;
        ++i;
    }
  }
  if (in_quotes) {
    return InvalidArgumentError("CSV ends inside a quoted field");
  }
  if (field_started || !field.empty() || !row.empty()) {
    end_row();
  }
  return rows;
}

StatusOr<double> ParseDouble(const std::string& token, const char* what,
                             size_t row) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (errno != 0 || end == token.c_str() || *end != '\0') {
    return InvalidArgumentError("bad " + std::string(what) + " '" + token +
                                "' on CSV row " + std::to_string(row));
  }
  return value;
}

}  // namespace

Ledger::Ledger() = default;
Ledger::~Ledger() = default;
Ledger::Ledger(Ledger&&) noexcept = default;
Ledger& Ledger::operator=(Ledger&&) noexcept = default;

Status Ledger::ValidateFields(const std::string& buyer_id, double inverse_ncp,
                              double price, double expected_error) {
  if (buyer_id.empty()) {
    return InvalidArgumentError("buyer id must be non-empty");
  }
  if (!(inverse_ncp > 0.0) || !std::isfinite(inverse_ncp)) {
    return InvalidArgumentError("inverse NCP must be positive and finite");
  }
  if (price < 0.0 || !std::isfinite(price)) {
    return InvalidArgumentError("price must be non-negative and finite");
  }
  if (!std::isfinite(expected_error)) {
    return InvalidArgumentError("expected error must be finite");
  }
  return OkStatus();
}

void Ledger::Commit(const LedgerEntry& entry) {
  entries_.push_back(entry);
  spend_by_buyer_[entry.buyer_id] += entry.price;
  const std::string offering(ml::ModelKindToString(entry.model));
  LedgerSalesVec().WithLabel(offering).Increment();
  LedgerRevenueVec().WithLabel(offering).Add(entry.price);
  telemetry::Registry::Global()
      .GetCounter(PricePointMetricName(entry.inverse_ncp))
      .Increment();
}

StatusOr<int64_t> Ledger::Record(const std::string& buyer_id,
                                 ml::ModelKind model, double inverse_ncp,
                                 double price, double expected_error,
                                 const telemetry::TraceContext* trace) {
  NIMBUS_RETURN_IF_ERROR(
      ValidateFields(buyer_id, inverse_ncp, price, expected_error));
  LedgerEntry entry;
  entry.sequence = static_cast<int64_t>(entries_.size());
  entry.buyer_id = buyer_id;
  entry.model = model;
  entry.inverse_ncp = inverse_ncp;
  entry.price = price;
  entry.expected_error = expected_error;
  // Durability first: the sale is acknowledged only after the journal
  // accepts it, so a crashed process never has acknowledged sales
  // missing from the WAL and a failed append never half-records.
  if (journal_ != nullptr) {
    NIMBUS_RETURN_IF_ERROR(journal_->Append(entry, trace));
  }
  Commit(entry);
  return entry.sequence;
}

Status Ledger::AttachJournal(std::unique_ptr<Journal> journal) {
  if (journal == nullptr) {
    return InvalidArgumentError("cannot attach a null journal");
  }
  journal_ = std::move(journal);
  return OkStatus();
}

std::unique_ptr<Journal> Ledger::DetachJournal() {
  return std::move(journal_);
}

Status Ledger::FlushJournal() {
  return journal_ == nullptr ? OkStatus() : journal_->Flush();
}

StatusOr<Ledger> Ledger::Recover(const std::string& path) {
  NIMBUS_ASSIGN_OR_RETURN(std::vector<LedgerEntry> entries,
                          Journal::Replay(path));
  NIMBUS_ASSIGN_OR_RETURN(Ledger ledger, FromEntries(entries));
  RecoveredRecordsCounter().Increment(static_cast<int64_t>(entries.size()));
  return ledger;
}

StatusOr<Ledger> Ledger::FromEntries(const std::vector<LedgerEntry>& entries) {
  Ledger ledger;
  for (const LedgerEntry& entry : entries) {
    if (entry.sequence != ledger.size()) {
      return FailedPreconditionError(
          "journal sequence gap: expected " + std::to_string(ledger.size()) +
          ", found " + std::to_string(entry.sequence));
    }
    NIMBUS_RETURN_IF_ERROR(ValidateFields(entry.buyer_id, entry.inverse_ncp,
                                          entry.price, entry.expected_error));
    ledger.Commit(entry);
  }
  return ledger;
}

std::map<double, int64_t> Ledger::SalesPerPricePoint() const {
  std::map<double, int64_t> counts;
  for (const LedgerEntry& e : entries_) {
    ++counts[e.inverse_ncp];
  }
  return counts;
}

double Ledger::TotalRevenue() const {
  double total = 0.0;
  for (const LedgerEntry& e : entries_) {
    total += e.price;
  }
  return total;
}

double Ledger::RevenueForModel(ml::ModelKind model) const {
  double total = 0.0;
  for (const LedgerEntry& e : entries_) {
    if (e.model == model) {
      total += e.price;
    }
  }
  return total;
}

std::vector<std::pair<std::string, double>> Ledger::TopBuyers(
    int limit) const {
  std::vector<std::pair<std::string, double>> buyers(spend_by_buyer_.begin(),
                                                     spend_by_buyer_.end());
  std::sort(buyers.begin(), buyers.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) {
                return a.second > b.second;
              }
              return a.first < b.first;
            });
  if (limit >= 0 && static_cast<size_t>(limit) < buyers.size()) {
    buyers.resize(static_cast<size_t>(limit));
  }
  return buyers;
}

std::vector<LedgerEntry> Ledger::EntriesForBuyer(
    const std::string& buyer_id) const {
  std::vector<LedgerEntry> out;
  for (const LedgerEntry& e : entries_) {
    if (e.buyer_id == buyer_id) {
      out.push_back(e);
    }
  }
  return out;
}

std::string Ledger::ToCsv() const {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "sequence,buyer,model,inverse_ncp,price,expected_error\n";
  for (const LedgerEntry& e : entries_) {
    out << e.sequence << ',' << CsvField(e.buyer_id) << ','
        << ml::ModelKindToString(e.model) << ',' << e.inverse_ncp << ','
        << e.price << ',' << e.expected_error << '\n';
  }
  return out.str();
}

StatusOr<Ledger> Ledger::FromCsv(const std::string& text) {
  NIMBUS_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                          ParseCsv(text));
  if (rows.empty() || rows.front().size() != 6 ||
      rows.front().front() != "sequence") {
    return InvalidArgumentError("missing ledger CSV header");
  }
  std::vector<LedgerEntry> entries;
  for (size_t r = 1; r < rows.size(); ++r) {
    const std::vector<std::string>& row = rows[r];
    if (row.size() != 6) {
      return InvalidArgumentError("ledger CSV row " + std::to_string(r) +
                                  " has " + std::to_string(row.size()) +
                                  " fields, want 6");
    }
    LedgerEntry entry;
    NIMBUS_ASSIGN_OR_RETURN(const double sequence,
                            ParseDouble(row[0], "sequence", r));
    entry.sequence = static_cast<int64_t>(sequence);
    entry.buyer_id = row[1];
    NIMBUS_ASSIGN_OR_RETURN(entry.model, ml::ModelKindFromString(row[2]));
    NIMBUS_ASSIGN_OR_RETURN(entry.inverse_ncp,
                            ParseDouble(row[3], "inverse_ncp", r));
    NIMBUS_ASSIGN_OR_RETURN(entry.price, ParseDouble(row[4], "price", r));
    NIMBUS_ASSIGN_OR_RETURN(entry.expected_error,
                            ParseDouble(row[5], "expected_error", r));
    entries.push_back(std::move(entry));
  }
  return FromEntries(entries);
}

}  // namespace nimbus::market
