#include "market/ledger.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/telemetry.h"

namespace nimbus::market {
namespace {

// Audit counters mirrored into the telemetry registry on every Record,
// so benches and the metrics snapshot report revenue without re-walking
// the ledger. Per-price-point counters are keyed by the formatted
// inverse-NCP (cardinality is bounded by the broker's version grid).
telemetry::Counter& LedgerSalesCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("ledger_sales_total");
  return counter;
}

telemetry::Gauge& LedgerRevenueGauge() {
  static telemetry::Gauge& gauge =
      telemetry::Registry::Global().GetGauge("ledger_revenue_total");
  return gauge;
}

std::string PricePointMetricName(double inverse_ncp) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", inverse_ncp);
  std::string name = "ledger_sales_point_";
  for (const char* p = buf; *p != '\0'; ++p) {
    const char c = *p;
    name += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return name;
}

}  // namespace

StatusOr<int64_t> Ledger::Record(const std::string& buyer_id,
                                 ml::ModelKind model, double inverse_ncp,
                                 double price, double expected_error) {
  if (buyer_id.empty()) {
    return InvalidArgumentError("buyer id must be non-empty");
  }
  if (!(inverse_ncp > 0.0)) {
    return InvalidArgumentError("inverse NCP must be positive");
  }
  if (price < 0.0) {
    return InvalidArgumentError("price must be non-negative");
  }
  LedgerEntry entry;
  entry.sequence = static_cast<int64_t>(entries_.size());
  entry.buyer_id = buyer_id;
  entry.model = model;
  entry.inverse_ncp = inverse_ncp;
  entry.price = price;
  entry.expected_error = expected_error;
  entries_.push_back(entry);
  spend_by_buyer_[buyer_id] += price;
  LedgerSalesCounter().Increment();
  LedgerRevenueGauge().Add(price);
  telemetry::Registry::Global()
      .GetCounter(PricePointMetricName(inverse_ncp))
      .Increment();
  return entry.sequence;
}

std::map<double, int64_t> Ledger::SalesPerPricePoint() const {
  std::map<double, int64_t> counts;
  for (const LedgerEntry& e : entries_) {
    ++counts[e.inverse_ncp];
  }
  return counts;
}

double Ledger::TotalRevenue() const {
  double total = 0.0;
  for (const LedgerEntry& e : entries_) {
    total += e.price;
  }
  return total;
}

double Ledger::RevenueForModel(ml::ModelKind model) const {
  double total = 0.0;
  for (const LedgerEntry& e : entries_) {
    if (e.model == model) {
      total += e.price;
    }
  }
  return total;
}

std::vector<std::pair<std::string, double>> Ledger::TopBuyers(
    int limit) const {
  std::vector<std::pair<std::string, double>> buyers(spend_by_buyer_.begin(),
                                                     spend_by_buyer_.end());
  std::sort(buyers.begin(), buyers.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) {
                return a.second > b.second;
              }
              return a.first < b.first;
            });
  if (limit >= 0 && static_cast<size_t>(limit) < buyers.size()) {
    buyers.resize(static_cast<size_t>(limit));
  }
  return buyers;
}

std::vector<LedgerEntry> Ledger::EntriesForBuyer(
    const std::string& buyer_id) const {
  std::vector<LedgerEntry> out;
  for (const LedgerEntry& e : entries_) {
    if (e.buyer_id == buyer_id) {
      out.push_back(e);
    }
  }
  return out;
}

std::string Ledger::ToCsv() const {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "sequence,buyer,model,inverse_ncp,price,expected_error\n";
  for (const LedgerEntry& e : entries_) {
    out << e.sequence << ',' << e.buyer_id << ','
        << ml::ModelKindToString(e.model) << ',' << e.inverse_ncp << ','
        << e.price << ',' << e.expected_error << '\n';
  }
  return out.str();
}

}  // namespace nimbus::market
