#include "market/ledger.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace nimbus::market {

StatusOr<int64_t> Ledger::Record(const std::string& buyer_id,
                                 ml::ModelKind model, double inverse_ncp,
                                 double price, double expected_error) {
  if (buyer_id.empty()) {
    return InvalidArgumentError("buyer id must be non-empty");
  }
  if (!(inverse_ncp > 0.0)) {
    return InvalidArgumentError("inverse NCP must be positive");
  }
  if (price < 0.0) {
    return InvalidArgumentError("price must be non-negative");
  }
  LedgerEntry entry;
  entry.sequence = static_cast<int64_t>(entries_.size());
  entry.buyer_id = buyer_id;
  entry.model = model;
  entry.inverse_ncp = inverse_ncp;
  entry.price = price;
  entry.expected_error = expected_error;
  entries_.push_back(entry);
  spend_by_buyer_[buyer_id] += price;
  return entry.sequence;
}

double Ledger::TotalRevenue() const {
  double total = 0.0;
  for (const LedgerEntry& e : entries_) {
    total += e.price;
  }
  return total;
}

double Ledger::RevenueForModel(ml::ModelKind model) const {
  double total = 0.0;
  for (const LedgerEntry& e : entries_) {
    if (e.model == model) {
      total += e.price;
    }
  }
  return total;
}

std::vector<std::pair<std::string, double>> Ledger::TopBuyers(
    int limit) const {
  std::vector<std::pair<std::string, double>> buyers(spend_by_buyer_.begin(),
                                                     spend_by_buyer_.end());
  std::sort(buyers.begin(), buyers.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) {
                return a.second > b.second;
              }
              return a.first < b.first;
            });
  if (limit >= 0 && static_cast<size_t>(limit) < buyers.size()) {
    buyers.resize(static_cast<size_t>(limit));
  }
  return buyers;
}

std::vector<LedgerEntry> Ledger::EntriesForBuyer(
    const std::string& buyer_id) const {
  std::vector<LedgerEntry> out;
  for (const LedgerEntry& e : entries_) {
    if (e.buyer_id == buyer_id) {
      out.push_back(e);
    }
  }
  return out;
}

std::string Ledger::ToCsv() const {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "sequence,buyer,model,inverse_ncp,price,expected_error\n";
  for (const LedgerEntry& e : entries_) {
    out << e.sequence << ',' << e.buyer_id << ','
        << ml::ModelKindToString(e.model) << ',' << e.inverse_ncp << ','
        << e.price << ',' << e.expected_error << '\n';
  }
  return out.str();
}

}  // namespace nimbus::market
