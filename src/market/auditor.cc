#include "market/auditor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "common/fault.h"
#include "common/flight_recorder.h"
#include "common/logging.h"
#include "common/telemetry.h"
#include "common/timeseries.h"
#include "pricing/arbitrage.h"

namespace nimbus::market {
namespace {

uint64_t Fnv64(const std::string& key) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

telemetry::Counter& PassesCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("audit_passes_total");
  return counter;
}

telemetry::Counter& CommitsCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("audit_commits_observed_total");
  return counter;
}

telemetry::Counter& SamplesCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("audit_samples_total");
  return counter;
}

telemetry::Counter& DroppedCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("audit_ring_dropped_total");
  return counter;
}

telemetry::CounterVec& ViolationsVec() {
  static telemetry::CounterVec& vec =
      telemetry::Registry::Global().GetCounterVec("audit_violations_total",
                                                  "invariant");
  return vec;
}

telemetry::CounterVec& OfferingViolationsVec() {
  static telemetry::CounterVec& vec =
      telemetry::Registry::Global().GetCounterVec(
          "audit_offering_violations_total", "offering");
  return vec;
}

telemetry::Gauge& LanesGauge() {
  static telemetry::Gauge& gauge =
      telemetry::Registry::Global().GetGauge("audit_lanes");
  return gauge;
}

// Once-per-invariant incident reasons (the flight recorder's dump
// latch is keyed by reason, so each invariant auto-dumps at most once
// per process).
const char* IncidentReasonFor(AuditInvariant invariant) {
  switch (invariant) {
    case AuditInvariant::kMispricing:
      return "audit-violation-mispricing";
    case AuditInvariant::kMonotonicity:
      return "audit-violation-monotonicity";
    case AuditInvariant::kSubadditivity:
      return "audit-violation-subadditivity";
    case AuditInvariant::kConservation:
      return "audit-violation-conservation";
  }
  return "audit-violation";
}

void AppendDouble17(std::ostringstream& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out << buf;
}

}  // namespace

const char* AuditInvariantName(AuditInvariant invariant) {
  switch (invariant) {
    case AuditInvariant::kMispricing:
      return "mispricing";
    case AuditInvariant::kMonotonicity:
      return "monotonicity";
    case AuditInvariant::kSubadditivity:
      return "subadditivity";
    case AuditInvariant::kConservation:
      return "conservation";
  }
  return "?";
}

// One ring slot. Every payload field is a relaxed atomic (seqlock'd by
// `version`), same discipline as the flight recorder: concurrent
// producers / the consumer are data-race-free and torn views are
// detected and discarded.
struct Auditor::Slot {
  std::atomic<uint64_t> version{0};
  std::atomic<int64_t> seq{-1};
  std::atomic<int32_t> tap_index{-1};
  std::atomic<int32_t> model{0};
  std::atomic<double> inverse_ncp{0.0};
  std::atomic<double> price{0.0};
  std::atomic<double> booked_after{0.0};
  std::atomic<int64_t> sales_after{0};
  std::atomic<uint64_t> trace_id{0};
  std::atomic<int64_t> ticket{-1};
  std::atomic<uint32_t> degraded{0};
};

struct Auditor::TapEntry {
  std::string product;
  Shard* shard = nullptr;            // Catalog lanes.
  Marketplace* fixed_market = nullptr;  // Legacy fixed-market lanes.
  AuditTap tap;
};

Auditor::Auditor(AuditorOptions options, const Clock* clock)
    : options_(options),
      clock_(clock != nullptr ? clock : SystemClock::Get()),
      slots_(options.ring_capacity > 0 ? options.ring_capacity : 1) {}

Auditor::~Auditor() { Stop(); }

void Auditor::AttachCatalog(Catalog* catalog) { catalog_ = catalog; }

AuditTap* Auditor::RegisterLane(const std::string& product_id, Shard* shard,
                                Marketplace* fixed_market) {
  std::lock_guard<std::mutex> lock(taps_mu_);
  auto entry = std::make_unique<TapEntry>();
  entry->product = product_id;
  entry->shard = shard;
  entry->fixed_market = fixed_market;
  entry->tap.index = static_cast<int32_t>(taps_.size());
  entry->tap.sample_rng = Rng(options_.seed ^ Fnv64(product_id));
  taps_.push_back(std::move(entry));
  LanesGauge().Set(static_cast<double>(taps_.size()));
  return &taps_.back()->tap;
}

void Auditor::OnCommit(AuditTap* tap, const CommitView& view) {
  if (tap == nullptr) {
    return;
  }
  // Conservation fingerprint. Single writer per tap (the lane's commit
  // sequencer), so plain load-modify-store on the atomics is exact;
  // the seqlock only protects the auditor's cross-field reads.
  const uint64_t v = tap->version.load(std::memory_order_relaxed);
  tap->version.store(v + 1, std::memory_order_release);
  if (!tap->has_baseline.load(std::memory_order_relaxed)) {
    tap->baseline.store(view.booked_revenue_after - view.price,
                        std::memory_order_relaxed);
    tap->has_baseline.store(true, std::memory_order_relaxed);
  }
  tap->accumulated.store(
      tap->accumulated.load(std::memory_order_relaxed) + view.price,
      std::memory_order_relaxed);
  tap->booked_after.store(view.booked_revenue_after,
                          std::memory_order_relaxed);
  tap->sales_after.store(view.sales_after, std::memory_order_relaxed);
  tap->commits.store(tap->commits.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
  tap->version.store(v + 2, std::memory_order_release);
  CommitsCounter().Increment();

  // Deterministic sampling: a pure function of (seed, product, ticket),
  // so the sampled SET is identical at every worker count and no lane
  // RNG stream is ever touched.
  if (options_.sample_rate < 1.0) {
    Rng decision = tap->sample_rng.Fork(static_cast<uint64_t>(view.ticket));
    if (!decision.Bernoulli(options_.sample_rate)) {
      return;
    }
  }

  double price = view.price;
  if (fault::ShouldFail("audit.verify")) {
    // Drill hook: corrupt this sampled COPY's price only. The ledger,
    // the buyer's purchase, and every market output stay untouched —
    // the drill proves the DETECTOR works, not that the market broke.
    price = price * 1.01 + 1e-6;
  }

  const int64_t seq = head_.fetch_add(1, std::memory_order_acq_rel);
  Slot& slot = slots_[static_cast<size_t>(seq) % slots_.size()];
  uint64_t sv = slot.version.load(std::memory_order_relaxed);
  if (sv % 2 != 0 ||
      !slot.version.compare_exchange_strong(sv, sv + 1,
                                            std::memory_order_acquire)) {
    // A lapping writer owns this very slot; dropping one sample beats
    // blocking the commit path.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    DroppedCounter().Increment();
    return;
  }
  slot.seq.store(seq, std::memory_order_relaxed);
  slot.tap_index.store(tap->index, std::memory_order_relaxed);
  slot.model.store(static_cast<int32_t>(view.model),
                   std::memory_order_relaxed);
  slot.inverse_ncp.store(view.inverse_ncp, std::memory_order_relaxed);
  slot.price.store(price, std::memory_order_relaxed);
  slot.booked_after.store(view.booked_revenue_after,
                          std::memory_order_relaxed);
  slot.sales_after.store(view.sales_after, std::memory_order_relaxed);
  slot.trace_id.store(view.trace_id, std::memory_order_relaxed);
  slot.ticket.store(view.ticket, std::memory_order_relaxed);
  slot.degraded.store(view.degraded ? 1 : 0, std::memory_order_relaxed);
  slot.version.store(sv + 2, std::memory_order_release);
}

void Auditor::Start() {
  std::lock_guard<std::mutex> lock(loop_mu_);
  if (loop_running_) {
    return;
  }
  stop_ = false;
  loop_running_ = true;
  loop_ = std::thread([this] { Loop(); });
}

void Auditor::Stop() {
  {
    std::lock_guard<std::mutex> lock(loop_mu_);
    if (!loop_running_) {
      return;
    }
    stop_ = true;
  }
  loop_cv_.notify_all();
  if (loop_.joinable()) {
    loop_.join();
  }
  std::lock_guard<std::mutex> lock(loop_mu_);
  loop_running_ = false;
}

bool Auditor::running() const {
  std::lock_guard<std::mutex> lock(loop_mu_);
  return loop_running_;
}

void Auditor::Loop() {
  std::unique_lock<std::mutex> lock(loop_mu_);
  while (!stop_) {
    lock.unlock();
    RunPass();
    lock.lock();
    loop_cv_.wait_for(
        lock,
        std::chrono::duration<double>(options_.pass_interval_seconds),
        [this] { return stop_; });
  }
}

int Auditor::RunPass() {
  std::vector<Violation> found;
  DrainAndCheck(&found);
  CheckConservation(&found);
  for (Violation& violation : found) {
    FileViolation(std::move(violation));
  }
  PassesCounter().Increment();
  if (options_.pump_timeseries) {
    telemetry::TimeseriesRing::Global().SampleIfDue();
  }
  std::lock_guard<std::mutex> lock(status_mu_);
  ++passes_;
  last_pass_t_ns_ = clock_->NowNanos();
  return static_cast<int>(found.size());
}

int Auditor::DrainAndCheck(std::vector<Violation>* out) {
  const size_t cap = slots_.size();
  const size_t before = out->size();
  int64_t head = head_.load(std::memory_order_acquire);
  if (head - consumed_ > static_cast<int64_t>(cap)) {
    const int64_t skipped = head - static_cast<int64_t>(cap) - consumed_;
    dropped_.fetch_add(skipped, std::memory_order_relaxed);
    DroppedCounter().Increment(skipped);
    consumed_ = head - static_cast<int64_t>(cap);
  }
  int64_t audited = 0;
  while (consumed_ < head) {
    Slot& slot = slots_[static_cast<size_t>(consumed_) % cap];
    const uint64_t v1 = slot.version.load(std::memory_order_acquire);
    if (v1 % 2 != 0) {
      break;  // Writer mid-flight; finish this sample next pass.
    }
    const int64_t seq = slot.seq.load(std::memory_order_relaxed);
    const int32_t tap_index = slot.tap_index.load(std::memory_order_relaxed);
    const int32_t model = slot.model.load(std::memory_order_relaxed);
    const double inverse_ncp =
        slot.inverse_ncp.load(std::memory_order_relaxed);
    const double price = slot.price.load(std::memory_order_relaxed);
    const uint64_t trace_id = slot.trace_id.load(std::memory_order_relaxed);
    const int64_t ticket = slot.ticket.load(std::memory_order_relaxed);
    const uint64_t v2 = slot.version.load(std::memory_order_acquire);
    if (v2 != v1) {
      // Lapped mid-read; the sample is gone.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      DroppedCounter().Increment();
      ++consumed_;
      continue;
    }
    if (seq != consumed_) {
      if (seq < consumed_) {
        break;  // Slot claimed but not yet published.
      }
      dropped_.fetch_add(1, std::memory_order_relaxed);
      DroppedCounter().Increment();
      ++consumed_;
      continue;
    }
    ++consumed_;
    ++audited;
    SamplesCounter().Increment();

    TapEntry* entry = nullptr;
    {
      std::lock_guard<std::mutex> lock(taps_mu_);
      if (tap_index >= 0 && tap_index < static_cast<int32_t>(taps_.size())) {
        entry = taps_[static_cast<size_t>(tap_index)].get();
      }
    }
    if (entry == nullptr) {
      continue;
    }
    // Resolve the lane's current marketplace. Shard lanes go through
    // the shard so an audit never reads a marketplace a recovery swap
    // retired; the shared_ptr keeps it alive for the check.
    std::shared_ptr<Marketplace> held;
    Marketplace* market = entry->fixed_market;
    if (entry->shard != nullptr) {
      held = entry->shard->market();
      market = held.get();
    }
    if (market == nullptr) {
      continue;
    }
    const auto kind = static_cast<ml::ModelKind>(model);
    StatusOr<Broker*> broker_or = market->BrokerFor(kind);
    if (!broker_or.ok()) {
      continue;  // Offering unknown to this marketplace; nothing to audit.
    }
    const Broker& broker = *broker_or.value();
    const std::string offering(ml::ModelKindToString(kind));
    const pricing::PricingFunction& pf = broker.pricing_function();

    // (1) Exact re-price: the committed price must be the pricing
    // function's value at the committed 1/δ (the quote path derives it
    // from exactly this pure function).
    const double expected = pf.PriceAtInverseNcp(inverse_ncp);
    if (std::abs(price - expected) >
        options_.price_tol * std::max(1.0, std::abs(expected))) {
      Violation v;
      v.invariant = AuditInvariant::kMispricing;
      v.product = entry->product;
      v.offering = offering;
      v.ticket = ticket;
      v.trace_id = trace_id;
      std::ostringstream msg;
      msg << "committed price ";
      AppendDouble17(msg, price);
      msg << " != p(";
      AppendDouble17(msg, inverse_ncp);
      msg << ") = ";
      AppendDouble17(msg, expected);
      v.detail = msg.str();
      out->push_back(std::move(v));
    }

    // (2) Curve-level monotonicity / subadditivity spot check, once
    // per installed pricing function per offering (the memo keys on
    // the function's identity, so a re-priced offering re-certifies).
    const std::pair<int32_t, int32_t> memo_key(tap_index, model);
    const void* pf_id = static_cast<const void*>(&pf);
    auto memo = audited_curves_.find(memo_key);
    if (memo == audited_curves_.end() || memo->second != pf_id) {
      audited_curves_[memo_key] = pf_id;
      const Broker::Options& bopts = broker.options();
      pricing::AuditResult audit = pricing::AuditPricingFunction(
          pf,
          pricing::AuditGrid(bopts.min_inverse_ncp, bopts.max_inverse_ncp,
                             options_.grid_points));
      if (!audit.arbitrage_free) {
        Violation v;
        v.invariant =
            audit.violation.rfind("monotonicity", 0) == 0
                ? AuditInvariant::kMonotonicity
                : AuditInvariant::kSubadditivity;
        v.product = entry->product;
        v.offering = offering;
        v.ticket = ticket;
        v.trace_id = trace_id;
        v.detail = audit.violation;
        out->push_back(std::move(v));
      }
    }
  }
  if (audited > 0) {
    std::lock_guard<std::mutex> lock(status_mu_);
    samples_audited_ += audited;
  }
  return static_cast<int>(out->size() - before);
}

int Auditor::CheckConservation(std::vector<Violation>* out) {
  const size_t before = out->size();
  std::vector<TapEntry*> entries;
  {
    std::lock_guard<std::mutex> lock(taps_mu_);
    entries.reserve(taps_.size());
    for (const std::unique_ptr<TapEntry>& entry : taps_) {
      entries.push_back(entry.get());
    }
  }
  double fingerprint_sum = 0.0;
  int64_t sales_sum = 0;
  bool all_stable = true;
  for (TapEntry* entry : entries) {
    const AuditTap& tap = entry->tap;
    // Consistent cross-field read through the tap's seqlock; a lane
    // committing right now just defers this lane to the next pass.
    bool stable = false;
    bool has_baseline = false;
    double baseline = 0.0, accumulated = 0.0, booked_after = 0.0;
    double tamper = 0.0;
    int64_t sales_after = 0;
    for (int attempt = 0; attempt < 3 && !stable; ++attempt) {
      const uint64_t v1 = tap.version.load(std::memory_order_acquire);
      if (v1 % 2 != 0) {
        continue;
      }
      has_baseline = tap.has_baseline.load(std::memory_order_relaxed);
      baseline = tap.baseline.load(std::memory_order_relaxed);
      accumulated = tap.accumulated.load(std::memory_order_relaxed);
      booked_after = tap.booked_after.load(std::memory_order_relaxed);
      sales_after = tap.sales_after.load(std::memory_order_relaxed);
      tamper = tap.tamper.load(std::memory_order_relaxed);
      stable = tap.version.load(std::memory_order_acquire) == v1;
    }
    if (!stable) {
      all_stable = false;
      continue;
    }
    if (!has_baseline) {
      continue;  // No tapped commit yet; nothing to conserve.
    }
    fingerprint_sum += booked_after;
    sales_sum += sales_after;

    // (3a) Per-lane fingerprint: baseline + Σ committed prices must
    // reproduce the booked ledger total — the identity journal replay
    // re-derives record by record.
    const double fingerprint = baseline + accumulated + tamper;
    if (std::abs(fingerprint - booked_after) >
        options_.revenue_tol * std::max(1.0, std::abs(booked_after))) {
      Violation v;
      v.invariant = AuditInvariant::kConservation;
      v.product = entry->product;
      std::ostringstream msg;
      msg << "fingerprint ";
      AppendDouble17(msg, fingerprint);
      msg << " != booked revenue ";
      AppendDouble17(msg, booked_after);
      msg << " after " << sales_after << " sales";
      v.detail = msg.str();
      out->push_back(std::move(v));
      continue;
    }
    // (3b) Shard lanes: the shard's cached booked totals (what rollups
    // and /shardz serve) must agree with the committed ledger total at
    // the same sale count.
    if (entry->shard != nullptr) {
      const Shard::Stats stats = entry->shard->stats();
      if (stats.sales == sales_after &&
          std::abs(stats.revenue - booked_after) >
              options_.revenue_tol * std::max(1.0, std::abs(booked_after))) {
        Violation v;
        v.invariant = AuditInvariant::kConservation;
        v.product = entry->product;
        std::ostringstream msg;
        msg << "shard cached revenue ";
        AppendDouble17(msg, stats.revenue);
        msg << " != booked revenue ";
        AppendDouble17(msg, booked_after);
        msg << " at " << sales_after << " sales";
        v.detail = msg.str();
        out->push_back(std::move(v));
      }
    }
  }
  // (3c) Cross-shard rollup: when every lane was readable and the
  // window was quiescent (no commit landed between our tap reads and
  // the rollup), the catalog rollup must equal the sum of the lanes'
  // booked totals.
  if (catalog_ != nullptr && all_stable && !entries.empty()) {
    const Catalog::Rollup rollup = catalog_->GetRollup();
    bool quiescent = rollup.total_sales == sales_sum;
    if (quiescent) {
      for (TapEntry* entry : entries) {
        // A commit in flight since our read re-arms next pass.
        if (entry->tap.version.load(std::memory_order_acquire) % 2 != 0) {
          quiescent = false;
          break;
        }
      }
    }
    if (quiescent &&
        std::abs(rollup.total_revenue - fingerprint_sum) >
            options_.revenue_tol *
                std::max(1.0, std::abs(fingerprint_sum))) {
      Violation v;
      v.invariant = AuditInvariant::kConservation;
      v.product = "catalog";
      std::ostringstream msg;
      msg << "catalog rollup revenue ";
      AppendDouble17(msg, rollup.total_revenue);
      msg << " != sum of per-shard booked revenue ";
      AppendDouble17(msg, fingerprint_sum);
      msg << " at " << sales_sum << " sales";
      v.detail = msg.str();
      out->push_back(std::move(v));
    }
  }
  return static_cast<int>(out->size() - before);
}

void Auditor::FileViolation(Violation violation) {
  violation.detected_t_ns = clock_->NowNanos();
  const char* invariant_name = AuditInvariantName(violation.invariant);
  ViolationsVec().WithLabel(invariant_name).Increment();
  if (!violation.offering.empty()) {
    OfferingViolationsVec().WithLabel(violation.offering).Increment();
  }
  NIMBUS_LOG(kWarning) << "auditor: " << invariant_name
                       << " violation on '" << violation.product << "'"
                       << (violation.offering.empty()
                               ? std::string()
                               : " offering '" + violation.offering + "'")
                       << ": " << violation.detail;
  // Black box: file a flight flagged audit_violation carrying the
  // sampled request's trace id (joined by /tracez), then auto-dump the
  // ring once per invariant.
  telemetry::FlightRecord record;
  record.trace_id = violation.trace_id;
  record.ticket = violation.ticket;
  record.audit_violation = true;
  telemetry::FlightRecorder::Global().Record(record);
  telemetry::FlightRecorder::Global().DumpOnIncident(
      IncidentReasonFor(violation.invariant));
  // Capture the crossing into the metric history NOW, so the
  // first-failure timestamp is dated to this pass, not up to one
  // timeseries step later.
  if (options_.pump_timeseries) {
    telemetry::TimeseriesRing::Global().SampleNow();
  }
  std::lock_guard<std::mutex> lock(status_mu_);
  ++violations_;
  if (first_violation_t_ns_ == 0) {
    first_violation_t_ns_ = violation.detected_t_ns;
  }
  recent_.push_back(std::move(violation));
  if (recent_.size() > options_.max_recent_violations) {
    recent_.erase(recent_.begin());
  }
}

void Auditor::TamperForTest(const std::string& product_id,
                            double revenue_delta) {
  std::lock_guard<std::mutex> lock(taps_mu_);
  for (const std::unique_ptr<TapEntry>& entry : taps_) {
    if (entry->product == product_id) {
      AuditTap& tap = entry->tap;
      tap.tamper.store(
          tap.tamper.load(std::memory_order_relaxed) + revenue_delta,
          std::memory_order_relaxed);
      return;
    }
  }
  NIMBUS_LOG(kWarning) << "auditor: TamperForTest on unknown product '"
                       << product_id << "'";
}

Auditor::Status Auditor::GetStatus() const {
  Status status;
  {
    std::lock_guard<std::mutex> lock(loop_mu_);
    status.running = loop_running_;
  }
  status.samples_dropped = dropped_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(status_mu_);
  status.passes = passes_;
  status.samples_audited = samples_audited_;
  status.violations = violations_;
  status.last_pass_t_ns = last_pass_t_ns_;
  status.first_violation_t_ns = first_violation_t_ns_;
  status.recent = recent_;
  int64_t commits = 0;
  // commits_observed is derivable from the taps without extra state.
  {
    std::lock_guard<std::mutex> taps_lock(taps_mu_);
    for (const std::unique_ptr<TapEntry>& entry : taps_) {
      commits += entry->tap.commits.load(std::memory_order_relaxed);
    }
  }
  status.commits_observed = commits;
  return status;
}

std::string Auditor::ToJson() const {
  const Status status = GetStatus();
  std::ostringstream out;
  out << "{\"running\":" << (status.running ? "true" : "false")
      << ",\"passes\":" << status.passes
      << ",\"commits_observed\":" << status.commits_observed
      << ",\"samples_audited\":" << status.samples_audited
      << ",\"samples_dropped\":" << status.samples_dropped
      << ",\"violations\":" << status.violations
      << ",\"last_pass_t_seconds\":";
  AppendDouble17(out, static_cast<double>(status.last_pass_t_ns) * 1e-9);
  out << ",\"first_violation_t_seconds\":";
  AppendDouble17(out,
                 static_cast<double>(status.first_violation_t_ns) * 1e-9);
  out << ",\"recent_violations\":[";
  bool first = true;
  for (const Violation& v : status.recent) {
    if (!first) {
      out << ',';
    }
    first = false;
    const char* invariant_name = AuditInvariantName(v.invariant);
    out << "{\"invariant\":\"" << invariant_name << "\",\"product\":\""
        << telemetry::JsonEscape(v.product) << "\",\"offering\":\""
        << telemetry::JsonEscape(v.offering) << "\",\"detail\":\""
        << telemetry::JsonEscape(v.detail) << "\",\"ticket\":" << v.ticket
        << ",\"trace_id\":" << v.trace_id << ",\"detected_t_seconds\":";
    AppendDouble17(out, static_cast<double>(v.detected_t_ns) * 1e-9);
    // First-failure timestamp from the metric HISTORY: the earliest
    // retained timeseries sample where this invariant's violation
    // counter crossed 1 — "when did this start", not just "how many".
    const std::string series = std::string("audit_violations_total{") +
                               "invariant=\"" + invariant_name + "\"}";
    const std::optional<int64_t> first_t =
        telemetry::TimeseriesRing::Global().FirstAtLeast(series, 1.0);
    out << ",\"first_failure_t_seconds\":";
    if (first_t.has_value()) {
      AppendDouble17(out, static_cast<double>(*first_t) * 1e-9);
    } else {
      out << "null";
    }
    out << '}';
  }
  out << "]}";
  return out.str();
}

}  // namespace nimbus::market
