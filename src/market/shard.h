#ifndef NIMBUS_MARKET_SHARD_H_
#define NIMBUS_MARKET_SHARD_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/statusor.h"
#include "market/checkpointer.h"
#include "market/journal.h"
#include "market/marketplace.h"

namespace nimbus::market {

// Health of one product shard. The bulkhead state machine:
//
//               checkpoint failure absorbed
//     kServing ───────────────────────────► kDegraded
//        ▲  ▲                                   │
//        │  └───── next checkpoint lands ◄──────┘
//        │                                      │ poisoned journal /
//        │ restore ladder                       │ short write (ENOSPC)
//        │ succeeds                             ▼
//   kRecovering ◄──── background loop ──── kQuarantined
//        │                  picks it up        ▲
//        └───── restore fails ─────────────────┘
//
// Only the faulted shard leaves kServing: its quotes/purchases shed
// with a typed kUnavailable naming the shard while every other shard
// keeps serving.
enum class ShardState {
  kServing,      // Healthy; quotes and purchases flow.
  kDegraded,     // Serving, but the last checkpoint attempt failed.
  kRecovering,   // A recovery attempt is rebuilding the marketplace.
  kQuarantined,  // Durable state is suspect; all requests shed.
};

const char* ShardStateName(ShardState state);

// Rebuilds a fresh, empty Marketplace with the exact AddOffering
// sequence of the original — the RestoreFromCheckpoint precondition.
// Called at shard open and again on every recovery attempt.
using MarketplaceFactory = std::function<StatusOr<Marketplace>()>;

struct ShardOptions {
  // Per-shard directory; the write-ahead journal lives at
  // `<dir>/journal` and the snapshot chain beside it
  // (`journal.snap.NNNNNN`, `journal.manifest`, `journal.prev`).
  std::string dir;
  Journal::Options journal;
  // Checkpointing (off by default — pure-journal shards still recover,
  // via full replay).
  bool enable_checkpoints = false;
  CheckpointPolicy checkpoint_policy;
  // Load the full entry log during restore (see
  // Marketplace::RestoreOptions::hydrate).
  bool hydrate_on_restore = true;
};

// One fault-isolated product shard: a Marketplace plus its durable
// state (journal, checkpointer, snapshot generations) under a private
// directory, wrapped in the health state machine above. All methods are
// thread-safe; the marketplace is held behind a shared_ptr so in-flight
// requests keep a consistent instance across a recovery swap.
class Shard {
 public:
  // Opens the shard: creates `options.dir`, then either attaches a
  // fresh journal (first boot) or runs the RestoreFromCheckpoint ladder
  // against the surviving on-disk state. A factory/configuration error
  // fails the call; a restore error quarantines the shard instead (the
  // background recovery loop retries it) so one damaged shard cannot
  // keep the rest of the catalog from opening.
  static StatusOr<std::unique_ptr<Shard>> Open(std::string product_id,
                                               MarketplaceFactory factory,
                                               ShardOptions options);

  const std::string& product_id() const { return product_id_; }
  const std::string& journal_path() const { return journal_path_; }

  ShardState state() const;
  // Human-readable reason for the current non-serving state ("" while
  // healthy): the quarantine trigger or last recovery failure.
  std::string state_detail() const;

  // The marketplace when the shard accepts traffic (kServing or
  // kDegraded); a typed kUnavailable naming the shard otherwise.
  StatusOr<std::shared_ptr<Marketplace>> Serve();

  // The current marketplace regardless of state (admin rollups read
  // revenue off a quarantined shard too). Never null after Open.
  std::shared_ptr<Marketplace> market() const;

  // Commit-outcome triage from the serving layer. A successful commit
  // clears kDegraded once a checkpoint lands and flags kDegraded when
  // one was absorbed; a terminal failure whose shape implicates the
  // shard's durable state (poisoned journal, short write / ENOSPC,
  // closed journal) quarantines the shard. Returns the resulting state.
  ShardState ReportCommitOutcome(const Status& status);

  // Forces quarantine (used by drills and by Open on a failed restore).
  void Quarantine(const std::string& reason);

  // One recovery attempt: rebuild a fresh marketplace from the factory,
  // run the RestoreFromCheckpoint ladder against the shard's journal,
  // and on success swap it in and re-admit (kServing). On failure the
  // shard returns to kQuarantined with the error as its detail. Only
  // meaningful from kQuarantined; kFailedPrecondition otherwise.
  Status TryRecover();

  // Report of the last successful restore (Open-from-disk or
  // TryRecover). source == kFullReplay with generation 0 on first boot.
  Marketplace::RestoreReport last_restore_report() const;

  struct Stats {
    int64_t quarantines = 0;
    int64_t recoveries = 0;         // Successful TryRecover calls.
    int64_t recovery_failures = 0;  // Failed TryRecover calls.
    int64_t commits = 0;            // Successful commits reported.
    int64_t commit_failures = 0;    // Terminal commit failures reported.
    // Booked totals, cached under mu_ on the (sequencer-serialized)
    // commit path and on recovery. Rollups and /shardz read these
    // instead of the live ledger, which only its committer may touch.
    double revenue = 0.0;
    int64_t sales = 0;
  };
  Stats stats() const;

  // Re-caches the booked totals (Stats::revenue/sales) off the live
  // ledger. The serving path refreshes them automatically on every
  // reported commit; callers that feed the shard's marketplace directly
  // (tests, drills) call this afterwards, while the ledger is quiescent.
  void RefreshBookedTotals();

 private:
  Shard(std::string product_id, MarketplaceFactory factory,
        ShardOptions options);

  // Builds a marketplace and restores it from the shard's on-disk
  // state; returns the restored instance and fills `report`. On error,
  // `factory_failed` (when non-null) distinguishes the factory itself
  // failing (a configuration error — retrying cannot help) from a
  // restore failure (damaged durable state — quarantine and let the
  // recovery ladder retry).
  StatusOr<Marketplace> BuildAndRestore(Marketplace::RestoreReport* report,
                                        bool* factory_failed = nullptr);

  void SetStateLocked(ShardState state, const std::string& detail);

  // Re-reads the booked totals off market_ into stats_ and the revenue
  // gauge. Callers must hold mu_ AND be on a path where the ledger is
  // quiescent for this shard (the serialized commit path, recovery, or
  // Open) — foreign threads read the cached copy, never the ledger.
  void RefreshBookedTotalsLocked();

  const std::string product_id_;
  const MarketplaceFactory factory_;
  const ShardOptions options_;
  const std::string journal_path_;

  mutable std::mutex mu_;
  ShardState state_ = ShardState::kQuarantined;  // Until Open succeeds.
  std::string detail_;
  std::shared_ptr<Marketplace> market_;
  Marketplace::RestoreReport last_report_;
  Checkpointer::Stats last_checkpoint_stats_;
  Stats stats_;
  // Guards against concurrent TryRecover races (the state machine
  // enforces it, but the flag keeps the invariant explicit).
  bool recovery_in_flight_ = false;
};

}  // namespace nimbus::market

#endif  // NIMBUS_MARKET_SHARD_H_
