#ifndef NIMBUS_MARKET_JOURNAL_H_
#define NIMBUS_MARKET_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/profiler.h"
#include "common/statusor.h"
#include "common/telemetry.h"
#include "market/ledger.h"

namespace nimbus::market {

// Append-only binary write-ahead log for the ledger — the durable copy
// of the seller's audit trail. A journal file is an 8-byte magic header
// ("NIMBUSJ1") followed by length-prefixed records:
//
//   u32 payload_len | u32 crc32(payload) | payload
//
// where the payload is one serialized LedgerEntry (fixed numeric fields
// in native little-endian order plus a length-prefixed buyer id). The
// CRC makes bit rot and torn writes detectable: replay accepts exactly
// the longest valid record prefix and classifies whatever follows as a
// torn tail (incomplete trailing record — the signature of a crash
// mid-append) or corruption (a full-length record whose CRC or encoding
// is wrong).
//
// Rotated segments (produced by Rotate after a checkpoint truncates
// history) carry the "NIMBUSJ2" magic followed by
//
//   u64 base_sequence | u32 crc32(base_sequence)
//
// before the first record: the segment holds only records with
// sequence >= base_sequence, the earlier prefix being covered by a
// snapshot (market/snapshot.h). A J1 file is simply a segment with base
// sequence 0; both magics replay through the same code path.
class Journal {
 public:
  // When to force bytes to stable storage.
  //   kNone:        leave flushing to the OS (fastest; a crash may lose
  //                 the most recent records but never corrupts the
  //                 prefix).
  //   kEveryRecord: fflush + fsync after each append (group-commit-free
  //                 durability; every acknowledged sale survives power
  //                 loss).
  enum class FsyncPolicy { kNone, kEveryRecord };

  struct Options {
    FsyncPolicy fsync = FsyncPolicy::kNone;
    // Base sequence stamped into the header when Open CREATES the file
    // (> 0 writes a J2 segment header). Ignored for existing files,
    // whose base comes from their own header.
    int64_t create_base_sequence = 0;
  };

  // Opens `path` for appending, creating it (with header) when absent.
  // An existing file must be a structurally valid journal ending on a
  // record boundary: Open scans it and fails with kFailedPrecondition on
  // a torn or corrupt tail, because appending past one would bury the
  // damage behind fresh records and silently diverge replay from the
  // acknowledged history. Run Journal::Replay (which truncates torn
  // tails) — or the marketplace's restore path — first, then re-open.
  static StatusOr<Journal> Open(const std::string& path, Options options);

  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&& other) noexcept;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  ~Journal();

  // Appends one record (write-through target of Ledger::Record). The
  // entry is fully buffered into one fwrite so a crash between appends
  // never interleaves partial records from this process.
  //
  // Append is idempotent across failed attempts of the SAME record:
  // when an append got its bytes buffered but failed at the flush/fsync
  // stage, retrying Append(entry) with the identical payload re-flushes
  // instead of re-buffering, so a retrying caller (the serving layer's
  // journal retry policy) can never duplicate a record. The retry must
  // carry the same payload, not just the same sequence number: if a
  // caller abandons a buffered-but-unacknowledged record (retry budget
  // exhausted) and later reuses its sequence for a DIFFERENT sale, the
  // abandoned bytes are already in the write buffer and cannot be
  // recalled, so accepting the new entry would silently diverge journal
  // and ledger. Append detects the payload mismatch, poisons the
  // journal, and fails with kFailedPrecondition instead. A short write
  // mid-record likewise poisons the journal — the in-process buffer may
  // hold a torn record — so further appends fail with
  // kFailedPrecondition (non-retryable) until the file is recovered.
  // `trace` (optional) nests the append span under the committing
  // request, annotated "retry-reflush" / "poisoned" as applicable.
  Status Append(const LedgerEntry& entry,
                const telemetry::TraceContext* trace = nullptr);

  // Flushes user-space buffers and, under kEveryRecord, fsyncs.
  Status Flush();

  // Flushes and closes the file; further appends fail. Idempotent.
  Status Close();

  // Retires this handle for out-of-band recovery: best-effort flush of
  // whatever is buffered (committed records AND, possibly, a torn tail
  // — the recovery ladder truncates torn tails, so landing them on disk
  // is safe), then closes and permanently poisons the handle so a later
  // destructor cannot flush stale bytes over the repaired file. Unlike
  // Close, flush errors are swallowed: on a genuinely full disk the
  // buffered tail is already lost, and recovery replays what reached
  // the file. Must be called BEFORE recovery re-opens the path.
  // Idempotent.
  void Discard();

  // Rotates this journal after a checkpoint: rewrites the live file so
  // it holds only records with sequence >= `new_base_sequence` under a
  // J2 segment header, renaming the pre-rotation file to `path + ".prev"`
  // (one retained predecessor segment — the fallback rung's tail) before
  // atomically installing the filtered segment. The journal stays open
  // for appending throughout; a failed rotation leaves the original file
  // intact and appendable. Fault point: `journal.rotate`.
  Status Rotate(int64_t new_base_sequence);

  const std::string& path() const { return path_; }

  // First sequence this segment can hold (0 for an unrotated J1 file).
  int64_t base_sequence() const { return base_sequence_; }

  // Current size of the live segment in bytes (header + appended
  // records, including any not-yet-flushed tail) — the checkpointer's
  // bytes-cadence input.
  int64_t live_bytes() const;

  // How a replay ended.
  enum class TailState {
    kClean,    // File ends exactly on a record boundary.
    kTorn,     // Trailing partial record (crash mid-append).
    kCorrupt,  // Full-length record with a CRC/encoding mismatch.
  };

  struct RecoveryReport {
    int64_t recovered_records = 0;
    int64_t valid_bytes = 0;    // Header + longest valid record prefix.
    int64_t dropped_bytes = 0;  // Bytes past the valid prefix.
    int64_t base_sequence = 0;  // From the segment header (0 for J1).
    TailState tail = TailState::kClean;
    std::string detail;         // Human-readable tail diagnosis.
  };

  struct ReplayOptions {
    // Fail with a precise kDataLoss-style Status (kInternal) on a
    // CRC-corrupt record instead of returning the valid prefix.
    bool strict = false;
    // Physically truncate a torn tail so the file is append-clean again.
    // Corrupt (CRC-mismatch) tails are never auto-truncated — they are
    // evidence of bit rot, not of a crash — only reported.
    bool truncate_torn_tail = true;
  };

  // Replays `path`, returning the longest valid prefix of records (never
  // crashes on arbitrary bytes). `report`, when non-null, receives the
  // tail diagnosis either way. The two-argument overload uses the
  // default ReplayOptions (lenient, truncating torn tails). Fault point:
  // `journal.replay`.
  static StatusOr<std::vector<LedgerEntry>> Replay(const std::string& path,
                                                   RecoveryReport* report,
                                                   ReplayOptions options);
  static StatusOr<std::vector<LedgerEntry>> Replay(
      const std::string& path, RecoveryReport* report = nullptr);

  // CRC-32 (IEEE 802.3, reflected) of `size` bytes — the record checksum.
  static uint32_t Crc32(const void* data, size_t size);

  // Serializes one entry to the record payload format (exposed for
  // tests constructing hand-corrupted journals).
  static std::string EncodePayload(const LedgerEntry& entry);

  // Inverse of EncodePayload (the snapshot's LEDG section shares the
  // record codec).
  static StatusOr<LedgerEntry> DecodePayload(const std::string& payload);

 private:
  Journal(std::string path, Options options, std::FILE* file)
      : path_(std::move(path)),
        options_(options),
        file_(file),
        mu_(std::make_unique<prof::ProfiledMutex>("journal")) {}

  // Flush body without taking mu_ (Append and Close call it while
  // already holding the lock).
  Status FlushLocked();

  std::string path_;
  Options options_;
  std::FILE* file_ = nullptr;
  int64_t base_sequence_ = 0;
  // Size of the live segment (header + records, buffered included),
  // maintained in-memory so the checkpointer's cadence check never
  // stats the file. Atomic so live_bytes() needs no lock.
  std::atomic<int64_t> live_bytes_{0};
  // Retry bookkeeping: identity (sequence + payload length/CRC) of the
  // record whose bytes are buffered but not yet acknowledged (flush
  // failed), and the poison flag for short writes / abandoned records.
  int64_t buffered_sequence_ = -1;
  uint32_t buffered_payload_size_ = 0;
  uint32_t buffered_payload_crc_ = 0;
  bool poisoned_ = false;
  // Serializes Append/Flush/Close and feeds mutex_*{mutex="journal"} —
  // fsync-policy stalls under the lock are visible in the contention
  // profile. unique_ptr keeps Journal movable (same pattern as the
  // broker's build_mu_); null only in a moved-from shell.
  std::unique_ptr<prof::ProfiledMutex> mu_;
};

}  // namespace nimbus::market

#endif  // NIMBUS_MARKET_JOURNAL_H_
