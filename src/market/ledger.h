#ifndef NIMBUS_MARKET_LEDGER_H_
#define NIMBUS_MARKET_LEDGER_H_

#include <map>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "ml/model.h"

namespace nimbus::market {

// One completed transaction as recorded by the marketplace.
struct LedgerEntry {
  int64_t sequence = 0;  // Monotone id assigned by the ledger.
  std::string buyer_id;
  ml::ModelKind model = ml::ModelKind::kLinearRegression;
  double inverse_ncp = 0.0;
  double price = 0.0;
  double expected_error = 0.0;
};

// Append-only transaction log with simple reporting queries. The ledger
// is the seller's audit trail: it backs revenue accounting, per-model
// break-downs, and feeds the CollusionMonitor with purchase histories.
class Ledger {
 public:
  Ledger() = default;

  // Appends one transaction; assigns and returns its sequence number.
  // buyer_id must be non-empty, inverse_ncp > 0 and price >= 0.
  StatusOr<int64_t> Record(const std::string& buyer_id, ml::ModelKind model,
                           double inverse_ncp, double price,
                           double expected_error);

  int64_t size() const { return static_cast<int64_t>(entries_.size()); }
  const std::vector<LedgerEntry>& entries() const { return entries_; }

  // Number of recorded sales (same as size(); named for audit reports).
  int64_t SaleCount() const { return size(); }

  // Sale count per supported price point x = 1/δ, ascending in x.
  std::map<double, int64_t> SalesPerPricePoint() const;

  // Sum of all prices.
  double TotalRevenue() const;

  // Revenue restricted to one model kind.
  double RevenueForModel(ml::ModelKind model) const;

  // Total spend per buyer, descending; ties broken by buyer id.
  std::vector<std::pair<std::string, double>> TopBuyers(int limit) const;

  // All entries of one buyer, in purchase order.
  std::vector<LedgerEntry> EntriesForBuyer(const std::string& buyer_id) const;

  // Serializes the ledger as CSV:
  //   sequence,buyer,model,inverse_ncp,price,expected_error
  std::string ToCsv() const;

 private:
  std::vector<LedgerEntry> entries_;
  std::map<std::string, double> spend_by_buyer_;
};

}  // namespace nimbus::market

#endif  // NIMBUS_MARKET_LEDGER_H_
