#ifndef NIMBUS_MARKET_LEDGER_H_
#define NIMBUS_MARKET_LEDGER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "common/telemetry.h"
#include "ml/model.h"

namespace nimbus::market {

class Journal;  // market/journal.h

// One completed transaction as recorded by the marketplace.
struct LedgerEntry {
  int64_t sequence = 0;  // Monotone id assigned by the ledger.
  std::string buyer_id;
  ml::ModelKind model = ml::ModelKind::kLinearRegression;
  double inverse_ncp = 0.0;
  double price = 0.0;
  double expected_error = 0.0;
};

// Append-only transaction log with simple reporting queries. The ledger
// is the seller's audit trail: it backs revenue accounting, per-model
// break-downs, and feeds the CollusionMonitor with purchase histories.
//
// Reporting queries (TotalRevenue, RevenueForModel, SalesPerPricePoint,
// TopBuyers) are served from aggregates accumulated at commit time in
// commit order — never by re-walking the entry log — so they cost O(1)
// in history AND stay bit-identical across a snapshot restore (the
// snapshot stores the accumulated doubles verbatim; floating-point
// addition order is preserved by construction).
//
// A ledger restored from a checkpoint may start UNHYDRATED: aggregates
// and sequence counters are live, but the entry rows covered by the
// snapshot are represented by a loader instead of being decoded up
// front. That is what makes recovery O(delta): the timed restore path
// touches only the post-snapshot journal tail. Row-level audit queries
// (entries(), ToCsv, EntriesForBuyer) require hydration;
// Marketplace::RestoreFromCheckpoint hydrates eagerly by default and
// defers only when explicitly asked.
class Ledger {
 public:
  Ledger();
  ~Ledger();
  Ledger(Ledger&&) noexcept;
  Ledger& operator=(Ledger&&) noexcept;
  Ledger(const Ledger&) = delete;
  Ledger& operator=(const Ledger&) = delete;

  // Appends one transaction; assigns and returns its sequence number.
  // buyer_id must be non-empty, inverse_ncp > 0 and price >= 0 (both
  // finite). With a journal attached the entry is made durable first:
  // a failed append leaves the in-memory ledger untouched and surfaces
  // the journal's Status. `trace` (optional) nests the durable append
  // under the committing request's span tree.
  StatusOr<int64_t> Record(const std::string& buyer_id, ml::ModelKind model,
                           double inverse_ncp, double price,
                           double expected_error,
                           const telemetry::TraceContext* trace = nullptr);

  // ----- Durability ------------------------------------------------------
  // Attaches a write-ahead journal (market/journal.h); every subsequent
  // Record appends there before committing in memory. The journal must
  // correspond to this ledger's current state — freshly opened for an
  // empty ledger, or the recovered journal after Recover().
  Status AttachJournal(std::unique_ptr<Journal> journal);
  bool journaling() const { return journal_ != nullptr; }
  // Detaches and returns the journal (e.g. to Close it explicitly).
  std::unique_ptr<Journal> DetachJournal();
  // The attached journal (nullptr when journaling is off) — the
  // checkpointer rotates it after a successful snapshot.
  Journal* journal() { return journal_.get(); }
  const Journal* journal() const { return journal_.get(); }

  // Flushes the attached journal's buffers (fsync under kEveryRecord);
  // OK when no journal is attached. The serving layer calls this as the
  // last step of a graceful drain.
  Status FlushJournal();

  // Rebuilds a ledger from a journal file: replays the longest valid
  // record prefix (truncating a torn tail so the file is append-clean),
  // then revalidates every entry and the sequence numbering. The
  // recovered ledger reproduces TotalRevenue/SalesPerPricePoint
  // bit-identically. Counted in `journal_recovered_records`. The
  // returned ledger has no journal attached; call AttachJournal (or use
  // Marketplace::RestoreFromJournal) to resume journaling.
  static StatusOr<Ledger> Recover(const std::string& path);

  // Rebuilds a ledger from already-replayed entries (sequence numbers
  // must be 0..n-1 in order; fields must satisfy Record's invariants).
  static StatusOr<Ledger> FromEntries(const std::vector<LedgerEntry>& entries);

  // ----- Checkpoint restore ----------------------------------------------
  // Loads the entry rows [0, entries_base) of a hydration-deferred
  // ledger; the ledger owns no copy until then (see EntryLoader below).
  using EntryLoader = std::function<StatusOr<std::vector<LedgerEntry>>()>;

  // Rebuilds a ledger from snapshot aggregates without decoding the
  // covered entry rows: `count` entries are accounted for, queries serve
  // from the given accumulators, and `loader` (required when count > 0)
  // supplies rows [0, count) on Hydrate(). Mirrors the audit telemetry
  // in bulk so /metrics matches the pre-crash process. Aggregate doubles
  // are installed verbatim — bit-identical restore is the caller's
  // contract, not a recomputation.
  static StatusOr<Ledger> FromRecoveredState(
      int64_t count, double total_revenue,
      std::map<std::string, double> spend_by_buyer,
      std::map<double, int64_t> sales_per_price_point,
      std::map<ml::ModelKind, double> revenue_by_model,
      std::map<ml::ModelKind, int64_t> sales_by_model, EntryLoader loader);

  // Commits one journal-tail entry during recovery: validates fields and
  // that `entry.sequence` is exactly the next sequence, then applies it
  // through the normal commit path (aggregates + telemetry).
  Status ApplyRecovered(const LedgerEntry& entry);

  // Whether every entry row is resident. Always true except after
  // FromRecoveredState with a deferred loader.
  bool hydrated() const { return entries_base_ == 0; }

  // Loads the snapshot-covered rows via the deferred loader, verifying
  // count and sequence density. Idempotent; kFailedPrecondition-free on
  // an already-hydrated ledger.
  Status Hydrate();

  int64_t size() const { return next_sequence_; }
  // Full entry log. The ledger must be hydrated — audit row access on a
  // deferred restore without Hydrate() is a programming error and
  // crashes with a diagnostic rather than returning partial history.
  const std::vector<LedgerEntry>& entries() const;

  // Number of recorded sales (same as size(); named for audit reports).
  int64_t SaleCount() const { return size(); }

  // Sale count per supported price point x = 1/δ, ascending in x.
  std::map<double, int64_t> SalesPerPricePoint() const;

  // Sum of all prices.
  double TotalRevenue() const;

  // Revenue restricted to one model kind.
  double RevenueForModel(ml::ModelKind model) const;

  // Total spend per buyer, descending; ties broken by buyer id.
  std::vector<std::pair<std::string, double>> TopBuyers(int limit) const;

  // All entries of one buyer, in purchase order.
  std::vector<LedgerEntry> EntriesForBuyer(const std::string& buyer_id) const;

  // Serializes the ledger as RFC-4180 CSV:
  //   sequence,buyer,model,inverse_ncp,price,expected_error
  // Buyer ids containing commas, quotes, CR or LF are quoted (embedded
  // quotes doubled) so hostile ids cannot forge audit rows.
  std::string ToCsv() const;

  // Parses a ToCsv export back into a ledger (round-trip audit import).
  static StatusOr<Ledger> FromCsv(const std::string& text);

 private:
  friend class Marketplace;  // CaptureSnapshotState reads the aggregates.

  // Validates Record's field invariants.
  static Status ValidateFields(const std::string& buyer_id, double inverse_ncp,
                               double price, double expected_error);
  // Appends a validated entry and mirrors the audit telemetry.
  void Commit(const LedgerEntry& entry);

  // Entry rows from sequence `entries_base_` on. 0 except on a
  // hydration-deferred restore, where rows [0, entries_base_) live
  // behind `base_loader_` until Hydrate().
  std::vector<LedgerEntry> entries_;
  int64_t entries_base_ = 0;
  EntryLoader base_loader_;

  // Next sequence to assign == total committed rows (resident or not).
  int64_t next_sequence_ = 0;

  // Reporting aggregates, accumulated in commit order (see class
  // comment for the bit-identity argument).
  double total_revenue_ = 0.0;
  std::map<std::string, double> spend_by_buyer_;
  std::map<double, int64_t> sales_per_price_point_;
  std::map<ml::ModelKind, double> revenue_by_model_;
  std::map<ml::ModelKind, int64_t> sales_by_model_;

  std::unique_ptr<Journal> journal_;
};

}  // namespace nimbus::market

#endif  // NIMBUS_MARKET_LEDGER_H_
