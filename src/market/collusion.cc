#include "market/collusion.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace nimbus::market {

CollusionMonitor::CollusionMonitor(
    std::shared_ptr<const pricing::PricingFunction> pricing)
    : pricing_(std::move(pricing)) {
  NIMBUS_CHECK(pricing_ != nullptr);
}

void CollusionMonitor::SetPricingFunction(
    std::shared_ptr<const pricing::PricingFunction> pricing) {
  NIMBUS_CHECK(pricing != nullptr);
  pricing_ = std::move(pricing);
}

Status CollusionMonitor::RecordPurchase(const std::string& buyer_id,
                                        double inverse_ncp,
                                        double price_paid) {
  if (buyer_id.empty()) {
    return InvalidArgumentError("buyer id must be non-empty");
  }
  if (!(inverse_ncp > 0.0)) {
    return InvalidArgumentError("inverse NCP must be positive");
  }
  if (price_paid < 0.0) {
    return InvalidArgumentError("price must be non-negative");
  }
  BuyerHistory& history = history_[buyer_id];
  ++history.purchases;
  history.combined_inverse_ncp += inverse_ncp;
  history.total_paid += price_paid;
  return OkStatus();
}

Status CollusionMonitor::RestoreHistory(const std::string& buyer_id,
                                        const BuyerHistory& history) {
  if (buyer_id.empty()) {
    return InvalidArgumentError("buyer id must be non-empty");
  }
  if (history.purchases < 0 || !(history.combined_inverse_ncp >= 0.0) ||
      history.total_paid < 0.0) {
    return InvalidArgumentError("restored history for '" + buyer_id +
                                "' has negative accumulators");
  }
  if (history_.count(buyer_id) > 0) {
    return FailedPreconditionError(
        "monitor already tracks buyer '" + buyer_id +
        "' (restore requires a fresh monitor)");
  }
  history_.emplace(buyer_id, history);
  return OkStatus();
}

StatusOr<CollusionMonitor::Assessment> CollusionMonitor::Assess(
    const std::string& buyer_id, double tol) const {
  const auto it = history_.find(buyer_id);
  if (it == history_.end()) {
    return NotFoundError("unknown buyer '" + buyer_id + "'");
  }
  const BuyerHistory& history = it->second;
  Assessment assessment;
  assessment.purchases = history.purchases;
  assessment.combined_inverse_ncp = history.combined_inverse_ncp;
  assessment.total_paid = history.total_paid;
  assessment.combined_list_price =
      pricing_->PriceAtInverseNcp(history.combined_inverse_ncp);
  assessment.suspicious =
      history.purchases >= 2 &&
      assessment.total_paid <
          assessment.combined_list_price -
              tol * std::max(1.0, assessment.combined_list_price);
  return assessment;
}

std::vector<std::string> CollusionMonitor::SuspiciousBuyers(double tol) const {
  std::vector<std::string> out;
  for (const auto& [buyer_id, history] : history_) {
    (void)history;
    StatusOr<Assessment> assessment = Assess(buyer_id, tol);
    if (assessment.ok() && assessment->suspicious) {
      out.push_back(buyer_id);
    }
  }
  return out;
}

}  // namespace nimbus::market
