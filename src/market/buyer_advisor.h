#ifndef NIMBUS_MARKET_BUYER_ADVISOR_H_
#define NIMBUS_MARKET_BUYER_ADVISOR_H_

#include <string>

#include "common/statusor.h"
#include "market/broker.h"

namespace nimbus::market {

// Buyer-side decision support: given the broker's price-error menu and
// the buyer's own economics — how much one unit of expected-error
// reduction is worth to them — recommend the surplus-maximizing version
// (or "buy nothing" when no version pays for itself). This is the
// missing fourth interaction of §3.2: instead of the buyer naming a
// point/budget, they name their value model and the advisor picks.

struct PurchaseRecommendation {
  // Whether any version yields positive surplus at all.
  bool worthwhile = false;
  double inverse_ncp = 0.0;
  double expected_error = 0.0;
  double price = 0.0;
  // value_per_error_reduction * (worst_error − expected_error) − price.
  double surplus = 0.0;
};

// Scans the broker's error curve for `report_loss_name` and maximizes
// the buyer's surplus. The buyer values error reduction linearly at
// `value_per_error_reduction` (> 0) relative to the noisiest offered
// version; this matches the value-curve abstraction of Figure 2(a).
// Does not execute a purchase.
StatusOr<PurchaseRecommendation> RecommendPurchase(
    Broker& broker, const std::string& report_loss_name,
    double value_per_error_reduction);

}  // namespace nimbus::market

#endif  // NIMBUS_MARKET_BUYER_ADVISOR_H_
