#ifndef NIMBUS_MARKET_CHECKPOINTER_H_
#define NIMBUS_MARKET_CHECKPOINTER_H_

#include <cstdint>
#include <string>

#include "common/statusor.h"
#include "market/journal.h"
#include "market/snapshot.h"

namespace nimbus::market {

// When the marketplace takes a checkpoint. A zero cadence disables that
// trigger; with both cadences zero, checkpoints happen only on demand
// (CheckpointNow / checkpoint-on-drain).
struct CheckpointPolicy {
  // Snapshot after this many new ledger records since the last
  // checkpoint.
  int64_t every_records = 0;
  // Snapshot once the live journal segment reaches this many bytes.
  int64_t every_journal_bytes = 0;
  // Snapshot generations kept on disk. Minimum 2: the newest rung plus
  // the fallback rung the recovery ladder needs when the newest is torn.
  int retain_snapshots = 2;
};

// Drives the snapshot + journal-compaction cycle for one marketplace:
// generation numbering, cadence checks, the commit sequence (snapshot ->
// manifest -> journal rotation -> retention pruning), and the
// `snapshot_*` telemetry. Pure policy object — it holds no marketplace
// pointer (the marketplace is moved by value in benches), so the caller
// passes the captured State and the journal in.
//
// The retention/rotation invariant: after committing generation G at
// sequence S_G, the live journal is rotated to base S_{G-1} (the
// PREVIOUS generation's sequence, not its own). One live segment thus
// always covers the tails of both ladder rungs — [S_G, now) for G and
// [S_{G-1}, now) for G-1 — and the `.prev` segment left by the rename
// only matters for the crash window inside Rotate itself.
class Checkpointer {
 public:
  Checkpointer(std::string journal_path, CheckpointPolicy policy);

  // Resumes generation numbering from the on-disk manifest (falling
  // back to the snapshot directory scan), so a restarted process
  // continues the sequence instead of overwriting generation 1.
  Status Init();

  // True when the policy calls for a checkpoint given the ledger's
  // record count and the live journal segment size.
  bool Due(int64_t ledger_records, int64_t journal_live_bytes) const;

  // Commits one checkpoint: stamps the next generation into `state`,
  // writes the snapshot atomically, updates the manifest, rotates
  // `journal` (when non-null) down to the previous generation's
  // sequence, and prunes generations beyond the retention count. When
  // `state.sequence` equals the last committed checkpoint's sequence the
  // call is a no-op returning the existing generation (a drain right
  // after a cadence checkpoint should not burn a generation). Returns
  // the committed generation. A failed snapshot write leaves the
  // previous generation authoritative; a failed rotation or manifest
  // update degrades to a longer (but correct) replay and is reported in
  // stats and telemetry, not as a hard error.
  StatusOr<int64_t> Commit(snapshot::State state, Journal* journal);

  struct Stats {
    int64_t checkpoints = 0;        // Committed snapshots.
    int64_t failures = 0;           // Failed snapshot writes.
    int64_t rotation_failures = 0;  // Snapshot ok, journal rotation not.
    int64_t last_generation = 0;
    int64_t last_sequence = 0;  // Sequence covered by last_generation.
    int64_t prev_sequence = 0;  // ... by the generation before it.
  };
  const Stats& stats() const { return stats_; }
  const CheckpointPolicy& policy() const { return policy_; }
  const std::string& journal_path() const { return journal_path_; }

 private:
  std::string journal_path_;
  CheckpointPolicy policy_;
  Stats stats_;
};

}  // namespace nimbus::market

#endif  // NIMBUS_MARKET_CHECKPOINTER_H_
