#ifndef NIMBUS_MARKET_CATALOG_H_
#define NIMBUS_MARKET_CATALOG_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/statusor.h"
#include "market/shard.h"

namespace nimbus::market {

struct CatalogOptions {
  // Root directory; each shard's durable state lives under
  // `<root_dir>/shards/<product-id>/`.
  std::string root_dir;
  // Applied to every shard (per-shard overrides via AddProduct).
  ShardOptions shard_defaults;
  // Virtual nodes per shard on the consistent-hash ring. More points
  // smooth the key distribution; the assignment of a key is stable
  // under shard additions except for keys whose arc moved.
  int ring_replicas = 32;
  // Cadence of the background re-recovery loop.
  double recovery_interval_seconds = 0.05;
  // Exponential backoff between recovery attempts for the same shard:
  // base * 2^failures, capped.
  double recovery_backoff_base_seconds = 0.05;
  double recovery_backoff_cap_seconds = 2.0;
};

// The multi-product catalog: a vector of bulkheaded Shards plus
// routing. A product id routes to its own shard when it names one
// (the common case — every product IS a shard) and otherwise falls to
// the consistent-hash ring, so arbitrary routing keys (replicated
// offerings, load-spreading benches) get a stable shard assignment.
//
// The background recovery loop scans for quarantined shards and walks
// each through validate → RestoreFromCheckpoint ladder → re-admit with
// per-shard exponential backoff, without stopping the world: the
// catalog stays fully readable and every other shard keeps serving
// while a recovery runs.
class Catalog {
 public:
  explicit Catalog(CatalogOptions options);
  ~Catalog();  // Stops the recovery loop; shards drain with the owner.

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // Registers and opens one product shard under
  // `<root_dir>/shards/<product_id>/` using the catalog's default shard
  // options. Call before Start()/routing; not thread-safe with Route.
  Status AddProduct(const std::string& product_id,
                    MarketplaceFactory factory);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  Shard* shard(int index) { return shards_[index].get(); }
  const std::vector<std::unique_ptr<Shard>>& shards() const {
    return shards_;
  }

  // Exact product match first, then the consistent-hash ring; nullptr
  // only when the catalog is empty.
  Shard* Route(const std::string& key);

  // Exact-match lookup (nullptr when `product_id` names no shard).
  Shard* Find(const std::string& product_id);

  // Background re-recovery loop. Start is idempotent; Stop joins the
  // thread and is called by the destructor.
  void StartRecoveryLoop();
  void StopRecoveryLoop();
  bool recovery_loop_running() const;

  // One synchronous recovery pass over every quarantined shard whose
  // backoff window has elapsed (`force` ignores backoff). Returns the
  // number of shards re-admitted. The loop calls this; tests and
  // drills call it directly for deterministic orchestration.
  int RecoverQuarantined(bool force = false);

  // Cross-shard rollup for telemetry and the /shardz admin view.
  struct Rollup {
    double total_revenue = 0.0;
    int64_t total_sales = 0;
    int serving = 0;
    int degraded = 0;
    int recovering = 0;
    int quarantined = 0;
  };
  Rollup GetRollup() const;

 private:
  struct RingPoint {
    uint64_t hash = 0;
    int shard_index = 0;
  };

  void RecoveryLoop();

  const CatalogOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unordered_map<std::string, int> by_product_;
  std::vector<RingPoint> ring_;  // Sorted by hash.

  // Per-shard recovery backoff state (indexed like shards_).
  struct BackoffState {
    int failures = 0;
    std::chrono::steady_clock::time_point next_attempt{};
  };
  std::vector<BackoffState> backoff_;

  mutable std::mutex loop_mu_;
  std::condition_variable loop_cv_;
  bool loop_stop_ = false;
  bool loop_running_ = false;
  std::thread loop_;
};

}  // namespace nimbus::market

#endif  // NIMBUS_MARKET_CATALOG_H_
