#ifndef NIMBUS_MARKET_SNAPSHOT_H_
#define NIMBUS_MARKET_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "market/ledger.h"
#include "ml/model.h"

namespace nimbus::market::snapshot {

// Crash-consistent snapshot format for the marketplace's transactional
// state — the checkpoint half of the snapshot + journal-tail recovery
// scheme (market/checkpointer.h drives when snapshots are taken).
//
// A snapshot file is the 8-byte magic "NIMBUSS1" followed by sections:
//
//   u32 tag | u32 flags | u64 payload_len | u32 crc32(payload) | payload
//
// in fixed order META, AGGR, COLL, BRKR, LEDG, FOOT. The FOOT section is
// a table of (tag, offset, len, crc) for every preceding section, so a
// reader can structurally validate the whole file — including the large
// LEDG entry log — by walking headers and cross-checking the footer
// without touching the LEDG payload. That makes validation (and a
// deferred-hydration restore) O(sections), not O(history): recovery time
// depends only on the journal tail, never on total sales ever recorded.
// Any truncation, bit flip in a section header, or CRC mismatch on a
// loaded payload makes the snapshot invalid as a whole; readers then
// fall back to the previous generation (see Marketplace::
// RestoreFromCheckpoint's recovery ladder).
//
// Files are written via temp file + fsync + atomic rename, so a crash
// mid-checkpoint leaves at worst a torn `.tmp` that no reader ever
// considers. Generations are advertised by a small text manifest
// ("NIMBUSM1", CRC-trailered, also written atomically); when the
// manifest is stale or lost, ListGenerations falls back to a directory
// scan of `<journal>.snap.NNNNNN` files.

// Per-buyer collusion-monitor history (mirror of CollusionMonitor's
// internal accumulator, restored bit-identically).
struct BuyerHistoryState {
  int purchases = 0;
  double combined_inverse_ncp = 0.0;
  double total_paid = 0.0;
};

// One offering's monitor state: buyer id -> history.
struct MonitorState {
  std::map<std::string, BuyerHistoryState> buyers;
};

// One offering's broker sale counters.
struct BrokerState {
  int64_t sales_count = 0;
  double revenue_collected = 0.0;
};

// Everything a marketplace needs to resume revenue accounting, audit
// queries, and collusion assessments without replaying full history.
// All doubles are serialized as raw 8-byte images so a restore is
// bit-identical, matching the journal's determinism contract.
struct State {
  int64_t generation = 0;  // Assigned by the checkpointer.
  int64_t sequence = 0;    // Entries covered: ledger rows [0, sequence).
  // Ledger aggregates (accumulated in commit order, so restored query
  // results match the uncrashed process bit for bit).
  double total_revenue = 0.0;
  std::map<std::string, double> spend_by_buyer;
  std::map<double, int64_t> sales_per_price_point;
  std::map<ml::ModelKind, double> revenue_by_model;
  std::map<ml::ModelKind, int64_t> sales_by_model;
  // Per-offering collusion-monitor histories and broker counters.
  std::map<ml::ModelKind, MonitorState> monitors;
  std::map<ml::ModelKind, BrokerState> brokers;
  // Full entry log (LEDG section). Loaded only under
  // ReadOptions::load_entries; `entries_loaded` distinguishes a shallow
  // read from a snapshot that genuinely covers zero entries.
  std::vector<LedgerEntry> entries;
  bool entries_loaded = false;
};

struct ReadOptions {
  // Load and CRC-verify the LEDG payload (full entry hydration). Off by
  // default: the shallow read still structurally validates LEDG via the
  // footer, which is what keeps restore O(delta).
  bool load_entries = false;
};

// Reads and validates a snapshot. Every failure mode — missing file,
// truncation at any byte offset, flipped CRC or header field, footer
// mismatch — returns a non-OK Status; a Status is never OK for a file
// that could mis-restore. Fault points: `io.read`.
StatusOr<State> Read(const std::string& path, ReadOptions options = {});

// Loads just the entry log of an already-validated snapshot (deferred
// hydration). CRC-verifies the LEDG payload before decoding.
StatusOr<std::vector<LedgerEntry>> ReadEntries(const std::string& path);

// Serializes `state` and commits it atomically: write to `path + ".tmp"`,
// fsync, rename over `path`, fsync the parent directory. Returns the
// committed image size in bytes. Fault points: `snapshot.write`
// (emulates a crash mid-write by leaving a half-written temp file),
// `snapshot.fsync`, `snapshot.rename`.
StatusOr<int64_t> Write(const std::string& path, const State& state);

// ----- Generation manifest -------------------------------------------------

// Advertises the newest committed generation (and its predecessor, the
// fallback rung). Paths are derived from the journal path + generation,
// never stored, so snapshot directories stay relocatable.
struct Manifest {
  int64_t generation = 0;
  int64_t sequence = 0;
  int64_t prev_generation = 0;  // 0 = no previous generation.
  int64_t prev_sequence = 0;
};

// `<journal>.snap.NNNNNN` for generation N (N >= 1).
std::string SnapshotPath(const std::string& journal_path, int64_t generation);
// `<journal>.manifest`.
std::string ManifestPath(const std::string& journal_path);

Status WriteManifest(const std::string& journal_path, const Manifest& m);
// kNotFound when absent; kInternal on a corrupt/torn manifest (callers
// fall back to ListGenerations' directory scan either way).
StatusOr<Manifest> ReadManifest(const std::string& journal_path);

// Snapshot generations present on disk, newest first: the union of the
// manifest's generations and a directory scan (so a crash between the
// snapshot rename and the manifest update still surfaces the newer
// file). Never fails — unreadable directories yield an empty list.
std::vector<int64_t> ListGenerations(const std::string& journal_path);

}  // namespace nimbus::market::snapshot

#endif  // NIMBUS_MARKET_SNAPSHOT_H_
