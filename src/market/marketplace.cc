#include "market/marketplace.h"

#include <algorithm>
#include <utility>

#include "mechanism/noise_mechanism.h"

namespace nimbus::market {

Marketplace::Marketplace(data::TrainTestSplit split, Broker::Options options)
    : split_(std::move(split)), options_(options) {}

Status Marketplace::AddOffering(
    ml::ModelKind kind, double ridge_mu,
    std::shared_ptr<const pricing::PricingFunction> pricing) {
  if (pricing == nullptr) {
    return InvalidArgumentError("offering needs a pricing function");
  }
  if (brokers_.count(kind) > 0) {
    return InvalidArgumentError(
        "model '" + std::string(ml::ModelKindToString(kind)) +
        "' is already offered");
  }
  NIMBUS_ASSIGN_OR_RETURN(ml::ModelSpec spec,
                          ml::ModelSpec::Create(kind, ridge_mu));
  // Every broker gets its own copy of the split and a distinct seed so
  // sales across models draw independent noise.
  Broker::Options options = options_;
  options.seed += static_cast<uint64_t>(brokers_.size()) + 1;
  data::TrainTestSplit split_copy{split_.train, split_.test};
  NIMBUS_ASSIGN_OR_RETURN(
      Broker broker,
      Broker::Create(std::move(split_copy), std::move(spec),
                     std::make_unique<mechanism::GaussianMechanism>(),
                     options));
  broker.SetPricingFunction(pricing);
  // All offerings share one cache; per-offering seeds (and model names)
  // keep their curve keys disjoint.
  if (options.use_curve_cache) {
    if (curve_cache_ == nullptr) {
      curve_cache_ = std::make_shared<CurveCache>();
    }
    broker.AttachCurveCache(curve_cache_);
  }
  brokers_.emplace(kind, std::move(broker));
  pricing_.emplace(kind, pricing);
  monitors_.emplace(kind, CollusionMonitor(pricing));
  offering_order_.push_back(kind);
  return OkStatus();
}

std::vector<ml::ModelKind> Marketplace::Offerings() const {
  return offering_order_;
}

StatusOr<Broker*> Marketplace::BrokerFor(ml::ModelKind kind) {
  auto it = brokers_.find(kind);
  if (it == brokers_.end()) {
    return NotFoundError("model '" +
                         std::string(ml::ModelKindToString(kind)) +
                         "' is not offered");
  }
  return &it->second;
}

StatusOr<std::vector<Marketplace::CatalogRow>> Marketplace::Catalog() {
  std::vector<CatalogRow> rows;
  for (ml::ModelKind kind : offering_order_) {
    NIMBUS_ASSIGN_OR_RETURN(Broker * broker, BrokerFor(kind));
    const std::string loss_name =
        broker->model().report_losses().front()->name();
    NIMBUS_ASSIGN_OR_RETURN(std::shared_ptr<const pricing::ErrorCurve> curve,
                            broker->GetErrorCurve(loss_name));
    CatalogRow row;
    row.model = kind;
    row.report_loss = loss_name;
    row.worst_expected_error = curve->points().front().expected_error;
    row.best_expected_error = curve->points().back().expected_error;
    const pricing::PricingFunction& pricing = broker->pricing_function();
    row.min_price =
        pricing.PriceAtInverseNcp(broker->options().min_inverse_ncp);
    row.max_price =
        pricing.PriceAtInverseNcp(broker->options().max_inverse_ncp);
    rows.push_back(std::move(row));
  }
  return rows;
}

StatusOr<Broker::Purchase> Marketplace::Buy(
    const std::string& buyer_id, ml::ModelKind kind, double inverse_ncp,
    const std::string& report_loss_name) {
  if (buyer_id.empty()) {
    return InvalidArgumentError("buyer id must be non-empty");
  }
  NIMBUS_ASSIGN_OR_RETURN(Broker * broker, BrokerFor(kind));
  NIMBUS_ASSIGN_OR_RETURN(
      Broker::Purchase purchase,
      broker->BuyAtInverseNcp(inverse_ncp, report_loss_name));
  NIMBUS_RETURN_IF_ERROR(ledger_
                             .Record(buyer_id, kind, purchase.inverse_ncp,
                                     purchase.price, purchase.expected_error)
                             .status());
  NIMBUS_RETURN_IF_ERROR(monitors_.at(kind).RecordPurchase(
      buyer_id, purchase.inverse_ncp, purchase.price));
  return purchase;
}

StatusOr<Broker::Purchase> Marketplace::BuyWithPriceBudget(
    const std::string& buyer_id, ml::ModelKind kind, double price_budget,
    const std::string& report_loss_name) {
  if (buyer_id.empty()) {
    return InvalidArgumentError("buyer id must be non-empty");
  }
  NIMBUS_ASSIGN_OR_RETURN(Broker * broker, BrokerFor(kind));
  NIMBUS_ASSIGN_OR_RETURN(
      Broker::Purchase purchase,
      broker->BuyWithPriceBudget(price_budget, report_loss_name));
  NIMBUS_RETURN_IF_ERROR(ledger_
                             .Record(buyer_id, kind, purchase.inverse_ncp,
                                     purchase.price, purchase.expected_error)
                             .status());
  NIMBUS_RETURN_IF_ERROR(monitors_.at(kind).RecordPurchase(
      buyer_id, purchase.inverse_ncp, purchase.price));
  return purchase;
}

StatusOr<int64_t> Marketplace::RecordQuotedSale(
    const std::string& buyer_id, ml::ModelKind kind,
    const Broker::Purchase& purchase, const telemetry::TraceContext* trace) {
  if (buyer_id.empty()) {
    return InvalidArgumentError("buyer id must be non-empty");
  }
  auto it = brokers_.find(kind);
  if (it == brokers_.end()) {
    return NotFoundError("model '" +
                         std::string(ml::ModelKindToString(kind)) +
                         "' is not offered");
  }
  NIMBUS_ASSIGN_OR_RETURN(
      int64_t sequence,
      ledger_.Record(buyer_id, kind, purchase.inverse_ncp, purchase.price,
                     purchase.expected_error, trace));
  NIMBUS_RETURN_IF_ERROR(monitors_.at(kind).RecordPurchase(
      buyer_id, purchase.inverse_ncp, purchase.price));
  it->second.RecordSale(purchase);
  return sequence;
}

Status Marketplace::FlushJournal() { return ledger_.FlushJournal(); }

Status Marketplace::EnableJournal(const std::string& path,
                                  Journal::Options options) {
  NIMBUS_ASSIGN_OR_RETURN(Journal journal, Journal::Open(path, options));
  return ledger_.AttachJournal(std::make_unique<Journal>(std::move(journal)));
}

Status Marketplace::RestoreFromJournal(const std::string& path,
                                       Journal::Options options) {
  if (ledger_.size() != 0) {
    return FailedPreconditionError(
        "restore requires a fresh marketplace (ledger already has " +
        std::to_string(ledger_.size()) + " sales)");
  }
  NIMBUS_ASSIGN_OR_RETURN(Ledger recovered, Ledger::Recover(path));
  // Replay the audit trail into the per-offering monitors and broker
  // revenue counters so the restarted process reports the same totals
  // and collusion assessments as the one that crashed.
  for (const LedgerEntry& entry : recovered.entries()) {
    auto monitor = monitors_.find(entry.model);
    if (monitor == monitors_.end()) {
      return FailedPreconditionError(
          "journal records a sale of model '" +
          std::string(ml::ModelKindToString(entry.model)) +
          "' which is not offered by this marketplace");
    }
    NIMBUS_RETURN_IF_ERROR(monitor->second.RecordPurchase(
        entry.buyer_id, entry.inverse_ncp, entry.price));
    Broker::Purchase sale;
    sale.price = entry.price;
    sale.inverse_ncp = entry.inverse_ncp;
    sale.ncp = 1.0 / entry.inverse_ncp;
    sale.expected_error = entry.expected_error;
    brokers_.at(entry.model).RecordSale(sale);
  }
  ledger_ = std::move(recovered);
  // Re-attach for future appends: Recover already truncated any torn
  // tail, so new records extend the valid prefix.
  return EnableJournal(path, options);
}

StatusOr<const CollusionMonitor*> Marketplace::MonitorFor(
    ml::ModelKind kind) const {
  const auto it = monitors_.find(kind);
  if (it == monitors_.end()) {
    return NotFoundError("model '" +
                         std::string(ml::ModelKindToString(kind)) +
                         "' is not offered");
  }
  return &it->second;
}

std::vector<std::string> Marketplace::SuspiciousBuyers() const {
  std::vector<std::string> out;
  for (const auto& [kind, monitor] : monitors_) {
    (void)kind;
    const std::vector<std::string> flagged = monitor.SuspiciousBuyers();
    out.insert(out.end(), flagged.begin(), flagged.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace nimbus::market
