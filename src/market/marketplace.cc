#include "market/marketplace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/telemetry.h"
#include "mechanism/noise_mechanism.h"

namespace nimbus::market {
namespace {

telemetry::Counter& RecoveryRestoresCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("recovery_restores_total");
  return counter;
}

telemetry::Counter& RecoverySnapshotsRejectedCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter(
          "recovery_snapshots_rejected_total");
  return counter;
}

telemetry::Counter& RecoveryFullReplaysCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("recovery_full_replays_total");
  return counter;
}

telemetry::Counter& RecoveryTailRecordsCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("recovery_tail_records");
  return counter;
}

telemetry::Histogram& RecoveryLatency() {
  static telemetry::Histogram& histogram =
      telemetry::Registry::Global().GetHistogram("recovery_latency_us");
  return histogram;
}

bool FileExists(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return false;
  }
  std::fclose(file);
  return true;
}

// Clears the marketplace's "recovering" flag on every exit path.
struct RecoveringGuard {
  std::shared_ptr<std::atomic<bool>> flag;
  explicit RecoveringGuard(std::shared_ptr<std::atomic<bool>> f)
      : flag(std::move(f)) {
    flag->store(true, std::memory_order_release);
  }
  ~RecoveringGuard() { flag->store(false, std::memory_order_release); }
};

// A snapshot generation together with the journal tail past it, fully
// validated BEFORE any marketplace state mutates — the recovery ladder
// rejects a candidate and falls back a rung without side effects.
struct RestoreCandidate {
  snapshot::State state;                  // Shallow (aggregates only).
  std::vector<LedgerEntry> base_entries;  // Loaded iff options.hydrate.
  std::vector<LedgerEntry> tail;          // Dense from state.sequence.
};

Status CheckOffered(const std::map<ml::ModelKind, Broker>& brokers,
                    ml::ModelKind kind, const char* what) {
  if (brokers.count(kind) == 0) {
    return FailedPreconditionError(
        std::string(what) + " references model '" +
        std::string(ml::ModelKindToString(kind)) +
        "' which is not offered by this marketplace");
  }
  return OkStatus();
}

// Mirrors the invariants Ledger::ApplyRecovered and the monitor/broker
// restore hooks enforce, so every checkable failure mode surfaces while
// the candidate can still be rejected cleanly.
Status ValidateTailEntry(const LedgerEntry& entry, int64_t expected_sequence) {
  if (entry.sequence != expected_sequence) {
    return InternalError(
        "journal tail has a sequence gap: expected " +
        std::to_string(expected_sequence) + ", found " +
        std::to_string(entry.sequence));
  }
  if (entry.buyer_id.empty() || !std::isfinite(entry.inverse_ncp) ||
      entry.inverse_ncp <= 0.0 || !std::isfinite(entry.price) ||
      entry.price < 0.0 || !std::isfinite(entry.expected_error)) {
    return InternalError("journal tail entry " +
                         std::to_string(entry.sequence) +
                         " fails field validation");
  }
  return OkStatus();
}

// Collects the journal records with sequence >= `min_sequence`, merging
// the live segment with the `.prev` segment a rotation (or a crash
// inside one) may have left behind:
//   - live segment base <= min_sequence: the live segment alone covers
//     the tail (the steady state — rotation keeps the live base at the
//     PREVIOUS checkpoint's sequence).
//   - live base > min_sequence: the `.prev` segment must bridge
//     [min_sequence, live_base).
//   - live segment missing: a crash hit the window between Rotate's two
//     renames; `.prev` (the complete pre-rotation file) is authoritative.
// A torn live tail is truncated here (crash healing), so the later
// re-attach Open() finds an append-clean file. Density is NOT checked
// here — the caller validates the merged tail entry by entry.
StatusOr<std::vector<LedgerEntry>> CollectTailEntries(
    const std::string& journal_path, int64_t min_sequence) {
  const std::string prev_path = journal_path + ".prev";
  const bool live_exists = FileExists(journal_path);
  const bool prev_exists = FileExists(prev_path);
  std::vector<LedgerEntry> out;
  if (live_exists) {
    Journal::RecoveryReport live_report;
    NIMBUS_ASSIGN_OR_RETURN(std::vector<LedgerEntry> live,
                            Journal::Replay(journal_path, &live_report));
    if (live_report.base_sequence > min_sequence) {
      if (!prev_exists) {
        return InternalError(
            "live journal segment starts at sequence " +
            std::to_string(live_report.base_sequence) +
            " but the restore needs records from " +
            std::to_string(min_sequence) + " and no .prev segment exists");
      }
      Journal::ReplayOptions read_only;
      read_only.truncate_torn_tail = false;
      Journal::RecoveryReport prev_report;
      NIMBUS_ASSIGN_OR_RETURN(
          std::vector<LedgerEntry> prev,
          Journal::Replay(prev_path, &prev_report, read_only));
      if (prev_report.base_sequence > min_sequence) {
        return InternalError(
            ".prev journal segment starts at sequence " +
            std::to_string(prev_report.base_sequence) +
            " and cannot bridge back to " + std::to_string(min_sequence));
      }
      for (LedgerEntry& entry : prev) {
        if (entry.sequence >= min_sequence &&
            entry.sequence < live_report.base_sequence) {
          out.push_back(std::move(entry));
        }
      }
    }
    for (LedgerEntry& entry : live) {
      if (entry.sequence >= min_sequence) {
        out.push_back(std::move(entry));
      }
    }
    return out;
  }
  if (prev_exists) {
    Journal::ReplayOptions read_only;
    read_only.truncate_torn_tail = false;
    Journal::RecoveryReport prev_report;
    NIMBUS_ASSIGN_OR_RETURN(
        std::vector<LedgerEntry> prev,
        Journal::Replay(prev_path, &prev_report, read_only));
    if (prev_report.base_sequence > min_sequence) {
      return InternalError(
          "live journal segment is missing and the .prev segment starts "
          "at sequence " +
          std::to_string(prev_report.base_sequence) +
          ", past the needed " + std::to_string(min_sequence));
    }
    for (LedgerEntry& entry : prev) {
      if (entry.sequence >= min_sequence) {
        out.push_back(std::move(entry));
      }
    }
  }
  return out;  // Neither file: empty tail (caller decides if that's OK).
}

// Validates one snapshot generation end to end (structure, model kinds,
// accumulator sanity, journal-tail coverage and density) without
// touching marketplace state.
StatusOr<RestoreCandidate> BuildCandidate(
    const std::string& snapshot_file, const std::string& journal_path,
    bool hydrate, const std::map<ml::ModelKind, Broker>& brokers) {
  RestoreCandidate candidate;
  NIMBUS_ASSIGN_OR_RETURN(candidate.state, snapshot::Read(snapshot_file));
  for (const auto& [kind, monitor_state] : candidate.state.monitors) {
    NIMBUS_RETURN_IF_ERROR(CheckOffered(brokers, kind, "snapshot monitor"));
    for (const auto& [buyer, history] : monitor_state.buyers) {
      if (buyer.empty() || history.purchases < 0 ||
          !std::isfinite(history.combined_inverse_ncp) ||
          history.combined_inverse_ncp < 0.0 ||
          !std::isfinite(history.total_paid) || history.total_paid < 0.0) {
        return InternalError("snapshot monitor history for model '" +
                             std::string(ml::ModelKindToString(kind)) +
                             "' fails field validation");
      }
    }
  }
  for (const auto& [kind, broker_state] : candidate.state.brokers) {
    NIMBUS_RETURN_IF_ERROR(CheckOffered(brokers, kind, "snapshot broker"));
    if (broker_state.sales_count < 0 ||
        !std::isfinite(broker_state.revenue_collected) ||
        broker_state.revenue_collected < 0.0) {
      return InternalError("snapshot broker counters for model '" +
                           std::string(ml::ModelKindToString(kind)) +
                           "' fail field validation");
    }
  }
  for (const auto& [kind, revenue] : candidate.state.revenue_by_model) {
    (void)revenue;
    NIMBUS_RETURN_IF_ERROR(
        CheckOffered(brokers, kind, "snapshot revenue aggregate"));
  }
  for (const auto& [kind, sales] : candidate.state.sales_by_model) {
    (void)sales;
    NIMBUS_RETURN_IF_ERROR(
        CheckOffered(brokers, kind, "snapshot sales aggregate"));
  }
  NIMBUS_ASSIGN_OR_RETURN(
      candidate.tail,
      CollectTailEntries(journal_path, candidate.state.sequence));
  for (size_t i = 0; i < candidate.tail.size(); ++i) {
    const LedgerEntry& entry = candidate.tail[i];
    NIMBUS_RETURN_IF_ERROR(ValidateTailEntry(
        entry, candidate.state.sequence + static_cast<int64_t>(i)));
    NIMBUS_RETURN_IF_ERROR(CheckOffered(brokers, entry.model, "journal tail"));
  }
  if (hydrate && candidate.state.sequence > 0) {
    // Eager hydration: load + CRC-verify the entry log now, so a rotted
    // LEDG payload rejects this candidate instead of failing later.
    NIMBUS_ASSIGN_OR_RETURN(candidate.base_entries,
                            snapshot::ReadEntries(snapshot_file));
  }
  return candidate;
}

}  // namespace

Marketplace::Marketplace(data::TrainTestSplit split, Broker::Options options)
    : split_(std::move(split)), options_(options) {}

Status Marketplace::AddOffering(
    ml::ModelKind kind, double ridge_mu,
    std::shared_ptr<const pricing::PricingFunction> pricing) {
  if (pricing == nullptr) {
    return InvalidArgumentError("offering needs a pricing function");
  }
  if (brokers_.count(kind) > 0) {
    return InvalidArgumentError(
        "model '" + std::string(ml::ModelKindToString(kind)) +
        "' is already offered");
  }
  NIMBUS_ASSIGN_OR_RETURN(ml::ModelSpec spec,
                          ml::ModelSpec::Create(kind, ridge_mu));
  // Every broker gets its own copy of the split and a distinct seed so
  // sales across models draw independent noise.
  Broker::Options options = options_;
  options.seed += static_cast<uint64_t>(brokers_.size()) + 1;
  data::TrainTestSplit split_copy{split_.train, split_.test};
  NIMBUS_ASSIGN_OR_RETURN(
      Broker broker,
      Broker::Create(std::move(split_copy), std::move(spec),
                     std::make_unique<mechanism::GaussianMechanism>(),
                     options));
  broker.SetPricingFunction(pricing);
  // All offerings share one cache; per-offering seeds (and model names)
  // keep their curve keys disjoint.
  if (options.use_curve_cache) {
    if (curve_cache_ == nullptr) {
      curve_cache_ = std::make_shared<CurveCache>();
    }
    broker.AttachCurveCache(curve_cache_);
  }
  brokers_.emplace(kind, std::move(broker));
  pricing_.emplace(kind, pricing);
  monitors_.emplace(kind, CollusionMonitor(pricing));
  offering_order_.push_back(kind);
  return OkStatus();
}

std::vector<ml::ModelKind> Marketplace::Offerings() const {
  return offering_order_;
}

StatusOr<Broker*> Marketplace::BrokerFor(ml::ModelKind kind) {
  auto it = brokers_.find(kind);
  if (it == brokers_.end()) {
    return NotFoundError("model '" +
                         std::string(ml::ModelKindToString(kind)) +
                         "' is not offered");
  }
  return &it->second;
}

StatusOr<std::vector<Marketplace::CatalogRow>> Marketplace::Catalog() {
  std::vector<CatalogRow> rows;
  for (ml::ModelKind kind : offering_order_) {
    NIMBUS_ASSIGN_OR_RETURN(Broker * broker, BrokerFor(kind));
    const std::string loss_name =
        broker->model().report_losses().front()->name();
    NIMBUS_ASSIGN_OR_RETURN(std::shared_ptr<const pricing::ErrorCurve> curve,
                            broker->GetErrorCurve(loss_name));
    CatalogRow row;
    row.model = kind;
    row.report_loss = loss_name;
    row.worst_expected_error = curve->points().front().expected_error;
    row.best_expected_error = curve->points().back().expected_error;
    const pricing::PricingFunction& pricing = broker->pricing_function();
    row.min_price =
        pricing.PriceAtInverseNcp(broker->options().min_inverse_ncp);
    row.max_price =
        pricing.PriceAtInverseNcp(broker->options().max_inverse_ncp);
    rows.push_back(std::move(row));
  }
  return rows;
}

StatusOr<Broker::Purchase> Marketplace::Buy(
    const std::string& buyer_id, ml::ModelKind kind, double inverse_ncp,
    const std::string& report_loss_name) {
  if (buyer_id.empty()) {
    return InvalidArgumentError("buyer id must be non-empty");
  }
  NIMBUS_ASSIGN_OR_RETURN(Broker * broker, BrokerFor(kind));
  NIMBUS_ASSIGN_OR_RETURN(
      Broker::Purchase purchase,
      broker->BuyAtInverseNcp(inverse_ncp, report_loss_name));
  NIMBUS_RETURN_IF_ERROR(ledger_
                             .Record(buyer_id, kind, purchase.inverse_ncp,
                                     purchase.price, purchase.expected_error)
                             .status());
  NIMBUS_RETURN_IF_ERROR(monitors_.at(kind).RecordPurchase(
      buyer_id, purchase.inverse_ncp, purchase.price));
  NIMBUS_RETURN_IF_ERROR(MaybeCheckpoint());
  return purchase;
}

StatusOr<Broker::Purchase> Marketplace::BuyWithPriceBudget(
    const std::string& buyer_id, ml::ModelKind kind, double price_budget,
    const std::string& report_loss_name) {
  if (buyer_id.empty()) {
    return InvalidArgumentError("buyer id must be non-empty");
  }
  NIMBUS_ASSIGN_OR_RETURN(Broker * broker, BrokerFor(kind));
  NIMBUS_ASSIGN_OR_RETURN(
      Broker::Purchase purchase,
      broker->BuyWithPriceBudget(price_budget, report_loss_name));
  NIMBUS_RETURN_IF_ERROR(ledger_
                             .Record(buyer_id, kind, purchase.inverse_ncp,
                                     purchase.price, purchase.expected_error)
                             .status());
  NIMBUS_RETURN_IF_ERROR(monitors_.at(kind).RecordPurchase(
      buyer_id, purchase.inverse_ncp, purchase.price));
  NIMBUS_RETURN_IF_ERROR(MaybeCheckpoint());
  return purchase;
}

StatusOr<int64_t> Marketplace::RecordQuotedSale(
    const std::string& buyer_id, ml::ModelKind kind,
    const Broker::Purchase& purchase, const telemetry::TraceContext* trace) {
  if (buyer_id.empty()) {
    return InvalidArgumentError("buyer id must be non-empty");
  }
  auto it = brokers_.find(kind);
  if (it == brokers_.end()) {
    return NotFoundError("model '" +
                         std::string(ml::ModelKindToString(kind)) +
                         "' is not offered");
  }
  NIMBUS_ASSIGN_OR_RETURN(
      int64_t sequence,
      ledger_.Record(buyer_id, kind, purchase.inverse_ncp, purchase.price,
                     purchase.expected_error, trace));
  NIMBUS_RETURN_IF_ERROR(monitors_.at(kind).RecordPurchase(
      buyer_id, purchase.inverse_ncp, purchase.price));
  it->second.RecordSale(purchase);
  // Commit callers are serialized (service sequencer), so the cadence
  // check and the snapshot both observe a quiescent ledger.
  NIMBUS_RETURN_IF_ERROR(MaybeCheckpoint());
  return sequence;
}

Status Marketplace::FlushJournal() { return ledger_.FlushJournal(); }

void Marketplace::AbandonJournal() {
  // Discard in place and keep the poisoned handle attached: a detached
  // journal would leave the ledger journal-free, and a late commit on
  // this retired instance would then "succeed" purely in memory — an
  // acknowledged sale the recovered shard could never replay. With the
  // poisoned journal still attached, Ledger::Record fails typed
  // (kFailedPrecondition) and leaves memory untouched.
  Journal* journal = ledger_.journal();
  if (journal != nullptr) {
    journal->Discard();
  }
}

Status Marketplace::EnableJournal(const std::string& path,
                                  Journal::Options options) {
  NIMBUS_ASSIGN_OR_RETURN(Journal journal, Journal::Open(path, options));
  return ledger_.AttachJournal(std::make_unique<Journal>(std::move(journal)));
}

Status Marketplace::RestoreFromJournal(const std::string& path,
                                       Journal::Options options) {
  if (ledger_.size() != 0) {
    return FailedPreconditionError(
        "restore requires a fresh marketplace (ledger already has " +
        std::to_string(ledger_.size()) + " sales)");
  }
  RecoveringGuard recovering(recovering_);
  NIMBUS_ASSIGN_OR_RETURN(Ledger recovered, Ledger::Recover(path));
  // Replay the audit trail into the per-offering monitors and broker
  // revenue counters so the restarted process reports the same totals
  // and collusion assessments as the one that crashed.
  for (const LedgerEntry& entry : recovered.entries()) {
    auto monitor = monitors_.find(entry.model);
    if (monitor == monitors_.end()) {
      return FailedPreconditionError(
          "journal records a sale of model '" +
          std::string(ml::ModelKindToString(entry.model)) +
          "' which is not offered by this marketplace");
    }
    NIMBUS_RETURN_IF_ERROR(monitor->second.RecordPurchase(
        entry.buyer_id, entry.inverse_ncp, entry.price));
    Broker::Purchase sale;
    sale.price = entry.price;
    sale.inverse_ncp = entry.inverse_ncp;
    sale.ncp = 1.0 / entry.inverse_ncp;
    sale.expected_error = entry.expected_error;
    brokers_.at(entry.model).RecordSale(sale);
  }
  ledger_ = std::move(recovered);
  // Re-attach for future appends: Recover already truncated any torn
  // tail, so new records extend the valid prefix.
  return EnableJournal(path, options);
}

Status Marketplace::EnableCheckpoints(CheckpointPolicy policy) {
  if (!ledger_.journaling()) {
    return FailedPreconditionError(
        "checkpoints need a journal: call EnableJournal or "
        "RestoreFromCheckpoint first");
  }
  auto checkpointer =
      std::make_unique<Checkpointer>(ledger_.journal()->path(), policy);
  NIMBUS_RETURN_IF_ERROR(checkpointer->Init());
  checkpointer_ = std::move(checkpointer);
  return OkStatus();
}

StatusOr<Checkpointer::Stats> Marketplace::CheckpointStats() const {
  if (checkpointer_ == nullptr) {
    return FailedPreconditionError("checkpoints are not enabled");
  }
  return checkpointer_->stats();
}

StatusOr<snapshot::State> Marketplace::CaptureSnapshotState() {
  // A hydration-deferred ledger must load its covered rows before they
  // can be re-serialized into the next snapshot's LEDG section.
  NIMBUS_RETURN_IF_ERROR(ledger_.Hydrate());
  snapshot::State state;
  state.sequence = ledger_.size();
  state.total_revenue = ledger_.total_revenue_;
  state.spend_by_buyer = ledger_.spend_by_buyer_;
  state.sales_per_price_point = ledger_.sales_per_price_point_;
  state.revenue_by_model = ledger_.revenue_by_model_;
  state.sales_by_model = ledger_.sales_by_model_;
  for (const auto& [kind, monitor] : monitors_) {
    if (monitor.history().empty()) {
      continue;
    }
    snapshot::MonitorState& monitor_state = state.monitors[kind];
    for (const auto& [buyer, history] : monitor.history()) {
      snapshot::BuyerHistoryState& buyer_state = monitor_state.buyers[buyer];
      buyer_state.purchases = history.purchases;
      buyer_state.combined_inverse_ncp = history.combined_inverse_ncp;
      buyer_state.total_paid = history.total_paid;
    }
  }
  for (const auto& [kind, broker] : brokers_) {
    if (broker.sales_count() == 0 && broker.revenue_collected() == 0.0) {
      continue;
    }
    snapshot::BrokerState& broker_state = state.brokers[kind];
    broker_state.sales_count = broker.sales_count();
    broker_state.revenue_collected = broker.revenue_collected();
  }
  state.entries = ledger_.entries();
  state.entries_loaded = true;
  return state;
}

StatusOr<int64_t> Marketplace::CheckpointNow() {
  if (checkpointer_ == nullptr) {
    return FailedPreconditionError("checkpoints are not enabled");
  }
  NIMBUS_ASSIGN_OR_RETURN(snapshot::State state, CaptureSnapshotState());
  return checkpointer_->Commit(std::move(state), ledger_.journal());
}

Status Marketplace::MaybeCheckpoint() {
  if (checkpointer_ == nullptr) {
    return OkStatus();
  }
  const Journal* journal = ledger_.journal();
  const int64_t live_bytes = journal != nullptr ? journal->live_bytes() : 0;
  if (!checkpointer_->Due(ledger_.size(), live_bytes)) {
    return OkStatus();
  }
  const StatusOr<int64_t> generation = CheckpointNow();
  if (!generation.ok()) {
    // Absorbed by design: a sale must never fail because a snapshot
    // could not be written — the journal still holds the full tail, so
    // durability is unaffected; only recovery time degrades.
    NIMBUS_LOG(kWarning) << "cadence checkpoint failed ("
                         << generation.status().message()
                         << "); serving continues, journal keeps the "
                            "full tail";
  }
  return OkStatus();
}

Status Marketplace::RestoreFromCheckpoint(const std::string& path,
                                          RestoreOptions options,
                                          RestoreReport* report_out) {
  if (ledger_.size() != 0) {
    return FailedPreconditionError(
        "restore requires a fresh marketplace (ledger already has " +
        std::to_string(ledger_.size()) + " sales)");
  }
  RestoreReport local_report;
  RestoreReport& report = report_out != nullptr ? *report_out : local_report;
  report = RestoreReport{};
  RecoveringGuard recovering(recovering_);
  telemetry::ScopedTimer timer(RecoveryLatency());
  RecoveryRestoresCounter().Increment();

  // Applies a fully validated candidate. All checkable failure modes
  // were rejected by BuildCandidate, so a failure here is an internal
  // inconsistency and aborts the restore rather than trying a deeper
  // rung against half-mutated monitors/brokers.
  const auto apply = [&](RestoreCandidate candidate,
                         const std::string& snapshot_file) -> Status {
    Ledger::EntryLoader loader;
    if (candidate.state.sequence > 0) {
      if (options.hydrate) {
        auto rows = std::make_shared<std::vector<LedgerEntry>>(
            std::move(candidate.base_entries));
        loader = [rows]() -> StatusOr<std::vector<LedgerEntry>> {
          return std::move(*rows);
        };
      } else {
        loader = [snapshot_file]() {
          return snapshot::ReadEntries(snapshot_file);
        };
      }
    }
    NIMBUS_ASSIGN_OR_RETURN(
        Ledger restored,
        Ledger::FromRecoveredState(
            candidate.state.sequence, candidate.state.total_revenue,
            std::move(candidate.state.spend_by_buyer),
            std::move(candidate.state.sales_per_price_point),
            std::move(candidate.state.revenue_by_model),
            std::move(candidate.state.sales_by_model), std::move(loader)));
    for (const auto& [kind, monitor_state] : candidate.state.monitors) {
      CollusionMonitor& monitor = monitors_.at(kind);
      for (const auto& [buyer, history] : monitor_state.buyers) {
        CollusionMonitor::BuyerHistory restored_history;
        restored_history.purchases = history.purchases;
        restored_history.combined_inverse_ncp = history.combined_inverse_ncp;
        restored_history.total_paid = history.total_paid;
        NIMBUS_RETURN_IF_ERROR(
            monitor.RestoreHistory(buyer, restored_history));
      }
    }
    for (const auto& [kind, broker_state] : candidate.state.brokers) {
      NIMBUS_RETURN_IF_ERROR(brokers_.at(kind).RestoreSaleCounters(
          broker_state.sales_count, broker_state.revenue_collected));
    }
    for (const LedgerEntry& entry : candidate.tail) {
      NIMBUS_RETURN_IF_ERROR(restored.ApplyRecovered(entry));
      NIMBUS_RETURN_IF_ERROR(monitors_.at(entry.model).RecordPurchase(
          entry.buyer_id, entry.inverse_ncp, entry.price));
      Broker::Purchase sale;
      sale.price = entry.price;
      sale.inverse_ncp = entry.inverse_ncp;
      sale.ncp = 1.0 / entry.inverse_ncp;
      sale.expected_error = entry.expected_error;
      brokers_.at(entry.model).RecordSale(sale);
    }
    if (options.hydrate) {
      NIMBUS_RETURN_IF_ERROR(restored.Hydrate());
    }
    report.snapshot_records = candidate.state.sequence;
    report.tail_records = static_cast<int64_t>(candidate.tail.size());
    ledger_ = std::move(restored);
    return OkStatus();
  };

  const auto attach = [&]() -> Status {
    // Heal-and-reopen: a torn live tail was truncated while collecting
    // the tail; a live segment lost in Rotate's rename window is
    // recreated here with the restored sequence as its base.
    Journal::Options journal_options = options.journal;
    journal_options.create_base_sequence = ledger_.size();
    return EnableJournal(path, journal_options);
  };

  const std::vector<int64_t> generations = snapshot::ListGenerations(path);
  for (size_t i = 0; i < generations.size(); ++i) {
    const int64_t generation = generations[i];
    const std::string snapshot_file = snapshot::SnapshotPath(path, generation);
    StatusOr<RestoreCandidate> candidate =
        BuildCandidate(snapshot_file, path, options.hydrate, brokers_);
    if (candidate.ok()) {
      NIMBUS_RETURN_IF_ERROR(apply(std::move(*candidate), snapshot_file));
      report.source = i == 0 ? RestoreReport::Source::kSnapshot
                             : RestoreReport::Source::kPreviousSnapshot;
      report.generation = generation;
      RecoveryTailRecordsCounter().Increment(report.tail_records);
      return attach();
    }
    NIMBUS_LOG(kWarning) << "recovery: snapshot generation " << generation
                         << " (" << snapshot_file << ") rejected: "
                         << candidate.status().message()
                         << "; falling back a rung";
    ++report.snapshots_rejected;
    RecoverySnapshotsRejectedCounter().Increment();
  }

  // Last rung: no usable snapshot — replay the whole journal chain.
  if (!FileExists(path) && !FileExists(path + ".prev")) {
    return NotFoundError("no usable snapshot and no journal at '" + path +
                         "'");
  }
  NIMBUS_ASSIGN_OR_RETURN(std::vector<LedgerEntry> entries,
                          CollectTailEntries(path, 0));
  for (size_t i = 0; i < entries.size(); ++i) {
    NIMBUS_RETURN_IF_ERROR(
        ValidateTailEntry(entries[i], static_cast<int64_t>(i)));
    NIMBUS_RETURN_IF_ERROR(
        CheckOffered(brokers_, entries[i].model, "journal"));
  }
  NIMBUS_ASSIGN_OR_RETURN(Ledger replayed, Ledger::FromEntries(entries));
  for (const LedgerEntry& entry : entries) {
    NIMBUS_RETURN_IF_ERROR(monitors_.at(entry.model).RecordPurchase(
        entry.buyer_id, entry.inverse_ncp, entry.price));
    Broker::Purchase sale;
    sale.price = entry.price;
    sale.inverse_ncp = entry.inverse_ncp;
    sale.ncp = 1.0 / entry.inverse_ncp;
    sale.expected_error = entry.expected_error;
    brokers_.at(entry.model).RecordSale(sale);
  }
  ledger_ = std::move(replayed);
  report.source = RestoreReport::Source::kFullReplay;
  report.tail_records = static_cast<int64_t>(entries.size());
  RecoveryFullReplaysCounter().Increment();
  RecoveryTailRecordsCounter().Increment(report.tail_records);
  return attach();
}

StatusOr<const CollusionMonitor*> Marketplace::MonitorFor(
    ml::ModelKind kind) const {
  const auto it = monitors_.find(kind);
  if (it == monitors_.end()) {
    return NotFoundError("model '" +
                         std::string(ml::ModelKindToString(kind)) +
                         "' is not offered");
  }
  return &it->second;
}

std::vector<std::string> Marketplace::SuspiciousBuyers() const {
  std::vector<std::string> out;
  for (const auto& [kind, monitor] : monitors_) {
    (void)kind;
    const std::vector<std::string> flagged = monitor.SuspiciousBuyers();
    out.insert(out.end(), flagged.begin(), flagged.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace nimbus::market
