#include "market/shard.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "common/telemetry.h"

namespace nimbus::market {
namespace {

// Per-shard labeled health/rollup families (PR 7 telemetry). With more
// shards than the 64-series registry cap the excess collapses into
// "__other__"; drill assertions therefore read Shard::Stats, not the
// registry.
telemetry::GaugeVec& StateGauge() {
  static telemetry::GaugeVec& gauge =
      telemetry::Registry::Global().GetGaugeVec("shard_state", "shard");
  return gauge;
}

telemetry::GaugeVec& RevenueGauge() {
  static telemetry::GaugeVec& gauge =
      telemetry::Registry::Global().GetGaugeVec("shard_revenue", "shard");
  return gauge;
}

telemetry::CounterVec& QuarantinesCounter() {
  static telemetry::CounterVec& counter =
      telemetry::Registry::Global().GetCounterVec("shard_quarantines_total",
                                                  "shard");
  return counter;
}

telemetry::CounterVec& RecoveriesCounter() {
  static telemetry::CounterVec& counter =
      telemetry::Registry::Global().GetCounterVec("shard_recoveries_total",
                                                  "shard");
  return counter;
}

telemetry::CounterVec& RecoveryFailuresCounter() {
  static telemetry::CounterVec& counter =
      telemetry::Registry::Global().GetCounterVec(
          "shard_recovery_failures_total", "shard");
  return counter;
}

// POSIX mkdir -p.
Status MakeDirs(const std::string& path) {
  std::string prefix;
  prefix.reserve(path.size());
  size_t start = 0;
  while (start <= path.size()) {
    size_t slash = path.find('/', start);
    if (slash == std::string::npos) {
      slash = path.size();
    }
    prefix = path.substr(0, slash);
    start = slash + 1;
    if (prefix.empty()) {
      continue;  // Leading '/'.
    }
    if (::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST) {
      return InternalError("cannot create shard directory '" + prefix + "'");
    }
  }
  return OkStatus();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

// Does a terminal commit failure implicate the shard's durable state?
// Poisoned/closed journals (kFailedPrecondition) and short writes
// (real or injected ENOSPC) mean the journal needs out-of-band
// recovery; transient quote faults, deadline expiries, and clean
// injected errors do not.
bool ImplicatesDurableState(const Status& status) {
  if (status.code() == StatusCode::kFailedPrecondition) {
    return true;
  }
  const std::string& message = status.message();
  return message.find("poisoned") != std::string::npos ||
         message.find("short write") != std::string::npos ||
         message.find("No space left on device") != std::string::npos;
}

}  // namespace

const char* ShardStateName(ShardState state) {
  switch (state) {
    case ShardState::kServing:
      return "serving";
    case ShardState::kDegraded:
      return "degraded";
    case ShardState::kRecovering:
      return "recovering";
    case ShardState::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

Shard::Shard(std::string product_id, MarketplaceFactory factory,
             ShardOptions options)
    : product_id_(std::move(product_id)),
      factory_(std::move(factory)),
      options_(std::move(options)),
      journal_path_(options_.dir + "/journal") {}

StatusOr<std::unique_ptr<Shard>> Shard::Open(std::string product_id,
                                             MarketplaceFactory factory,
                                             ShardOptions options) {
  if (product_id.empty()) {
    return InvalidArgumentError("shard product id must be non-empty");
  }
  if (options.dir.empty()) {
    return InvalidArgumentError("shard '" + product_id + "' needs a dir");
  }
  auto shard = std::unique_ptr<Shard>(
      new Shard(std::move(product_id), std::move(factory), std::move(options)));
  NIMBUS_RETURN_IF_ERROR(MakeDirs(shard->options_.dir));

  Marketplace::RestoreReport report;
  bool factory_failed = false;
  StatusOr<Marketplace> restored =
      shard->BuildAndRestore(&report, &factory_failed);
  if (!restored.ok()) {
    // Configuration errors (the factory itself failing) abort the open:
    // retrying cannot help. Damaged on-disk state — including a journal
    // whose header no longer parses (kInvalidArgument from the restore
    // stage) — quarantines instead, so the rest of a catalog keeps
    // booting around it; the background recovery loop owns the retry.
    if (factory_failed) {
      return restored.status();
    }
    shard->Quarantine("open failed: " + restored.status().ToString());
    return shard;
  }
  {
    std::lock_guard<std::mutex> lock(shard->mu_);
    shard->market_ = std::make_shared<Marketplace>(*std::move(restored));
    shard->last_report_ = report;
    if (shard->market_->checkpoints_enabled()) {
      StatusOr<Checkpointer::Stats> stats = shard->market_->CheckpointStats();
      if (stats.ok()) {
        shard->last_checkpoint_stats_ = *stats;
      }
    }
    shard->RefreshBookedTotalsLocked();
    shard->SetStateLocked(ShardState::kServing, "");
  }
  return shard;
}

StatusOr<Marketplace> Shard::BuildAndRestore(Marketplace::RestoreReport* report,
                                             bool* factory_failed) {
  // Scope injected faults to this shard's product id: a drill arming
  // `snapshot.write@<product>` or `journal.replay@<product>` hits this
  // shard's open/recovery path and no other shard's.
  fault::ScopedFaultScope fault_scope(product_id_);
  StatusOr<Marketplace> built = factory_();
  if (!built.ok()) {
    if (factory_failed != nullptr) {
      *factory_failed = true;
    }
    return built.status();
  }
  Marketplace market = *std::move(built);
  if (FileExists(journal_path_)) {
    Marketplace::RestoreOptions restore;
    restore.journal = options_.journal;
    restore.hydrate = options_.hydrate_on_restore;
    NIMBUS_RETURN_IF_ERROR(
        market.RestoreFromCheckpoint(journal_path_, restore, report));
  } else {
    NIMBUS_RETURN_IF_ERROR(
        market.EnableJournal(journal_path_, options_.journal));
    *report = Marketplace::RestoreReport{};
  }
  if (options_.enable_checkpoints) {
    NIMBUS_RETURN_IF_ERROR(
        market.EnableCheckpoints(options_.checkpoint_policy));
  }
  return market;
}

ShardState Shard::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

std::string Shard::state_detail() const {
  std::lock_guard<std::mutex> lock(mu_);
  return detail_;
}

StatusOr<std::shared_ptr<Marketplace>> Shard::Serve() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == ShardState::kServing || state_ == ShardState::kDegraded) {
    return market_;
  }
  return UnavailableError("shard '" + product_id_ + "' " +
                          ShardStateName(state_) +
                          (detail_.empty() ? "" : " (" + detail_ + ")"));
}

std::shared_ptr<Marketplace> Shard::market() const {
  std::lock_guard<std::mutex> lock(mu_);
  return market_;
}

void Shard::SetStateLocked(ShardState state, const std::string& detail) {
  state_ = state;
  detail_ = detail;
  StateGauge().WithLabel(product_id_).Set(static_cast<double>(state));
}

void Shard::RefreshBookedTotalsLocked() {
  stats_.revenue = market_->total_revenue();
  stats_.sales = market_->ledger().SaleCount();
  RevenueGauge().WithLabel(product_id_).Set(stats_.revenue);
}

ShardState Shard::ReportCommitOutcome(const Status& status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (status.ok()) {
    ++stats_.commits;
    RefreshBookedTotalsLocked();
    if (market_->checkpoints_enabled()) {
      StatusOr<Checkpointer::Stats> stats = market_->CheckpointStats();
      if (stats.ok()) {
        // A checkpoint failure absorbed inside MaybeCheckpoint degrades
        // the shard (the journal still holds the full tail, so serving
        // continues); the next checkpoint that lands clears it.
        if (stats->failures > last_checkpoint_stats_.failures &&
            state_ == ShardState::kServing) {
          SetStateLocked(ShardState::kDegraded,
                         "checkpoint failure absorbed (journal tail intact)");
        } else if (stats->checkpoints > last_checkpoint_stats_.checkpoints &&
                   state_ == ShardState::kDegraded) {
          SetStateLocked(ShardState::kServing, "");
        }
        last_checkpoint_stats_ = *stats;
      }
    }
    return state_;
  }
  ++stats_.commit_failures;
  if (ImplicatesDurableState(status) &&
      (state_ == ShardState::kServing || state_ == ShardState::kDegraded)) {
    ++stats_.quarantines;
    QuarantinesCounter().WithLabel(product_id_).Increment();
    NIMBUS_LOG(kWarning) << "shard '" << product_id_
                         << "' quarantined: " << status.ToString();
    // Drop the poisoned journal's buffered bytes so this instance can
    // never flush a torn/abandoned record over the file the recovery
    // ladder is about to repair (process-death semantics, in-process).
    market_->AbandonJournal();
    SetStateLocked(ShardState::kQuarantined, status.ToString());
  }
  return state_;
}

void Shard::Quarantine(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == ShardState::kQuarantined) {
    detail_ = reason;
    return;
  }
  ++stats_.quarantines;
  QuarantinesCounter().WithLabel(product_id_).Increment();
  if (market_ != nullptr) {
    market_->AbandonJournal();
  }
  SetStateLocked(ShardState::kQuarantined, reason);
}

Status Shard::TryRecover() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ != ShardState::kQuarantined || recovery_in_flight_) {
      return FailedPreconditionError("shard '" + product_id_ +
                                     "' is not awaiting recovery (" +
                                     ShardStateName(state_) + ")");
    }
    recovery_in_flight_ = true;
    SetStateLocked(ShardState::kRecovering, detail_);
  }
  // The rebuild runs outside the lock: restores are O(delta) but still
  // orders of magnitude longer than a state check, and Serve() must
  // keep shedding (not blocking) meanwhile.
  Marketplace::RestoreReport report;
  StatusOr<Marketplace> restored = BuildAndRestore(&report);
  std::lock_guard<std::mutex> lock(mu_);
  recovery_in_flight_ = false;
  if (!restored.ok()) {
    ++stats_.recovery_failures;
    RecoveryFailuresCounter().WithLabel(product_id_).Increment();
    SetStateLocked(ShardState::kQuarantined,
                   "recovery failed: " + restored.status().ToString());
    return restored.status();
  }
  market_ = std::make_shared<Marketplace>(*std::move(restored));
  last_report_ = report;
  if (market_->checkpoints_enabled()) {
    StatusOr<Checkpointer::Stats> stats = market_->CheckpointStats();
    if (stats.ok()) {
      last_checkpoint_stats_ = *stats;
    }
  }
  ++stats_.recoveries;
  RecoveriesCounter().WithLabel(product_id_).Increment();
  RefreshBookedTotalsLocked();
  SetStateLocked(ShardState::kServing, "");
  NIMBUS_LOG(kInfo) << "shard '" << product_id_ << "' recovered ("
                    << report.tail_records << " tail records, generation "
                    << report.generation << ") and re-admitted";
  return OkStatus();
}

Marketplace::RestoreReport Shard::last_restore_report() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_report_;
}

Shard::Stats Shard::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Shard::RefreshBookedTotals() {
  std::lock_guard<std::mutex> lock(mu_);
  if (market_ != nullptr) {
    RefreshBookedTotalsLocked();
  }
}

}  // namespace nimbus::market
