#include "market/snapshot.h"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "market/journal.h"

namespace nimbus::market::snapshot {
namespace {

constexpr char kMagic[8] = {'N', 'I', 'M', 'B', 'U', 'S', 'S', '1'};
constexpr char kManifestMagic[] = "NIMBUSM1";
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kSectionHeaderBytes = 20;  // tag + flags + len + crc.

constexpr uint32_t FourCc(char a, char b, char c, char d) {
  return static_cast<uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(d)) << 24;
}

constexpr uint32_t kTagMeta = FourCc('M', 'E', 'T', 'A');
constexpr uint32_t kTagAggr = FourCc('A', 'G', 'G', 'R');
constexpr uint32_t kTagColl = FourCc('C', 'O', 'L', 'L');
constexpr uint32_t kTagBrkr = FourCc('B', 'R', 'K', 'R');
constexpr uint32_t kTagLedg = FourCc('L', 'E', 'D', 'G');
constexpr uint32_t kTagFoot = FourCc('F', 'O', 'O', 'T');

// The body sections, in required file order (FOOT follows, indexing
// exactly these).
constexpr uint32_t kBodyTags[] = {kTagMeta, kTagAggr, kTagColl, kTagBrkr,
                                  kTagLedg};
constexpr size_t kBodySections = sizeof(kBodyTags) / sizeof(kBodyTags[0]);

void AppendRaw(std::string& out, const void* data, size_t size) {
  out.append(static_cast<const char*>(data), size);
}

template <typename T>
void AppendScalar(std::string& out, T value) {
  AppendRaw(out, &value, sizeof(value));
}

void AppendString(std::string& out, const std::string& s) {
  AppendScalar(out, static_cast<uint32_t>(s.size()));
  AppendRaw(out, s.data(), s.size());
}

template <typename T>
bool ReadScalar(const std::string& in, size_t& offset, T* value) {
  if (in.size() - offset < sizeof(T)) {
    return false;
  }
  std::memcpy(value, in.data() + offset, sizeof(T));
  offset += sizeof(T);
  return true;
}

bool ReadString(const std::string& in, size_t& offset, std::string* value) {
  uint32_t len = 0;
  if (!ReadScalar(in, offset, &len) || in.size() - offset < len) {
    return false;
  }
  *value = in.substr(offset, len);
  offset += len;
  return true;
}

StatusOr<ml::ModelKind> DecodeModelKind(uint8_t kind) {
  switch (static_cast<ml::ModelKind>(kind)) {
    case ml::ModelKind::kLinearRegression:
    case ml::ModelKind::kLogisticRegression:
    case ml::ModelKind::kLinearSvm:
    case ml::ModelKind::kPoissonRegression:
      return static_cast<ml::ModelKind>(kind);
  }
  return InternalError("snapshot references unknown model kind " +
                       std::to_string(kind));
}

Status CorruptError(const std::string& path, const std::string& what) {
  return InternalError("snapshot '" + path + "' is invalid: " + what);
}

// ----- Section payload codecs ----------------------------------------------

std::string EncodeMeta(const State& state) {
  std::string out;
  AppendScalar(out, kFormatVersion);
  AppendScalar(out, state.generation);
  AppendScalar(out, state.sequence);
  return out;
}

Status DecodeMeta(const std::string& path, const std::string& payload,
                  State* state) {
  size_t offset = 0;
  uint32_t version = 0;
  if (!ReadScalar(payload, offset, &version) ||
      !ReadScalar(payload, offset, &state->generation) ||
      !ReadScalar(payload, offset, &state->sequence) ||
      offset != payload.size()) {
    return CorruptError(path, "undecodable META section");
  }
  if (version != kFormatVersion) {
    return CorruptError(path,
                        "unsupported format version " + std::to_string(version));
  }
  if (state->generation < 0 || state->sequence < 0) {
    return CorruptError(path, "negative generation or sequence");
  }
  return OkStatus();
}

std::string EncodeAggr(const State& state) {
  std::string out;
  AppendScalar(out, state.total_revenue);
  AppendScalar(out, static_cast<uint32_t>(state.revenue_by_model.size()));
  for (const auto& [kind, revenue] : state.revenue_by_model) {
    AppendScalar(out, static_cast<uint8_t>(kind));
    AppendScalar(out, revenue);
  }
  AppendScalar(out, static_cast<uint32_t>(state.sales_by_model.size()));
  for (const auto& [kind, sales] : state.sales_by_model) {
    AppendScalar(out, static_cast<uint8_t>(kind));
    AppendScalar(out, sales);
  }
  AppendScalar(out, static_cast<uint32_t>(state.sales_per_price_point.size()));
  for (const auto& [inverse_ncp, count] : state.sales_per_price_point) {
    AppendScalar(out, inverse_ncp);
    AppendScalar(out, count);
  }
  AppendScalar(out, static_cast<uint32_t>(state.spend_by_buyer.size()));
  for (const auto& [buyer, spend] : state.spend_by_buyer) {
    AppendString(out, buyer);
    AppendScalar(out, spend);
  }
  return out;
}

Status DecodeAggr(const std::string& path, const std::string& payload,
                  State* state) {
  size_t offset = 0;
  uint32_t n = 0;
  if (!ReadScalar(payload, offset, &state->total_revenue) ||
      !ReadScalar(payload, offset, &n)) {
    return CorruptError(path, "undecodable AGGR section");
  }
  for (uint32_t i = 0; i < n; ++i) {
    uint8_t kind = 0;
    double revenue = 0.0;
    if (!ReadScalar(payload, offset, &kind) ||
        !ReadScalar(payload, offset, &revenue)) {
      return CorruptError(path, "undecodable AGGR model revenue");
    }
    NIMBUS_ASSIGN_OR_RETURN(const ml::ModelKind model, DecodeModelKind(kind));
    state->revenue_by_model[model] = revenue;
  }
  if (!ReadScalar(payload, offset, &n)) {
    return CorruptError(path, "undecodable AGGR section");
  }
  for (uint32_t i = 0; i < n; ++i) {
    uint8_t kind = 0;
    int64_t sales = 0;
    if (!ReadScalar(payload, offset, &kind) ||
        !ReadScalar(payload, offset, &sales)) {
      return CorruptError(path, "undecodable AGGR model sales");
    }
    NIMBUS_ASSIGN_OR_RETURN(const ml::ModelKind model, DecodeModelKind(kind));
    state->sales_by_model[model] = sales;
  }
  if (!ReadScalar(payload, offset, &n)) {
    return CorruptError(path, "undecodable AGGR section");
  }
  for (uint32_t i = 0; i < n; ++i) {
    double inverse_ncp = 0.0;
    int64_t count = 0;
    if (!ReadScalar(payload, offset, &inverse_ncp) ||
        !ReadScalar(payload, offset, &count)) {
      return CorruptError(path, "undecodable AGGR price point");
    }
    state->sales_per_price_point[inverse_ncp] = count;
  }
  if (!ReadScalar(payload, offset, &n)) {
    return CorruptError(path, "undecodable AGGR section");
  }
  for (uint32_t i = 0; i < n; ++i) {
    std::string buyer;
    double spend = 0.0;
    if (!ReadString(payload, offset, &buyer) ||
        !ReadScalar(payload, offset, &spend)) {
      return CorruptError(path, "undecodable AGGR buyer spend");
    }
    state->spend_by_buyer[buyer] = spend;
  }
  if (offset != payload.size()) {
    return CorruptError(path, "trailing bytes in AGGR section");
  }
  return OkStatus();
}

std::string EncodeColl(const State& state) {
  std::string out;
  AppendScalar(out, static_cast<uint32_t>(state.monitors.size()));
  for (const auto& [kind, monitor] : state.monitors) {
    AppendScalar(out, static_cast<uint8_t>(kind));
    AppendScalar(out, static_cast<uint32_t>(monitor.buyers.size()));
    for (const auto& [buyer, history] : monitor.buyers) {
      AppendString(out, buyer);
      AppendScalar(out, static_cast<int32_t>(history.purchases));
      AppendScalar(out, history.combined_inverse_ncp);
      AppendScalar(out, history.total_paid);
    }
  }
  return out;
}

Status DecodeColl(const std::string& path, const std::string& payload,
                  State* state) {
  size_t offset = 0;
  uint32_t n_models = 0;
  if (!ReadScalar(payload, offset, &n_models)) {
    return CorruptError(path, "undecodable COLL section");
  }
  for (uint32_t m = 0; m < n_models; ++m) {
    uint8_t kind = 0;
    uint32_t n_buyers = 0;
    if (!ReadScalar(payload, offset, &kind) ||
        !ReadScalar(payload, offset, &n_buyers)) {
      return CorruptError(path, "undecodable COLL monitor header");
    }
    NIMBUS_ASSIGN_OR_RETURN(const ml::ModelKind model, DecodeModelKind(kind));
    MonitorState& monitor = state->monitors[model];
    for (uint32_t b = 0; b < n_buyers; ++b) {
      std::string buyer;
      int32_t purchases = 0;
      BuyerHistoryState history;
      if (!ReadString(payload, offset, &buyer) ||
          !ReadScalar(payload, offset, &purchases) ||
          !ReadScalar(payload, offset, &history.combined_inverse_ncp) ||
          !ReadScalar(payload, offset, &history.total_paid)) {
        return CorruptError(path, "undecodable COLL buyer history");
      }
      history.purchases = purchases;
      monitor.buyers.emplace(std::move(buyer), history);
    }
  }
  if (offset != payload.size()) {
    return CorruptError(path, "trailing bytes in COLL section");
  }
  return OkStatus();
}

std::string EncodeBrkr(const State& state) {
  std::string out;
  AppendScalar(out, static_cast<uint32_t>(state.brokers.size()));
  for (const auto& [kind, broker] : state.brokers) {
    AppendScalar(out, static_cast<uint8_t>(kind));
    AppendScalar(out, broker.sales_count);
    AppendScalar(out, broker.revenue_collected);
  }
  return out;
}

Status DecodeBrkr(const std::string& path, const std::string& payload,
                  State* state) {
  size_t offset = 0;
  uint32_t n = 0;
  if (!ReadScalar(payload, offset, &n)) {
    return CorruptError(path, "undecodable BRKR section");
  }
  for (uint32_t i = 0; i < n; ++i) {
    uint8_t kind = 0;
    BrokerState broker;
    if (!ReadScalar(payload, offset, &kind) ||
        !ReadScalar(payload, offset, &broker.sales_count) ||
        !ReadScalar(payload, offset, &broker.revenue_collected)) {
      return CorruptError(path, "undecodable BRKR counters");
    }
    NIMBUS_ASSIGN_OR_RETURN(const ml::ModelKind model, DecodeModelKind(kind));
    state->brokers[model] = broker;
  }
  if (offset != payload.size()) {
    return CorruptError(path, "trailing bytes in BRKR section");
  }
  return OkStatus();
}

std::string EncodeLedg(const State& state) {
  std::string out;
  AppendScalar(out, static_cast<int64_t>(state.entries.size()));
  for (const LedgerEntry& entry : state.entries) {
    const std::string payload = Journal::EncodePayload(entry);
    AppendString(out, payload);
  }
  return out;
}

StatusOr<std::vector<LedgerEntry>> DecodeLedg(const std::string& path,
                                              const std::string& payload) {
  size_t offset = 0;
  int64_t count = 0;
  if (!ReadScalar(payload, offset, &count) || count < 0) {
    return CorruptError(path, "undecodable LEDG section");
  }
  std::vector<LedgerEntry> entries;
  entries.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    std::string record;
    if (!ReadString(payload, offset, &record)) {
      return CorruptError(path, "truncated LEDG record " + std::to_string(i));
    }
    StatusOr<LedgerEntry> entry = Journal::DecodePayload(record);
    if (!entry.ok()) {
      return CorruptError(path, "undecodable LEDG record " + std::to_string(i) +
                                    ": " + entry.status().message());
    }
    entries.push_back(*std::move(entry));
  }
  if (offset != payload.size()) {
    return CorruptError(path, "trailing bytes in LEDG section");
  }
  return entries;
}

// ----- File plumbing -------------------------------------------------------

struct SectionHeader {
  uint32_t tag = 0;
  uint32_t flags = 0;
  uint64_t payload_len = 0;
  uint32_t payload_crc = 0;
};

void AppendSection(std::string& out, uint32_t tag, const std::string& payload) {
  AppendScalar(out, tag);
  AppendScalar(out, uint32_t{0});  // flags
  AppendScalar(out, static_cast<uint64_t>(payload.size()));
  AppendScalar(out, Journal::Crc32(payload.data(), payload.size()));
  AppendRaw(out, payload.data(), payload.size());
}

std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  if (slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

std::string BaseName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

// Makes the rename of a freshly committed file itself durable.
Status SyncParentDir(const std::string& path) {
  const int fd = ::open(DirName(path).c_str(), O_RDONLY);
  if (fd < 0) {
    return InternalError("cannot open parent directory of '" + path +
                         "' for fsync");
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return InternalError("cannot fsync parent directory of '" + path + "'");
  }
  return OkStatus();
}

StatusOr<std::string> ReadFileBytes(const std::string& path) {
  FAULT_POINT("io.read");
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return NotFoundError("cannot open '" + path + "'");
  }
  std::ostringstream content;
  content << file.rdbuf();
  if (!file.good() && !file.eof()) {
    return InternalError("read error on '" + path + "'");
  }
  return std::move(content).str();
}

// Commits `bytes` to `path` atomically. On a `snapshot.write` fault only
// the first half of the image reaches the temp file — the on-disk
// artifact a SIGKILL mid-write leaves behind — before the injected error
// is surfaced.
Status CommitBytes(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return InternalError("cannot open '" + tmp + "' for writing");
  }
  size_t to_write = bytes.size();
  Status injected = OkStatus();
  const fault::Injection inject = fault::Check("snapshot.write");
  if (inject.fire) {
    to_write = bytes.size() / 2;
    // kEnospc shapes the error like a real full disk; either way only
    // half the image reaches the temp file.
    injected = inject.mode == fault::Mode::kEnospc
                   ? InternalError("short write to '" + tmp +
                                   "': No space left on device (injected)")
                   : InternalError("fault injected at 'snapshot.write'");
  }
  if (std::fwrite(bytes.data(), 1, to_write, file) != to_write) {
    std::fclose(file);
    return InternalError("short write to '" + tmp + "'");
  }
  if (!injected.ok()) {
    std::fflush(file);
    std::fclose(file);
    return injected;
  }
  if (std::fflush(file) != 0) {
    std::fclose(file);
    return InternalError("fflush failed on '" + tmp + "'");
  }
  const auto fail_fsync = [&file, &tmp]() -> Status {
    std::fclose(file);
    return InternalError("fsync failed on '" + tmp + "'");
  };
  if (fault::ShouldFail("snapshot.fsync")) {
    std::fclose(file);
    return InternalError("fault injected at 'snapshot.fsync'");
  }
  if (::fsync(fileno(file)) != 0) {
    return fail_fsync();
  }
  if (std::fclose(file) != 0) {
    return InternalError("fclose failed on '" + tmp + "'");
  }
  FAULT_POINT("snapshot.rename");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return InternalError("cannot rename '" + tmp + "' over '" + path + "'");
  }
  return SyncParentDir(path);
}

}  // namespace

std::string SnapshotPath(const std::string& journal_path, int64_t generation) {
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".snap.%06lld",
                static_cast<long long>(generation));
  return journal_path + suffix;
}

std::string ManifestPath(const std::string& journal_path) {
  return journal_path + ".manifest";
}

StatusOr<int64_t> Write(const std::string& path, const State& state) {
  std::string image;
  AppendRaw(image, kMagic, sizeof(kMagic));
  std::string footer;
  AppendScalar(footer, static_cast<uint32_t>(kBodySections));
  for (const uint32_t tag : kBodyTags) {
    std::string payload;
    switch (tag) {
      case kTagMeta:
        payload = EncodeMeta(state);
        break;
      case kTagAggr:
        payload = EncodeAggr(state);
        break;
      case kTagColl:
        payload = EncodeColl(state);
        break;
      case kTagBrkr:
        payload = EncodeBrkr(state);
        break;
      case kTagLedg:
        payload = EncodeLedg(state);
        break;
    }
    AppendScalar(footer, tag);
    AppendScalar(footer, static_cast<uint64_t>(image.size()));
    AppendScalar(footer, static_cast<uint64_t>(payload.size()));
    AppendScalar(footer, Journal::Crc32(payload.data(), payload.size()));
    AppendSection(image, tag, payload);
  }
  AppendSection(image, kTagFoot, footer);
  NIMBUS_RETURN_IF_ERROR(CommitBytes(path, image));
  return static_cast<int64_t>(image.size());
}

StatusOr<State> Read(const std::string& path, ReadOptions options) {
  NIMBUS_ASSIGN_OR_RETURN(const std::string bytes, ReadFileBytes(path));
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return CorruptError(path, "missing snapshot magic");
  }
  State state;
  size_t offset = sizeof(kMagic);
  size_t body_index = 0;
  // Observed headers of the body sections, cross-checked against FOOT.
  struct Observed {
    uint64_t offset = 0;
    SectionHeader header;
  };
  Observed observed[kBodySections];
  std::string ledg_payload;
  bool saw_footer = false;
  while (offset < bytes.size()) {
    const uint64_t section_offset = offset;
    SectionHeader header;
    if (!ReadScalar(bytes, offset, &header.tag) ||
        !ReadScalar(bytes, offset, &header.flags) ||
        !ReadScalar(bytes, offset, &header.payload_len) ||
        !ReadScalar(bytes, offset, &header.payload_crc)) {
      return CorruptError(path, "truncated section header at byte " +
                                    std::to_string(section_offset));
    }
    if (header.flags != 0) {
      return CorruptError(path, "unsupported section flags");
    }
    if (header.payload_len > bytes.size() - offset) {
      return CorruptError(path, "truncated section payload at byte " +
                                    std::to_string(section_offset));
    }
    if (header.tag == kTagFoot) {
      if (body_index != kBodySections) {
        return CorruptError(path, "footer before all body sections");
      }
      const std::string payload =
          bytes.substr(offset, static_cast<size_t>(header.payload_len));
      offset += static_cast<size_t>(header.payload_len);
      if (Journal::Crc32(payload.data(), payload.size()) !=
          header.payload_crc) {
        return CorruptError(path, "footer CRC mismatch");
      }
      size_t cursor = 0;
      uint32_t n_sections = 0;
      if (!ReadScalar(payload, cursor, &n_sections) ||
          n_sections != kBodySections) {
        return CorruptError(path, "footer section count mismatch");
      }
      for (size_t i = 0; i < kBodySections; ++i) {
        uint32_t tag = 0;
        uint64_t section_off = 0;
        uint64_t len = 0;
        uint32_t crc = 0;
        if (!ReadScalar(payload, cursor, &tag) ||
            !ReadScalar(payload, cursor, &section_off) ||
            !ReadScalar(payload, cursor, &len) ||
            !ReadScalar(payload, cursor, &crc)) {
          return CorruptError(path, "undecodable footer table");
        }
        if (tag != observed[i].header.tag ||
            section_off != observed[i].offset ||
            len != observed[i].header.payload_len ||
            crc != observed[i].header.payload_crc) {
          return CorruptError(path,
                              "footer disagrees with section " +
                                  std::to_string(i) +
                                  " (torn write or header corruption)");
        }
      }
      if (cursor != payload.size()) {
        return CorruptError(path, "trailing bytes in footer");
      }
      saw_footer = true;
      continue;
    }
    if (saw_footer) {
      return CorruptError(path, "section after footer");
    }
    if (body_index >= kBodySections || header.tag != kBodyTags[body_index]) {
      return CorruptError(path, "unexpected section order");
    }
    observed[body_index] = Observed{section_offset, header};
    // The LEDG payload is skipped (not CRC'd) on a shallow read: the
    // footer cross-check above still proves the header uncorrupted and
    // the payload fully present, and hydration re-verifies the CRC.
    if (header.tag == kTagLedg && !options.load_entries) {
      offset += static_cast<size_t>(header.payload_len);
      ++body_index;
      continue;
    }
    const std::string payload =
        bytes.substr(offset, static_cast<size_t>(header.payload_len));
    offset += static_cast<size_t>(header.payload_len);
    if (Journal::Crc32(payload.data(), payload.size()) != header.payload_crc) {
      return CorruptError(path, "section CRC mismatch at byte " +
                                    std::to_string(section_offset));
    }
    switch (header.tag) {
      case kTagMeta:
        NIMBUS_RETURN_IF_ERROR(DecodeMeta(path, payload, &state));
        break;
      case kTagAggr:
        NIMBUS_RETURN_IF_ERROR(DecodeAggr(path, payload, &state));
        break;
      case kTagColl:
        NIMBUS_RETURN_IF_ERROR(DecodeColl(path, payload, &state));
        break;
      case kTagBrkr:
        NIMBUS_RETURN_IF_ERROR(DecodeBrkr(path, payload, &state));
        break;
      case kTagLedg:
        ledg_payload = payload;
        break;
    }
    ++body_index;
  }
  if (!saw_footer || offset != bytes.size()) {
    return CorruptError(path, "truncated snapshot (no footer)");
  }
  if (options.load_entries) {
    NIMBUS_ASSIGN_OR_RETURN(state.entries, DecodeLedg(path, ledg_payload));
    if (static_cast<int64_t>(state.entries.size()) != state.sequence) {
      return CorruptError(
          path, "LEDG entry count disagrees with META sequence");
    }
    state.entries_loaded = true;
  }
  return state;
}

StatusOr<std::vector<LedgerEntry>> ReadEntries(const std::string& path) {
  NIMBUS_ASSIGN_OR_RETURN(State state, Read(path, {.load_entries = true}));
  return std::move(state.entries);
}

Status WriteManifest(const std::string& journal_path, const Manifest& m) {
  std::ostringstream body;
  body << kManifestMagic << '\n'
       << "generation " << m.generation << '\n'
       << "sequence " << m.sequence << '\n'
       << "prev_generation " << m.prev_generation << '\n'
       << "prev_sequence " << m.prev_sequence << '\n';
  const std::string text = body.str();
  std::ostringstream out;
  out << text << "crc " << Journal::Crc32(text.data(), text.size()) << '\n';
  // Re-uses the snapshot commit path (and so shares its fault points:
  // a manifest "crash" mid-write is drilled the same way).
  return CommitBytes(ManifestPath(journal_path), out.str());
}

StatusOr<Manifest> ReadManifest(const std::string& journal_path) {
  const std::string path = ManifestPath(journal_path);
  NIMBUS_ASSIGN_OR_RETURN(const std::string bytes, ReadFileBytes(path));
  const size_t crc_pos = bytes.rfind("crc ");
  if (crc_pos == std::string::npos || crc_pos == 0) {
    return InternalError("manifest '" + path + "' has no CRC trailer");
  }
  const std::string body = bytes.substr(0, crc_pos);
  const uint32_t stored = static_cast<uint32_t>(
      std::strtoul(bytes.c_str() + crc_pos + 4, nullptr, 10));
  if (Journal::Crc32(body.data(), body.size()) != stored) {
    return InternalError("manifest '" + path + "' fails its CRC");
  }
  std::istringstream in(body);
  std::string magic;
  std::getline(in, magic);
  if (magic != kManifestMagic) {
    return InternalError("'" + path + "' is not a nimbus manifest");
  }
  Manifest m;
  std::string key;
  int64_t value = 0;
  while (in >> key >> value) {
    if (key == "generation") {
      m.generation = value;
    } else if (key == "sequence") {
      m.sequence = value;
    } else if (key == "prev_generation") {
      m.prev_generation = value;
    } else if (key == "prev_sequence") {
      m.prev_sequence = value;
    } else {
      return InternalError("manifest '" + path + "' has unknown key '" + key +
                           "'");
    }
  }
  if (m.generation <= 0) {
    return InternalError("manifest '" + path + "' advertises no generation");
  }
  return m;
}

std::vector<int64_t> ListGenerations(const std::string& journal_path) {
  std::vector<int64_t> generations;
  StatusOr<Manifest> manifest = ReadManifest(journal_path);
  if (manifest.ok()) {
    generations.push_back(manifest->generation);
    if (manifest->prev_generation > 0) {
      generations.push_back(manifest->prev_generation);
    }
  }
  // Directory scan: catches generations newer than a stale manifest
  // (crash between snapshot rename and manifest update) and survives a
  // lost manifest entirely.
  const std::string prefix = BaseName(journal_path) + ".snap.";
  if (DIR* dir = ::opendir(DirName(journal_path).c_str())) {
    while (const dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name.rfind(prefix, 0) != 0 || name.size() <= prefix.size()) {
        continue;
      }
      const std::string digits = name.substr(prefix.size());
      if (digits.find_first_not_of("0123456789") != std::string::npos) {
        continue;  // Skips .tmp leftovers from a crashed write.
      }
      const int64_t gen = std::strtoll(digits.c_str(), nullptr, 10);
      if (gen > 0) {
        generations.push_back(gen);
      }
    }
    ::closedir(dir);
  }
  std::sort(generations.rbegin(), generations.rend());
  generations.erase(std::unique(generations.begin(), generations.end()),
                    generations.end());
  return generations;
}

}  // namespace nimbus::market::snapshot
