#ifndef NIMBUS_MARKET_RESEARCH_ESTIMATION_H_
#define NIMBUS_MARKET_RESEARCH_ESTIMATION_H_

#include <vector>

#include "common/statusor.h"
#include "market/ledger.h"
#include "revenue/buyer_model.h"

namespace nimbus::market {

// Estimates market research (demand and value curves) from observed
// transactions, closing the loop of Figure 1: instead of assuming the
// seller knows the curves, infer them from the ledger and re-run the
// revenue optimization. Estimates are conservative:
//   * demand mass b_j = share of the model's transactions whose version
//     is nearest to grid point a_j (plus-one smoothing so unsold
//     versions keep a sliver of mass);
//   * valuation v_j = the highest price ever paid at versions assigned
//     to a_j — a lower bound on willingness to pay. Grid points with no
//     sales inherit the previous point's estimate, and the final curve
//     is forced monotone non-decreasing (isotonic pass) so it satisfies
//     the DP precondition.
//
// `versions` is the strictly increasing grid of inverse NCPs to estimate
// at (typically the versions actually offered). Fails when the ledger
// has no transactions for `model`.
StatusOr<std::vector<revenue::BuyerPoint>> EstimateResearchFromLedger(
    const Ledger& ledger, ml::ModelKind model,
    const std::vector<double>& versions);

}  // namespace nimbus::market

#endif  // NIMBUS_MARKET_RESEARCH_ESTIMATION_H_
