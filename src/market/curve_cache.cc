#include "market/curve_cache.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/telemetry.h"

namespace nimbus::market {
namespace {

telemetry::Counter& HitsCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("curve_cache_hits_total");
  return counter;
}

telemetry::Counter& MissesCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("curve_cache_misses_total");
  return counter;
}

telemetry::Counter& StaleServedCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("curve_cache_stale_served_total");
  return counter;
}

telemetry::Counter& InflightWaitsCounter() {
  static telemetry::Counter& counter = telemetry::Registry::Global().GetCounter(
      "curve_cache_inflight_waits_total");
  return counter;
}

telemetry::Counter& BuildsCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("curve_cache_builds_total");
  return counter;
}

telemetry::Counter& BuildFailuresCounter() {
  static telemetry::Counter& counter = telemetry::Registry::Global().GetCounter(
      "curve_cache_build_failures_total");
  return counter;
}

telemetry::Counter& InvalidationsCounter() {
  static telemetry::Counter& counter = telemetry::Registry::Global().GetCounter(
      "curve_cache_invalidations_total");
  return counter;
}

telemetry::Gauge& EntriesGauge() {
  static telemetry::Gauge& gauge =
      telemetry::Registry::Global().GetGauge("curve_cache_entries");
  return gauge;
}

telemetry::Histogram& BuildLatency() {
  static telemetry::Histogram& histogram =
      telemetry::Registry::Global().GetHistogram(
          "curve_cache_build_latency_us");
  return histogram;
}

uint64_t FnvMix(uint64_t hash, uint64_t value) {
  // 64-bit FNV-1a over the value's 8 bytes.
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffu;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

void AppendHex(std::string* out, uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  out->append(buf);
}

}  // namespace

uint64_t FingerprintDataset(const data::Dataset& dataset) {
  uint64_t hash = 0xcbf29ce484222325ull;  // FNV offset basis.
  hash = FnvMix(hash, static_cast<uint64_t>(dataset.num_features()));
  hash = FnvMix(hash, static_cast<uint64_t>(dataset.num_examples()));
  hash = FnvMix(hash, static_cast<uint64_t>(dataset.task()));
  for (const data::Example& example : dataset.examples()) {
    for (double feature : example.features) {
      hash = FnvMix(hash, DoubleBits(feature));
    }
    hash = FnvMix(hash, DoubleBits(example.target));
  }
  return hash;
}

std::string CurveKey::ToString() const {
  std::string out;
  out.reserve(96 + model.size() + mechanism.size() + loss.size());
  AppendHex(&out, dataset_fingerprint);
  out += '/';
  out += model;
  out += '/';
  out += mechanism;
  out += '/';
  out += loss;
  out += '/';
  AppendHex(&out, seed);
  out += '/';
  AppendHex(&out, DoubleBits(min_inverse_ncp));
  out += '/';
  AppendHex(&out, DoubleBits(max_inverse_ncp));
  out += '/';
  out += std::to_string(grid_points);
  out += 'x';
  out += std::to_string(samples_per_point);
  return out;
}

CurveCache::Slot* CurveCache::GetSlot(const CurveKey& key) {
  const std::string id = key.ToString();
  {
    std::shared_lock<std::shared_mutex> lock(map_mu_);
    auto it = slots_.find(id);
    if (it != slots_.end()) {
      return it->second.get();
    }
  }
  std::unique_lock<std::shared_mutex> lock(map_mu_);
  auto [it, inserted] = slots_.try_emplace(id);
  if (inserted) {
    it->second = std::make_unique<Slot>();
    EntriesGauge().Set(static_cast<double>(slots_.size()));
  }
  return it->second.get();
}

StatusOr<std::shared_ptr<const pricing::ErrorCurve>> CurveCache::GetOrBuild(
    const CurveKey& key, const Builder& build, StalePolicy policy,
    const CancelToken* cancel) {
  Slot* slot = GetSlot(key);
  std::unique_lock<prof::ProfiledMutex> lock(slot->mu);
  bool counted_wait = false;
  while (true) {
    if (slot->version == slot->target_version && slot->curve != nullptr) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      HitsCounter().Increment();
      return slot->curve;
    }
    if (slot->building) {
      if (policy == StalePolicy::kServeStale && slot->curve != nullptr) {
        stale_served_.fetch_add(1, std::memory_order_relaxed);
        StaleServedCounter().Increment();
        return slot->curve;
      }
      if (!counted_wait) {
        counted_wait = true;
        inflight_waits_.fetch_add(1, std::memory_order_relaxed);
        InflightWaitsCounter().Increment();
      }
      const uint64_t waited_epoch = slot->build_epoch;
      while (slot->building) {
        NIMBUS_RETURN_IF_ERROR(
            CancelToken::Check(cancel, "curve-cache in-flight wait"));
        slot->cv.wait_for(lock, std::chrono::milliseconds(1));
      }
      if (slot->build_epoch != waited_epoch && slot->version != slot->target_version) {
        // The build this requester waited on completed without
        // committing; hand its status through rather than silently
        // becoming a second builder (the next fresh call retries).
        return slot->last_build_error;
      }
      continue;  // Re-evaluate: either committed (hit) or retry.
    }
    // Become the builder.
    misses_.fetch_add(1, std::memory_order_relaxed);
    MissesCounter().Increment();
    slot->building = true;
    const int64_t commit_version = slot->target_version;
    lock.unlock();

    StatusOr<pricing::ErrorCurve> built = [&] {
      telemetry::ScopedTimer timer(BuildLatency());
      builds_.fetch_add(1, std::memory_order_relaxed);
      BuildsCounter().Increment();
      return build();
    }();

    lock.lock();
    slot->building = false;
    ++slot->build_epoch;
    if (built.ok()) {
      slot->curve = std::make_shared<const pricing::ErrorCurve>(
          std::move(built).value());
      // Invalidations during the build keep the entry stale: commit at
      // the version we set out to build, not whatever target the key has
      // now, so the next requester rebuilds against the new target.
      slot->version = commit_version;
      slot->last_build_error = OkStatus();
      slot->cv.notify_all();
      if (slot->version == slot->target_version) {
        std::shared_ptr<const pricing::ErrorCurve> out = slot->curve;
        return out;
      }
      continue;  // Invalidated mid-build; loop decides what to do next.
    }
    build_failures_.fetch_add(1, std::memory_order_relaxed);
    BuildFailuresCounter().Increment();
    slot->last_build_error = built.status();
    slot->cv.notify_all();
    return built.status();
  }
}

void CurveCache::Invalidate(const CurveKey& key) {
  const std::string id = key.ToString();
  Slot* slot = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(map_mu_);
    auto it = slots_.find(id);
    if (it == slots_.end()) {
      return;
    }
    slot = it->second.get();
  }
  std::lock_guard<prof::ProfiledMutex> lock(slot->mu);
  if (slot->target_version == slot->version) {
    ++slot->target_version;
  }
  invalidations_.fetch_add(1, std::memory_order_relaxed);
  InvalidationsCounter().Increment();
}

int64_t CurveCache::VersionOf(const CurveKey& key) const {
  const std::string id = key.ToString();
  std::shared_lock<std::shared_mutex> lock(map_mu_);
  auto it = slots_.find(id);
  if (it == slots_.end()) {
    return 0;
  }
  std::lock_guard<prof::ProfiledMutex> slot_lock(it->second->mu);
  return it->second->version;
}

size_t CurveCache::size() const {
  std::shared_lock<std::shared_mutex> lock(map_mu_);
  return slots_.size();
}

CurveCache::Stats CurveCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.stale_served = stale_served_.load(std::memory_order_relaxed);
  stats.inflight_waits = inflight_waits_.load(std::memory_order_relaxed);
  stats.builds = builds_.load(std::memory_order_relaxed);
  stats.build_failures = build_failures_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace nimbus::market
