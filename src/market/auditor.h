#ifndef NIMBUS_MARKET_AUDITOR_H_
#define NIMBUS_MARKET_AUDITOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "market/catalog.h"
#include "ml/model.h"

namespace nimbus::market {

// The economic invariants the online auditor certifies continuously.
enum class AuditInvariant {
  kMispricing,     // Committed price != pricing function at its 1/δ.
  kMonotonicity,   // p(x) not monotone in inverse-NCP on the grid.
  kSubadditivity,  // p(x+y) > p(x) + p(y) somewhere on the grid.
  kConservation,   // Booked revenue != sum of committed sale prices.
};
const char* AuditInvariantName(AuditInvariant invariant);

// Per-lane commit tap: the bridge between one lane's commit sequencer
// and the auditor. The committing thread is the ONLY writer (it owns
// the lane's sequencer slot while calling Auditor::OnCommit); the
// auditor's background thread reads the conservation fingerprint
// through the seqlock. All fields are atomics, so concurrent
// read/write is data-race-free and a torn read is detected and
// retried via `version`.
class AuditTap {
 public:
  AuditTap() = default;
  AuditTap(const AuditTap&) = delete;
  AuditTap& operator=(const AuditTap&) = delete;

 private:
  friend class Auditor;

  int32_t index = -1;  // Position in the auditor's tap table.
  // Pure per-product sampling stream: fork(ticket) makes the decision
  // a function of (auditor seed, product, ticket) alone — identical
  // across worker counts and never touching any lane RNG stream.
  Rng sample_rng{0};

  // Conservation fingerprint, maintained incrementally by the
  // committing thread: baseline (booked revenue before the first
  // tapped commit) + accumulated (sum of tapped sale prices) must
  // track booked_after (the ledger's booked total after the latest
  // commit) exactly — the same identity journal replay re-derives.
  std::atomic<uint64_t> version{0};  // Seqlock (odd = write in flight).
  std::atomic<bool> has_baseline{false};
  std::atomic<double> baseline{0.0};
  std::atomic<double> accumulated{0.0};
  std::atomic<double> booked_after{0.0};
  std::atomic<int64_t> sales_after{0};
  std::atomic<int64_t> commits{0};
  // Test hook: revenue skew injected by TamperForTest to prove the
  // conservation check fires (never written in production).
  std::atomic<double> tamper{0.0};
};

struct AuditorOptions {
  // Fraction of committed sales sampled into the ring (1.0 = all).
  // The per-commit decision is Fork(ticket)-deterministic.
  double sample_rate = 1.0;
  // Seed of the sampling streams (independent of every market seed).
  uint64_t seed = 0xA0D1706ULL;
  // Inverse-NCP grid size for the monotonicity / subadditivity spot
  // checks (grid pairs are O(n^2) price evaluations, off-path).
  int grid_points = 9;
  // Relative tolerance of the re-price check and the conservation
  // identity (floating-point summation-order slack, not economics).
  double price_tol = 1e-6;
  double revenue_tol = 1e-6;
  // Background pass cadence.
  double pass_interval_seconds = 0.02;
  // Committed-sample ring capacity; the slowest consumer only delays
  // detection — overflow drops samples (counted), never blocks commit.
  size_t ring_capacity = 4096;
  // Pump telemetry::TimeseriesRing::Global() from the audit loop so
  // /statz history accrues and first-failure timestamps resolve.
  bool pump_timeseries = true;
  // Recent violations retained for /auditz and health reports.
  size_t max_recent_violations = 16;
};

// Always-on marketplace auditor: verifies, off the sequencer path, the
// economic guarantees the serving layer sells — price monotonicity in
// inverse-NCP along the served curve, subadditivity/arbitrage-freeness
// spot checks (pricing::AuditPricingFunction on an AuditGrid over the
// broker's quote range), exact re-pricing of sampled committed sales,
// and cross-shard revenue conservation (per-lane fingerprint == booked
// ledger total == catalog rollup). Strictly detection-only and
// observation-only: it never blocks or perturbs the quote path, never
// touches lane RNG streams or ledgers, and per-shard ledgers are
// byte-identical with the auditor on or off.
//
// Violations emit audit_violations_total{invariant} and
// audit_offering_violations_total{offering}, file a flight-recorder
// record flagged audit_violation (joined by /tracez), auto-dump the
// flight ring once per invariant (reasons "audit-violation-<i>"), and
// annotate the owning shard's health report.
class Auditor {
 public:
  explicit Auditor(AuditorOptions options, const Clock* clock = nullptr);
  ~Auditor();

  // Optional: enables the cross-shard rollup conservation check and
  // shard-state-aware pricing audits. `catalog` must outlive the
  // auditor.
  void AttachCatalog(Catalog* catalog);

  // Registers one serving lane; called by the serving layer before
  // traffic starts. Exactly one of `shard` / `fixed_market` is set:
  // shard lanes resolve their marketplace through the shard (so audits
  // survive recovery swaps) and join the cross-shard rollup check;
  // fixed-market lanes audit against the stable Marketplace pointer
  // and get fingerprint conservation only. Both must outlive the
  // auditor. The returned tap is owned by the auditor and valid for
  // its lifetime.
  AuditTap* RegisterLane(const std::string& product_id, Shard* shard,
                         Marketplace* fixed_market);

  // What the commit path hands the auditor for one successful commit.
  struct CommitView {
    ml::ModelKind model = ml::ModelKind::kLinearRegression;
    double inverse_ncp = 0.0;
    double price = 0.0;
    // Ledger totals AFTER this commit, read by the committing thread
    // (the only thread allowed to touch the live ledger).
    double booked_revenue_after = 0.0;
    int64_t sales_after = 0;
    uint64_t trace_id = 0;
    int64_t ticket = -1;
    bool degraded = false;
  };

  // Called by the committing thread while it owns the lane's sequencer
  // slot, AFTER a successful commit. Cost: a handful of relaxed
  // atomics plus one pure RNG fork; a sampled commit additionally
  // copies ~64 bytes into the lock-free ring. Never blocks. The
  // `audit.verify` fault point corrupts the sampled COPY's price (the
  // ledger is untouched) so detection itself is drill-testable.
  void OnCommit(AuditTap* tap, const CommitView& view);

  // Background audit loop (Start is idempotent; Stop joins, and the
  // destructor calls it).
  void Start();
  void Stop();
  bool running() const;

  // One synchronous audit pass: drain the sample ring, run the
  // per-sample and per-offering checks, then the conservation checks.
  // Returns the number of violations found in this pass. The loop
  // calls this; tests and drills call it directly for determinism.
  int RunPass();

  struct Violation {
    AuditInvariant invariant = AuditInvariant::kMispricing;
    std::string product;   // Owning shard / lane.
    std::string offering;  // Model kind ("" for conservation).
    std::string detail;
    int64_t ticket = -1;     // Sampled commit (-1 for pass checks).
    uint64_t trace_id = 0;   // Joined by /tracez when nonzero.
    int64_t detected_t_ns = 0;
  };

  struct Status {
    bool running = false;
    int64_t passes = 0;
    int64_t samples_audited = 0;
    int64_t samples_dropped = 0;
    int64_t commits_observed = 0;
    int64_t violations = 0;
    int64_t last_pass_t_ns = 0;
    int64_t first_violation_t_ns = 0;  // 0 = clean so far.
    std::vector<Violation> recent;     // Oldest first, bounded.
  };
  Status GetStatus() const;

  // {"running":..,"passes":..,"violations":[...]} — the /auditz body,
  // including each violated invariant's first-failure timestamp from
  // the global timeseries ring.
  std::string ToJson() const;

  // Test/drill hook: skews one lane's conservation fingerprint by
  // `revenue_delta` so the next pass must flag kConservation. Never
  // touches the ledger.
  void TamperForTest(const std::string& product_id, double revenue_delta);

  Auditor(const Auditor&) = delete;
  Auditor& operator=(const Auditor&) = delete;

 private:
  struct Slot;
  struct TapEntry;

  void Loop();
  // Drains published ring samples; returns violations found.
  int DrainAndCheck(std::vector<Violation>* out);
  int CheckConservation(std::vector<Violation>* out);
  void FileViolation(Violation violation);

  const AuditorOptions options_;
  const Clock* const clock_;
  Catalog* catalog_ = nullptr;

  // Tap table: registration happens before traffic (serving-layer
  // Start), reads after; guarded by taps_mu_ for the registration
  // window.
  mutable std::mutex taps_mu_;
  std::vector<std::unique_ptr<TapEntry>> taps_;

  // Lock-free MPSC sample ring (writers: lane sequencers, consumer:
  // the audit loop).
  std::vector<Slot> slots_;
  std::atomic<int64_t> head_{0};
  int64_t consumed_ = 0;  // Audit-thread-only.
  std::atomic<int64_t> dropped_{0};

  // Status and violation log.
  mutable std::mutex status_mu_;
  int64_t passes_ = 0;
  int64_t samples_audited_ = 0;
  int64_t violations_ = 0;
  int64_t last_pass_t_ns_ = 0;
  int64_t first_violation_t_ns_ = 0;
  std::vector<Violation> recent_;

  // Per-offering curve-audit memo: the pricing function instance last
  // certified per (tap, model), so the O(grid^2) check runs once per
  // curve version rather than once per sample.
  std::map<std::pair<int32_t, int32_t>, const void*> audited_curves_;

  mutable std::mutex loop_mu_;
  std::condition_variable loop_cv_;
  bool stop_ = false;
  bool loop_running_ = false;
  std::thread loop_;
};

}  // namespace nimbus::market

#endif  // NIMBUS_MARKET_AUDITOR_H_
