#include "market/research_estimation.h"

#include <algorithm>
#include <cmath>

#include "solver/isotonic.h"

namespace nimbus::market {

StatusOr<std::vector<revenue::BuyerPoint>> EstimateResearchFromLedger(
    const Ledger& ledger, ml::ModelKind model,
    const std::vector<double>& versions) {
  if (versions.empty()) {
    return InvalidArgumentError("need at least one version grid point");
  }
  double prev = 0.0;
  for (double v : versions) {
    if (!(v > prev)) {
      return InvalidArgumentError(
          "versions must be strictly increasing and positive");
    }
    prev = v;
  }
  const size_t n = versions.size();
  std::vector<double> counts(n, 0.0);
  std::vector<double> max_paid(n, 0.0);
  int transactions = 0;
  for (const LedgerEntry& entry : ledger.entries()) {
    if (entry.model != model) {
      continue;
    }
    ++transactions;
    // Assign to the nearest grid version.
    size_t best = 0;
    double best_distance = std::fabs(entry.inverse_ncp - versions[0]);
    for (size_t j = 1; j < n; ++j) {
      const double distance = std::fabs(entry.inverse_ncp - versions[j]);
      if (distance < best_distance) {
        best_distance = distance;
        best = j;
      }
    }
    counts[best] += 1.0;
    max_paid[best] = std::max(max_paid[best], entry.price);
  }
  if (transactions == 0) {
    return FailedPreconditionError(
        "no transactions recorded for model '" +
        std::string(ml::ModelKindToString(model)) + "'");
  }

  // Forward-fill valuation estimates for unsold versions, then smooth to
  // a monotone non-decreasing curve (the DP precondition).
  std::vector<double> values = max_paid;
  double running = 0.0;
  for (size_t j = 0; j < n; ++j) {
    if (counts[j] == 0.0) {
      values[j] = running;
    } else {
      running = values[j];
    }
  }
  NIMBUS_ASSIGN_OR_RETURN(values, solver::IsotonicIncreasing(values));

  // Plus-one smoothing on the demand masses, normalized to total 1.
  std::vector<revenue::BuyerPoint> research(n);
  double total_mass = 0.0;
  for (size_t j = 0; j < n; ++j) {
    research[j].a = versions[j];
    research[j].b = counts[j] + 1.0;
    research[j].v = std::max(0.0, values[j]);
    total_mass += research[j].b;
  }
  for (revenue::BuyerPoint& p : research) {
    p.b /= total_mass;
  }
  NIMBUS_RETURN_IF_ERROR(revenue::ValidateBuyerPoints(
      research, /*require_monotone_valuations=*/true));
  return research;
}

}  // namespace nimbus::market
