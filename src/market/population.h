#ifndef NIMBUS_MARKET_POPULATION_H_
#define NIMBUS_MARKET_POPULATION_H_

#include <string>

#include "common/random.h"
#include "common/statusor.h"
#include "market/broker.h"
#include "market/curves.h"

namespace nimbus::market {

// A stochastic buyer population: instead of the deterministic buyer
// points of §5's market research, buyers arrive one by one with a
// version preference drawn from the demand curve, an idiosyncratic
// valuation around the value curve, and one of the three §3.2 purchase
// strategies. This is the "live market" view of the same model the
// benches evaluate analytically.
struct PopulationSpec {
  int num_buyers = 200;
  ValueShape value_shape = ValueShape::kConcave;
  DemandShape demand_shape = DemandShape::kUniform;
  double a_min = 1.0;
  double a_max = 100.0;
  double v_max = 100.0;
  double value_floor = 2.0;
  // Relative stddev of the multiplicative valuation noise (>= 0):
  // v_i = curve(t_i) * max(0, 1 + noise * N(0,1)).
  double valuation_noise = 0.15;
  // Strategy mix; must be non-negative and sum to something positive.
  double weight_point_purchase = 1.0;
  double weight_error_budget = 1.0;
  double weight_price_budget = 1.0;
};

// Outcome of one stochastic market run.
struct PopulationOutcome {
  int buyers = 0;
  int served = 0;
  double revenue = 0.0;
  double affordability = 0.0;  // served / buyers.
  // Consumer surplus: Σ (valuation - price paid) over served buyers.
  double total_surplus = 0.0;
  int point_purchases = 0;
  int error_budget_purchases = 0;
  int price_budget_purchases = 0;
};

// Draws a position t in [0, 1] from the demand density by rejection
// sampling (the densities are bounded by 2.05).
double SampleDemandPosition(DemandShape shape, Rng& rng);

// Runs the population against the broker (whose pricing function must be
// installed first). `report_loss_name` selects the error curve buyers
// reason about. Deterministic given `rng`.
StatusOr<PopulationOutcome> RunPopulation(Broker& broker,
                                          const PopulationSpec& spec,
                                          const std::string& report_loss_name,
                                          Rng& rng);

}  // namespace nimbus::market

#endif  // NIMBUS_MARKET_POPULATION_H_
