#include "market/population.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace nimbus::market {
namespace {

Status ValidateSpec(const PopulationSpec& spec) {
  if (spec.num_buyers < 1) {
    return InvalidArgumentError("need at least one buyer");
  }
  if (!(spec.a_min > 0.0) || !(spec.a_max > spec.a_min)) {
    return InvalidArgumentError("need 0 < a_min < a_max");
  }
  if (spec.value_floor < 0.0 || spec.v_max < spec.value_floor) {
    return InvalidArgumentError("need 0 <= value_floor <= v_max");
  }
  if (spec.valuation_noise < 0.0) {
    return InvalidArgumentError("valuation_noise must be >= 0");
  }
  const double total = spec.weight_point_purchase +
                       spec.weight_error_budget + spec.weight_price_budget;
  if (spec.weight_point_purchase < 0.0 || spec.weight_error_budget < 0.0 ||
      spec.weight_price_budget < 0.0 || !(total > 0.0)) {
    return InvalidArgumentError("strategy weights must be >= 0, sum > 0");
  }
  return OkStatus();
}

enum class Strategy { kPoint, kErrorBudget, kPriceBudget };

Strategy DrawStrategy(const PopulationSpec& spec, Rng& rng) {
  const double total = spec.weight_point_purchase +
                       spec.weight_error_budget + spec.weight_price_budget;
  const double u = rng.Uniform(0.0, total);
  if (u < spec.weight_point_purchase) {
    return Strategy::kPoint;
  }
  if (u < spec.weight_point_purchase + spec.weight_error_budget) {
    return Strategy::kErrorBudget;
  }
  return Strategy::kPriceBudget;
}

}  // namespace

double SampleDemandPosition(DemandShape shape, Rng& rng) {
  // All demand densities are bounded above by 2.05 on [0, 1].
  constexpr double kDensityBound = 2.05;
  for (int attempt = 0; attempt < 10000; ++attempt) {
    const double t = rng.Uniform();
    if (rng.Uniform(0.0, kDensityBound) <= DemandDensityAt(shape, t)) {
      return t;
    }
  }
  // Practically unreachable: acceptance probability is >= 1/41.
  return rng.Uniform();
}

StatusOr<PopulationOutcome> RunPopulation(Broker& broker,
                                          const PopulationSpec& spec,
                                          const std::string& report_loss_name,
                                          Rng& rng) {
  NIMBUS_RETURN_IF_ERROR(ValidateSpec(spec));
  // Resolve the error curve up front so failures surface before sales.
  NIMBUS_ASSIGN_OR_RETURN(std::shared_ptr<const pricing::ErrorCurve> curve,
                          broker.GetErrorCurve(report_loss_name));

  PopulationOutcome outcome;
  outcome.buyers = spec.num_buyers;
  const double a_lo = std::max(spec.a_min, broker.options().min_inverse_ncp);
  const double a_hi = std::min(spec.a_max, broker.options().max_inverse_ncp);
  if (!(a_hi > a_lo)) {
    return InvalidArgumentError(
        "population version range does not overlap the broker's");
  }

  for (int i = 0; i < spec.num_buyers; ++i) {
    const double t = SampleDemandPosition(spec.demand_shape, rng);
    const double desired_x = a_lo + t * (a_hi - a_lo);
    const double base_value =
        spec.value_floor + (spec.v_max - spec.value_floor) *
                               NormalizedValueAt(spec.value_shape, t);
    const double valuation =
        base_value *
        std::max(0.0, 1.0 + spec.valuation_noise * rng.Gaussian());

    StatusOr<Broker::Purchase> purchase = InfeasibleError("no attempt");
    Strategy strategy = DrawStrategy(spec, rng);
    switch (strategy) {
      case Strategy::kPoint: {
        // Buy the desired version iff it is within the budget.
        const double price =
            broker.pricing_function().PriceAtInverseNcp(desired_x);
        if (price <= valuation) {
          purchase = broker.BuyAtInverseNcp(desired_x, report_loss_name);
        }
        break;
      }
      case Strategy::kErrorBudget: {
        // Ask for the quality of the desired version; walk away if the
        // cheapest qualifying version exceeds the valuation.
        const double budget = curve->ErrorAtInverseNcp(desired_x);
        StatusOr<double> x = curve->MinInverseNcpForErrorBudget(budget);
        if (x.ok() &&
            broker.pricing_function().PriceAtInverseNcp(*x) <= valuation) {
          purchase = broker.BuyWithErrorBudget(budget, report_loss_name);
        }
        break;
      }
      case Strategy::kPriceBudget: {
        purchase = broker.BuyWithPriceBudget(valuation, report_loss_name);
        break;
      }
    }
    if (!purchase.ok()) {
      continue;
    }
    ++outcome.served;
    outcome.revenue += purchase->price;
    outcome.total_surplus += std::max(0.0, valuation - purchase->price);
    switch (strategy) {
      case Strategy::kPoint:
        ++outcome.point_purchases;
        break;
      case Strategy::kErrorBudget:
        ++outcome.error_budget_purchases;
        break;
      case Strategy::kPriceBudget:
        ++outcome.price_budget_purchases;
        break;
    }
  }
  outcome.affordability =
      static_cast<double>(outcome.served) / outcome.buyers;
  return outcome;
}

}  // namespace nimbus::market
