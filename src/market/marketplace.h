#ifndef NIMBUS_MARKET_MARKETPLACE_H_
#define NIMBUS_MARKET_MARKETPLACE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "market/broker.h"
#include "market/checkpointer.h"
#include "market/collusion.h"
#include "market/journal.h"
#include "market/ledger.h"
#include "market/snapshot.h"
#include "ml/model.h"

namespace nimbus::market {

// The full Nimbus marketplace: one dataset, a menu M of ML models (each
// served by its own Broker), a shared transaction ledger, and a
// collusion monitor. This is the system the demonstration paper shows —
// buyers browse offerings across models, compare price-error menus, and
// purchase attributed versions, while the seller gets consolidated
// revenue reporting.
class Marketplace {
 public:
  // Creates an empty marketplace over one train/test split. `options`
  // apply to every broker added later.
  Marketplace(data::TrainTestSplit split, Broker::Options options);

  Marketplace(Marketplace&&) = default;
  Marketplace& operator=(Marketplace&&) = default;
  Marketplace(const Marketplace&) = delete;
  Marketplace& operator=(const Marketplace&) = delete;

  // Adds one menu entry: trains the model's optimal instance and installs
  // the given arbitrage-free pricing function. Fails when the model is
  // incompatible with the dataset task or already offered.
  Status AddOffering(ml::ModelKind kind, double ridge_mu,
                     std::shared_ptr<const pricing::PricingFunction> pricing);

  // Model kinds currently on the menu, in insertion order.
  std::vector<ml::ModelKind> Offerings() const;

  // The broker serving one model kind; kNotFound when not offered.
  StatusOr<Broker*> BrokerFor(ml::ModelKind kind);

  // One row of the cross-model catalog shown to buyers.
  struct CatalogRow {
    ml::ModelKind model = ml::ModelKind::kLinearRegression;
    std::string report_loss;
    double best_expected_error = 0.0;   // At the most precise version.
    double worst_expected_error = 0.0;  // At the noisiest version.
    double min_price = 0.0;
    double max_price = 0.0;
  };
  // Builds the catalog (one row per offering, using each model's first
  // report loss).
  StatusOr<std::vector<CatalogRow>> Catalog();

  // Purchase with attribution: routes to the model's broker, records the
  // sale in the ledger and the collusion monitor.
  StatusOr<Broker::Purchase> Buy(const std::string& buyer_id,
                                 ml::ModelKind kind, double inverse_ncp,
                                 const std::string& report_loss_name);

  // Attributed price-budget purchase (Broker::BuyWithPriceBudget with
  // ledger/monitor recording).
  StatusOr<Broker::Purchase> BuyWithPriceBudget(
      const std::string& buyer_id, ml::ModelKind kind, double price_budget,
      const std::string& report_loss_name);

  // Books a quote produced by Broker::QuoteAtInverseNcp: journals and
  // records the ledger entry, updates the offering's collusion monitor
  // and the broker's revenue counters, and returns the ledger sequence.
  // This is the commit half of the serving layer's quote/commit split —
  // quotes run concurrently, commits are serialized by the caller (the
  // service's sequencer). Safe to retry after a kInternal journal
  // failure: Ledger::Record leaves memory untouched on failure and
  // Journal::Append is idempotent per sequence. `trace` (optional) nests
  // the durable journal append under the committing request's spans.
  StatusOr<int64_t> RecordQuotedSale(
      const std::string& buyer_id, ml::ModelKind kind,
      const Broker::Purchase& purchase,
      const telemetry::TraceContext* trace = nullptr);

  // Flushes the ledger's journal (OK when journaling is off).
  Status FlushJournal();

  // Retires the attached journal in place (Journal::Discard): buffered
  // bytes are best-effort flushed, the file is closed, and the handle
  // is permanently poisoned — but it stays ATTACHED, so any late
  // Record on this retired instance fails kFailedPrecondition instead
  // of silently committing an unjournaled sale that the replacement
  // marketplace (which re-opens the same path after shard quarantine)
  // would never see. No-op when journaling is off.
  void AbandonJournal();

  const Ledger& ledger() const { return ledger_; }
  double total_revenue() const { return ledger_.TotalRevenue(); }

  // Loads the entry rows a deferred-hydration restore left behind the
  // snapshot loader (no-op on a hydrated ledger). Row-level audit
  // queries (ledger().entries(), ToCsv) require this first.
  Status HydrateLedger() { return ledger_.Hydrate(); }

  // ----- Durability & crash recovery -------------------------------------
  // Attaches a write-ahead journal at `path` (created when absent) so
  // every sale is durable before it is acknowledged. Attach before the
  // first sale for a complete audit trail.
  Status EnableJournal(const std::string& path,
                       Journal::Options options = Journal::Options{});

  // Restores the marketplace's transactional state from a journal
  // written by a previous process: replays the longest valid record
  // prefix into the ledger (truncating a torn tail), rebuilds every
  // offering's collusion-monitor history and broker revenue/sales
  // counters, and re-attaches the journal so new sales append after the
  // recovered prefix. Must be called after the same AddOffering sequence
  // as the crashed process and before any sale; the restored
  // TotalRevenue, sequence numbers, SalesPerPricePoint, and monitor
  // assessments are bit-identical to the pre-crash marketplace.
  Status RestoreFromJournal(const std::string& path,
                            Journal::Options options = Journal::Options{});

  // ----- Checkpointing (snapshot + journal compaction) -------------------
  // Turns on checkpointing for the attached journal (EnableJournal /
  // RestoreFromCheckpoint must have run first). Resumes generation
  // numbering from the on-disk manifest. After this, commits trigger
  // MaybeCheckpoint per `policy`, and CheckpointNow / checkpoint-on-drain
  // work on demand.
  Status EnableCheckpoints(CheckpointPolicy policy);
  bool checkpoints_enabled() const { return checkpointer_ != nullptr; }
  // Stats of the active checkpointer; kFailedPrecondition when
  // checkpointing is off.
  StatusOr<Checkpointer::Stats> CheckpointStats() const;

  // Captures the full transactional state (hydrating the ledger's entry
  // log first if this marketplace was restored with deferred hydration).
  StatusOr<snapshot::State> CaptureSnapshotState();

  // Takes a checkpoint unconditionally (subject to the checkpointer's
  // no-op-when-unchanged rule) and returns the committed generation.
  StatusOr<int64_t> CheckpointNow();

  // Takes a checkpoint iff the policy says one is due. Called at the end
  // of every successful commit (RecordQuotedSale / Buy); callers are
  // serialized by the service's commit sequencer, so snapshots observe a
  // quiescent ledger. Checkpoint failures are absorbed into telemetry
  // and a warning — serving never fails because a snapshot could not be
  // written (the journal still holds the full tail).
  Status MaybeCheckpoint();

  // Restores from the newest VALID snapshot generation plus the journal
  // tail past it — O(delta) in the records since that snapshot, not in
  // total history. The recovery ladder: for each generation, newest
  // first, structurally validate the snapshot (footer + per-section
  // CRCs), collect the journal tail [snapshot.sequence, end) from the
  // live segment (and the `.prev` segment left by a rotation crash
  // window), and verify the tail is gap-free; the first generation that
  // passes is applied — aggregates and monitor/broker counters install
  // directly from the snapshot, only the tail replays through the
  // ledger. A torn or corrupt snapshot falls back to the previous
  // generation, and when no generation is usable, to a full journal
  // replay (RestoreFromJournal semantics) — never silent data loss.
  // Preconditions match RestoreFromJournal: same AddOffering sequence as
  // the crashed process, no sales yet. Re-attaches the journal (healing
  // a torn tail, recreating a segment lost in the rotation crash
  // window) so new sales append after the recovered prefix.
  struct RestoreOptions {
    // Applied when re-attaching the journal after restore.
    Journal::Options journal;
    // Load + CRC-verify the snapshot's full entry log during restore
    // (audit queries need it). Off = defer hydration: restore stays
    // O(delta) and the entry log loads on first Hydrate()/entries() use.
    bool hydrate = true;
  };
  struct RestoreReport {
    enum class Source {
      kSnapshot,          // Newest generation was valid.
      kPreviousSnapshot,  // Fell back at least one generation.
      kFullReplay,        // No usable snapshot; replayed whole journal.
    };
    Source source = Source::kFullReplay;
    int64_t generation = 0;        // Generation applied (0 = full replay).
    int64_t snapshot_records = 0;  // Records covered by the snapshot.
    int64_t tail_records = 0;      // Records replayed from the journal.
    int snapshots_rejected = 0;    // Generations rejected before success.
  };
  Status RestoreFromCheckpoint(const std::string& path,
                               RestoreOptions options,
                               RestoreReport* report = nullptr);
  // Defaulted-options overload (an in-class default argument cannot use
  // RestoreOptions{} before the struct's initializers are complete).
  Status RestoreFromCheckpoint(const std::string& path) {
    return RestoreFromCheckpoint(path, RestoreOptions{});
  }

  // True while RestoreFromCheckpoint/RestoreFromJournal is rebuilding
  // state. The serving layer's health checks report "recovering" (not
  // healthy) until restore completes.
  bool recovering() const {
    return recovering_ != nullptr &&
           recovering_->load(std::memory_order_acquire);
  }

  // Per-offering collusion monitor (versions of different models cannot
  // be combined, so histories are tracked per model).
  StatusOr<const CollusionMonitor*> MonitorFor(ml::ModelKind kind) const;

  // Buyers flagged by any offering's monitor, sorted and deduplicated.
  std::vector<std::string> SuspiciousBuyers() const;

  // The error-curve cache shared by every offering's broker (nullptr
  // when Broker::Options::use_curve_cache is off). Exposed so the
  // serving layer and the soak can assert on hit/miss/single-flight
  // telemetry.
  const CurveCache* curve_cache() const { return curve_cache_.get(); }

 private:
  data::TrainTestSplit split_;
  Broker::Options options_;
  // Created lazily by the first AddOffering with use_curve_cache set.
  std::shared_ptr<CurveCache> curve_cache_;
  std::vector<ml::ModelKind> offering_order_;
  std::map<ml::ModelKind, Broker> brokers_;
  std::map<ml::ModelKind, std::shared_ptr<const pricing::PricingFunction>>
      pricing_;
  std::map<ml::ModelKind, CollusionMonitor> monitors_;
  Ledger ledger_;
  std::unique_ptr<Checkpointer> checkpointer_;
  // Heap-allocated so the marketplace stays movable (std::atomic is
  // not); shared with nothing — the indirection is purely for moves.
  std::shared_ptr<std::atomic<bool>> recovering_ =
      std::make_shared<std::atomic<bool>>(false);
};

}  // namespace nimbus::market

#endif  // NIMBUS_MARKET_MARKETPLACE_H_
