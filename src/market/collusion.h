#ifndef NIMBUS_MARKET_COLLUSION_H_
#define NIMBUS_MARKET_COLLUSION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "pricing/pricing_function.h"

namespace nimbus::market {

// Watches purchase histories for the Theorem 5 combination executed
// across transactions: a buyer who accumulates versions with precisions
// x_1, ..., x_k can average them into a model of precision Σ x_i (the
// inverse variances add). Under an arbitrage-free pricing function the
// combined list price p(Σ x_i) never exceeds what they paid — so a buyer
// whose history beats the list price is direct evidence that the
// installed pricing function leaks arbitrage (e.g. after a manual price
// override). Brokers run this as a self-check in production.
class CollusionMonitor {
 public:
  explicit CollusionMonitor(
      std::shared_ptr<const pricing::PricingFunction> pricing);

  // Updates the pricing function (e.g. after the seller re-negotiates).
  void SetPricingFunction(
      std::shared_ptr<const pricing::PricingFunction> pricing);

  // Records one completed sale. `inverse_ncp` and `price_paid` must be
  // positive / non-negative respectively.
  Status RecordPurchase(const std::string& buyer_id, double inverse_ncp,
                        double price_paid);

  struct Assessment {
    int purchases = 0;
    double combined_inverse_ncp = 0.0;   // Σ x_i.
    double total_paid = 0.0;             // Σ prices.
    double combined_list_price = 0.0;    // p(Σ x_i) under current pricing.
    // True when the buyer synthesized the combined precision for less
    // than its list price (with at least two purchases).
    bool suspicious = false;
  };

  // Assesses one buyer; kNotFound for unknown ids.
  StatusOr<Assessment> Assess(const std::string& buyer_id,
                              double tol = 1e-9) const;

  // All buyer ids whose assessment is suspicious, sorted.
  std::vector<std::string> SuspiciousBuyers(double tol = 1e-9) const;

  int known_buyers() const { return static_cast<int>(history_.size()); }

  // Accumulated per-buyer history. Public so the checkpointer can
  // capture it verbatim (and restore it bit-identically).
  struct BuyerHistory {
    int purchases = 0;
    double combined_inverse_ncp = 0.0;
    double total_paid = 0.0;
  };

  // Snapshot capture: every tracked buyer's accumulated history.
  const std::map<std::string, BuyerHistory>& history() const {
    return history_;
  }

  // Snapshot restore: installs one buyer's accumulated history exactly
  // as captured (no re-derivation — the doubles are accumulator states,
  // so copying them preserves bit-identical assessments). The monitor
  // must not already know the buyer.
  Status RestoreHistory(const std::string& buyer_id,
                        const BuyerHistory& history);

 private:
  std::shared_ptr<const pricing::PricingFunction> pricing_;
  std::map<std::string, BuyerHistory> history_;
};

}  // namespace nimbus::market

#endif  // NIMBUS_MARKET_COLLUSION_H_
