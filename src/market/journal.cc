#include "market/journal.h"

#include <unistd.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"

namespace nimbus::market {
namespace {

constexpr char kMagic[8] = {'N', 'I', 'M', 'B', 'U', 'S', 'J', '1'};
constexpr size_t kRecordHeaderBytes = 8;  // u32 length + u32 crc.
// A sale record is a few dozen bytes; anything near this bound is a
// corrupted length field, not a real record.
constexpr uint32_t kMaxPayloadBytes = 1u << 20;

void AppendRaw(std::string& out, const void* data, size_t size) {
  out.append(static_cast<const char*>(data), size);
}

template <typename T>
void AppendScalar(std::string& out, T value) {
  AppendRaw(out, &value, sizeof(value));
}

template <typename T>
bool ReadScalar(const std::string& in, size_t& offset, T* value) {
  if (in.size() - offset < sizeof(T)) {
    return false;
  }
  std::memcpy(value, in.data() + offset, sizeof(T));
  offset += sizeof(T);
  return true;
}

StatusOr<LedgerEntry> DecodePayload(const std::string& payload) {
  LedgerEntry entry;
  size_t offset = 0;
  uint8_t kind = 0;
  uint32_t buyer_len = 0;
  if (!ReadScalar(payload, offset, &entry.sequence) ||
      !ReadScalar(payload, offset, &kind) ||
      !ReadScalar(payload, offset, &entry.inverse_ncp) ||
      !ReadScalar(payload, offset, &entry.price) ||
      !ReadScalar(payload, offset, &entry.expected_error) ||
      !ReadScalar(payload, offset, &buyer_len)) {
    return InvalidArgumentError("journal payload shorter than fixed fields");
  }
  switch (static_cast<ml::ModelKind>(kind)) {
    case ml::ModelKind::kLinearRegression:
    case ml::ModelKind::kLogisticRegression:
    case ml::ModelKind::kLinearSvm:
    case ml::ModelKind::kPoissonRegression:
      break;
    default:
      return InvalidArgumentError("journal payload has unknown model kind " +
                                  std::to_string(kind));
  }
  entry.model = static_cast<ml::ModelKind>(kind);
  if (payload.size() - offset != buyer_len) {
    return InvalidArgumentError("journal payload buyer-id length mismatch");
  }
  entry.buyer_id = payload.substr(offset, buyer_len);
  return entry;
}

}  // namespace

uint32_t Journal::Crc32(const void* data, size_t size) {
  // Standard reflected CRC-32 (polynomial 0xEDB88320), table built once.
  static const uint32_t* table = [] {
    auto* t = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string Journal::EncodePayload(const LedgerEntry& entry) {
  std::string payload;
  payload.reserve(37 + entry.buyer_id.size());
  AppendScalar(payload, entry.sequence);
  AppendScalar(payload, static_cast<uint8_t>(entry.model));
  AppendScalar(payload, entry.inverse_ncp);
  AppendScalar(payload, entry.price);
  AppendScalar(payload, entry.expected_error);
  AppendScalar(payload, static_cast<uint32_t>(entry.buyer_id.size()));
  AppendRaw(payload, entry.buyer_id.data(), entry.buyer_id.size());
  return payload;
}

StatusOr<Journal> Journal::Open(const std::string& path, Options options) {
  bool needs_header = true;
  {
    std::ifstream probe(path, std::ios::binary);
    if (probe) {
      char magic[sizeof(kMagic)] = {};
      probe.read(magic, sizeof(magic));
      const auto got = probe.gcount();
      if (got == 0) {
        needs_header = true;  // Exists but empty (crash before header).
      } else if (got < static_cast<std::streamsize>(sizeof(kMagic)) ||
                 std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        return InvalidArgumentError("'" + path + "' is not a nimbus journal");
      } else {
        needs_header = false;
      }
    }
  }
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return InvalidArgumentError("cannot open journal '" + path +
                                "' for appending");
  }
  Journal journal(path, options, file);
  if (needs_header) {
    if (std::fwrite(kMagic, 1, sizeof(kMagic), file) != sizeof(kMagic)) {
      return InternalError("cannot write journal header to '" + path + "'");
    }
    NIMBUS_RETURN_IF_ERROR(journal.Flush());
  }
  return journal;
}

Journal::Journal(Journal&& other) noexcept
    : path_(std::move(other.path_)),
      options_(other.options_),
      file_(other.file_),
      buffered_sequence_(other.buffered_sequence_),
      buffered_payload_size_(other.buffered_payload_size_),
      buffered_payload_crc_(other.buffered_payload_crc_),
      poisoned_(other.poisoned_),
      mu_(std::move(other.mu_)) {
  other.file_ = nullptr;
}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) {
      std::fclose(file_);
    }
    path_ = std::move(other.path_);
    options_ = other.options_;
    file_ = other.file_;
    buffered_sequence_ = other.buffered_sequence_;
    buffered_payload_size_ = other.buffered_payload_size_;
    buffered_payload_crc_ = other.buffered_payload_crc_;
    poisoned_ = other.poisoned_;
    mu_ = std::move(other.mu_);
    other.file_ = nullptr;
  }
  return *this;
}

Journal::~Journal() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Status Journal::Append(const LedgerEntry& entry,
                       const telemetry::TraceContext* trace) {
  telemetry::TraceSpan span("journal.append", trace);
  FAULT_POINT("journal.append");
  if (mu_ == nullptr) {  // Moved-from shell.
    return FailedPreconditionError("journal '" + path_ + "' is closed");
  }
  std::lock_guard<prof::ProfiledMutex> lock(*mu_);
  if (file_ == nullptr) {
    return FailedPreconditionError("journal '" + path_ + "' is closed");
  }
  if (poisoned_) {
    span.Annotate("poisoned");
    return FailedPreconditionError(
        "journal '" + path_ +
        "' poisoned by an earlier short write; recover before appending");
  }
  const std::string payload = EncodePayload(entry);
  const uint32_t payload_crc = Crc32(payload.data(), payload.size());
  if (buffered_sequence_ == entry.sequence) {
    span.Annotate("retry-reflush");
    // Idempotent retry: the previous attempt for this very record
    // already buffered its bytes and failed only at the flush/fsync
    // stage — re-flushing is all that is left. Re-buffering here would
    // duplicate the record and break replay's dense-sequence invariant.
    // The retry must be the SAME record, though: a sequence number can
    // be reused by the ledger after a retry-exhausted (abandoned)
    // append, and the abandoned bytes already sit in the write buffer.
    // Accepting a different payload under that sequence would flush the
    // stale record and silently diverge journal and ledger.
    if (payload.size() != buffered_payload_size_ ||
        payload_crc != buffered_payload_crc_) {
      poisoned_ = true;
      span.Annotate("poisoned");
      return FailedPreconditionError(
          "journal '" + path_ + "' holds an abandoned record for sequence " +
          std::to_string(entry.sequence) +
          " with a different payload (journal poisoned; recovery required)");
    }
  } else {
    std::string record;
    record.reserve(kRecordHeaderBytes + payload.size());
    AppendScalar(record, static_cast<uint32_t>(payload.size()));
    AppendScalar(record, payload_crc);
    AppendRaw(record, payload.data(), payload.size());
    if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
      poisoned_ = true;
      span.Annotate("poisoned");
      return InternalError("short write appending to journal '" + path_ +
                           "' (journal poisoned; recovery required)");
    }
    buffered_sequence_ = entry.sequence;
    buffered_payload_size_ = static_cast<uint32_t>(payload.size());
    buffered_payload_crc_ = payload_crc;
  }
  if (options_.fsync == FsyncPolicy::kEveryRecord) {
    NIMBUS_RETURN_IF_ERROR(FlushLocked());
  }
  buffered_sequence_ = -1;
  return OkStatus();
}

Status Journal::Flush() {
  if (mu_ == nullptr) {  // Moved-from shell.
    return FailedPreconditionError("journal '" + path_ + "' is closed");
  }
  std::lock_guard<prof::ProfiledMutex> lock(*mu_);
  return FlushLocked();
}

Status Journal::FlushLocked() {
  FAULT_POINT("journal.fsync");
  if (file_ == nullptr) {
    return FailedPreconditionError("journal '" + path_ + "' is closed");
  }
  if (std::fflush(file_) != 0) {
    return InternalError("fflush failed on journal '" + path_ + "'");
  }
  if (options_.fsync == FsyncPolicy::kEveryRecord &&
      ::fsync(fileno(file_)) != 0) {
    return InternalError("fsync failed on journal '" + path_ + "'");
  }
  return OkStatus();
}

Status Journal::Close() {
  if (mu_ == nullptr) {  // Moved-from shell.
    return OkStatus();
  }
  std::lock_guard<prof::ProfiledMutex> lock(*mu_);
  if (file_ == nullptr) {
    return OkStatus();
  }
  const Status flushed = FlushLocked();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  NIMBUS_RETURN_IF_ERROR(flushed);
  if (rc != 0) {
    return InternalError("fclose failed on journal '" + path_ + "'");
  }
  return OkStatus();
}

StatusOr<std::vector<LedgerEntry>> Journal::Replay(const std::string& path,
                                                   RecoveryReport* report) {
  return Replay(path, report, ReplayOptions{});
}

StatusOr<std::vector<LedgerEntry>> Journal::Replay(const std::string& path,
                                                   RecoveryReport* report,
                                                   ReplayOptions options) {
  RecoveryReport local;
  RecoveryReport& rep = report != nullptr ? *report : local;
  rep = RecoveryReport{};

  std::string bytes;
  {
    std::ifstream file(path, std::ios::binary);
    if (!file) {
      return NotFoundError("cannot open journal '" + path + "'");
    }
    std::ostringstream content;
    content << file.rdbuf();
    bytes = std::move(content).str();
  }

  std::vector<LedgerEntry> entries;
  size_t offset = 0;
  if (bytes.empty()) {
    // A fresh (or fully truncated) journal: clean and empty, so Open can
    // stamp the header and start appending.
  } else if (bytes.size() < sizeof(kMagic)) {
    // Crash mid-header write: nothing recoverable, but the file is a
    // legitimate torn journal, not garbage.
    rep.tail = TailState::kTorn;
    rep.detail = "truncated journal header";
  } else if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return InvalidArgumentError("'" + path + "' is not a nimbus journal");
  } else {
    offset = sizeof(kMagic);
    while (offset < bytes.size()) {
      const size_t remaining = bytes.size() - offset;
      if (remaining < kRecordHeaderBytes) {
        rep.tail = TailState::kTorn;
        rep.detail = "partial record header at byte " + std::to_string(offset);
        break;
      }
      uint32_t length = 0;
      uint32_t crc = 0;
      size_t cursor = offset;
      ReadScalar(bytes, cursor, &length);
      ReadScalar(bytes, cursor, &crc);
      if (length > kMaxPayloadBytes) {
        rep.tail = TailState::kCorrupt;
        rep.detail = "implausible payload length " + std::to_string(length) +
                     " at byte " + std::to_string(offset);
        break;
      }
      if (remaining - kRecordHeaderBytes < length) {
        rep.tail = TailState::kTorn;
        rep.detail = "partial record payload at byte " + std::to_string(offset);
        break;
      }
      const std::string payload = bytes.substr(cursor, length);
      const uint32_t actual = Crc32(payload.data(), payload.size());
      if (actual != crc) {
        rep.tail = TailState::kCorrupt;
        rep.detail = "CRC mismatch on record " +
                     std::to_string(entries.size()) + " at byte " +
                     std::to_string(offset) + " (stored " +
                     std::to_string(crc) + ", computed " +
                     std::to_string(actual) + ")";
        break;
      }
      StatusOr<LedgerEntry> entry = DecodePayload(payload);
      if (!entry.ok()) {
        rep.tail = TailState::kCorrupt;
        rep.detail = "undecodable record " + std::to_string(entries.size()) +
                     " at byte " + std::to_string(offset) + ": " +
                     entry.status().message();
        break;
      }
      entries.push_back(*std::move(entry));
      offset += kRecordHeaderBytes + length;
    }
  }

  rep.recovered_records = static_cast<int64_t>(entries.size());
  rep.valid_bytes = static_cast<int64_t>(offset);
  rep.dropped_bytes = static_cast<int64_t>(bytes.size() - offset);
  if (options.strict && rep.tail == TailState::kCorrupt) {
    return InternalError("journal '" + path + "' is corrupt: " + rep.detail);
  }
  if (rep.tail == TailState::kTorn && options.truncate_torn_tail) {
    if (::truncate(path.c_str(), static_cast<off_t>(rep.valid_bytes)) != 0) {
      return InternalError("cannot truncate torn tail of journal '" + path +
                           "'");
    }
    NIMBUS_LOG(kWarning) << "journal '" << path << "': truncated torn tail ("
                         << rep.dropped_bytes << " bytes, " << rep.detail
                         << ")";
  } else if (rep.tail != TailState::kClean) {
    NIMBUS_LOG(kWarning) << "journal '" << path << "': dropped "
                         << rep.dropped_bytes << " trailing bytes ("
                         << rep.detail << ")";
  }
  return entries;
}

}  // namespace nimbus::market
