#include "market/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"

namespace nimbus::market {
namespace {

constexpr char kMagic[8] = {'N', 'I', 'M', 'B', 'U', 'S', 'J', '1'};
// Rotated-segment magic: followed by u64 base_sequence + u32 crc32 of
// those 8 bytes (see the class comment).
constexpr char kMagic2[8] = {'N', 'I', 'M', 'B', 'U', 'S', 'J', '2'};
constexpr size_t kSegmentHeaderExtra = 12;  // u64 base + u32 crc.
constexpr size_t kRecordHeaderBytes = 8;    // u32 length + u32 crc.
// A sale record is a few dozen bytes; anything near this bound is a
// corrupted length field, not a real record.
constexpr uint32_t kMaxPayloadBytes = 1u << 20;

void AppendRaw(std::string& out, const void* data, size_t size) {
  out.append(static_cast<const char*>(data), size);
}

template <typename T>
void AppendScalar(std::string& out, T value) {
  AppendRaw(out, &value, sizeof(value));
}

template <typename T>
bool ReadScalar(const std::string& in, size_t& offset, T* value) {
  if (in.size() - offset < sizeof(T)) {
    return false;
  }
  std::memcpy(value, in.data() + offset, sizeof(T));
  offset += sizeof(T);
  return true;
}

// The segment header bytes for a file whose first record has
// `base_sequence` (the bare J1 magic when it is 0).
std::string SegmentHeader(int64_t base_sequence) {
  std::string header;
  if (base_sequence == 0) {
    AppendRaw(header, kMagic, sizeof(kMagic));
    return header;
  }
  AppendRaw(header, kMagic2, sizeof(kMagic2));
  const auto base = static_cast<uint64_t>(base_sequence);
  AppendScalar(header, base);
  AppendScalar(header, Journal::Crc32(&base, sizeof(base)));
  return header;
}

// Makes a rename in the journal's directory durable.
Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos
          ? "."
          : (slash == 0 ? "/" : path.substr(0, slash));
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return InternalError("cannot open parent directory of '" + path +
                         "' for fsync");
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return InternalError("cannot fsync parent directory of '" + path + "'");
  }
  return OkStatus();
}

}  // namespace

StatusOr<LedgerEntry> Journal::DecodePayload(const std::string& payload) {
  LedgerEntry entry;
  size_t offset = 0;
  uint8_t kind = 0;
  uint32_t buyer_len = 0;
  if (!ReadScalar(payload, offset, &entry.sequence) ||
      !ReadScalar(payload, offset, &kind) ||
      !ReadScalar(payload, offset, &entry.inverse_ncp) ||
      !ReadScalar(payload, offset, &entry.price) ||
      !ReadScalar(payload, offset, &entry.expected_error) ||
      !ReadScalar(payload, offset, &buyer_len)) {
    return InvalidArgumentError("journal payload shorter than fixed fields");
  }
  switch (static_cast<ml::ModelKind>(kind)) {
    case ml::ModelKind::kLinearRegression:
    case ml::ModelKind::kLogisticRegression:
    case ml::ModelKind::kLinearSvm:
    case ml::ModelKind::kPoissonRegression:
      break;
    default:
      return InvalidArgumentError("journal payload has unknown model kind " +
                                  std::to_string(kind));
  }
  entry.model = static_cast<ml::ModelKind>(kind);
  if (payload.size() - offset != buyer_len) {
    return InvalidArgumentError("journal payload buyer-id length mismatch");
  }
  entry.buyer_id = payload.substr(offset, buyer_len);
  return entry;
}

uint32_t Journal::Crc32(const void* data, size_t size) {
  // Standard reflected CRC-32 (polynomial 0xEDB88320), table built once.
  static const uint32_t* table = [] {
    auto* t = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string Journal::EncodePayload(const LedgerEntry& entry) {
  std::string payload;
  payload.reserve(37 + entry.buyer_id.size());
  AppendScalar(payload, entry.sequence);
  AppendScalar(payload, static_cast<uint8_t>(entry.model));
  AppendScalar(payload, entry.inverse_ncp);
  AppendScalar(payload, entry.price);
  AppendScalar(payload, entry.expected_error);
  AppendScalar(payload, static_cast<uint32_t>(entry.buyer_id.size()));
  AppendRaw(payload, entry.buyer_id.data(), entry.buyer_id.size());
  return payload;
}

StatusOr<Journal> Journal::Open(const std::string& path, Options options) {
  if (options.create_base_sequence < 0) {
    return InvalidArgumentError("create_base_sequence must be >= 0");
  }
  bool needs_header = true;
  int64_t base_sequence = options.create_base_sequence;
  int64_t existing_bytes = 0;
  {
    std::ifstream probe(path, std::ios::binary);
    if (probe) {
      probe.seekg(0, std::ios::end);
      existing_bytes = static_cast<int64_t>(probe.tellg());
    }
  }
  if (existing_bytes > 0) {
    // Structurally validate the whole file before appending: a previous
    // crash can leave a torn (or bit-rotted) tail, and appending past it
    // would bury the damage behind fresh records — replay would then
    // drop acknowledged history silently. Refuse loudly instead.
    RecoveryReport report;
    ReplayOptions scan;
    scan.truncate_torn_tail = false;
    NIMBUS_RETURN_IF_ERROR(Replay(path, &report, scan).status());
    if (report.tail != TailState::kClean) {
      return FailedPreconditionError(
          "journal '" + path + "' has an invalid tail (" + report.detail +
          "; " + std::to_string(report.dropped_bytes) +
          " bytes past the valid prefix): recover it first — "
          "Journal::Replay truncates a torn tail, and "
          "Marketplace::RestoreFromJournal/RestoreFromCheckpoint run that "
          "recovery before re-opening");
    }
    needs_header = false;
    base_sequence = report.base_sequence;
  }
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return InvalidArgumentError("cannot open journal '" + path +
                                "' for appending");
  }
  Journal journal(path, options, file);
  journal.base_sequence_ = base_sequence;
  journal.live_bytes_.store(existing_bytes, std::memory_order_relaxed);
  if (needs_header) {
    const std::string header = SegmentHeader(base_sequence);
    if (std::fwrite(header.data(), 1, header.size(), file) != header.size()) {
      return InternalError("cannot write journal header to '" + path + "'");
    }
    journal.live_bytes_.store(static_cast<int64_t>(header.size()),
                              std::memory_order_relaxed);
    NIMBUS_RETURN_IF_ERROR(journal.Flush());
  }
  return journal;
}

int64_t Journal::live_bytes() const {
  return live_bytes_.load(std::memory_order_relaxed);
}

Journal::Journal(Journal&& other) noexcept
    : path_(std::move(other.path_)),
      options_(other.options_),
      file_(other.file_),
      base_sequence_(other.base_sequence_),
      live_bytes_(other.live_bytes_.load(std::memory_order_relaxed)),
      buffered_sequence_(other.buffered_sequence_),
      buffered_payload_size_(other.buffered_payload_size_),
      buffered_payload_crc_(other.buffered_payload_crc_),
      poisoned_(other.poisoned_),
      mu_(std::move(other.mu_)) {
  other.file_ = nullptr;
}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) {
      std::fclose(file_);
    }
    path_ = std::move(other.path_);
    options_ = other.options_;
    file_ = other.file_;
    base_sequence_ = other.base_sequence_;
    live_bytes_.store(other.live_bytes_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    buffered_sequence_ = other.buffered_sequence_;
    buffered_payload_size_ = other.buffered_payload_size_;
    buffered_payload_crc_ = other.buffered_payload_crc_;
    poisoned_ = other.poisoned_;
    mu_ = std::move(other.mu_);
    other.file_ = nullptr;
  }
  return *this;
}

Journal::~Journal() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Status Journal::Append(const LedgerEntry& entry,
                       const telemetry::TraceContext* trace) {
  telemetry::TraceSpan span("journal.append", trace);
  const fault::Injection inject = fault::Check("journal.append");
  if (inject.fire && inject.mode == fault::Mode::kStatus) {
    return InternalError("fault injected at 'journal.append'");
  }
  if (mu_ == nullptr) {  // Moved-from shell.
    return FailedPreconditionError("journal '" + path_ + "' is closed");
  }
  std::lock_guard<prof::ProfiledMutex> lock(*mu_);
  if (file_ == nullptr) {
    return FailedPreconditionError("journal '" + path_ + "' is closed");
  }
  if (poisoned_) {
    span.Annotate("poisoned");
    return FailedPreconditionError(
        "journal '" + path_ +
        "' poisoned by an earlier short write; recover before appending");
  }
  const std::string payload = EncodePayload(entry);
  const uint32_t payload_crc = Crc32(payload.data(), payload.size());
  if (buffered_sequence_ == entry.sequence) {
    span.Annotate("retry-reflush");
    // Idempotent retry: the previous attempt for this very record
    // already buffered its bytes and failed only at the flush/fsync
    // stage — re-flushing is all that is left. Re-buffering here would
    // duplicate the record and break replay's dense-sequence invariant.
    // The retry must be the SAME record, though: a sequence number can
    // be reused by the ledger after a retry-exhausted (abandoned)
    // append, and the abandoned bytes already sit in the write buffer.
    // Accepting a different payload under that sequence would flush the
    // stale record and silently diverge journal and ledger.
    if (payload.size() != buffered_payload_size_ ||
        payload_crc != buffered_payload_crc_) {
      poisoned_ = true;
      span.Annotate("poisoned");
      return FailedPreconditionError(
          "journal '" + path_ + "' holds an abandoned record for sequence " +
          std::to_string(entry.sequence) +
          " with a different payload (journal poisoned; recovery required)");
    }
    if (inject.fire) {
      // Injected ENOSPC on a reflush retry: the record is already
      // buffered intact, so this models the flush stage running out of
      // disk — retryable, no poisoning.
      return InternalError("write to journal '" + path_ +
                           "' failed: No space left on device (injected)");
    }
  } else {
    std::string record;
    record.reserve(kRecordHeaderBytes + payload.size());
    AppendScalar(record, static_cast<uint32_t>(payload.size()));
    AppendScalar(record, payload_crc);
    AppendRaw(record, payload.data(), payload.size());
    size_t to_write = record.size();
    if (inject.fire) {
      // Injected ENOSPC (kEnospc mode): emulate a full disk — only the
      // first half of the record reaches the stream before the write
      // fails errno-style, leaving the same torn tail a real out-of-
      // space append would.
      to_write = record.size() / 2;
    }
    if (std::fwrite(record.data(), 1, to_write, file_) != to_write ||
        inject.fire) {
      poisoned_ = true;
      span.Annotate("poisoned");
      const std::string detail =
          inject.fire ? ": No space left on device (injected)" : "";
      return InternalError("short write appending to journal '" + path_ +
                           "'" + detail +
                           " (journal poisoned; recovery required)");
    }
    buffered_sequence_ = entry.sequence;
    buffered_payload_size_ = static_cast<uint32_t>(payload.size());
    buffered_payload_crc_ = payload_crc;
    // Counted at buffering: even when the flush below fails, the bytes
    // are in the write buffer and will reach the file.
    live_bytes_.fetch_add(static_cast<int64_t>(record.size()),
                          std::memory_order_relaxed);
  }
  if (options_.fsync == FsyncPolicy::kEveryRecord) {
    NIMBUS_RETURN_IF_ERROR(FlushLocked());
  }
  buffered_sequence_ = -1;
  return OkStatus();
}

Status Journal::Flush() {
  if (mu_ == nullptr) {  // Moved-from shell.
    return FailedPreconditionError("journal '" + path_ + "' is closed");
  }
  std::lock_guard<prof::ProfiledMutex> lock(*mu_);
  return FlushLocked();
}

Status Journal::FlushLocked() {
  FAULT_POINT("journal.fsync");
  if (file_ == nullptr) {
    return FailedPreconditionError("journal '" + path_ + "' is closed");
  }
  if (std::fflush(file_) != 0) {
    return InternalError("fflush failed on journal '" + path_ + "'");
  }
  if (options_.fsync == FsyncPolicy::kEveryRecord &&
      ::fsync(fileno(file_)) != 0) {
    return InternalError("fsync failed on journal '" + path_ + "'");
  }
  return OkStatus();
}

Status Journal::Close() {
  if (mu_ == nullptr) {  // Moved-from shell.
    return OkStatus();
  }
  std::lock_guard<prof::ProfiledMutex> lock(*mu_);
  if (file_ == nullptr) {
    return OkStatus();
  }
  const Status flushed = FlushLocked();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  NIMBUS_RETURN_IF_ERROR(flushed);
  if (rc != 0) {
    return InternalError("fclose failed on journal '" + path_ + "'");
  }
  return OkStatus();
}

void Journal::Discard() {
  if (mu_ == nullptr) {  // Moved-from shell.
    return;
  }
  std::lock_guard<prof::ProfiledMutex> lock(*mu_);
  if (file_ == nullptr) {
    return;
  }
  // Best-effort flush: committed-but-buffered records must reach disk
  // for recovery to replay them. The buffer may end in a torn record —
  // that is exactly the shape the recovery ladder truncates, so writing
  // it out is safe as long as this happens before recovery re-opens the
  // path (the shard state machine orders quarantine before recovery).
  // Errors are swallowed: on a real full disk the tail is simply lost.
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
  poisoned_ = true;  // Belt and braces: this handle must never append again.
}

Status Journal::Rotate(int64_t new_base_sequence) {
  if (mu_ == nullptr) {  // Moved-from shell.
    return FailedPreconditionError("journal '" + path_ + "' is closed");
  }
  std::lock_guard<prof::ProfiledMutex> lock(*mu_);
  if (file_ == nullptr) {
    return FailedPreconditionError("journal '" + path_ + "' is closed");
  }
  if (poisoned_) {
    return FailedPreconditionError(
        "journal '" + path_ + "' poisoned by an earlier short write; "
        "recover before rotating");
  }
  if (new_base_sequence < base_sequence_) {
    return InvalidArgumentError(
        "cannot rotate journal '" + path_ + "' backwards (base " +
        std::to_string(base_sequence_) + " -> " +
        std::to_string(new_base_sequence) + ")");
  }
  NIMBUS_RETURN_IF_ERROR(FlushLocked());
  const fault::Injection inject = fault::Check("journal.rotate");
  if (inject.fire && inject.mode == fault::Mode::kStatus) {
    return InternalError("fault injected at 'journal.rotate'");
  }
  if (new_base_sequence == base_sequence_) {
    return OkStatus();  // Nothing to truncate.
  }
  // Re-read the (flushed) live segment and keep only the tail. Strict
  // replay: Open validated the file and every append since was CRC'd,
  // so any damage found here is fresh bit rot — refuse to rotate it
  // away. Re-encoding reproduces the original record bytes exactly
  // (fixed-width raw fields), so surviving records keep their CRCs.
  RecoveryReport report;
  ReplayOptions scan;
  scan.strict = true;
  scan.truncate_torn_tail = false;
  NIMBUS_ASSIGN_OR_RETURN(const std::vector<LedgerEntry> entries,
                          Replay(path_, &report, scan));
  if (report.tail != TailState::kClean) {
    return InternalError("journal '" + path_ +
                         "' has an invalid tail mid-rotation: " +
                         report.detail);
  }
  std::string image = SegmentHeader(new_base_sequence);
  for (const LedgerEntry& entry : entries) {
    if (entry.sequence < new_base_sequence) {
      continue;
    }
    const std::string payload = EncodePayload(entry);
    AppendScalar(image, static_cast<uint32_t>(payload.size()));
    AppendScalar(image, Crc32(payload.data(), payload.size()));
    AppendRaw(image, payload.data(), payload.size());
  }
  const std::string tmp = path_ + ".rotate.tmp";
  {
    std::FILE* out = std::fopen(tmp.c_str(), "wb");
    if (out == nullptr) {
      return InternalError("cannot open '" + tmp + "' for rotation");
    }
    size_t to_write = image.size();
    if (inject.fire) {
      // Injected ENOSPC (kEnospc mode): the rotated segment runs out of
      // disk halfway, leaving a partial .rotate.tmp behind. The live
      // segment is untouched and stays appendable — rotation failure is
      // absorbed upstream as a retryable rotation_failure.
      to_write = image.size() / 2;
    }
    if (std::fwrite(image.data(), 1, to_write, out) != to_write ||
        std::fflush(out) != 0 || ::fsync(fileno(out)) != 0 || inject.fire) {
      std::fclose(out);
      const std::string detail =
          inject.fire ? ": No space left on device (injected)" : "";
      return InternalError("cannot write rotated segment '" + tmp + "'" +
                           detail);
    }
    if (std::fclose(out) != 0) {
      return InternalError("fclose failed on '" + tmp + "'");
    }
  }
  // Swap the filtered segment in. The retained predecessor (.prev) is
  // the fallback recovery rung's tail; a crash between the two renames
  // leaves only .prev, which restore treats as the live segment.
  const std::string prev = path_ + ".prev";
  if (std::rename(path_.c_str(), prev.c_str()) != 0) {
    return InternalError("cannot retire '" + path_ + "' to '" + prev + "'");
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    // Best-effort rollback so the live path does not stay missing.
    if (std::rename(prev.c_str(), path_.c_str()) != 0) {
      poisoned_ = true;
      return InternalError("rotation of '" + path_ +
                           "' failed mid-swap and could not roll back; "
                           "recover from '" + prev + "'");
    }
    return InternalError("cannot install rotated segment over '" + path_ +
                         "'");
  }
  NIMBUS_RETURN_IF_ERROR(SyncParentDir(path_));
  // The old handle still points at the retired inode; reopen the live
  // segment for appending.
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    poisoned_ = true;
    return InternalError("cannot re-open rotated journal '" + path_ + "'");
  }
  base_sequence_ = new_base_sequence;
  live_bytes_.store(static_cast<int64_t>(image.size()),
                    std::memory_order_relaxed);
  buffered_sequence_ = -1;
  return OkStatus();
}

StatusOr<std::vector<LedgerEntry>> Journal::Replay(const std::string& path,
                                                   RecoveryReport* report) {
  return Replay(path, report, ReplayOptions{});
}

StatusOr<std::vector<LedgerEntry>> Journal::Replay(const std::string& path,
                                                   RecoveryReport* report,
                                                   ReplayOptions options) {
  FAULT_POINT("journal.replay");
  RecoveryReport local;
  RecoveryReport& rep = report != nullptr ? *report : local;
  rep = RecoveryReport{};

  std::string bytes;
  {
    FAULT_POINT("io.read");
    std::ifstream file(path, std::ios::binary);
    if (!file) {
      return NotFoundError("cannot open journal '" + path + "'");
    }
    std::ostringstream content;
    content << file.rdbuf();
    bytes = std::move(content).str();
  }

  std::vector<LedgerEntry> entries;
  size_t offset = 0;
  bool scan_records = false;
  if (bytes.empty()) {
    // A fresh (or fully truncated) journal: clean and empty, so Open can
    // stamp the header and start appending.
  } else if (bytes.size() < sizeof(kMagic)) {
    // Crash mid-header write: nothing recoverable, but the file is a
    // legitimate torn journal, not garbage.
    rep.tail = TailState::kTorn;
    rep.detail = "truncated journal header";
  } else if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0) {
    offset = sizeof(kMagic);
    scan_records = true;
  } else if (std::memcmp(bytes.data(), kMagic2, sizeof(kMagic2)) == 0) {
    // Rotated segment: the base sequence rides in the header, CRC'd so
    // a bit flip there cannot silently renumber the whole tail.
    if (bytes.size() < sizeof(kMagic2) + kSegmentHeaderExtra) {
      rep.tail = TailState::kTorn;
      rep.detail = "truncated segment header";
    } else {
      uint64_t base = 0;
      uint32_t crc = 0;
      size_t cursor = sizeof(kMagic2);
      ReadScalar(bytes, cursor, &base);
      ReadScalar(bytes, cursor, &crc);
      if (Crc32(&base, sizeof(base)) != crc) {
        rep.tail = TailState::kCorrupt;
        rep.detail = "segment header CRC mismatch";
      } else {
        rep.base_sequence = static_cast<int64_t>(base);
        offset = cursor;
        scan_records = true;
      }
    }
  } else {
    return InvalidArgumentError("'" + path + "' is not a nimbus journal");
  }
  if (scan_records) {
    while (offset < bytes.size()) {
      const size_t remaining = bytes.size() - offset;
      if (remaining < kRecordHeaderBytes) {
        rep.tail = TailState::kTorn;
        rep.detail = "partial record header at byte " + std::to_string(offset);
        break;
      }
      uint32_t length = 0;
      uint32_t crc = 0;
      size_t cursor = offset;
      ReadScalar(bytes, cursor, &length);
      ReadScalar(bytes, cursor, &crc);
      if (length > kMaxPayloadBytes) {
        rep.tail = TailState::kCorrupt;
        rep.detail = "implausible payload length " + std::to_string(length) +
                     " at byte " + std::to_string(offset);
        break;
      }
      if (remaining - kRecordHeaderBytes < length) {
        rep.tail = TailState::kTorn;
        rep.detail = "partial record payload at byte " + std::to_string(offset);
        break;
      }
      const std::string payload = bytes.substr(cursor, length);
      const uint32_t actual = Crc32(payload.data(), payload.size());
      if (actual != crc) {
        rep.tail = TailState::kCorrupt;
        rep.detail = "CRC mismatch on record " +
                     std::to_string(entries.size()) + " at byte " +
                     std::to_string(offset) + " (stored " +
                     std::to_string(crc) + ", computed " +
                     std::to_string(actual) + ")";
        break;
      }
      StatusOr<LedgerEntry> entry = DecodePayload(payload);
      if (!entry.ok()) {
        rep.tail = TailState::kCorrupt;
        rep.detail = "undecodable record " + std::to_string(entries.size()) +
                     " at byte " + std::to_string(offset) + ": " +
                     entry.status().message();
        break;
      }
      entries.push_back(*std::move(entry));
      offset += kRecordHeaderBytes + length;
    }
  }

  rep.recovered_records = static_cast<int64_t>(entries.size());
  rep.valid_bytes = static_cast<int64_t>(offset);
  rep.dropped_bytes = static_cast<int64_t>(bytes.size() - offset);
  if (options.strict && rep.tail == TailState::kCorrupt) {
    return InternalError("journal '" + path + "' is corrupt: " + rep.detail);
  }
  if (rep.tail == TailState::kTorn && options.truncate_torn_tail) {
    if (::truncate(path.c_str(), static_cast<off_t>(rep.valid_bytes)) != 0) {
      return InternalError("cannot truncate torn tail of journal '" + path +
                           "'");
    }
    NIMBUS_LOG(kWarning) << "journal '" << path << "': truncated torn tail ("
                         << rep.dropped_bytes << " bytes, " << rep.detail
                         << ")";
  } else if (rep.tail != TailState::kClean) {
    NIMBUS_LOG(kWarning) << "journal '" << path << "': dropped "
                         << rep.dropped_bytes << " trailing bytes ("
                         << rep.detail << ")";
  }
  return entries;
}

}  // namespace nimbus::market
