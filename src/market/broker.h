#ifndef NIMBUS_MARKET_BROKER_H_
#define NIMBUS_MARKET_BROKER_H_

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/statusor.h"
#include "data/dataset.h"
#include "linalg/vector_ops.h"
#include "market/curve_cache.h"
#include "mechanism/noise_mechanism.h"
#include "ml/model.h"
#include "pricing/error_curve.h"
#include "pricing/pricing_function.h"

namespace nimbus::market {

// The broker agent of Figure 1(B): holds the seller's dataset, trains the
// optimal model instance once, builds error-transformation curves per
// report loss, and serves buyers noisy model versions priced by an
// arbitrage-free pricing function. Implements the full broker-buyer
// protocol of §3.2:
//   1. the buyer picks the model and error functions λ, ε;
//   2. the broker shows the price-error curve;
//   3. the buyer picks a point / error budget / price budget and pays;
//   4. the broker returns the noisy model instance.
class Broker {
 public:
  struct Options {
    // Grid of supported versions x = 1/δ.
    double min_inverse_ncp = 1.0;
    double max_inverse_ncp = 100.0;
    int error_curve_points = 25;
    // Monte-Carlo draws per error-curve point (paper uses 2000).
    int samples_per_curve_point = 200;
    // Deadline-style budget on curve construction, expressed as a cap on
    // total Monte-Carlo draws (grid points x samples) so it stays
    // deterministic. When a curve would exceed the cap, the per-point
    // sample count is reduced to fit (floor 1) and the curve — and every
    // quote served from it — is marked degraded instead of stalling the
    // quote path. 0 = unlimited.
    int64_t curve_draw_budget = 0;
    uint64_t seed = 20190642;
    // Serve error curves through the shared, versioned CurveCache
    // (single-flight cold builds, concurrency-safe hits). Off = the
    // legacy per-broker map, which needs external serialization; kept
    // so the soak can prove cache-on and cache-off ledgers are
    // byte-identical.
    bool use_curve_cache = true;
  };

  // Trains the optimal model on `split.train` and prepares the broker.
  // The pricing function starts as a unit-slope linear placeholder; call
  // SetPricingFunction after the seller runs revenue optimization.
  // (Pass Options{} for the defaults.)
  static StatusOr<Broker> Create(data::TrainTestSplit split,
                                 ml::ModelSpec model,
                                 std::unique_ptr<mechanism::NoiseMechanism>
                                     mechanism,
                                 Options options);

  Broker(Broker&&) = default;
  Broker& operator=(Broker&&) = default;
  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  const ml::ModelSpec& model() const { return model_; }
  const linalg::Vector& optimal_model() const { return optimal_model_; }
  const mechanism::NoiseMechanism& noise_mechanism() const {
    return *mechanism_;
  }
  const Options& options() const { return options_; }

  // Installs the pricing function agreed with the seller.
  void SetPricingFunction(
      std::shared_ptr<const pricing::PricingFunction> pricing);
  const pricing::PricingFunction& pricing_function() const {
    return *pricing_;
  }

  // Error-transformation curve for one of the model's report losses
  // (ε name as in ml::Loss::name()); computed lazily and cached. The
  // returned curve is immutable and shared — callers may quote against
  // it from any thread, and it stays alive across cache invalidations.
  // With Options::use_curve_cache (the default) lookups go through the
  // shared CurveCache: hits are a lock-free-ish shared_ptr copy, cold
  // builds are single-flight, and concurrent callers for the same curve
  // wait on the one in-flight build instead of racing their own.
  // `cancel` (optional) aborts a cold-cache Monte-Carlo build at the
  // next grid-point boundary when the requesting caller's deadline
  // expires; cache hits never consult it. A cancelled build is not
  // cached, so the next caller retries it. `trace` (optional) nests a
  // cold build's spans under the requesting operation.
  StatusOr<std::shared_ptr<const pricing::ErrorCurve>> GetErrorCurve(
      const std::string& report_loss_name, const CancelToken* cancel = nullptr,
      const telemetry::TraceContext* trace = nullptr);

  // Replaces the broker's (default, private) curve cache with a shared
  // one, so every offering of a marketplace shares one cache instance.
  // Keys embed the per-offering seed / model / dataset fingerprint, so
  // sharing never aliases distinct curves. Call before the first
  // GetErrorCurve.
  void AttachCurveCache(std::shared_ptr<CurveCache> cache);

  bool curve_cache_enabled() const {
    return options_.use_curve_cache && curve_cache_ != nullptr;
  }
  // The cache serving this broker (nullptr when use_curve_cache is off).
  const CurveCache* curve_cache() const { return curve_cache_.get(); }

  // Cache identity of one report loss's curve: everything the build
  // depends on, including the budget-reduced effective sample count.
  CurveKey CurveKeyFor(const std::string& report_loss_name) const;

  // One row of the price-error curve shown to buyers (Figure 2d).
  struct PriceErrorPoint {
    double inverse_ncp = 0.0;
    double expected_error = 0.0;
    double price = 0.0;
  };
  StatusOr<std::vector<PriceErrorPoint>> PriceErrorCurve(
      const std::string& report_loss_name);

  // A completed sale.
  struct Purchase {
    linalg::Vector model;
    double price = 0.0;
    double ncp = 0.0;
    double inverse_ncp = 0.0;
    double expected_error = 0.0;
    // True when the quote was served from a degraded error curve
    // (budget-reduced sampling or patched non-finite points).
    bool degraded = false;
  };

  // Option 1: buy the version at a specific point x = 1/δ of the curve.
  StatusOr<Purchase> BuyAtInverseNcp(double inverse_ncp,
                                     const std::string& report_loss_name);

  // Option 2: cheapest version whose expected error is <= `error_budget`
  // (kInfeasible when no supported version qualifies).
  StatusOr<Purchase> BuyWithErrorBudget(double error_budget,
                                        const std::string& report_loss_name);

  // Option 3: most accurate version whose price is <= `price_budget`
  // (kInfeasible when even the cheapest version costs more).
  StatusOr<Purchase> BuyWithPriceBudget(double price_budget,
                                        const std::string& report_loss_name);

  // Concurrent-sale support for the parallel market replay. Quote builds
  // the same purchase as BuyAtInverseNcp against an already-computed
  // error curve, drawing noise from the caller-supplied `rng` and leaving
  // the ledger untouched — safe to call from many threads at once. The
  // caller books accepted quotes with RecordSale (single-threaded).
  // `trace` (optional) nests the quote span under the caller's request.
  StatusOr<Purchase> QuoteAtInverseNcp(
      double inverse_ncp, const pricing::ErrorCurve& curve, Rng& rng,
      const telemetry::TraceContext* trace = nullptr) const;

  // One request of a batched quote: the version to price and the
  // caller-owned noise stream to draw it from (per-ticket streams keep
  // batched output bit-identical to the single-quote path).
  struct QuoteBatchItem {
    double inverse_ncp = 0.0;
    Rng* rng = nullptr;
  };

  // Batched QuoteAtInverseNcp against one shared curve: amortizes the
  // span/telemetry overhead across the batch and evaluates the
  // piecewise-linear curve in one pass (ErrorAtInverseNcpBatch). Each
  // item gets exactly the purchase — same bits — that a lone
  // QuoteAtInverseNcp with the same rng would produce, including the
  // per-item 'broker.quote' fault check, so the serving layer can mix
  // batched and single quoting freely. results[i] carries item i's
  // outcome; requires results.size() == items.size() and non-null rngs.
  void QuoteBatch(const pricing::ErrorCurve& curve,
                  std::span<const QuoteBatchItem> items,
                  std::span<StatusOr<Purchase>> results,
                  const telemetry::TraceContext* trace = nullptr) const;

  void RecordSale(const Purchase& purchase);

  // Snapshot restore: installs the accumulated sale counters exactly as
  // captured (bit-identical revenue, no per-sale replay) and mirrors
  // the per-offering telemetry in bulk. The broker must not have booked
  // any sale yet.
  Status RestoreSaleCounters(int64_t sales_count, double revenue_collected);

  // Derives an independent child stream from the broker's master RNG
  // (advancing it once); used to seed deterministic per-buyer streams.
  Rng ForkRng() { return rng_.Fork(); }

  // Total payments collected so far.
  double revenue_collected() const { return revenue_collected_; }
  int sales_count() const { return sales_count_; }

 private:
  Broker(data::TrainTestSplit split, ml::ModelSpec model,
         std::unique_ptr<mechanism::NoiseMechanism> mechanism,
         Options options, linalg::Vector optimal_model);

  StatusOr<Purchase> CompleteSale(double inverse_ncp,
                                  const pricing::ErrorCurve& curve);

  // Budget-reduced per-point sample count (Options::curve_draw_budget);
  // part of the curve's cache identity.
  int EffectiveSamplesPerPoint() const;

  // One Monte-Carlo curve build with the RNG commit discipline: copies
  // rng_, runs Estimate, and commits the advance only on success, under
  // build_mu_ so concurrent builds of different losses never race the
  // stream. This is the CurveCache builder callback.
  StatusOr<pricing::ErrorCurve> BuildErrorCurve(
      const ml::Loss& loss, const CancelToken* cancel,
      const telemetry::TraceContext* trace);

  data::TrainTestSplit split_;
  ml::ModelSpec model_;
  std::unique_ptr<mechanism::NoiseMechanism> mechanism_;
  Options options_;
  linalg::Vector optimal_model_;
  std::shared_ptr<const pricing::PricingFunction> pricing_;
  // Cache-off fallback storage; the cache-on path lives in curve_cache_.
  std::map<std::string, std::shared_ptr<const pricing::ErrorCurve>>
      error_curves_;
  std::shared_ptr<CurveCache> curve_cache_;
  uint64_t eval_fingerprint_ = 0;
  // Heap-held so the broker stays movable (std::mutex is not).
  std::unique_ptr<std::mutex> build_mu_;
  // This offering's series in the per-offering labeled families
  // (broker_*{offering=<model kind>}), interned once at construction —
  // registry-owned, so plain pointers keep the broker movable.
  telemetry::Counter* quotes_counter_ = nullptr;
  telemetry::Histogram* quote_latency_ = nullptr;
  telemetry::Counter* sales_counter_ = nullptr;
  telemetry::Gauge* revenue_gauge_ = nullptr;
  Rng rng_;
  double revenue_collected_ = 0.0;
  int sales_count_ = 0;
};

}  // namespace nimbus::market

#endif  // NIMBUS_MARKET_BROKER_H_
