#include "market/buyer_advisor.h"

namespace nimbus::market {

StatusOr<PurchaseRecommendation> RecommendPurchase(
    Broker& broker, const std::string& report_loss_name,
    double value_per_error_reduction) {
  if (!(value_per_error_reduction > 0.0)) {
    return InvalidArgumentError(
        "value_per_error_reduction must be positive");
  }
  NIMBUS_ASSIGN_OR_RETURN(std::shared_ptr<const pricing::ErrorCurve> curve,
                          broker.GetErrorCurve(report_loss_name));
  const double worst_error = curve->points().front().expected_error;
  PurchaseRecommendation best;
  bool first = true;
  for (const pricing::ErrorCurvePoint& point : curve->points()) {
    const double price =
        broker.pricing_function().PriceAtInverseNcp(point.inverse_ncp);
    const double surplus =
        value_per_error_reduction * (worst_error - point.expected_error) -
        price;
    // ">=": among equal-surplus versions (isotonic pooling can flatten
    // the sampled curve) prefer the more precise one — the underlying
    // error transformation is strictly decreasing, so indifference
    // resolves toward accuracy.
    if (first || surplus >= best.surplus) {
      first = false;
      best.inverse_ncp = point.inverse_ncp;
      best.expected_error = point.expected_error;
      best.price = price;
      best.surplus = surplus;
    }
  }
  // When even the best version has non-positive surplus, the advisor
  // still reports the least-bad option but marks it not worth buying.
  best.worthwhile = best.surplus > 0.0;
  return best;
}

}  // namespace nimbus::market
