#ifndef NIMBUS_MARKET_CURVES_H_
#define NIMBUS_MARKET_CURVES_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "revenue/buyer_model.h"

namespace nimbus::market {

// Parametric families of buyer value curves (monetary worth as a function
// of the version parameter x = 1/NCP) matching the shapes plotted in
// Figures 7/8 and 11-14. All shapes are non-decreasing in x, as the
// paper's revenue DP requires.
enum class ValueShape {
  kLinear,   // Value grows linearly with accuracy.
  kConvex,   // Only near-optimal models are worth much (Fig 7a).
  kConcave,  // Value saturates quickly (Fig 7b).
  kSigmoid,  // Threshold behaviour: worthless until "good enough".
};

// Demand curve families (how buyer mass is distributed over versions).
enum class DemandShape {
  kUniform,     // Same interest at every accuracy level (Fig 7).
  kUnimodal,    // Most buyers want medium accuracy (Fig 8a).
  kBimodal,     // Interest at both extremes (Fig 8b).
  kIncreasing,  // Most buyers want high accuracy.
  kDecreasing,  // Most buyers want cheap exploratory models.
};

std::string_view ToString(ValueShape shape);
std::string_view ToString(DemandShape shape);

// All enumerators, for sweeps.
std::vector<ValueShape> AllValueShapes();
std::vector<DemandShape> AllDemandShapes();

// Normalized value curve: position t in [0, 1] -> value in [0, 1],
// non-decreasing with endpoints 0 and 1.
double NormalizedValueAt(ValueShape shape, double t);

// Unnormalized demand density at position t in [0, 1] (> 0 everywhere).
double DemandDensityAt(DemandShape shape, double t);

// Generates `n` buyer points on an even grid of x in [a_min, a_max] with
// valuations following `value_shape` scaled to [value_floor, v_max] and
// demand masses following `demand_shape` (normalized to total mass 1).
// Requires n >= 1, 0 < a_min < a_max (or n == 1 with a_min == a_max) and
// 0 <= value_floor <= v_max.
StatusOr<std::vector<revenue::BuyerPoint>> MakeBuyerPoints(
    ValueShape value_shape, DemandShape demand_shape, int n, double a_min,
    double a_max, double v_max, double value_floor = 0.0);

}  // namespace nimbus::market

#endif  // NIMBUS_MARKET_CURVES_H_
