#include "market/broker.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "common/telemetry.h"

namespace nimbus::market {
namespace {

// Request-path telemetry (see DESIGN.md, "Observability"): quote volume
// and latency, booked sales, and revenue to date, each a labeled family
// keyed by offering (the broker's model kind) — the rollup surface a
// sharded catalog reports into. Brokers cache their offering's series
// references at construction so the hot path still pays only relaxed
// atomic updates.
telemetry::CounterVec& QuotesVec() {
  static telemetry::CounterVec& vec =
      telemetry::Registry::Global().GetCounterVec("broker_quotes_total",
                                                  "offering");
  return vec;
}

telemetry::HistogramVec& QuoteLatencyVec() {
  static telemetry::HistogramVec& vec =
      telemetry::Registry::Global().GetHistogramVec("broker_quote_latency_us",
                                                    "offering");
  return vec;
}

telemetry::CounterVec& SalesVec() {
  static telemetry::CounterVec& vec =
      telemetry::Registry::Global().GetCounterVec("broker_sales_total",
                                                  "offering");
  return vec;
}

telemetry::GaugeVec& RevenueVec() {
  static telemetry::GaugeVec& vec =
      telemetry::Registry::Global().GetGaugeVec("broker_revenue_collected",
                                                "offering");
  return vec;
}

telemetry::Counter& BudgetCutCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("broker_curve_budget_cuts_total");
  return counter;
}

telemetry::Counter& BatchesCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("quote_batch_batches_total");
  return counter;
}

telemetry::Counter& BatchItemsCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("quote_batch_items_total");
  return counter;
}

telemetry::Histogram& BatchLatency() {
  static telemetry::Histogram& histogram =
      telemetry::Registry::Global().GetHistogram("quote_batch_latency_us");
  return histogram;
}

}  // namespace

StatusOr<Broker> Broker::Create(
    data::TrainTestSplit split, ml::ModelSpec model,
    std::unique_ptr<mechanism::NoiseMechanism> mechanism, Options options) {
  if (mechanism == nullptr) {
    return InvalidArgumentError("broker needs a noise mechanism");
  }
  if (!(options.min_inverse_ncp > 0.0) ||
      !(options.max_inverse_ncp > options.min_inverse_ncp)) {
    return InvalidArgumentError("need 0 < min_inverse_ncp < max_inverse_ncp");
  }
  if (options.error_curve_points < 2) {
    return InvalidArgumentError("need at least two error-curve points");
  }
  if (options.samples_per_curve_point < 1) {
    return InvalidArgumentError("need at least one sample per curve point");
  }
  if (split.train.empty() || split.test.empty()) {
    return InvalidArgumentError("train and test sets must be non-empty");
  }
  // One-time training of the optimal model instance h*_λ(D) — the key
  // runtime property of the noise-injection approach (§1): later sales
  // only add noise, they never retrain.
  NIMBUS_ASSIGN_OR_RETURN(linalg::Vector optimal,
                          model.FitOptimal(split.train));
  return Broker(std::move(split), std::move(model), std::move(mechanism),
                options, std::move(optimal));
}

Broker::Broker(data::TrainTestSplit split, ml::ModelSpec model,
               std::unique_ptr<mechanism::NoiseMechanism> mechanism,
               Options options, linalg::Vector optimal_model)
    : split_(std::move(split)),
      model_(std::move(model)),
      mechanism_(std::move(mechanism)),
      options_(options),
      optimal_model_(std::move(optimal_model)),
      pricing_(std::make_shared<pricing::LinearPricing>(
          1.0, std::numeric_limits<double>::infinity(), "placeholder")),
      curve_cache_(options.use_curve_cache ? std::make_shared<CurveCache>()
                                           : nullptr),
      eval_fingerprint_(FingerprintDataset(split_.test)),
      build_mu_(std::make_unique<std::mutex>()),
      rng_(options.seed) {
  const std::string offering(ml::ModelKindToString(model_.kind()));
  quotes_counter_ = &QuotesVec().WithLabel(offering);
  quote_latency_ = &QuoteLatencyVec().WithLabel(offering);
  sales_counter_ = &SalesVec().WithLabel(offering);
  revenue_gauge_ = &RevenueVec().WithLabel(offering);
}

void Broker::SetPricingFunction(
    std::shared_ptr<const pricing::PricingFunction> pricing) {
  NIMBUS_CHECK(pricing != nullptr);
  pricing_ = std::move(pricing);
}

void Broker::AttachCurveCache(std::shared_ptr<CurveCache> cache) {
  NIMBUS_CHECK(cache != nullptr);
  curve_cache_ = std::move(cache);
}

int Broker::EffectiveSamplesPerPoint() const {
  int samples = options_.samples_per_curve_point;
  if (options_.curve_draw_budget > 0) {
    const int64_t grid_points =
        static_cast<int64_t>(options_.error_curve_points);
    const int64_t total = grid_points * static_cast<int64_t>(samples);
    if (total > options_.curve_draw_budget) {
      samples = static_cast<int>(
          std::max<int64_t>(1, options_.curve_draw_budget / grid_points));
    }
  }
  return samples;
}

CurveKey Broker::CurveKeyFor(const std::string& report_loss_name) const {
  CurveKey key;
  key.dataset_fingerprint = eval_fingerprint_;
  key.model = std::string(ml::ModelKindToString(model_.kind()));
  key.mechanism = mechanism_->name();
  key.loss = report_loss_name;
  key.seed = options_.seed;
  key.min_inverse_ncp = options_.min_inverse_ncp;
  key.max_inverse_ncp = options_.max_inverse_ncp;
  key.grid_points = options_.error_curve_points;
  // The budget-reduced count, not the configured one: two brokers whose
  // budgets imply different sampling must never share a curve.
  key.samples_per_point = EffectiveSamplesPerPoint();
  return key;
}

StatusOr<pricing::ErrorCurve> Broker::BuildErrorCurve(
    const ml::Loss& loss, const CancelToken* cancel,
    const telemetry::TraceContext* trace) {
  telemetry::TraceSpan span("broker.build_error_curve", trace);
  const std::vector<double> grid =
      Linspace(options_.min_inverse_ncp, options_.max_inverse_ncp,
               options_.error_curve_points);
  // Honor the draw budget by shrinking the per-point sample count — the
  // deterministic analogue of a wall-clock deadline on curve builds.
  const int samples = EffectiveSamplesPerPoint();
  const bool budget_cut = samples != options_.samples_per_curve_point;
  if (budget_cut) {
    BudgetCutCounter().Increment();
    NIMBUS_LOG(kWarning)
        << "broker: error-curve build for '" << loss.name()
        << "' degraded to " << samples << " samples/point to fit a budget of "
        << options_.curve_draw_budget << " draws";
  }
  // Estimate advances the rng it is handed (one Fork per build). Run it
  // on a copy and commit the advance only on success: a deadline-
  // cancelled build must leave rng_ untouched so the retried build draws
  // the same noise — otherwise the byte-identical-ledger determinism
  // contract breaks whenever a deadline fires during a cold build.
  // build_mu_ extends the same discipline to concurrent builds of
  // different losses: copy, estimate, and commit are one critical
  // section, so the stream advances once per successful build in a
  // well-defined order.
  std::lock_guard<std::mutex> lock(*build_mu_);
  Rng build_rng = rng_;
  NIMBUS_ASSIGN_OR_RETURN(
      pricing::ErrorCurve curve,
      pricing::ErrorCurve::Estimate(*mechanism_, optimal_model_, loss,
                                    split_.test, grid, samples, build_rng,
                                    cancel, &span.context()));
  rng_ = build_rng;
  if (budget_cut) {
    curve.MarkDegraded();
    span.Annotate("budget-cut");
  }
  return curve;
}

StatusOr<std::shared_ptr<const pricing::ErrorCurve>> Broker::GetErrorCurve(
    const std::string& report_loss_name, const CancelToken* cancel,
    const telemetry::TraceContext* trace) {
  // Resolve the loss before touching the cache: unknown names fail fast
  // with kNotFound and never occupy a cache slot.
  NIMBUS_ASSIGN_OR_RETURN(std::shared_ptr<const ml::Loss> loss,
                          model_.FindReportLoss(report_loss_name));
  if (!curve_cache_enabled()) {
    auto it = error_curves_.find(report_loss_name);
    if (it != error_curves_.end()) {
      return it->second;
    }
    NIMBUS_ASSIGN_OR_RETURN(pricing::ErrorCurve curve,
                            BuildErrorCurve(*loss, cancel, trace));
    auto [inserted, ok] = error_curves_.emplace(
        report_loss_name,
        std::make_shared<const pricing::ErrorCurve>(std::move(curve)));
    NIMBUS_CHECK(ok);
    return inserted->second;
  }
  return curve_cache_->GetOrBuild(
      CurveKeyFor(report_loss_name),
      [&] { return BuildErrorCurve(*loss, cancel, trace); },
      StalePolicy::kWait, cancel);
}

StatusOr<std::vector<Broker::PriceErrorPoint>> Broker::PriceErrorCurve(
    const std::string& report_loss_name) {
  NIMBUS_ASSIGN_OR_RETURN(std::shared_ptr<const pricing::ErrorCurve> curve,
                          GetErrorCurve(report_loss_name));
  std::vector<PriceErrorPoint> out;
  out.reserve(curve->points().size());
  for (const pricing::ErrorCurvePoint& p : curve->points()) {
    out.push_back(PriceErrorPoint{p.inverse_ncp, p.expected_error,
                                  pricing_->PriceAtInverseNcp(p.inverse_ncp)});
  }
  return out;
}

StatusOr<Broker::Purchase> Broker::QuoteAtInverseNcp(
    double inverse_ncp, const pricing::ErrorCurve& curve, Rng& rng,
    const telemetry::TraceContext* trace) const {
  telemetry::TraceSpan span("broker.quote", trace);
  telemetry::ScopedTimer timer(*quote_latency_);
  quotes_counter_->Increment();
  FAULT_POINT("broker.quote");
  if (inverse_ncp < options_.min_inverse_ncp ||
      inverse_ncp > options_.max_inverse_ncp) {
    return OutOfRangeError("requested version is outside the supported "
                           "inverse-NCP range");
  }
  Purchase purchase;
  purchase.degraded = curve.degraded();
  if (purchase.degraded) {
    span.Annotate("degraded");
  }
  purchase.inverse_ncp = inverse_ncp;
  purchase.ncp = 1.0 / inverse_ncp;
  purchase.price = pricing_->PriceAtInverseNcp(inverse_ncp);
  purchase.expected_error = curve.ErrorAtInverseNcp(inverse_ncp);
  purchase.model = mechanism_->Perturb(optimal_model_, purchase.ncp, rng);
  return purchase;
}

void Broker::QuoteBatch(const pricing::ErrorCurve& curve,
                        std::span<const QuoteBatchItem> items,
                        std::span<StatusOr<Purchase>> results,
                        const telemetry::TraceContext* trace) const {
  NIMBUS_CHECK(items.size() == results.size());
  if (items.empty()) {
    return;
  }
  telemetry::TraceSpan span("broker.quote_batch", trace);
  telemetry::ScopedTimer timer(BatchLatency());
  BatchesCounter().Increment();
  BatchItemsCounter().Increment(static_cast<int64_t>(items.size()));
  quotes_counter_->Increment(static_cast<int64_t>(items.size()));
  const bool degraded = curve.degraded();
  if (degraded) {
    span.Annotate("degraded");
  }
  // One pass over the piecewise-linear tables for the whole batch; the
  // per-item bits are identical to a lone ErrorAtInverseNcp call.
  std::vector<double> xs(items.size());
  std::vector<double> errors(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    xs[i] = items[i].inverse_ncp;
  }
  curve.ErrorAtInverseNcpBatch(xs, errors);
  for (size_t i = 0; i < items.size(); ++i) {
    // Same failure order as QuoteAtInverseNcp: fault point first, then
    // the range check. A faulted item's rng is left untouched, exactly
    // as the single path leaves it.
    if (fault::ShouldFail("broker.quote")) {
      results[i] = InternalError("fault injected at 'broker.quote'");
      continue;
    }
    const double x = items[i].inverse_ncp;
    if (x < options_.min_inverse_ncp || x > options_.max_inverse_ncp) {
      results[i] = OutOfRangeError(
          "requested version is outside the supported inverse-NCP range");
      continue;
    }
    Purchase purchase;
    purchase.degraded = degraded;
    purchase.inverse_ncp = x;
    purchase.ncp = 1.0 / x;
    purchase.price = pricing_->PriceAtInverseNcp(x);
    purchase.expected_error = errors[i];
    purchase.model =
        mechanism_->Perturb(optimal_model_, purchase.ncp, *items[i].rng);
    results[i] = std::move(purchase);
  }
}

void Broker::RecordSale(const Purchase& purchase) {
  revenue_collected_ += purchase.price;
  ++sales_count_;
  sales_counter_->Increment();
  revenue_gauge_->Add(purchase.price);
}

Status Broker::RestoreSaleCounters(int64_t sales_count,
                                   double revenue_collected) {
  if (sales_count < 0 || revenue_collected < 0.0) {
    return InvalidArgumentError("restored sale counters must be >= 0");
  }
  if (sales_count_ != 0 || revenue_collected_ != 0.0) {
    return FailedPreconditionError(
        "broker already booked sales (restore requires a fresh broker)");
  }
  sales_count_ = static_cast<int>(sales_count);
  revenue_collected_ = revenue_collected;
  sales_counter_->Increment(sales_count);
  revenue_gauge_->Add(revenue_collected);
  return OkStatus();
}

StatusOr<Broker::Purchase> Broker::CompleteSale(
    double inverse_ncp, const pricing::ErrorCurve& curve) {
  NIMBUS_ASSIGN_OR_RETURN(Purchase purchase,
                          QuoteAtInverseNcp(inverse_ncp, curve, rng_));
  RecordSale(purchase);
  return purchase;
}

StatusOr<Broker::Purchase> Broker::BuyAtInverseNcp(
    double inverse_ncp, const std::string& report_loss_name) {
  if (inverse_ncp < options_.min_inverse_ncp ||
      inverse_ncp > options_.max_inverse_ncp) {
    return OutOfRangeError("requested version is outside the supported "
                           "inverse-NCP range");
  }
  NIMBUS_ASSIGN_OR_RETURN(std::shared_ptr<const pricing::ErrorCurve> curve,
                          GetErrorCurve(report_loss_name));
  return CompleteSale(inverse_ncp, *curve);
}

StatusOr<Broker::Purchase> Broker::BuyWithErrorBudget(
    double error_budget, const std::string& report_loss_name) {
  NIMBUS_ASSIGN_OR_RETURN(std::shared_ptr<const pricing::ErrorCurve> curve,
                          GetErrorCurve(report_loss_name));
  // Price is monotone in x, so the cheapest qualifying version is the
  // smallest x meeting the budget — exactly the broker's optimization
  // problem in §3.2 (option two).
  NIMBUS_ASSIGN_OR_RETURN(double x,
                          curve->MinInverseNcpForErrorBudget(error_budget));
  return CompleteSale(x, *curve);
}

StatusOr<Broker::Purchase> Broker::BuyWithPriceBudget(
    double price_budget, const std::string& report_loss_name) {
  if (price_budget < 0.0) {
    return InvalidArgumentError("price budget must be non-negative");
  }
  NIMBUS_ASSIGN_OR_RETURN(std::shared_ptr<const pricing::ErrorCurve> curve,
                          GetErrorCurve(report_loss_name));
  // Expected error decreases with x while price increases, so the best
  // affordable version is the largest x with price <= budget (option
  // three of §3.2). Binary search on the monotone price curve.
  double lo = options_.min_inverse_ncp;
  double hi = options_.max_inverse_ncp;
  if (pricing_->PriceAtInverseNcp(lo) > price_budget) {
    return InfeasibleError("price budget below the cheapest version");
  }
  if (pricing_->PriceAtInverseNcp(hi) <= price_budget) {
    return CompleteSale(hi, *curve);
  }
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (pricing_->PriceAtInverseNcp(mid) <= price_budget) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return CompleteSale(lo, *curve);
}

}  // namespace nimbus::market
