#include "market/curves.h"

#include <cmath>

#include "common/math_util.h"

namespace nimbus::market {

double NormalizedValueAt(ValueShape shape, double t) {
  switch (shape) {
    case ValueShape::kLinear:
      return t;
    case ValueShape::kConvex:
      return t * t * t;
    case ValueShape::kConcave:
      return std::cbrt(t);
    case ValueShape::kSigmoid: {
      // Logistic centred at 0.5, rescaled so the endpoints hit 0 and 1.
      const double raw = Sigmoid(10.0 * (t - 0.5));
      const double lo = Sigmoid(-5.0);
      const double hi = Sigmoid(5.0);
      return (raw - lo) / (hi - lo);
    }
  }
  return t;
}

double DemandDensityAt(DemandShape shape, double t) {
  switch (shape) {
    case DemandShape::kUniform:
      return 1.0;
    case DemandShape::kUnimodal: {
      const double z = (t - 0.5) / 0.2;
      return 0.05 + std::exp(-0.5 * z * z);
    }
    case DemandShape::kBimodal: {
      const double z0 = (t - 0.15) / 0.12;
      const double z1 = (t - 0.85) / 0.12;
      return 0.05 + std::exp(-0.5 * z0 * z0) + std::exp(-0.5 * z1 * z1);
    }
    case DemandShape::kIncreasing:
      return 0.1 + t;
    case DemandShape::kDecreasing:
      return 0.1 + (1.0 - t);
  }
  return 1.0;
}

std::string_view ToString(ValueShape shape) {
  switch (shape) {
    case ValueShape::kLinear:
      return "linear";
    case ValueShape::kConvex:
      return "convex";
    case ValueShape::kConcave:
      return "concave";
    case ValueShape::kSigmoid:
      return "sigmoid";
  }
  return "unknown";
}

std::string_view ToString(DemandShape shape) {
  switch (shape) {
    case DemandShape::kUniform:
      return "uniform";
    case DemandShape::kUnimodal:
      return "unimodal";
    case DemandShape::kBimodal:
      return "bimodal";
    case DemandShape::kIncreasing:
      return "increasing";
    case DemandShape::kDecreasing:
      return "decreasing";
  }
  return "unknown";
}

std::vector<ValueShape> AllValueShapes() {
  return {ValueShape::kLinear, ValueShape::kConvex, ValueShape::kConcave,
          ValueShape::kSigmoid};
}

std::vector<DemandShape> AllDemandShapes() {
  return {DemandShape::kUniform, DemandShape::kUnimodal,
          DemandShape::kBimodal, DemandShape::kIncreasing,
          DemandShape::kDecreasing};
}

StatusOr<std::vector<revenue::BuyerPoint>> MakeBuyerPoints(
    ValueShape value_shape, DemandShape demand_shape, int n, double a_min,
    double a_max, double v_max, double value_floor) {
  if (n < 1) {
    return InvalidArgumentError("need at least one buyer point");
  }
  if (!(a_min > 0.0) || (n > 1 && !(a_max > a_min))) {
    return InvalidArgumentError("need 0 < a_min < a_max");
  }
  if (value_floor < 0.0 || v_max < value_floor) {
    return InvalidArgumentError("need 0 <= value_floor <= v_max");
  }
  std::vector<revenue::BuyerPoint> points(static_cast<size_t>(n));
  double total_mass = 0.0;
  for (int j = 0; j < n; ++j) {
    const double t =
        n == 1 ? 1.0 : static_cast<double>(j) / static_cast<double>(n - 1);
    revenue::BuyerPoint& p = points[static_cast<size_t>(j)];
    p.a = n == 1 ? a_min : a_min + t * (a_max - a_min);
    p.v = value_floor + (v_max - value_floor) * NormalizedValueAt(value_shape, t);
    p.b = DemandDensityAt(demand_shape, t);
    total_mass += p.b;
  }
  for (revenue::BuyerPoint& p : points) {
    p.b /= total_mass;
  }
  return points;
}

}  // namespace nimbus::market
