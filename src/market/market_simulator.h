#ifndef NIMBUS_MARKET_MARKET_SIMULATOR_H_
#define NIMBUS_MARKET_MARKET_SIMULATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "market/broker.h"
#include "pricing/pricing_function.h"
#include "revenue/buyer_model.h"

namespace nimbus::market {

// The seller agent of Figure 1(A): owns the market research (buyer value
// and demand curves) and negotiates the pricing function with the broker
// by running the MBP revenue optimization (Algorithm 1) on it.
class Seller {
 public:
  // `market_research` must satisfy the DP preconditions (strictly
  // increasing parameters, monotone valuations).
  static StatusOr<Seller> Create(
      std::vector<revenue::BuyerPoint> market_research);

  const std::vector<revenue::BuyerPoint>& market_research() const {
    return market_research_;
  }

  // Runs revenue optimization and returns the arbitrage-free MBP pricing
  // function to install on the broker, together with the predicted
  // revenue (field two).
  StatusOr<std::shared_ptr<const pricing::PricingFunction>>
  NegotiatePricing() const;
  double predicted_revenue() const { return predicted_revenue_; }

 private:
  explicit Seller(std::vector<revenue::BuyerPoint> market_research)
      : market_research_(std::move(market_research)) {}

  std::vector<revenue::BuyerPoint> market_research_;
  mutable double predicted_revenue_ = 0.0;
};

// Outcome of simulating one buyer population against a broker.
struct SimulationResult {
  double revenue = 0.0;            // Actual payments collected.
  double affordability = 0.0;      // Buyer-mass fraction that purchased.
  int transactions = 0;            // Number of completed sales.
  double mean_delivered_error = 0.0;  // Avg report error of sold models.
};

// Replays the market of §6.2 end to end: each buyer point represents
// `b_j`-weighted buyers interested in version a_j who purchase through
// the broker's point-on-curve option iff the listed price is within
// their valuation. Delivered models are scored with the report loss so
// the simulation verifies that buyers actually receive the quality they
// paid for.
// Buyer points are quoted in parallel (NIMBUS_THREADS wide) on per-buyer
// Rng::Fork(i) streams and the sales are then booked serially in buyer
// order, so the replay is bit-identical at every thread count.
StatusOr<SimulationResult> SimulateMarket(
    Broker& broker, const std::vector<revenue::BuyerPoint>& buyers,
    const std::string& report_loss_name);

}  // namespace nimbus::market

#endif  // NIMBUS_MARKET_MARKET_SIMULATOR_H_
