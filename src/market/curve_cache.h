#ifndef NIMBUS_MARKET_CURVE_CACHE_H_
#define NIMBUS_MARKET_CURVE_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "common/clock.h"
#include "common/profiler.h"
#include "common/statusor.h"
#include "data/dataset.h"
#include "pricing/error_curve.h"

namespace nimbus::market {

// Identity of one error-transformation curve: everything that feeds the
// Monte-Carlo estimate. Two brokers (or two generations of one broker)
// that agree on every field would build bit-identical curves, so they
// may share the cached entry; any differing field — notably the seed,
// which Marketplace::AddOffering perturbs per offering — separates them.
struct CurveKey {
  // FingerprintDataset over the broker's evaluation split.
  uint64_t dataset_fingerprint = 0;
  std::string model;      // ml::ModelKindToString of the offering.
  std::string mechanism;  // mechanism::NoiseMechanism::name().
  std::string loss;       // Report loss ε name.
  uint64_t seed = 0;      // Broker master seed (per-offering).
  double min_inverse_ncp = 0.0;
  double max_inverse_ncp = 0.0;
  int grid_points = 0;
  int samples_per_point = 0;

  // Canonical map key. Doubles are rendered as bit patterns so keys
  // never collide through decimal rounding.
  std::string ToString() const;
};

// Order-insensitive-enough content hash of a dataset (FNV-1a over the
// task, shape, and every example's raw double bits) — the cache-key
// component standing in for "same evaluation data".
uint64_t FingerprintDataset(const data::Dataset& dataset);

// What a requester does when it finds another thread mid-build for its
// key: block until that build commits (kWait) or, when a previous
// version of the curve is still valid, take it immediately (kServeStale).
enum class StalePolicy {
  kWait,
  kServeStale,
};

// Shared, versioned, concurrency-safe cache of immutable error curves —
// the quote hot path's answer to BENCH_soak's 17 ms p50: every quote
// after the first is a shared_ptr copy instead of a Monte-Carlo build.
//
// Single-flight protocol, per key:
//   - The first requester of a missing (or invalidated) version becomes
//     the builder; it runs the caller-supplied builder outside the slot
//     lock, so hits on other keys never stall behind it.
//   - Concurrent requesters of the same key never start a second build:
//     they wait on the in-flight one (kWait) or are served the previous
//     committed version when one exists (kServeStale).
//   - A failed or deadline-cancelled build commits nothing; waiters of
//     that build get its status, and the next fresh requester retries.
//     RNG discipline is therefore the builder callback's alone: the
//     cache never re-runs a build whose result it already holds.
//
// Versioning: Invalidate bumps the key's target version. The previously
// committed curve remains available to kServeStale requesters until the
// rebuild commits; entries handed out earlier stay alive through their
// shared_ptr, so quotes in flight never dangle.
//
// Telemetry: curve_cache_{hits,misses,stale_served,inflight_waits,
// builds,build_failures,invalidations}_total counters, the
// curve_cache_entries gauge, and the curve_cache_build_latency_us
// histogram; per-instance Stats mirror them for tests.
class CurveCache {
 public:
  using Builder = std::function<StatusOr<pricing::ErrorCurve>()>;

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t stale_served = 0;
    int64_t inflight_waits = 0;
    int64_t builds = 0;
    int64_t build_failures = 0;
    int64_t invalidations = 0;
  };

  CurveCache() = default;
  CurveCache(const CurveCache&) = delete;
  CurveCache& operator=(const CurveCache&) = delete;

  // Returns the committed curve for `key`, building it with `build` when
  // missing or stale (single-flight; see class comment). `cancel`
  // (optional) bounds the in-flight wait — a waiter whose deadline
  // expires unwinds with kDeadlineExceeded without disturbing the build.
  StatusOr<std::shared_ptr<const pricing::ErrorCurve>> GetOrBuild(
      const CurveKey& key, const Builder& build,
      StalePolicy policy = StalePolicy::kWait,
      const CancelToken* cancel = nullptr);

  // Marks the key's committed version stale: the next GetOrBuild runs a
  // fresh build (kServeStale requesters keep getting the old curve until
  // the rebuild commits). No-op for keys never requested.
  void Invalidate(const CurveKey& key);

  // Committed version of the key: 0 = never built, then 1, 2, ... after
  // each committed (re)build.
  int64_t VersionOf(const CurveKey& key) const;

  size_t size() const;
  Stats stats() const;

 private:
  struct Slot {
    // Instrumented (mutex_*{mutex="curve_cache_slot"}): waiter convoys
    // behind an in-flight build are visible in the contention profile.
    // The outer map_mu_ shared_mutex stays plain — ProfiledMutex models
    // exclusive locking only, and the map lock is touched once per
    // lookup versus the slot's per-quote traffic.
    prof::ProfiledMutex mu{"curve_cache_slot"};
    std::condition_variable_any cv;
    std::shared_ptr<const pricing::ErrorCurve> curve;  // Last committed.
    int64_t version = 0;         // Version of `curve` (0 = none yet).
    int64_t target_version = 1;  // What a fresh build would commit as.
    bool building = false;       // Exactly one builder at a time.
    // Completed build attempts (success or failure); lets waiters tell
    // "the build I waited on failed" apart from spurious wakeups.
    uint64_t build_epoch = 0;
    Status last_build_error;
  };

  Slot* GetSlot(const CurveKey& key);

  mutable std::shared_mutex map_mu_;
  std::map<std::string, std::unique_ptr<Slot>> slots_;

  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> stale_served_{0};
  std::atomic<int64_t> inflight_waits_{0};
  std::atomic<int64_t> builds_{0};
  std::atomic<int64_t> build_failures_{0};
  std::atomic<int64_t> invalidations_{0};
};

}  // namespace nimbus::market

#endif  // NIMBUS_MARKET_CURVE_CACHE_H_
