#include "market/checkpointer.h"

#include <cstdio>
#include <utility>

#include "common/logging.h"
#include "common/telemetry.h"

namespace nimbus::market {
namespace {

telemetry::Counter& CheckpointsCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("snapshot_checkpoints_total");
  return counter;
}

telemetry::Counter& CheckpointFailuresCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter(
          "snapshot_checkpoint_failures_total");
  return counter;
}

telemetry::Counter& RotationsCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("journal_rotations_total");
  return counter;
}

telemetry::Counter& RotationFailuresCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter(
          "journal_rotation_failures_total");
  return counter;
}

telemetry::Gauge& LastGenerationGauge() {
  static telemetry::Gauge& gauge =
      telemetry::Registry::Global().GetGauge("snapshot_last_generation");
  return gauge;
}

telemetry::Gauge& LastBytesGauge() {
  static telemetry::Gauge& gauge =
      telemetry::Registry::Global().GetGauge("snapshot_last_bytes");
  return gauge;
}

telemetry::Gauge& JournalLiveBytesGauge() {
  static telemetry::Gauge& gauge =
      telemetry::Registry::Global().GetGauge("journal_live_bytes");
  return gauge;
}

telemetry::Histogram& CheckpointLatency() {
  static telemetry::Histogram& histogram =
      telemetry::Registry::Global().GetHistogram("checkpoint_latency_us");
  return histogram;
}

}  // namespace

Checkpointer::Checkpointer(std::string journal_path, CheckpointPolicy policy)
    : journal_path_(std::move(journal_path)), policy_(policy) {
  if (policy_.retain_snapshots < 2) {
    policy_.retain_snapshots = 2;  // The ladder needs a fallback rung.
  }
}

Status Checkpointer::Init() {
  StatusOr<snapshot::Manifest> manifest =
      snapshot::ReadManifest(journal_path_);
  if (manifest.ok()) {
    stats_.last_generation = manifest->generation;
    stats_.last_sequence = manifest->sequence;
    stats_.prev_sequence = manifest->prev_sequence;
    return OkStatus();
  }
  // No (or corrupt) manifest: resume past whatever generations exist on
  // disk so a new checkpoint never overwrites one a recovery might
  // still need. Their sequences are unknown without reading them, so
  // cadence restarts from zero — harmless (at worst one early
  // checkpoint).
  const std::vector<int64_t> gens = snapshot::ListGenerations(journal_path_);
  if (!gens.empty()) {
    stats_.last_generation = gens.front();
  }
  return OkStatus();
}

bool Checkpointer::Due(int64_t ledger_records,
                       int64_t journal_live_bytes) const {
  if (policy_.every_records > 0 &&
      ledger_records - stats_.last_sequence >= policy_.every_records) {
    return true;
  }
  if (policy_.every_journal_bytes > 0 &&
      journal_live_bytes >= policy_.every_journal_bytes) {
    return true;
  }
  return false;
}

StatusOr<int64_t> Checkpointer::Commit(snapshot::State state,
                                       Journal* journal) {
  if (state.sequence == stats_.last_sequence && stats_.last_generation > 0) {
    return stats_.last_generation;  // Nothing new since the last one.
  }
  if (state.sequence < stats_.last_sequence) {
    return FailedPreconditionError(
        "checkpoint state covers " + std::to_string(state.sequence) +
        " records but generation " + std::to_string(stats_.last_generation) +
        " already covers " + std::to_string(stats_.last_sequence));
  }
  telemetry::ScopedTimer timer(CheckpointLatency());
  const int64_t generation = stats_.last_generation + 1;
  state.generation = generation;
  const std::string file = snapshot::SnapshotPath(journal_path_, generation);
  const StatusOr<int64_t> bytes = snapshot::Write(file, state);
  if (!bytes.ok()) {
    ++stats_.failures;
    CheckpointFailuresCounter().Increment();
    return bytes.status();
  }
  snapshot::Manifest manifest;
  manifest.generation = generation;
  manifest.sequence = state.sequence;
  manifest.prev_generation = stats_.last_generation;
  manifest.prev_sequence = stats_.last_sequence;
  const Status manifest_status =
      snapshot::WriteManifest(journal_path_, manifest);
  if (!manifest_status.ok()) {
    // The snapshot itself is committed and the directory scan will find
    // it; a stale manifest only slows the ladder down.
    NIMBUS_LOG(kWarning) << "checkpoint generation " << generation
                         << ": manifest update failed ("
                         << manifest_status.message()
                         << "); recovery will rely on the directory scan";
  }
  // Rotate down to the PREVIOUS generation's sequence so the live
  // segment still serves the fallback rung (class comment). At G=1
  // that base is 0 — Rotate is then a no-op on an unrotated J1 file.
  const int64_t rotate_base = stats_.last_sequence;
  const int64_t prev_sequence = stats_.last_sequence;
  if (journal != nullptr) {
    const Status rotated = journal->Rotate(rotate_base);
    if (rotated.ok()) {
      if (rotate_base > 0) {
        RotationsCounter().Increment();
      }
    } else {
      ++stats_.rotation_failures;
      RotationFailuresCounter().Increment();
      NIMBUS_LOG(kWarning) << "checkpoint generation " << generation
                           << ": journal rotation failed ("
                           << rotated.message()
                           << "); replay stays longer but correct";
    }
    JournalLiveBytesGauge().Set(static_cast<double>(journal->live_bytes()));
  }
  // Prune generations the ladder can no longer want. unlink failures
  // are ignored: an undeletable stale snapshot is wasted disk, not a
  // correctness problem.
  for (int64_t gen = generation - policy_.retain_snapshots; gen >= 1; --gen) {
    const std::string stale = snapshot::SnapshotPath(journal_path_, gen);
    if (std::remove(stale.c_str()) != 0) {
      break;  // Older ones were pruned by earlier checkpoints.
    }
  }
  ++stats_.checkpoints;
  stats_.last_generation = generation;
  stats_.prev_sequence = prev_sequence;
  stats_.last_sequence = state.sequence;
  CheckpointsCounter().Increment();
  LastGenerationGauge().Set(static_cast<double>(generation));
  LastBytesGauge().Set(static_cast<double>(*bytes));
  return generation;
}

}  // namespace nimbus::market
