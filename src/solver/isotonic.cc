#include "solver/isotonic.h"

#include <algorithm>

namespace nimbus::solver {
namespace {

Status ValidateInput(const std::vector<double>& y,
                     const std::vector<double>& weights) {
  if (y.empty()) {
    return InvalidArgumentError("isotonic regression needs data");
  }
  if (!weights.empty()) {
    if (weights.size() != y.size()) {
      return InvalidArgumentError("weights size != data size");
    }
    for (double w : weights) {
      if (!(w > 0.0)) {
        return InvalidArgumentError("weights must be positive");
      }
    }
  }
  return OkStatus();
}

}  // namespace

StatusOr<std::vector<double>> IsotonicIncreasing(
    const std::vector<double>& y, const std::vector<double>& weights) {
  NIMBUS_RETURN_IF_ERROR(ValidateInput(y, weights));
  const size_t n = y.size();
  // Blocks of pooled values: value, total weight, number of elements.
  std::vector<double> value;
  std::vector<double> weight;
  std::vector<size_t> count;
  value.reserve(n);
  weight.reserve(n);
  count.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    value.push_back(y[i]);
    weight.push_back(weights.empty() ? 1.0 : weights[i]);
    count.push_back(1);
    // Merge backwards while the last block undercuts its predecessor.
    while (value.size() > 1 && value[value.size() - 2] > value.back()) {
      const size_t last = value.size() - 1;
      const double merged_weight = weight[last - 1] + weight[last];
      value[last - 1] = (value[last - 1] * weight[last - 1] +
                         value[last] * weight[last]) /
                        merged_weight;
      weight[last - 1] = merged_weight;
      count[last - 1] += count[last];
      value.pop_back();
      weight.pop_back();
      count.pop_back();
    }
  }
  std::vector<double> out;
  out.reserve(n);
  for (size_t b = 0; b < value.size(); ++b) {
    out.insert(out.end(), count[b], value[b]);
  }
  return out;
}

StatusOr<std::vector<double>> IsotonicDecreasing(
    const std::vector<double>& y, const std::vector<double>& weights) {
  // Decreasing fit = increasing fit on the reversed sequence, reversed.
  std::vector<double> y_rev(y.rbegin(), y.rend());
  std::vector<double> w_rev(weights.rbegin(), weights.rend());
  NIMBUS_ASSIGN_OR_RETURN(std::vector<double> fit,
                          IsotonicIncreasing(y_rev, w_rev));
  std::reverse(fit.begin(), fit.end());
  return fit;
}

}  // namespace nimbus::solver
