#ifndef NIMBUS_SOLVER_MILP_H_
#define NIMBUS_SOLVER_MILP_H_

#include <vector>

#include "common/statusor.h"
#include "solver/lp.h"

namespace nimbus::solver {

// A mixed-integer linear program: an LpProblem plus integrality marks.
struct MilpProblem {
  LpProblem lp;
  // integer[i] == true forces variable i to take an integer value.
  std::vector<bool> integer;
};

struct MilpSolution {
  std::vector<double> values;
  double objective_value = 0.0;
  // Number of branch-and-bound nodes explored (for runtime reporting).
  int nodes_explored = 0;
};

// Solves `problem` by LP-relaxation branch-and-bound (depth-first, most-
// fractional branching, bound pruning). Suitable for the small integer
// programs of the paper's brute-force revenue baseline (Algorithm 2).
// Returns kInfeasible / kUnbounded like SolveLp. `max_nodes` bounds the
// search; exceeding it returns kResourceExhausted.
StatusOr<MilpSolution> SolveMilp(const MilpProblem& problem,
                                 int max_nodes = 100000);

}  // namespace nimbus::solver

#endif  // NIMBUS_SOLVER_MILP_H_
