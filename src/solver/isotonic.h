#ifndef NIMBUS_SOLVER_ISOTONIC_H_
#define NIMBUS_SOLVER_ISOTONIC_H_

#include <vector>

#include "common/statusor.h"

namespace nimbus::solver {

// Weighted isotonic regression via the pool-adjacent-violators algorithm
// (PAVA): returns argmin_z Σ w_i (z_i − y_i)² subject to
// z_1 <= z_2 <= ... <= z_n. Weights must be positive; when `weights` is
// empty, unit weights are used. O(n).
StatusOr<std::vector<double>> IsotonicIncreasing(
    const std::vector<double>& y, const std::vector<double>& weights = {});

// Same with the reversed order constraint z_1 >= z_2 >= ... >= z_n.
StatusOr<std::vector<double>> IsotonicDecreasing(
    const std::vector<double>& y, const std::vector<double>& weights = {});

}  // namespace nimbus::solver

#endif  // NIMBUS_SOLVER_ISOTONIC_H_
