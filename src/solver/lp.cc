#include "solver/lp.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace nimbus::solver {
namespace {

constexpr double kTol = 1e-9;

// Full-tableau simplex state. Variables are columns; the last column is
// the right-hand side. row 0 of `tableau` is the (negated-cost) objective
// row; rows 1..m are constraints with `basis[i]` giving the basic
// variable of row i+1.
struct Tableau {
  int num_cols = 0;  // Total structural columns (excluding rhs).
  std::vector<std::vector<double>> rows;  // rows[0] = objective row.
  std::vector<int> basis;                 // Size m.

  double& Rhs(int row) { return rows[static_cast<size_t>(row)].back(); }
  double Rhs(int row) const { return rows[static_cast<size_t>(row)].back(); }
};

void Pivot(Tableau& t, int pivot_row, int pivot_col) {
  std::vector<double>& prow = t.rows[static_cast<size_t>(pivot_row)];
  const double inv = 1.0 / prow[static_cast<size_t>(pivot_col)];
  for (double& v : prow) {
    v *= inv;
  }
  for (size_t r = 0; r < t.rows.size(); ++r) {
    if (static_cast<int>(r) == pivot_row) {
      continue;
    }
    std::vector<double>& row = t.rows[r];
    const double factor = row[static_cast<size_t>(pivot_col)];
    if (std::fabs(factor) < 1e-14) {
      continue;
    }
    for (size_t c = 0; c < row.size(); ++c) {
      row[c] -= factor * prow[c];
    }
    row[static_cast<size_t>(pivot_col)] = 0.0;
  }
  t.basis[static_cast<size_t>(pivot_row - 1)] = pivot_col;
}

// Runs simplex iterations with Bland's rule until optimality or
// unboundedness. `allowed` marks columns eligible to enter the basis.
// Returns kUnbounded if a negative reduced cost column has no positive
// entry.
Status Iterate(Tableau& t, const std::vector<bool>& allowed) {
  const int m = static_cast<int>(t.rows.size()) - 1;
  for (int iter = 0;; ++iter) {
    // Safety valve: Bland's rule guarantees termination, but cap anyway.
    NIMBUS_CHECK_LT(iter, 100000) << "simplex iteration bound exceeded";
    // Bland: entering column = smallest index with negative reduced cost.
    int entering = -1;
    for (int c = 0; c < t.num_cols; ++c) {
      if (allowed[static_cast<size_t>(c)] &&
          t.rows[0][static_cast<size_t>(c)] < -kTol) {
        entering = c;
        break;
      }
    }
    if (entering == -1) {
      return OkStatus();  // Optimal.
    }
    // Ratio test; Bland tie-break on smallest basis variable index.
    int leaving_row = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int r = 1; r <= m; ++r) {
      const double a = t.rows[static_cast<size_t>(r)][static_cast<size_t>(
          entering)];
      if (a > kTol) {
        const double ratio = t.Rhs(r) / a;
        if (ratio < best_ratio - kTol ||
            (ratio < best_ratio + kTol && leaving_row != -1 &&
             t.basis[static_cast<size_t>(r - 1)] <
                 t.basis[static_cast<size_t>(leaving_row - 1)])) {
          best_ratio = ratio;
          leaving_row = r;
        }
      }
    }
    if (leaving_row == -1) {
      return UnboundedError("LP objective is unbounded");
    }
    Pivot(t, leaving_row, entering);
  }
}

}  // namespace

Status ValidateLpProblem(const LpProblem& problem) {
  if (problem.num_vars <= 0) {
    return InvalidArgumentError("LP needs at least one variable");
  }
  if (static_cast<int>(problem.objective.size()) != problem.num_vars) {
    return InvalidArgumentError("objective size != num_vars");
  }
  for (double c : problem.objective) {
    if (!std::isfinite(c)) {
      return InvalidArgumentError("objective has non-finite coefficient");
    }
  }
  for (const LpConstraint& con : problem.constraints) {
    if (static_cast<int>(con.coeffs.size()) != problem.num_vars) {
      return InvalidArgumentError("constraint width != num_vars");
    }
    if (!std::isfinite(con.rhs)) {
      return InvalidArgumentError("constraint rhs is non-finite");
    }
    for (double c : con.coeffs) {
      if (!std::isfinite(c)) {
        return InvalidArgumentError("constraint has non-finite coefficient");
      }
    }
  }
  return OkStatus();
}

StatusOr<LpSolution> SolveLp(const LpProblem& problem) {
  NIMBUS_RETURN_IF_ERROR(ValidateLpProblem(problem));
  const int n = problem.num_vars;
  const int m = static_cast<int>(problem.constraints.size());

  // Normalize rows to non-negative rhs, then count slack/artificial needs.
  std::vector<LpConstraint> rows = problem.constraints;
  for (LpConstraint& row : rows) {
    if (row.rhs < 0.0) {
      row.rhs = -row.rhs;
      for (double& c : row.coeffs) {
        c = -c;
      }
      if (row.sense == ConstraintSense::kLessEqual) {
        row.sense = ConstraintSense::kGreaterEqual;
      } else if (row.sense == ConstraintSense::kGreaterEqual) {
        row.sense = ConstraintSense::kLessEqual;
      }
    }
  }
  int num_slack = 0;
  int num_artificial = 0;
  for (const LpConstraint& row : rows) {
    switch (row.sense) {
      case ConstraintSense::kLessEqual:
        ++num_slack;
        break;
      case ConstraintSense::kGreaterEqual:
        ++num_slack;
        ++num_artificial;
        break;
      case ConstraintSense::kEqual:
        ++num_artificial;
        break;
    }
  }
  const int total = n + num_slack + num_artificial;
  const int artificial_start = n + num_slack;

  Tableau t;
  t.num_cols = total;
  t.rows.assign(static_cast<size_t>(m + 1),
                std::vector<double>(static_cast<size_t>(total + 1), 0.0));
  t.basis.assign(static_cast<size_t>(m), -1);

  int slack_col = n;
  int artificial_col = artificial_start;
  for (int r = 0; r < m; ++r) {
    std::vector<double>& row = t.rows[static_cast<size_t>(r + 1)];
    for (int c = 0; c < n; ++c) {
      row[static_cast<size_t>(c)] = rows[static_cast<size_t>(r)].coeffs[
          static_cast<size_t>(c)];
    }
    row.back() = rows[static_cast<size_t>(r)].rhs;
    switch (rows[static_cast<size_t>(r)].sense) {
      case ConstraintSense::kLessEqual:
        row[static_cast<size_t>(slack_col)] = 1.0;
        t.basis[static_cast<size_t>(r)] = slack_col;
        ++slack_col;
        break;
      case ConstraintSense::kGreaterEqual:
        row[static_cast<size_t>(slack_col)] = -1.0;  // Surplus.
        ++slack_col;
        row[static_cast<size_t>(artificial_col)] = 1.0;
        t.basis[static_cast<size_t>(r)] = artificial_col;
        ++artificial_col;
        break;
      case ConstraintSense::kEqual:
        row[static_cast<size_t>(artificial_col)] = 1.0;
        t.basis[static_cast<size_t>(r)] = artificial_col;
        ++artificial_col;
        break;
    }
  }

  std::vector<bool> allowed(static_cast<size_t>(total), true);

  if (num_artificial > 0) {
    // Phase 1: maximize −Σ artificials. Objective row starts as +1 on the
    // artificial columns, then basic columns are priced out.
    for (int c = artificial_start; c < total; ++c) {
      t.rows[0][static_cast<size_t>(c)] = 1.0;
    }
    for (int r = 0; r < m; ++r) {
      const int b = t.basis[static_cast<size_t>(r)];
      if (b >= artificial_start) {
        for (size_t c = 0; c < t.rows[0].size(); ++c) {
          t.rows[0][c] -= t.rows[static_cast<size_t>(r + 1)][c];
        }
      }
    }
    NIMBUS_RETURN_IF_ERROR(Iterate(t, allowed));
    // Objective row rhs holds −(phase-1 optimum); feasible iff ≈ 0.
    if (t.rows[0].back() < -1e-7) {
      return InfeasibleError("LP is infeasible");
    }
    // Pivot any artificial variable still basic (at zero) out of the basis.
    for (int r = 0; r < m; ++r) {
      if (t.basis[static_cast<size_t>(r)] >= artificial_start) {
        int pivot_col = -1;
        for (int c = 0; c < artificial_start; ++c) {
          if (std::fabs(t.rows[static_cast<size_t>(r + 1)][
                  static_cast<size_t>(c)]) > kTol) {
            pivot_col = c;
            break;
          }
        }
        if (pivot_col != -1) {
          Pivot(t, r + 1, pivot_col);
        }
        // Otherwise the row is redundant (all-zero in structural columns);
        // leaving the artificial basic at level 0 is harmless since the
        // column is disallowed below.
      }
    }
    for (int c = artificial_start; c < total; ++c) {
      allowed[static_cast<size_t>(c)] = false;
    }
  }

  // Phase 2: install the real objective row (negated costs for maximize;
  // minimize is maximize of the negation) and price out basic columns.
  std::fill(t.rows[0].begin(), t.rows[0].end(), 0.0);
  const double sign = problem.maximize ? 1.0 : -1.0;
  for (int c = 0; c < n; ++c) {
    t.rows[0][static_cast<size_t>(c)] =
        -sign * problem.objective[static_cast<size_t>(c)];
  }
  for (int r = 0; r < m; ++r) {
    const int b = t.basis[static_cast<size_t>(r)];
    const double coeff = t.rows[0][static_cast<size_t>(b)];
    if (std::fabs(coeff) > 0.0) {
      for (size_t c = 0; c < t.rows[0].size(); ++c) {
        t.rows[0][c] -= coeff * t.rows[static_cast<size_t>(r + 1)][c];
      }
    }
  }
  NIMBUS_RETURN_IF_ERROR(Iterate(t, allowed));

  LpSolution solution;
  solution.values.assign(static_cast<size_t>(n), 0.0);
  for (int r = 0; r < m; ++r) {
    const int b = t.basis[static_cast<size_t>(r)];
    if (b < n) {
      solution.values[static_cast<size_t>(b)] = t.Rhs(r + 1);
    }
  }
  solution.objective_value = sign * t.rows[0].back();
  return solution;
}

}  // namespace nimbus::solver
