#ifndef NIMBUS_SOLVER_LP_H_
#define NIMBUS_SOLVER_LP_H_

#include <string>
#include <vector>

#include "common/statusor.h"

namespace nimbus::solver {

// Direction of one linear constraint row.
enum class ConstraintSense { kLessEqual, kGreaterEqual, kEqual };

// One constraint: coeffs · x  (sense)  rhs.
struct LpConstraint {
  std::vector<double> coeffs;
  ConstraintSense sense = ConstraintSense::kLessEqual;
  double rhs = 0.0;
};

// A linear program over non-negative variables x >= 0:
//   maximize (or minimize) objective · x  subject to the constraints.
// Callers with free variables must split them into differences of
// non-negative pairs themselves.
struct LpProblem {
  int num_vars = 0;
  bool maximize = true;
  std::vector<double> objective;
  std::vector<LpConstraint> constraints;
};

struct LpSolution {
  std::vector<double> values;
  double objective_value = 0.0;
};

// Solves `problem` with a two-phase dense tableau simplex using Bland's
// anti-cycling rule. Returns kInfeasible when no feasible point exists and
// kUnbounded when the objective is unbounded in the optimization
// direction.
StatusOr<LpSolution> SolveLp(const LpProblem& problem);

// Validates the structural invariants of `problem` (matching coefficient
// widths, finite data); SolveLp calls this first.
Status ValidateLpProblem(const LpProblem& problem);

}  // namespace nimbus::solver

#endif  // NIMBUS_SOLVER_LP_H_
