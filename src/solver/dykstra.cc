#include "solver/dykstra.h"

#include <algorithm>
#include <cmath>

#include "solver/isotonic.h"

namespace nimbus::solver {
namespace {

// Projection onto { z : z non-decreasing } — plain isotonic regression.
std::vector<double> ProjectMonotone(const std::vector<double>& x) {
  return *IsotonicIncreasing(x);
}

// Projection onto { z : z_i / a_i non-increasing }. With u_i = z_i / a_i,
// minimizing Σ (z_i − x_i)² = Σ a_i² (u_i − x_i/a_i)² is a weighted
// decreasing isotonic regression in u with weights a_i².
std::vector<double> ProjectRelaxedSubadditive(const std::vector<double>& x,
                                              const std::vector<double>& a) {
  const size_t n = x.size();
  std::vector<double> u(n);
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) {
    u[i] = x[i] / a[i];
    w[i] = a[i] * a[i];
  }
  std::vector<double> fit = *IsotonicDecreasing(u, w);
  std::vector<double> z(n);
  for (size_t i = 0; i < n; ++i) {
    z[i] = fit[i] * a[i];
  }
  return z;
}

std::vector<double> ProjectNonNegative(const std::vector<double>& x) {
  std::vector<double> z = x;
  for (double& v : z) {
    v = std::max(v, 0.0);
  }
  return z;
}

}  // namespace

StatusOr<std::vector<double>> ProjectOntoPricingPolytope(
    const std::vector<double>& target, const std::vector<double>& a,
    int max_sweeps, double tolerance) {
  const size_t n = target.size();
  if (n == 0) {
    return InvalidArgumentError("empty target");
  }
  if (a.size() != n) {
    return InvalidArgumentError("parameter vector size mismatch");
  }
  double prev = 0.0;
  for (double ai : a) {
    if (!(ai > prev)) {
      return InvalidArgumentError(
          "parameters must be strictly increasing and positive");
    }
    prev = ai;
  }
  // Dykstra's algorithm over the three convex sets.
  std::vector<double> x = target;
  std::vector<std::vector<double>> increments(
      3, std::vector<double>(n, 0.0));
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    const std::vector<double> before = x;
    for (int set = 0; set < 3; ++set) {
      std::vector<double> shifted(n);
      for (size_t i = 0; i < n; ++i) {
        shifted[i] = x[i] + increments[static_cast<size_t>(set)][i];
      }
      std::vector<double> projected;
      switch (set) {
        case 0:
          projected = ProjectMonotone(shifted);
          break;
        case 1:
          projected = ProjectRelaxedSubadditive(shifted, a);
          break;
        default:
          projected = ProjectNonNegative(shifted);
          break;
      }
      for (size_t i = 0; i < n; ++i) {
        increments[static_cast<size_t>(set)][i] = shifted[i] - projected[i];
      }
      x = std::move(projected);
    }
    double delta = 0.0;
    for (size_t i = 0; i < n; ++i) {
      delta = std::max(delta, std::fabs(x[i] - before[i]));
    }
    if (delta < tolerance) {
      break;
    }
  }
  return x;
}

}  // namespace nimbus::solver
