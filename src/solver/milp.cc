#include "solver/milp.h"

#include <cmath>
#include <limits>
#include <optional>

#include "common/logging.h"

namespace nimbus::solver {
namespace {

constexpr double kIntTol = 1e-6;

// Returns the index of the integer variable whose LP value is furthest
// from integral, or -1 when all integer variables are integral.
int MostFractionalVariable(const std::vector<double>& values,
                           const std::vector<bool>& integer) {
  int best = -1;
  double best_frac = kIntTol;
  for (size_t i = 0; i < values.size(); ++i) {
    if (!integer[i]) {
      continue;
    }
    const double frac = std::fabs(values[i] - std::round(values[i]));
    if (frac > best_frac) {
      best_frac = frac;
      best = static_cast<int>(i);
    }
  }
  return best;
}

struct SearchState {
  const MilpProblem* problem = nullptr;
  double sign = 1.0;  // +1 maximize, used for bound comparisons.
  std::optional<MilpSolution> incumbent;
  int nodes = 0;
  int max_nodes = 0;
  bool node_budget_exceeded = false;
};

// Depth-first branch and bound. `bounds` carries the extra branching
// constraints accumulated along the current path.
void Branch(SearchState& state, std::vector<LpConstraint>& extra) {
  if (state.node_budget_exceeded) {
    return;
  }
  if (++state.nodes > state.max_nodes) {
    state.node_budget_exceeded = true;
    return;
  }
  LpProblem relaxed = state.problem->lp;
  relaxed.constraints.insert(relaxed.constraints.end(), extra.begin(),
                             extra.end());
  StatusOr<LpSolution> lp = SolveLp(relaxed);
  if (!lp.ok()) {
    return;  // Infeasible subtree (unbounded roots are handled by caller).
  }
  // Bound pruning: a maximizer cannot improve past the relaxation value.
  if (state.incumbent.has_value()) {
    const double bound = state.sign * lp->objective_value;
    const double have = state.sign * state.incumbent->objective_value;
    if (bound <= have + 1e-9) {
      return;
    }
  }
  const int branch_var =
      MostFractionalVariable(lp->values, state.problem->integer);
  if (branch_var == -1) {
    // Integral: candidate incumbent.
    MilpSolution candidate;
    candidate.values = lp->values;
    for (size_t i = 0; i < candidate.values.size(); ++i) {
      if (state.problem->integer[i]) {
        candidate.values[i] = std::round(candidate.values[i]);
      }
    }
    candidate.objective_value = lp->objective_value;
    if (!state.incumbent.has_value() ||
        state.sign * candidate.objective_value >
            state.sign * state.incumbent->objective_value) {
      state.incumbent = std::move(candidate);
    }
    return;
  }
  const double value = lp->values[static_cast<size_t>(branch_var)];
  const double floor_value = std::floor(value);

  // Down branch: x_b <= floor(value).
  {
    LpConstraint c;
    c.coeffs.assign(static_cast<size_t>(state.problem->lp.num_vars), 0.0);
    c.coeffs[static_cast<size_t>(branch_var)] = 1.0;
    c.sense = ConstraintSense::kLessEqual;
    c.rhs = floor_value;
    extra.push_back(std::move(c));
    Branch(state, extra);
    extra.pop_back();
  }
  // Up branch: x_b >= floor(value) + 1.
  {
    LpConstraint c;
    c.coeffs.assign(static_cast<size_t>(state.problem->lp.num_vars), 0.0);
    c.coeffs[static_cast<size_t>(branch_var)] = 1.0;
    c.sense = ConstraintSense::kGreaterEqual;
    c.rhs = floor_value + 1.0;
    extra.push_back(std::move(c));
    Branch(state, extra);
    extra.pop_back();
  }
}

}  // namespace

StatusOr<MilpSolution> SolveMilp(const MilpProblem& problem, int max_nodes) {
  NIMBUS_RETURN_IF_ERROR(ValidateLpProblem(problem.lp));
  if (problem.integer.size() != static_cast<size_t>(problem.lp.num_vars)) {
    return InvalidArgumentError("integer mask size != num_vars");
  }
  // Root relaxation decides unboundedness / infeasibility up front.
  StatusOr<LpSolution> root = SolveLp(problem.lp);
  if (!root.ok()) {
    return root.status();
  }
  SearchState state;
  state.problem = &problem;
  state.sign = problem.lp.maximize ? 1.0 : -1.0;
  state.max_nodes = max_nodes;
  std::vector<LpConstraint> extra;
  Branch(state, extra);
  if (state.node_budget_exceeded && !state.incumbent.has_value()) {
    return ResourceExhaustedError("branch-and-bound node budget exceeded");
  }
  if (!state.incumbent.has_value()) {
    return InfeasibleError("no integral feasible point exists");
  }
  state.incumbent->nodes_explored = state.nodes;
  return *state.incumbent;
}

}  // namespace nimbus::solver
