#ifndef NIMBUS_SOLVER_DYKSTRA_H_
#define NIMBUS_SOLVER_DYKSTRA_H_

#include <vector>

#include "common/statusor.h"

namespace nimbus::solver {

// Euclidean projection of `target` onto the feasible region of the
// relaxed pricing problem (5):
//   z_1 <= z_2 <= ... <= z_n            (monotonicity),
//   z_1/a_1 >= z_2/a_2 >= ... >= z_n/a_n  (relaxed subadditivity),
//   z_i >= 0,
// for strictly increasing positive parameters `a`. Computed with
// Dykstra's alternating-projection algorithm; each individual projection
// is a (weighted) isotonic regression or a clip, so one sweep is O(n).
//
// This is the exact solver for the T²PI price-interpolation objective:
// maximizing −Σ (z_j − P_j)² over (5) is projecting P onto the region.
StatusOr<std::vector<double>> ProjectOntoPricingPolytope(
    const std::vector<double>& target, const std::vector<double>& a,
    int max_sweeps = 1000, double tolerance = 1e-10);

}  // namespace nimbus::solver

#endif  // NIMBUS_SOLVER_DYKSTRA_H_
