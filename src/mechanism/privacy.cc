#include "mechanism/privacy.h"

#include <cmath>

#include "linalg/vector_ops.h"

namespace nimbus::mechanism {
namespace {

Status ValidateDpInputs(double delta_dp, double l2_sensitivity, int dim) {
  if (!(delta_dp > 0.0) || !(delta_dp < 1.0)) {
    return InvalidArgumentError("delta_dp must be in (0, 1)");
  }
  if (!(l2_sensitivity > 0.0)) {
    return InvalidArgumentError("l2_sensitivity must be positive");
  }
  if (dim < 1) {
    return InvalidArgumentError("dim must be >= 1");
  }
  return OkStatus();
}

}  // namespace

StatusOr<double> ErmL2Sensitivity(double lipschitz, double mu, int n) {
  if (lipschitz < 0.0) {
    return InvalidArgumentError("lipschitz must be non-negative");
  }
  if (!(mu > 0.0)) {
    return InvalidArgumentError(
        "sensitivity control requires a strictly positive regularizer mu");
  }
  if (n < 1) {
    return InvalidArgumentError("n must be >= 1");
  }
  return lipschitz / (mu * static_cast<double>(n));
}

double MaxFeatureNorm(const data::Dataset& dataset) {
  double best = 0.0;
  for (const data::Example& e : dataset.examples()) {
    best = std::max(best, linalg::Norm2(e.features));
  }
  return best;
}

StatusOr<double> MinNcpForDp(double epsilon, double delta_dp,
                             double l2_sensitivity, int dim) {
  if (!(epsilon > 0.0) || epsilon > 1.0) {
    return InvalidArgumentError(
        "the classical Gaussian mechanism requires epsilon in (0, 1]");
  }
  NIMBUS_RETURN_IF_ERROR(ValidateDpInputs(delta_dp, l2_sensitivity, dim));
  const double sigma = l2_sensitivity *
                       std::sqrt(2.0 * std::log(1.25 / delta_dp)) / epsilon;
  return sigma * sigma * static_cast<double>(dim);
}

StatusOr<DpGuarantee> DpGuaranteeForNcp(double ncp, double delta_dp,
                                        double l2_sensitivity, int dim) {
  if (!(ncp > 0.0)) {
    return InvalidArgumentError("ncp must be positive");
  }
  NIMBUS_RETURN_IF_ERROR(ValidateDpInputs(delta_dp, l2_sensitivity, dim));
  const double sigma = std::sqrt(ncp / static_cast<double>(dim));
  DpGuarantee guarantee;
  guarantee.delta = delta_dp;
  guarantee.epsilon = l2_sensitivity *
                      std::sqrt(2.0 * std::log(1.25 / delta_dp)) / sigma;
  guarantee.classical_bound_valid = guarantee.epsilon < 1.0;
  return guarantee;
}

}  // namespace nimbus::mechanism
