#include "mechanism/noise_mechanism.h"

#include <cmath>

#include "common/logging.h"
#include "common/telemetry.h"

namespace nimbus::mechanism {

using linalg::Vector;

namespace {

void CheckNcp(double ncp) {
  NIMBUS_CHECK_GT(ncp, 0.0) << "NCP must be positive";
}

}  // namespace

Vector GaussianMechanism::Perturb(const Vector& optimal, double ncp,
                                  Rng& rng) const {
  CheckNcp(ncp);
  const double stddev = std::sqrt(ncp / static_cast<double>(optimal.size()));
  Vector out = optimal;
  for (double& v : out) {
    v += rng.Gaussian(0.0, stddev);
  }
  return out;
}

StatusOr<double> GaussianMechanism::ExpectedSquaredError(
    const Vector& /*optimal*/, double ncp) const {
  CheckNcp(ncp);
  return ncp;  // Lemma 3.
}

Vector LaplaceMechanism::Perturb(const Vector& optimal, double ncp,
                                 Rng& rng) const {
  CheckNcp(ncp);
  // Variance of Laplace(b) is 2 b²; match δ/d per coordinate.
  const double scale =
      std::sqrt(ncp / (2.0 * static_cast<double>(optimal.size())));
  Vector out = optimal;
  for (double& v : out) {
    v += rng.Laplace(scale);
  }
  return out;
}

StatusOr<double> LaplaceMechanism::ExpectedSquaredError(
    const Vector& /*optimal*/, double ncp) const {
  CheckNcp(ncp);
  return ncp;
}

Vector AdditiveUniformMechanism::Perturb(const Vector& optimal, double ncp,
                                         Rng& rng) const {
  CheckNcp(ncp);
  // Variance of U[−a, a] is a²/3; match δ/d per coordinate.
  const double a = std::sqrt(3.0 * ncp / static_cast<double>(optimal.size()));
  Vector out = optimal;
  for (double& v : out) {
    v += rng.Uniform(-a, a);
  }
  return out;
}

StatusOr<double> AdditiveUniformMechanism::ExpectedSquaredError(
    const Vector& /*optimal*/, double ncp) const {
  CheckNcp(ncp);
  return ncp;
}

Vector MultiplicativeUniformMechanism::Perturb(const Vector& optimal,
                                               double ncp, Rng& rng) const {
  CheckNcp(ncp);
  Vector out = optimal;
  for (double& v : out) {
    v *= rng.Uniform(1.0 - ncp, 1.0 + ncp);
  }
  return out;
}

StatusOr<double> MultiplicativeUniformMechanism::ExpectedSquaredError(
    const Vector& optimal, double ncp) const {
  CheckNcp(ncp);
  // E‖h ⊙ (u − 1)‖² with u_i ~ U[1−δ, 1+δ]: Var(u_i) = δ²/3 per coordinate.
  return linalg::SquaredNorm2(optimal) * ncp * ncp / 3.0;
}

StatusOr<std::unique_ptr<NoiseMechanism>> MakeMechanism(
    const std::string& name) {
  if (name == "gaussian") {
    return std::unique_ptr<NoiseMechanism>(new GaussianMechanism());
  }
  if (name == "laplace") {
    return std::unique_ptr<NoiseMechanism>(new LaplaceMechanism());
  }
  if (name == "additive_uniform") {
    return std::unique_ptr<NoiseMechanism>(new AdditiveUniformMechanism());
  }
  if (name == "multiplicative_uniform") {
    return std::unique_ptr<NoiseMechanism>(
        new MultiplicativeUniformMechanism());
  }
  return NotFoundError("unknown mechanism '" + name + "'");
}

double EstimateExpectedError(const NoiseMechanism& mechanism,
                             const Vector& optimal, double ncp,
                             const ml::Loss& report_loss,
                             const data::Dataset& eval_data, int num_samples,
                             Rng& rng) {
  NIMBUS_CHECK_GE(num_samples, 1);
  // Total Monte-Carlo model draws across all error-curve estimations —
  // the dominant cost of serving a new (model, loss) pair.
  static telemetry::Counter& draws =
      telemetry::Registry::Global().GetCounter("mechanism_mc_draws_total");
  draws.Increment(num_samples);
  double sum = 0.0;
  for (int s = 0; s < num_samples; ++s) {
    const Vector noisy = mechanism.Perturb(optimal, ncp, rng);
    sum += report_loss.Value(noisy, eval_data);
  }
  return sum / static_cast<double>(num_samples);
}

}  // namespace nimbus::mechanism
