#ifndef NIMBUS_MECHANISM_NOISE_MECHANISM_H_
#define NIMBUS_MECHANISM_NOISE_MECHANISM_H_

#include <memory>
#include <string>

#include "common/random.h"
#include "common/statusor.h"
#include "data/dataset.h"
#include "linalg/vector_ops.h"
#include "ml/loss.h"

namespace nimbus::mechanism {

// Randomized mechanism K of §3.2: given the optimal model instance
// h*_λ(D) and a noise control parameter (NCP) δ > 0, returns a noisy
// version h^δ_λ(D) = K(h*, w). Every mechanism in this library satisfies
// the paper's two restrictions:
//   (1) unbiasedness:  E[K(h*, w)] = h*, and
//   (2) NCP-monotonicity of the expected error.
class NoiseMechanism {
 public:
  virtual ~NoiseMechanism() = default;

  // Samples one noisy model instance. `ncp` must be > 0.
  virtual linalg::Vector Perturb(const linalg::Vector& optimal, double ncp,
                                 Rng& rng) const = 0;

  // The exact expected square loss E[ε_s(h^δ, D)] = E‖h^δ − h*‖² when it
  // is available in closed form; kUnimplemented otherwise. For the
  // Gaussian mechanism this equals δ (Lemma 3).
  virtual StatusOr<double> ExpectedSquaredError(
      const linalg::Vector& optimal, double ncp) const = 0;

  // Short identifier, e.g. "gaussian".
  virtual std::string name() const = 0;
};

// The Gaussian mechanism K_G of §4.1 (Eq. 1):
//   K_G(h*, w) = h* + w,  w ~ N(0, (δ/d) · I_d),
// so that E‖w‖² = δ exactly (Lemma 3).
class GaussianMechanism final : public NoiseMechanism {
 public:
  linalg::Vector Perturb(const linalg::Vector& optimal, double ncp,
                         Rng& rng) const override;
  StatusOr<double> ExpectedSquaredError(const linalg::Vector& optimal,
                                        double ncp) const override;
  std::string name() const override { return "gaussian"; }
};

// Additive zero-mean Laplace noise per coordinate, scaled so that the
// expected square loss is also exactly δ (per-coordinate variance δ/d).
// Mentioned in Example 2 as an alternative mechanism.
class LaplaceMechanism final : public NoiseMechanism {
 public:
  linalg::Vector Perturb(const linalg::Vector& optimal, double ncp,
                         Rng& rng) const override;
  StatusOr<double> ExpectedSquaredError(const linalg::Vector& optimal,
                                        double ncp) const override;
  std::string name() const override { return "laplace"; }
};

// Additive per-coordinate uniform noise U[−a, a], a = sqrt(3 δ / d), so
// the expected square loss is δ (mechanism K1 of Example 1, vectorized).
class AdditiveUniformMechanism final : public NoiseMechanism {
 public:
  linalg::Vector Perturb(const linalg::Vector& optimal, double ncp,
                         Rng& rng) const override;
  StatusOr<double> ExpectedSquaredError(const linalg::Vector& optimal,
                                        double ncp) const override;
  std::string name() const override { return "additive_uniform"; }
};

// Multiplicative mechanism K2 of Example 1: each coordinate is scaled by
// an independent w ~ U[1 − δ, 1 + δ]. Unbiased; its expected square loss
// is ‖h*‖² δ² / 3 and therefore depends on the optimal model.
class MultiplicativeUniformMechanism final : public NoiseMechanism {
 public:
  linalg::Vector Perturb(const linalg::Vector& optimal, double ncp,
                         Rng& rng) const override;
  StatusOr<double> ExpectedSquaredError(const linalg::Vector& optimal,
                                        double ncp) const override;
  std::string name() const override { return "multiplicative_uniform"; }
};

// Creates a mechanism by name ("gaussian", "laplace", "additive_uniform",
// "multiplicative_uniform"); kNotFound for anything else.
StatusOr<std::unique_ptr<NoiseMechanism>> MakeMechanism(
    const std::string& name);

// Monte-Carlo estimate of the expected report error
//   E_{w~W_δ}[ε(K(h*, w), D)]
// using `num_samples` independent draws (the paper uses 2000 per NCP in
// §6.1). Deterministic given `rng`.
double EstimateExpectedError(const NoiseMechanism& mechanism,
                             const linalg::Vector& optimal, double ncp,
                             const ml::Loss& report_loss,
                             const data::Dataset& eval_data, int num_samples,
                             Rng& rng);

}  // namespace nimbus::mechanism

#endif  // NIMBUS_MECHANISM_NOISE_MECHANISM_H_
