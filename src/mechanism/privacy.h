#ifndef NIMBUS_MECHANISM_PRIVACY_H_
#define NIMBUS_MECHANISM_PRIVACY_H_

#include "common/statusor.h"
#include "data/dataset.h"

namespace nimbus::mechanism {

// Differential-privacy accounting for the Gaussian mechanism K_G.
//
// The paper names "integrating model-based pricing with data privacy" as
// a core future challenge (§7). The connection is direct: K_G releases
// h* + N(0, (δ/d) I_d), which is exactly the classical analytic Gaussian
// output-perturbation mechanism, so every sale carries an (ε, δ_dp)-DP
// guarantee determined by the NCP and the L2 sensitivity of the training
// map. This module computes both directions of that correspondence:
// the minimum NCP a privacy-conscious seller must enforce, and the DP
// guarantee implied by a given version.
//
// Sensitivity: for L2-regularized empirical risk minimization
//   h* = argmin (1/n) Σ ℓ(w; z_i) + µ‖w‖²
// with a per-example loss that is L-Lipschitz in w, replacing one example
// changes h* by at most Δ₂ = L / (µ n) in L2 norm (Chaudhuri et al.'s
// output-perturbation bound with strong-convexity parameter 2µ).

// One (ε, δ_dp) differential-privacy point.
struct DpGuarantee {
  double epsilon = 0.0;
  double delta = 0.0;
  // The classical Gaussian-mechanism theorem is stated for ε < 1; for
  // larger ε the reported value is the same formula extrapolated and
  // should be treated as a heuristic.
  bool classical_bound_valid = false;
};

// L2 sensitivity of the regularized ERM optimum: L / (mu * n).
// Requires lipschitz >= 0, mu > 0, n >= 1.
StatusOr<double> ErmL2Sensitivity(double lipschitz, double mu, int n);

// Upper bound on the per-example Lipschitz constant of the logistic and
// hinge losses: the maximum feature L2 norm in the dataset.
double MaxFeatureNorm(const data::Dataset& dataset);

// Smallest NCP δ such that K_G with W_δ = N(0, (δ/d) I) is
// (epsilon, delta_dp)-DP for a release with the given L2 sensitivity:
//   σ² = δ/d  >=  2 ln(1.25/δ_dp) Δ₂² / ε²
// Requires epsilon in (0, 1], delta_dp in (0, 1), sensitivity > 0,
// dim >= 1.
StatusOr<double> MinNcpForDp(double epsilon, double delta_dp,
                             double l2_sensitivity, int dim);

// The (ε, δ_dp) guarantee implied by selling at NCP `ncp`:
//   ε = Δ₂ sqrt(2 ln(1.25/δ_dp)) / σ,  σ = sqrt(ncp / dim).
StatusOr<DpGuarantee> DpGuaranteeForNcp(double ncp, double delta_dp,
                                        double l2_sensitivity, int dim);

}  // namespace nimbus::mechanism

#endif  // NIMBUS_MECHANISM_PRIVACY_H_
