#include "pricing/subadditive_tools.h"

#include <algorithm>
#include <limits>

#include "pricing/optimal_attack.h"

namespace nimbus::pricing {

StatusOr<PiecewiseLinearPricing> MinSlopeTransform(
    const PricingFunction& pricing, std::vector<double> grid) {
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  if (grid.empty() || !(grid.front() > 0.0)) {
    return InvalidArgumentError("grid must contain positive values");
  }
  std::vector<PricePoint> points;
  points.reserve(grid.size());
  double min_slope = std::numeric_limits<double>::infinity();
  for (double x : grid) {
    min_slope = std::min(min_slope, pricing.PriceAtInverseNcp(x) / x);
    points.push_back(PricePoint{x, min_slope * x});
  }
  return PiecewiseLinearPricing::Create(std::move(points), "min_slope");
}

StatusOr<std::vector<double>> SubadditiveClosureOnGrid(
    const PricingFunction& pricing, const std::vector<double>& grid,
    double unit) {
  std::vector<double> closure;
  closure.reserve(grid.size());
  for (double target : grid) {
    NIMBUS_ASSIGN_OR_RETURN(
        CheapestCombination combo,
        FindCheapestCombination(pricing, grid, target, unit));
    closure.push_back(std::min(combo.direct_price, combo.combination_cost));
  }
  return closure;
}

}  // namespace nimbus::pricing
