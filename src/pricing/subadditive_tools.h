#ifndef NIMBUS_PRICING_SUBADDITIVE_TOOLS_H_
#define NIMBUS_PRICING_SUBADDITIVE_TOOLS_H_

#include <vector>

#include "common/statusor.h"
#include "pricing/pricing_function.h"

namespace nimbus::pricing {

// Constructive tools around the paper's subadditivity theory.

// The Lemma 9 transformation: given any monotone subadditive pricing
// function p, the function
//   q(x) = x · min_{0 < y <= x} p(y) / y
// satisfies the relaxed chain constraints of problem (5) and sandwiches
// p as p(x)/2 <= q(x) <= p(x). This is how the paper converts a feasible
// solution of (3) into one of (5) while losing at most half the value.
//
// Evaluated on a finite grid: the minimum is taken over the sampled
// y <= x, and the result is returned as the Proposition 1 piecewise-
// linear curve through the grid points. `grid` must contain at least one
// strictly positive value; it is sorted and deduplicated internally.
StatusOr<PiecewiseLinearPricing> MinSlopeTransform(
    const PricingFunction& pricing, std::vector<double> grid);

// Largest subadditive monotone minorant prices on a version menu: for
// each target x in `grid`, the cheapest way to cover x using versions
// from the same grid (the closure construction from the proofs of
// Theorem 7 / Algorithm 2, restricted to the grid). The result never
// exceeds the input prices and is subadditive across grid sums.
StatusOr<std::vector<double>> SubadditiveClosureOnGrid(
    const PricingFunction& pricing, const std::vector<double>& grid,
    double unit);

}  // namespace nimbus::pricing

#endif  // NIMBUS_PRICING_SUBADDITIVE_TOOLS_H_
