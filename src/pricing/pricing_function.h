#ifndef NIMBUS_PRICING_PRICING_FUNCTION_H_
#define NIMBUS_PRICING_PRICING_FUNCTION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"

namespace nimbus::pricing {

// A pricing function expressed over the inverse noise-control parameter
// x = 1/δ, the natural domain of Theorem 5: the Gaussian mechanism's
// pricing function p_ε,λ(δ, D) is arbitrage-free iff p(x) = p_ε,λ(1/x, D)
// is monotone non-decreasing and subadditive in x.
//
// Larger x means less noise (variance δ = 1/x), hence a better model and
// a (weakly) higher price.
class PricingFunction {
 public:
  virtual ~PricingFunction() = default;

  // Price for inverse-NCP x >= 0. Must return a finite value >= 0.
  virtual double PriceAtInverseNcp(double x) const = 0;

  // Price for NCP δ > 0; PriceAtInverseNcp(1/δ).
  double PriceAtNcp(double ncp) const;

  // Human-readable identifier, e.g. "mbp_dp" or "linear".
  virtual std::string name() const = 0;
};

// A (x_i, price_i) support point of a pricing curve.
struct PricePoint {
  double inverse_ncp = 0.0;
  double price = 0.0;
};

// Piecewise-linear pricing through given support points, extended exactly
// as in the proof of Proposition 1:
//   * on [0, x_1]: the segment from the origin to (x_1, z_1);
//   * between consecutive points: linear interpolation;
//   * beyond x_n: constant z_n.
// When the support values satisfy the chain constraints of problem (5)
// (z non-decreasing, z_i / x_i non-increasing), the resulting function is
// monotone and subadditive, hence arbitrage-free.
class PiecewiseLinearPricing final : public PricingFunction {
 public:
  // `points` must be non-empty, strictly increasing in inverse_ncp with
  // x_1 > 0, and have non-negative prices.
  static StatusOr<PiecewiseLinearPricing> Create(std::vector<PricePoint> points,
                                                 std::string name = "pwl");

  double PriceAtInverseNcp(double x) const override;
  std::string name() const override { return name_; }

  const std::vector<PricePoint>& points() const { return points_; }

  // True when the support points satisfy the relaxed-subadditivity chain
  // constraints of problem (5) (up to tolerance), which by Lemma 8
  // certifies arbitrage-freeness of the whole curve.
  bool SatisfiesChainConstraints(double tol = 1e-9) const;

 private:
  PiecewiseLinearPricing(std::vector<PricePoint> points, std::string name)
      : points_(std::move(points)), name_(std::move(name)) {}

  std::vector<PricePoint> points_;
  std::string name_;
};

// Constant price c for every version (the MaxC / MedC / OptC baselines of
// §6.2 are constant pricing with different levels).
class ConstantPricing final : public PricingFunction {
 public:
  ConstantPricing(double price, std::string name);

  double PriceAtInverseNcp(double x) const override;
  std::string name() const override { return name_; }
  double price() const { return price_; }

 private:
  double price_;
  std::string name_;
};

// Affine pricing p(x) = intercept + slope * x for x > 0, with p(0) = 0.
// With intercept >= 0 and slope >= 0 this is monotone and subadditive,
// hence arbitrage-free.
class AffinePricing final : public PricingFunction {
 public:
  AffinePricing(double intercept, double slope, std::string name = "affine");

  double PriceAtInverseNcp(double x) const override;
  std::string name() const override { return name_; }

 private:
  double intercept_;
  double slope_;
  std::string name_;
};

// Linear pricing p(x) = slope * x clipped to [0, cap]: the "Lin" baseline
// interpolates the smallest and largest buyer value linearly in x. A
// capped linear function is concave, hence subadditive and arbitrage-free.
class LinearPricing final : public PricingFunction {
 public:
  // `slope` >= 0; `cap` >= 0 (use +infinity for no cap).
  LinearPricing(double slope, double cap, std::string name = "linear");

  double PriceAtInverseNcp(double x) const override;
  std::string name() const override { return name_; }

 private:
  double slope_;
  double cap_;
  std::string name_;
};

}  // namespace nimbus::pricing

#endif  // NIMBUS_PRICING_PRICING_FUNCTION_H_
