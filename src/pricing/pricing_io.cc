#include "pricing/pricing_io.h"

#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "common/fault.h"

namespace nimbus::pricing {
namespace {

constexpr char kHeader[] = "nimbus-pricing v1";

}  // namespace

std::string SerializePricingFunction(const PiecewiseLinearPricing& pricing) {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << kHeader << '\n'
      << pricing.name() << '\n'
      << pricing.points().size() << '\n';
  for (const PricePoint& p : pricing.points()) {
    out << p.inverse_ncp << ' ' << p.price << '\n';
  }
  return out.str();
}

StatusOr<PiecewiseLinearPricing> DeserializePricingFunction(
    const std::string& text) {
  std::istringstream in(text);
  std::string header;
  if (!std::getline(in, header) || header != kHeader) {
    return InvalidArgumentError("missing or unknown pricing header");
  }
  std::string name;
  if (!std::getline(in, name) || name.empty()) {
    return InvalidArgumentError("missing pricing-curve name");
  }
  long long count = -1;
  if (!(in >> count) || count < 1 || count > 10000000) {
    return InvalidArgumentError("bad support-point count");
  }
  std::vector<PricePoint> points(static_cast<size_t>(count));
  for (long long i = 0; i < count; ++i) {
    PricePoint& p = points[static_cast<size_t>(i)];
    if (!(in >> p.inverse_ncp >> p.price)) {
      return InvalidArgumentError("truncated pricing file at point " +
                                  std::to_string(i));
    }
  }
  return PiecewiseLinearPricing::Create(std::move(points), name);
}

Status SavePricingFunction(const PiecewiseLinearPricing& pricing,
                           const std::string& path) {
  FAULT_POINT("io.write");
  std::ofstream file(path);
  if (!file) {
    return InvalidArgumentError("cannot create '" + path + "'");
  }
  file << SerializePricingFunction(pricing);
  file.flush();
  if (!file) {
    return InternalError("write to '" + path + "' failed");
  }
  return OkStatus();
}

StatusOr<PiecewiseLinearPricing> LoadPricingFunction(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return NotFoundError("cannot open '" + path + "'");
  }
  std::ostringstream content;
  content << file.rdbuf();
  return DeserializePricingFunction(content.str());
}

}  // namespace nimbus::pricing
