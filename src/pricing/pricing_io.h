#ifndef NIMBUS_PRICING_PRICING_IO_H_
#define NIMBUS_PRICING_PRICING_IO_H_

#include <string>

#include "common/statusor.h"
#include "pricing/pricing_function.h"

namespace nimbus::pricing {

// Plain-text persistence for piecewise-linear pricing curves, so a
// negotiated price menu can be published, versioned, and reloaded by the
// broker (see the nimbus_cli example). Format:
//   nimbus-pricing v1
//   <name>
//   <num_points>
//   <inverse_ncp> <price>
//   ...
// Creation re-runs PiecewiseLinearPricing::Create, so loaded curves are
// re-validated.

Status SavePricingFunction(const PiecewiseLinearPricing& pricing,
                           const std::string& path);

StatusOr<PiecewiseLinearPricing> LoadPricingFunction(const std::string& path);

std::string SerializePricingFunction(const PiecewiseLinearPricing& pricing);
StatusOr<PiecewiseLinearPricing> DeserializePricingFunction(
    const std::string& text);

}  // namespace nimbus::pricing

#endif  // NIMBUS_PRICING_PRICING_IO_H_
