#ifndef NIMBUS_PRICING_ARBITRAGE_H_
#define NIMBUS_PRICING_ARBITRAGE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "linalg/vector_ops.h"
#include "mechanism/noise_mechanism.h"
#include "pricing/pricing_function.h"

namespace nimbus::pricing {

// A concrete k-arbitrage opportunity against a pricing function under the
// Gaussian mechanism (Definition 3 instantiated via the proof of
// Theorem 5): buy instances with NCPs component_ncps = {δ_1, ..., δ_k},
// combine them as h = Σ_i (δ_0 / δ_i) h^{δ_i} where 1/δ_0 = Σ_i 1/δ_i,
// and obtain the target-NCP model for less than its list price.
struct ArbitrageAttack {
  double target_ncp = 0.0;
  std::vector<double> component_ncps;
  double target_price = 0.0;
  double combined_price = 0.0;

  // Price saved by the attack (> 0 for a genuine opportunity).
  double Savings() const { return target_price - combined_price; }

  // Mixing weight δ_0 / δ_i for component i; the weights sum to 1.
  double WeightFor(size_t i) const {
    return target_ncp / component_ncps[i];
  }
};

// Result of auditing a pricing function on a grid.
struct AuditResult {
  bool arbitrage_free = true;
  // When not arbitrage-free: a description of the first violation found
  // and, for subadditivity violations, the concrete attack.
  std::string violation;
  std::optional<ArbitrageAttack> attack;
};

// Checks the two Theorem 5 conditions for `pricing` over a grid of
// inverse-NCP values (x = 1/δ):
//   (1) monotonicity: x <= y implies p(x) <= p(y), and
//   (2) subadditivity: p(x + y) <= p(x) + p(y),
// for every grid point / pair. `grid` must contain positive values; it is
// sorted internally. This is a certification on the grid: a pass means no
// arbitrage is expressible with the given versions, a fail returns a
// concrete attack.
AuditResult AuditPricingFunction(const PricingFunction& pricing,
                                 std::vector<double> grid, double tol = 1e-9);

// Geometric grid of `points` inverse-NCP values spanning
// [min_inverse_ncp, max_inverse_ncp] (both > 0, min <= max), the
// standard spot-check grid for auditing a live broker over its served
// quote range: log spacing covers the decades a 1/δ menu spans with
// few evaluations, and the endpoints are always included so boundary
// versions are certified. points <= 1 collapses to {min_inverse_ncp}.
std::vector<double> AuditGrid(double min_inverse_ncp, double max_inverse_ncp,
                              int points);

// Outcome of executing an arbitrage attack empirically.
struct AttackExecution {
  // Monte-Carlo estimate of the combined model's expected square loss
  // E‖ĥ − h*‖²; Theorem 5's construction guarantees this equals target_ncp.
  double combined_expected_squared_error = 0.0;
  // The expected square loss a legitimate buyer of target_ncp would get.
  double target_expected_squared_error = 0.0;
  double price_paid = 0.0;
  double list_price = 0.0;
  // Whether the attack really delivered the target quality for less money.
  bool succeeded = false;
};

// Buys the component instances from the Gaussian mechanism, combines them
// with the inverse-variance weights and measures the achieved error with
// `num_trials` Monte-Carlo repetitions. Demonstrates that a subadditivity
// violation is exploitable in practice (used by tests and the
// arbitrage_audit example).
AttackExecution ExecuteAttack(const ArbitrageAttack& attack,
                              const PricingFunction& pricing,
                              const linalg::Vector& optimal_model,
                              int num_trials, Rng& rng);

}  // namespace nimbus::pricing

#endif  // NIMBUS_PRICING_ARBITRAGE_H_
