#include "pricing/analytic_error.h"

#include <algorithm>

#include "ml/loss.h"

namespace nimbus::pricing {

double MeanSquaredFeatureNorm(const data::Dataset& dataset) {
  if (dataset.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const data::Example& e : dataset.examples()) {
    sum += linalg::SquaredNorm2(e.features);
  }
  return sum / dataset.num_examples();
}

double AnalyticExpectedSquaredLoss(double base_loss,
                                   double mean_squared_feature_norm, int dim,
                                   double ncp) {
  return base_loss +
         ncp * mean_squared_feature_norm / (2.0 * static_cast<double>(dim));
}

StatusOr<ErrorCurve> AnalyticSquaredLossCurve(
    const linalg::Vector& optimal, const data::Dataset& eval_data,
    const std::vector<double>& inverse_ncp_grid) {
  if (eval_data.empty()) {
    return InvalidArgumentError("evaluation dataset is empty");
  }
  if (static_cast<int>(optimal.size()) != eval_data.num_features()) {
    return InvalidArgumentError("model / dataset dimension mismatch");
  }
  if (inverse_ncp_grid.size() < 2) {
    return InvalidArgumentError("need at least two grid points");
  }
  std::vector<double> grid = inverse_ncp_grid;
  std::sort(grid.begin(), grid.end());
  if (!(grid.front() > 0.0)) {
    return InvalidArgumentError("inverse NCP grid must be positive");
  }
  const ml::SquaredLoss loss;
  const double base = loss.Value(optimal, eval_data);
  const double trace = MeanSquaredFeatureNorm(eval_data);
  const int dim = eval_data.num_features();
  std::vector<ErrorCurvePoint> points;
  points.reserve(grid.size());
  for (double x : grid) {
    points.push_back(ErrorCurvePoint{
        x, AnalyticExpectedSquaredLoss(base, trace, dim, 1.0 / x)});
  }
  return ErrorCurve::FromSamples(std::move(points));
}

}  // namespace nimbus::pricing
