#include "pricing/optimal_attack.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace nimbus::pricing {
namespace {

constexpr int64_t kMaxGridCells = 10000000;

}  // namespace

StatusOr<CheapestCombination> FindCheapestCombination(
    const PricingFunction& pricing,
    const std::vector<double>& offered_versions, double target_inverse_ncp,
    double unit, double tol) {
  if (offered_versions.empty()) {
    return InvalidArgumentError("no offered versions");
  }
  if (!(unit > 0.0)) {
    return InvalidArgumentError("unit must be positive");
  }
  if (!(target_inverse_ncp > 0.0)) {
    return InvalidArgumentError("target precision must be positive");
  }
  for (double x : offered_versions) {
    if (!(x > 0.0)) {
      return InvalidArgumentError("offered versions must be positive");
    }
  }
  // Round the target UP and versions DOWN so any reported multiset truly
  // reaches the target precision.
  const int64_t target_units = static_cast<int64_t>(
      std::ceil(target_inverse_ncp / unit - 1e-12));
  if (target_units > kMaxGridCells) {
    return InvalidArgumentError("discretized target too large; raise unit");
  }
  struct Item {
    int64_t units;
    double price;
    double version;
  };
  std::vector<Item> items;
  for (double x : offered_versions) {
    const int64_t units = static_cast<int64_t>(std::floor(x / unit + 1e-12));
    if (units <= 0) {
      continue;  // Version too imprecise to contribute at this resolution.
    }
    items.push_back(Item{units, pricing.PriceAtInverseNcp(x), x});
  }
  CheapestCombination result;
  result.target_inverse_ncp = target_inverse_ncp;
  result.direct_price = pricing.PriceAtInverseNcp(target_inverse_ncp);
  if (items.empty()) {
    result.combination_cost = std::numeric_limits<double>::infinity();
    return result;
  }

  // Unbounded min-cost covering knapsack: g[t] = cheapest cost to reach
  // at least t precision units; choice[t] records the item used.
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> g(static_cast<size_t>(target_units) + 1, kInf);
  std::vector<int> choice(static_cast<size_t>(target_units) + 1, -1);
  g[0] = 0.0;
  for (int64_t t = 1; t <= target_units; ++t) {
    for (size_t i = 0; i < items.size(); ++i) {
      const int64_t rest = std::max<int64_t>(0, t - items[i].units);
      if (g[static_cast<size_t>(rest)] < kInf) {
        const double cost = items[i].price + g[static_cast<size_t>(rest)];
        if (cost < g[static_cast<size_t>(t)]) {
          g[static_cast<size_t>(t)] = cost;
          choice[static_cast<size_t>(t)] = static_cast<int>(i);
        }
      }
    }
  }
  result.combination_cost = g[static_cast<size_t>(target_units)];
  // Reconstruct the multiset.
  int64_t t = target_units;
  while (t > 0 && choice[static_cast<size_t>(t)] >= 0) {
    const Item& item = items[static_cast<size_t>(
        choice[static_cast<size_t>(t)])];
    result.purchases.push_back(item.version);
    t = std::max<int64_t>(0, t - item.units);
  }
  result.arbitrage_found =
      result.combination_cost <
      result.direct_price - tol * std::max(1.0, result.direct_price);
  return result;
}

StatusOr<MenuAuditResult> AuditMenu(const PricingFunction& pricing,
                                    const std::vector<double>& offered_versions,
                                    double unit, double tol) {
  MenuAuditResult audit;
  for (double target : offered_versions) {
    NIMBUS_ASSIGN_OR_RETURN(
        CheapestCombination combo,
        FindCheapestCombination(pricing, offered_versions, target, unit,
                                tol));
    if (combo.combination_cost <= 0.0) {
      continue;  // Free versions cannot be undercut.
    }
    const double ratio = combo.direct_price / combo.combination_cost;
    if (ratio > audit.worst_ratio) {
      audit.worst_ratio = ratio;
      audit.worst_case = combo;
    }
  }
  audit.arbitrage_free = audit.worst_ratio <= 1.0 + tol;
  return audit;
}

}  // namespace nimbus::pricing
