#include "pricing/error_curve.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/telemetry.h"

namespace nimbus::pricing {
namespace {

telemetry::Counter& CurveEstimatesCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("error_curve_estimates_total");
  return counter;
}

telemetry::Histogram& GridPointLatency() {
  static telemetry::Histogram& histogram =
      telemetry::Registry::Global().GetHistogram("error_curve_point_latency_us");
  return histogram;
}

telemetry::Counter& DegradedCurvesCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("error_curve_degraded_total");
  return counter;
}

// Pool-adjacent-violators pass enforcing a non-increasing sequence (the
// Monte-Carlo means are noisy around a theoretically decreasing curve).
std::vector<double> IsotonicDecreasing(const std::vector<double>& values) {
  std::vector<double> level;   // Pooled value per block.
  std::vector<int> count;      // Block sizes.
  for (double v : values) {
    level.push_back(v);
    count.push_back(1);
    // Merge while the sequence increases (violating "decreasing").
    while (level.size() > 1 && level[level.size() - 2] < level.back()) {
      const double merged =
          (level[level.size() - 2] * count[count.size() - 2] +
           level.back() * count.back()) /
          (count[count.size() - 2] + count.back());
      count[count.size() - 2] += count.back();
      level[level.size() - 2] = merged;
      level.pop_back();
      count.pop_back();
    }
  }
  std::vector<double> out;
  out.reserve(values.size());
  for (size_t b = 0; b < level.size(); ++b) {
    out.insert(out.end(), static_cast<size_t>(count[b]), level[b]);
  }
  return out;
}

}  // namespace

StatusOr<ErrorCurve> ErrorCurve::FromSamples(
    std::vector<ErrorCurvePoint> points, double monotonicity_tol) {
  if (points.size() < 2) {
    return InvalidArgumentError("error curve needs at least two points");
  }
  double prev_x = 0.0;
  for (const ErrorCurvePoint& p : points) {
    if (!(p.inverse_ncp > prev_x)) {
      return InvalidArgumentError(
          "error-curve points must be strictly increasing in inverse NCP");
    }
    if (p.expected_error < 0.0 || !std::isfinite(p.expected_error)) {
      return InvalidArgumentError("expected errors must be finite and >= 0");
    }
    prev_x = p.inverse_ncp;
  }
  for (size_t i = 1; i < points.size(); ++i) {
    const double slack =
        monotonicity_tol * std::max(1.0, points[i - 1].expected_error);
    if (points[i].expected_error > points[i - 1].expected_error + slack) {
      return FailedPreconditionError(
          "expected error is not monotone non-increasing in inverse NCP");
    }
  }
  return ErrorCurve(std::move(points));
}

StatusOr<ErrorCurve> ErrorCurve::Estimate(
    const mechanism::NoiseMechanism& mechanism,
    const linalg::Vector& optimal_model, const ml::Loss& report_loss,
    const data::Dataset& eval_data, const std::vector<double>& inverse_ncp_grid,
    int samples_per_point, Rng& rng, const CancelToken* cancel,
    const telemetry::TraceContext* trace) {
  if (inverse_ncp_grid.size() < 2) {
    return InvalidArgumentError("need at least two grid points");
  }
  std::vector<double> grid = inverse_ncp_grid;
  std::sort(grid.begin(), grid.end());
  if (grid.front() <= 0.0) {
    return InvalidArgumentError("inverse NCP grid must be positive");
  }
  NIMBUS_RETURN_IF_ERROR(
      CancelToken::Check(cancel, "error-curve estimation"));
  telemetry::TraceSpan span("error_curve.estimate", trace);
  CurveEstimatesCounter().Increment();
  // Grid points are embarrassingly parallel: each draws its own child
  // stream Fork(i) from a once-advanced base, so the curve is
  // bit-identical at every NIMBUS_THREADS setting.
  const Rng base = rng.Fork();
  std::vector<double> raw(grid.size());
  std::atomic<bool> interrupted{false};
  ParallelFor(0, static_cast<int64_t>(grid.size()), [&](int64_t i) {
    // Cooperative cancellation at the grid-point boundary: remaining
    // points become cheap no-ops once the request's deadline expires.
    if (interrupted.load(std::memory_order_relaxed)) {
      return;
    }
    if (cancel != nullptr && !cancel->Check("error-curve grid point").ok()) {
      interrupted.store(true, std::memory_order_relaxed);
      return;
    }
    telemetry::TraceSpan point_span("error_curve.point", &span.context());
    telemetry::ScopedTimer point_timer(GridPointLatency());
    Rng point_rng = base.Fork(static_cast<uint64_t>(i));
    raw[static_cast<size_t>(i)] = mechanism::EstimateExpectedError(
        mechanism, optimal_model, /*ncp=*/1.0 / grid[static_cast<size_t>(i)],
        report_loss, eval_data, samples_per_point, point_rng);
  });
  if (interrupted.load(std::memory_order_relaxed)) {
    span.Annotate("deadline-cancelled");
    return CancelToken::Check(cancel, "error-curve estimation");
  }
  // Graceful degradation: a degenerate model or loss can yield
  // non-finite Monte-Carlo means at some grid points (overflowing
  // exponentials, NaN targets). Rather than letting one bad point sink
  // the whole curve — or worse, letting NaN flow into prices — patch it
  // from the nearest finite neighbor and flag the curve as degraded.
  int64_t patched = 0;
  double last_finite = std::numeric_limits<double>::quiet_NaN();
  for (double v : raw) {
    if (std::isfinite(v)) {
      last_finite = v;
      break;
    }
  }
  if (!std::isfinite(last_finite)) {
    return FailedPreconditionError(
        "error curve: every Monte-Carlo estimate is non-finite");
  }
  for (size_t i = 0; i < raw.size(); ++i) {
    if (std::isfinite(raw[i])) {
      last_finite = raw[i];
    } else {
      raw[i] = last_finite;
      ++patched;
    }
  }
  if (patched > 0) {
    NIMBUS_LOG(kWarning) << "error curve degraded: patched " << patched
                         << " non-finite grid point(s) from neighbors";
    DegradedCurvesCounter().Increment();
    span.Annotate("degraded");
  }
  const std::vector<double> smoothed = IsotonicDecreasing(raw);
  std::vector<ErrorCurvePoint> points(grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    points[i] = ErrorCurvePoint{grid[i], smoothed[i]};
  }
  NIMBUS_ASSIGN_OR_RETURN(ErrorCurve curve, FromSamples(std::move(points)));
  if (patched > 0) {
    curve.MarkDegraded();
  }
  return curve;
}

ErrorCurve::ErrorCurve(std::vector<ErrorCurvePoint> points)
    : points_(std::move(points)) {
  xs_.reserve(points_.size());
  errs_.reserve(points_.size());
  for (const ErrorCurvePoint& p : points_) {
    xs_.push_back(p.inverse_ncp);
    errs_.push_back(p.expected_error);
  }
  // Linspace grids (the broker's only producer) are uniform up to
  // rounding; detect that once so the hot path can index directly. The
  // tolerance keeps the direct guess within one segment of the truth,
  // which the SegmentFor fixup then closes exactly.
  const size_t n = xs_.size();
  const double span = xs_.back() - xs_.front();
  if (n >= 2 && span > 0.0) {
    const double step = span / static_cast<double>(n - 1);
    double max_dev = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double ideal = xs_.front() + static_cast<double>(i) * step;
      max_dev = std::max(max_dev, std::abs(xs_[i] - ideal));
    }
    if (max_dev <= 0.25 * step) {
      uniform_grid_ = true;
      inv_step_ = 1.0 / step;
    }
  }
}

size_t ErrorCurve::SegmentFor(double x) const {
  const size_t n = xs_.size();
  size_t i;
  if (uniform_grid_) {
    const double guess = (x - xs_.front()) * inv_step_;
    i = 1 + std::min(static_cast<size_t>(std::max(guess, 0.0)), n - 2);
    // The guess is within one segment; nudge to the first i with
    // x <= xs_[i] so the chosen segment matches a linear scan exactly.
    while (x > xs_[i]) {
      ++i;
    }
    while (i > 1 && x <= xs_[i - 1]) {
      --i;
    }
  } else {
    i = static_cast<size_t>(
        std::lower_bound(xs_.begin() + 1, xs_.end(), x) - xs_.begin());
  }
  return i;
}

double ErrorCurve::ErrorAtInverseNcp(double x) const {
  if (x <= xs_.front()) {
    return errs_.front();
  }
  if (x >= xs_.back()) {
    return errs_.back();
  }
  const size_t i = SegmentFor(x);
  const double t = (x - xs_[i - 1]) / (xs_[i] - xs_[i - 1]);
  return errs_[i - 1] + t * (errs_[i] - errs_[i - 1]);
}

void ErrorCurve::ErrorAtInverseNcpBatch(std::span<const double> xs,
                                        std::span<double> out) const {
  NIMBUS_CHECK(xs.size() == out.size());
  for (size_t j = 0; j < xs.size(); ++j) {
    out[j] = ErrorAtInverseNcp(xs[j]);
  }
}

StatusOr<double> ErrorCurve::MinInverseNcpForErrorBudget(
    double error_budget) const {
  if (error_budget < 0.0) {
    return InvalidArgumentError("error budget must be non-negative");
  }
  if (errs_.back() > error_budget) {
    return InfeasibleError(
        "no supported version achieves the requested error budget");
  }
  if (errs_.front() <= error_budget) {
    return xs_.front();
  }
  // errs_ is non-increasing (FromSamples contract), so the first point
  // meeting the budget is a binary search: the first element that is not
  // greater than the budget. Interpolate back into its segment with the
  // same arithmetic a scan would use.
  const size_t i = static_cast<size_t>(
      std::lower_bound(errs_.begin(), errs_.end(), error_budget,
                       std::greater<double>()) -
      errs_.begin());
  if (i >= errs_.size()) {
    return InternalError("unreachable: budget feasibility already checked");
  }
  const double lo_err = errs_[i - 1];
  const double hi_err = errs_[i];
  if (lo_err == hi_err) {
    return xs_[i];
  }
  const double t = (lo_err - error_budget) / (lo_err - hi_err);
  return xs_[i - 1] + t * (xs_[i] - xs_[i - 1]);
}

}  // namespace nimbus::pricing
