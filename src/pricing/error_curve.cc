#include "pricing/error_curve.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/telemetry.h"

namespace nimbus::pricing {
namespace {

telemetry::Counter& CurveEstimatesCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("error_curve_estimates_total");
  return counter;
}

telemetry::Histogram& GridPointLatency() {
  static telemetry::Histogram& histogram =
      telemetry::Registry::Global().GetHistogram("error_curve_point_latency_us");
  return histogram;
}

telemetry::Counter& DegradedCurvesCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("error_curve_degraded_total");
  return counter;
}

// Pool-adjacent-violators pass enforcing a non-increasing sequence (the
// Monte-Carlo means are noisy around a theoretically decreasing curve).
std::vector<double> IsotonicDecreasing(const std::vector<double>& values) {
  std::vector<double> level;   // Pooled value per block.
  std::vector<int> count;      // Block sizes.
  for (double v : values) {
    level.push_back(v);
    count.push_back(1);
    // Merge while the sequence increases (violating "decreasing").
    while (level.size() > 1 && level[level.size() - 2] < level.back()) {
      const double merged =
          (level[level.size() - 2] * count[count.size() - 2] +
           level.back() * count.back()) /
          (count[count.size() - 2] + count.back());
      count[count.size() - 2] += count.back();
      level[level.size() - 2] = merged;
      level.pop_back();
      count.pop_back();
    }
  }
  std::vector<double> out;
  out.reserve(values.size());
  for (size_t b = 0; b < level.size(); ++b) {
    out.insert(out.end(), static_cast<size_t>(count[b]), level[b]);
  }
  return out;
}

}  // namespace

StatusOr<ErrorCurve> ErrorCurve::FromSamples(
    std::vector<ErrorCurvePoint> points, double monotonicity_tol) {
  if (points.size() < 2) {
    return InvalidArgumentError("error curve needs at least two points");
  }
  double prev_x = 0.0;
  for (const ErrorCurvePoint& p : points) {
    if (!(p.inverse_ncp > prev_x)) {
      return InvalidArgumentError(
          "error-curve points must be strictly increasing in inverse NCP");
    }
    if (p.expected_error < 0.0 || !std::isfinite(p.expected_error)) {
      return InvalidArgumentError("expected errors must be finite and >= 0");
    }
    prev_x = p.inverse_ncp;
  }
  for (size_t i = 1; i < points.size(); ++i) {
    const double slack =
        monotonicity_tol * std::max(1.0, points[i - 1].expected_error);
    if (points[i].expected_error > points[i - 1].expected_error + slack) {
      return FailedPreconditionError(
          "expected error is not monotone non-increasing in inverse NCP");
    }
  }
  return ErrorCurve(std::move(points));
}

StatusOr<ErrorCurve> ErrorCurve::Estimate(
    const mechanism::NoiseMechanism& mechanism,
    const linalg::Vector& optimal_model, const ml::Loss& report_loss,
    const data::Dataset& eval_data, const std::vector<double>& inverse_ncp_grid,
    int samples_per_point, Rng& rng, const CancelToken* cancel,
    const telemetry::TraceContext* trace) {
  if (inverse_ncp_grid.size() < 2) {
    return InvalidArgumentError("need at least two grid points");
  }
  std::vector<double> grid = inverse_ncp_grid;
  std::sort(grid.begin(), grid.end());
  if (grid.front() <= 0.0) {
    return InvalidArgumentError("inverse NCP grid must be positive");
  }
  NIMBUS_RETURN_IF_ERROR(
      CancelToken::Check(cancel, "error-curve estimation"));
  telemetry::TraceSpan span("error_curve.estimate", trace);
  CurveEstimatesCounter().Increment();
  // Grid points are embarrassingly parallel: each draws its own child
  // stream Fork(i) from a once-advanced base, so the curve is
  // bit-identical at every NIMBUS_THREADS setting.
  const Rng base = rng.Fork();
  std::vector<double> raw(grid.size());
  std::atomic<bool> interrupted{false};
  ParallelFor(0, static_cast<int64_t>(grid.size()), [&](int64_t i) {
    // Cooperative cancellation at the grid-point boundary: remaining
    // points become cheap no-ops once the request's deadline expires.
    if (interrupted.load(std::memory_order_relaxed)) {
      return;
    }
    if (cancel != nullptr && !cancel->Check("error-curve grid point").ok()) {
      interrupted.store(true, std::memory_order_relaxed);
      return;
    }
    telemetry::TraceSpan point_span("error_curve.point", &span.context());
    telemetry::ScopedTimer point_timer(GridPointLatency());
    Rng point_rng = base.Fork(static_cast<uint64_t>(i));
    raw[static_cast<size_t>(i)] = mechanism::EstimateExpectedError(
        mechanism, optimal_model, /*ncp=*/1.0 / grid[static_cast<size_t>(i)],
        report_loss, eval_data, samples_per_point, point_rng);
  });
  if (interrupted.load(std::memory_order_relaxed)) {
    span.Annotate("deadline-cancelled");
    return CancelToken::Check(cancel, "error-curve estimation");
  }
  // Graceful degradation: a degenerate model or loss can yield
  // non-finite Monte-Carlo means at some grid points (overflowing
  // exponentials, NaN targets). Rather than letting one bad point sink
  // the whole curve — or worse, letting NaN flow into prices — patch it
  // from the nearest finite neighbor and flag the curve as degraded.
  int64_t patched = 0;
  double last_finite = std::numeric_limits<double>::quiet_NaN();
  for (double v : raw) {
    if (std::isfinite(v)) {
      last_finite = v;
      break;
    }
  }
  if (!std::isfinite(last_finite)) {
    return FailedPreconditionError(
        "error curve: every Monte-Carlo estimate is non-finite");
  }
  for (size_t i = 0; i < raw.size(); ++i) {
    if (std::isfinite(raw[i])) {
      last_finite = raw[i];
    } else {
      raw[i] = last_finite;
      ++patched;
    }
  }
  if (patched > 0) {
    NIMBUS_LOG(kWarning) << "error curve degraded: patched " << patched
                         << " non-finite grid point(s) from neighbors";
    DegradedCurvesCounter().Increment();
    span.Annotate("degraded");
  }
  const std::vector<double> smoothed = IsotonicDecreasing(raw);
  std::vector<ErrorCurvePoint> points(grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    points[i] = ErrorCurvePoint{grid[i], smoothed[i]};
  }
  NIMBUS_ASSIGN_OR_RETURN(ErrorCurve curve, FromSamples(std::move(points)));
  if (patched > 0) {
    curve.MarkDegraded();
  }
  return curve;
}

double ErrorCurve::ErrorAtInverseNcp(double x) const {
  if (x <= points_.front().inverse_ncp) {
    return points_.front().expected_error;
  }
  if (x >= points_.back().inverse_ncp) {
    return points_.back().expected_error;
  }
  for (size_t i = 1; i < points_.size(); ++i) {
    if (x <= points_[i].inverse_ncp) {
      const ErrorCurvePoint& lo = points_[i - 1];
      const ErrorCurvePoint& hi = points_[i];
      const double t = (x - lo.inverse_ncp) / (hi.inverse_ncp - lo.inverse_ncp);
      return lo.expected_error + t * (hi.expected_error - lo.expected_error);
    }
  }
  return points_.back().expected_error;
}

StatusOr<double> ErrorCurve::MinInverseNcpForErrorBudget(
    double error_budget) const {
  if (error_budget < 0.0) {
    return InvalidArgumentError("error budget must be non-negative");
  }
  if (points_.back().expected_error > error_budget) {
    return InfeasibleError(
        "no supported version achieves the requested error budget");
  }
  if (points_.front().expected_error <= error_budget) {
    return points_.front().inverse_ncp;
  }
  // Walk to the first point meeting the budget and interpolate back.
  for (size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].expected_error <= error_budget) {
      const ErrorCurvePoint& lo = points_[i - 1];
      const ErrorCurvePoint& hi = points_[i];
      if (lo.expected_error == hi.expected_error) {
        return hi.inverse_ncp;
      }
      const double t = (lo.expected_error - error_budget) /
                       (lo.expected_error - hi.expected_error);
      return lo.inverse_ncp + t * (hi.inverse_ncp - lo.inverse_ncp);
    }
  }
  return InternalError("unreachable: budget feasibility already checked");
}

}  // namespace nimbus::pricing
