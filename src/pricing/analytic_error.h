#ifndef NIMBUS_PRICING_ANALYTIC_ERROR_H_
#define NIMBUS_PRICING_ANALYTIC_ERROR_H_

#include <vector>

#include "common/statusor.h"
#include "data/dataset.h"
#include "linalg/vector_ops.h"
#include "pricing/error_curve.h"

namespace nimbus::pricing {

// Closed-form error-transformation curve for the squared loss under any
// isotropic additive mechanism with E‖w‖² = δ (Gaussian, Laplace,
// additive uniform — all calibrated identically in this library).
//
// For λ(h, D) = 1/(2n) Σ (hᵀx_i − y_i)² and h = h* + w with
// E[w wᵀ] = (δ/d) I:
//   E[λ(h* + w, D)] = λ(h*, D) + (δ / 2d) · tr(M),   M = (1/n) Σ x_i x_iᵀ,
// because the cross term vanishes (w is zero-mean) and
// E[wᵀ M w] = (δ/d) tr(M). The curve is exactly affine in δ = 1/x.
//
// This replaces the 2000-draw Monte-Carlo estimation of §6.1 with an O(nd)
// one-time computation; bench_ablation quantifies the speedup and the
// agreement.

// tr(M) = (1/n) Σ_i ‖x_i‖², the mean squared feature norm.
double MeanSquaredFeatureNorm(const data::Dataset& dataset);

// Expected squared loss at NCP δ: base + δ * tr(M) / (2d).
double AnalyticExpectedSquaredLoss(double base_loss,
                                   double mean_squared_feature_norm, int dim,
                                   double ncp);

// Builds the full ErrorCurve over `inverse_ncp_grid` (strictly positive,
// at least two values). `optimal` is h*_λ(D); the base loss is evaluated
// on `eval_data`.
StatusOr<ErrorCurve> AnalyticSquaredLossCurve(
    const linalg::Vector& optimal, const data::Dataset& eval_data,
    const std::vector<double>& inverse_ncp_grid);

}  // namespace nimbus::pricing

#endif  // NIMBUS_PRICING_ANALYTIC_ERROR_H_
