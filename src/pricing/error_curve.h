#ifndef NIMBUS_PRICING_ERROR_CURVE_H_
#define NIMBUS_PRICING_ERROR_CURVE_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/statusor.h"
#include "common/telemetry.h"
#include "data/dataset.h"
#include "linalg/vector_ops.h"
#include "mechanism/noise_mechanism.h"
#include "ml/loss.h"

namespace nimbus::pricing {

// One sampled point of the error-transformation curve of Figure 2(b)/6:
// the expected report error obtained at inverse NCP x = 1/δ.
struct ErrorCurvePoint {
  double inverse_ncp = 0.0;
  double expected_error = 0.0;
};

// Empirical error-transformation curve mapping x = 1/δ to the expected
// report error E[ε(h^δ, D)], and its inverse (the error-inverse map φ of
// Theorem 6, computed empirically as §4.2 suggests). The curve must be
// (weakly) decreasing in x — more money, less noise, less error — which
// Theorem 4 guarantees for convex ε and §6.1 verifies empirically even
// for the 0/1 loss.
class ErrorCurve {
 public:
  // Builds a curve from pre-computed samples. Points must be strictly
  // increasing in inverse_ncp (positive) with non-negative errors.
  // Fails with kFailedPrecondition when the error is not monotone
  // non-increasing within `monotonicity_tol` (relative slack), since a
  // non-monotone curve breaks the price/error bijection the broker needs.
  static StatusOr<ErrorCurve> FromSamples(std::vector<ErrorCurvePoint> points,
                                          double monotonicity_tol = 0.05);

  // Monte-Carlo estimates the curve for `mechanism` on the given optimal
  // model and evaluation data: for each x in `inverse_ncp_grid`, draws
  // `samples_per_point` noisy instances at δ = 1/x and averages the
  // report loss (the paper uses a 1..100 grid with 2000 samples).
  // Non-monotone Monte-Carlo noise is smoothed with a decreasing-isotonic
  // pass before the monotonicity check.
  // Grid points are estimated in parallel (NIMBUS_THREADS wide), each on
  // its own Rng::Fork(i) child stream; `rng` is advanced exactly once and
  // the resulting curve is bit-identical at every thread count.
  //
  // `cancel` (optional) is checked at every grid-point boundary so a
  // serving worker with an expired request deadline unwinds with
  // kDeadlineExceeded instead of finishing thousands of Monte-Carlo
  // draws nobody is waiting for.
  //
  // `trace` (optional) nests the estimate's spans under the requesting
  // operation, so a cold curve build shows up inside its request in the
  // chrome-tracing export instead of as an orphan.
  static StatusOr<ErrorCurve> Estimate(
      const mechanism::NoiseMechanism& mechanism,
      const linalg::Vector& optimal_model, const ml::Loss& report_loss,
      const data::Dataset& eval_data, const std::vector<double>& inverse_ncp_grid,
      int samples_per_point, Rng& rng, const CancelToken* cancel = nullptr,
      const telemetry::TraceContext* trace = nullptr);

  const std::vector<ErrorCurvePoint>& points() const { return points_; }

  // True when the curve was produced in a degraded mode: non-finite
  // Monte-Carlo estimates were patched from neighboring grid points, or
  // the sample count was cut to honor a draw budget (see
  // Broker::Options::curve_draw_budget). Quotes against a degraded
  // curve carry Purchase::degraded = true.
  bool degraded() const { return degraded_; }
  void MarkDegraded() { degraded_ = true; }

  double min_inverse_ncp() const { return points_.front().inverse_ncp; }
  double max_inverse_ncp() const { return points_.back().inverse_ncp; }

  // Expected error at inverse NCP x (piecewise-linear interpolation,
  // clamped to the sampled range). Quote-hot-path fast: segment lookup
  // is O(1) direct indexing on the (Linspace) uniform grid — with a
  // one-step fixup so the selected segment, and therefore every output
  // bit, matches a plain scan — and O(log n) binary search otherwise.
  double ErrorAtInverseNcp(double x) const;

  // Batched evaluation for Broker::QuoteBatch: fills out[i] with
  // ErrorAtInverseNcp(xs[i]). One tight loop over the precomputed
  // tables, no per-call dispatch; requires out.size() == xs.size().
  void ErrorAtInverseNcpBatch(std::span<const double> xs,
                              std::span<double> out) const;

  // The error-inverse φ: the smallest sampled-range x whose expected
  // error is <= `error_budget`. This is exactly what the broker needs for
  // the buyer's error-budget purchase option (§3.2): price increases with
  // x, so the cheapest version meeting the budget is the smallest such x.
  // Fails with kInfeasible when even the largest x exceeds the budget.
  // Served from the precomputed inverse-φ table (the expected errors are
  // non-increasing, so the qualifying point is a binary search away).
  StatusOr<double> MinInverseNcpForErrorBudget(double error_budget) const;

 private:
  explicit ErrorCurve(std::vector<ErrorCurvePoint> points);

  // Index i in [1, n) of the segment (points_[i-1], points_[i]] covering
  // x; requires points_.front().inverse_ncp < x < points_.back().inverse_ncp.
  // Chooses exactly the segment a front-to-back scan would (the first i
  // with x <= points_[i].inverse_ncp) so interpolation stays bit-stable.
  size_t SegmentFor(double x) const;

  std::vector<ErrorCurvePoint> points_;
  // Flat lookup tables mirroring points_, built once at construction so
  // the quote hot path touches contiguous doubles instead of walking
  // structs: xs_ (grid), errs_ (the inverse-φ table — non-increasing by
  // the FromSamples contract).
  std::vector<double> xs_;
  std::vector<double> errs_;
  // Direct-indexing support when the grid is (near-)uniform: the first
  // guess (x - xs_[0]) * inv_step_ is within one segment of the truth.
  bool uniform_grid_ = false;
  double inv_step_ = 0.0;
  bool degraded_ = false;
};

}  // namespace nimbus::pricing

#endif  // NIMBUS_PRICING_ERROR_CURVE_H_
