#ifndef NIMBUS_PRICING_OPTIMAL_ATTACK_H_
#define NIMBUS_PRICING_OPTIMAL_ATTACK_H_

#include <vector>

#include "common/statusor.h"
#include "pricing/pricing_function.h"

namespace nimbus::pricing {

// Exhaustive arbitrage search: given the versions a broker actually
// offers (a finite set of inverse NCPs), find the *cheapest* multiset of
// purchases whose combined precision Σ x_i reaches a target x (by the
// Cramer-Rao argument of Theorem 5, combined inverse variances add).
// This generalizes the pairwise audit in arbitrage.h to arbitrary k and
// is the buyer's optimal strategy; a pricing function is safe on the
// offered menu iff no target is cheaper to synthesize than to buy.
//
// Computed by an unbounded-knapsack dynamic program over a discretized
// precision grid of resolution `unit` (all version precisions and the
// target are rounded up/down conservatively so the attack found is
// always genuinely feasible).

struct CheapestCombination {
  double target_inverse_ncp = 0.0;
  double direct_price = 0.0;       // List price of the target version.
  double combination_cost = 0.0;   // Cheapest synthesis cost.
  // The versions (inverse NCPs) in the cheapest multiset, with
  // multiplicity.
  std::vector<double> purchases;
  // True when the synthesis undercuts the list price by more than tol.
  bool arbitrage_found = false;
};

// Finds the cheapest multiset of `offered_versions` (inverse NCPs, all
// > 0) with combined precision >= target. `unit` is the discretization
// step (> 0); versions are rounded down and the target up, so reported
// combinations are feasible. Fails when inputs are invalid or the grid
// would exceed 10^7 cells.
StatusOr<CheapestCombination> FindCheapestCombination(
    const PricingFunction& pricing,
    const std::vector<double>& offered_versions, double target_inverse_ncp,
    double unit = 0.25, double tol = 1e-9);

// Scans every offered version as an attack target and returns the worst
// (largest) ratio direct_price / combination_cost observed; a ratio of
// at most 1 + tol certifies the menu arbitrage-safe against arbitrary-k
// combination attacks.
struct MenuAuditResult {
  double worst_ratio = 1.0;
  CheapestCombination worst_case;
  bool arbitrage_free = true;
};
StatusOr<MenuAuditResult> AuditMenu(const PricingFunction& pricing,
                                    const std::vector<double>& offered_versions,
                                    double unit = 0.25, double tol = 1e-6);

}  // namespace nimbus::pricing

#endif  // NIMBUS_PRICING_OPTIMAL_ATTACK_H_
