#include "pricing/pricing_function.h"

#include <cmath>

#include "common/logging.h"

namespace nimbus::pricing {

double PricingFunction::PriceAtNcp(double ncp) const {
  NIMBUS_CHECK_GT(ncp, 0.0);
  return PriceAtInverseNcp(1.0 / ncp);
}

StatusOr<PiecewiseLinearPricing> PiecewiseLinearPricing::Create(
    std::vector<PricePoint> points, std::string name) {
  if (points.empty()) {
    return InvalidArgumentError("pricing curve needs at least one point");
  }
  double prev_x = 0.0;
  for (const PricePoint& p : points) {
    if (!(p.inverse_ncp > prev_x)) {
      return InvalidArgumentError(
          "support points must be strictly increasing in inverse NCP and "
          "positive");
    }
    if (p.price < 0.0 || !std::isfinite(p.price)) {
      return InvalidArgumentError("prices must be finite and non-negative");
    }
    prev_x = p.inverse_ncp;
  }
  return PiecewiseLinearPricing(std::move(points), std::move(name));
}

double PiecewiseLinearPricing::PriceAtInverseNcp(double x) const {
  NIMBUS_CHECK_GE(x, 0.0);
  const PricePoint& first = points_.front();
  if (x <= first.inverse_ncp) {
    return first.price * (x / first.inverse_ncp);
  }
  for (size_t i = 1; i < points_.size(); ++i) {
    const PricePoint& lo = points_[i - 1];
    const PricePoint& hi = points_[i];
    if (x <= hi.inverse_ncp) {
      const double t =
          (x - lo.inverse_ncp) / (hi.inverse_ncp - lo.inverse_ncp);
      return lo.price + t * (hi.price - lo.price);
    }
  }
  return points_.back().price;
}

bool PiecewiseLinearPricing::SatisfiesChainConstraints(double tol) const {
  for (size_t i = 1; i < points_.size(); ++i) {
    const PricePoint& lo = points_[i - 1];
    const PricePoint& hi = points_[i];
    if (hi.price < lo.price - tol) {
      return false;  // Monotonicity violated.
    }
    const double ratio_lo = lo.price / lo.inverse_ncp;
    const double ratio_hi = hi.price / hi.inverse_ncp;
    if (ratio_hi > ratio_lo + tol) {
      return false;  // Relaxed subadditivity (decreasing slope) violated.
    }
  }
  return true;
}

ConstantPricing::ConstantPricing(double price, std::string name)
    : price_(price), name_(std::move(name)) {
  NIMBUS_CHECK_GE(price, 0.0);
}

double ConstantPricing::PriceAtInverseNcp(double x) const {
  NIMBUS_CHECK_GE(x, 0.0);
  // A constant price for x > 0 with p(0) = 0 is monotone and subadditive.
  return x > 0.0 ? price_ : 0.0;
}

AffinePricing::AffinePricing(double intercept, double slope, std::string name)
    : intercept_(intercept), slope_(slope), name_(std::move(name)) {
  NIMBUS_CHECK_GE(intercept, 0.0);
  NIMBUS_CHECK_GE(slope, 0.0);
}

double AffinePricing::PriceAtInverseNcp(double x) const {
  NIMBUS_CHECK_GE(x, 0.0);
  return x > 0.0 ? intercept_ + slope_ * x : 0.0;
}

LinearPricing::LinearPricing(double slope, double cap, std::string name)
    : slope_(slope), cap_(cap), name_(std::move(name)) {
  NIMBUS_CHECK_GE(slope, 0.0);
  NIMBUS_CHECK_GE(cap, 0.0);
}

double LinearPricing::PriceAtInverseNcp(double x) const {
  NIMBUS_CHECK_GE(x, 0.0);
  return std::min(slope_ * x, cap_);
}

}  // namespace nimbus::pricing
