#include "pricing/arbitrage.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace nimbus::pricing {

AuditResult AuditPricingFunction(const PricingFunction& pricing,
                                 std::vector<double> grid, double tol) {
  AuditResult result;
  NIMBUS_CHECK(!grid.empty());
  std::sort(grid.begin(), grid.end());
  NIMBUS_CHECK_GT(grid.front(), 0.0) << "grid values must be positive";

  // Condition (2) of Theorem 5: monotonicity in x = 1/δ.
  double prev_price = 0.0;
  double prev_x = 0.0;
  for (double x : grid) {
    const double price = pricing.PriceAtInverseNcp(x);
    if (price < prev_price - tol) {
      std::ostringstream msg;
      msg << "monotonicity violated: p(" << prev_x << ") = " << prev_price
          << " > p(" << x << ") = " << price;
      result.arbitrage_free = false;
      result.violation = msg.str();
      // A monotonicity violation is 1-arbitrage: buy the noisier-but-
      // pricier version's quality via the cheaper, less noisy instance.
      ArbitrageAttack attack;
      attack.target_ncp = 1.0 / prev_x;
      attack.component_ncps = {1.0 / x};
      attack.target_price = prev_price;
      attack.combined_price = price;
      result.attack = attack;
      return result;
    }
    prev_price = price;
    prev_x = x;
  }

  // Condition (1): subadditivity over all grid pairs.
  for (size_t i = 0; i < grid.size(); ++i) {
    for (size_t j = i; j < grid.size(); ++j) {
      const double x = grid[i];
      const double y = grid[j];
      const double lhs = pricing.PriceAtInverseNcp(x + y);
      const double rhs =
          pricing.PriceAtInverseNcp(x) + pricing.PriceAtInverseNcp(y);
      if (lhs > rhs + tol) {
        std::ostringstream msg;
        msg << "subadditivity violated: p(" << x + y << ") = " << lhs
            << " > p(" << x << ") + p(" << y << ") = " << rhs;
        result.arbitrage_free = false;
        result.violation = msg.str();
        ArbitrageAttack attack;
        attack.target_ncp = 1.0 / (x + y);
        attack.component_ncps = {1.0 / x, 1.0 / y};
        attack.target_price = lhs;
        attack.combined_price = rhs;
        result.attack = attack;
        return result;
      }
    }
  }
  return result;
}

std::vector<double> AuditGrid(double min_inverse_ncp, double max_inverse_ncp,
                              int points) {
  NIMBUS_CHECK_GT(min_inverse_ncp, 0.0);
  NIMBUS_CHECK_GE(max_inverse_ncp, min_inverse_ncp);
  if (points <= 1 || max_inverse_ncp == min_inverse_ncp) {
    return {min_inverse_ncp};
  }
  std::vector<double> grid;
  grid.reserve(static_cast<size_t>(points));
  const double log_lo = std::log(min_inverse_ncp);
  const double log_hi = std::log(max_inverse_ncp);
  for (int i = 0; i < points; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(points - 1);
    grid.push_back(std::exp(log_lo + t * (log_hi - log_lo)));
  }
  // Exact endpoints (exp/log round trips can drift an ulp).
  grid.front() = min_inverse_ncp;
  grid.back() = max_inverse_ncp;
  return grid;
}

AttackExecution ExecuteAttack(const ArbitrageAttack& attack,
                              const PricingFunction& pricing,
                              const linalg::Vector& optimal_model,
                              int num_trials, Rng& rng) {
  NIMBUS_CHECK_GE(num_trials, 1);
  NIMBUS_CHECK(!attack.component_ncps.empty());
  // Sanity: the harmonic combination must reproduce the target NCP.
  double inv_sum = 0.0;
  for (double ncp : attack.component_ncps) {
    NIMBUS_CHECK_GT(ncp, 0.0);
    inv_sum += 1.0 / ncp;
  }
  NIMBUS_CHECK(std::fabs(inv_sum - 1.0 / attack.target_ncp) <
               1e-6 * std::max(1.0, inv_sum))
      << "component NCPs do not combine to the target NCP";

  const mechanism::GaussianMechanism gaussian;
  AttackExecution execution;
  execution.list_price = pricing.PriceAtNcp(attack.target_ncp);
  for (double ncp : attack.component_ncps) {
    execution.price_paid += pricing.PriceAtNcp(ncp);
  }
  execution.target_expected_squared_error = attack.target_ncp;  // Lemma 3.

  double error_sum = 0.0;
  for (int trial = 0; trial < num_trials; ++trial) {
    linalg::Vector combined = linalg::Zeros(
        static_cast<int>(optimal_model.size()));
    for (size_t i = 0; i < attack.component_ncps.size(); ++i) {
      const linalg::Vector purchase =
          gaussian.Perturb(optimal_model, attack.component_ncps[i], rng);
      linalg::AxpyInPlace(attack.WeightFor(i), purchase, combined);
    }
    error_sum += linalg::SquaredDistance(combined, optimal_model);
  }
  execution.combined_expected_squared_error =
      error_sum / static_cast<double>(num_trials);

  // The attack succeeds when it pays less and (statistically) obtains the
  // target quality; allow 10% Monte-Carlo slack on the error comparison.
  execution.succeeded =
      execution.price_paid < execution.list_price &&
      execution.combined_expected_squared_error <=
          1.1 * execution.target_expected_squared_error;
  return execution;
}

}  // namespace nimbus::pricing
