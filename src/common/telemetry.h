#ifndef NIMBUS_COMMON_TELEMETRY_H_
#define NIMBUS_COMMON_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nimbus::telemetry {

// Process-wide observability substrate for the marketplace: a metrics
// registry (monotonic counters, gauges, fixed-bucket latency histograms)
// plus lightweight tracing spans. Every primitive is thread-safe and
// cheap enough for the pricing hot paths — updates are single relaxed
// atomics (or short CAS loops), registration is a one-time locked map
// lookup that call sites cache in a function-local static, and tracing
// costs two relaxed loads when disabled.
//
// The substrate is strictly observation-only: nothing here touches RNG
// streams, reduction orders, or any other state the determinism contract
// depends on, so instrumented code produces bit-identical market output
// to uninstrumented code (asserted by telemetry_test).
//
// Export hooks (installed on first telemetry use):
//   NIMBUS_METRICS=<path|->  dump the final snapshot (text) at exit.
//   NIMBUS_TRACE=<path>      enable tracing and write Chrome-tracing
//                            JSON (load in chrome://tracing or Perfetto)
//                            at exit.

// Monotonic event counter.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  friend class Registry;
  friend class CounterVec;
  Counter() = default;
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::atomic<int64_t> value_{0};
};

// Last-write-wins double gauge with atomic accumulate and high-water
// tracking (Set / Add / UpdateMax never tear or lose updates).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  // Raises the gauge to `value` if it is above the current reading.
  void UpdateMax(double value);
  double Value() const { return value_.load(std::memory_order_relaxed); }

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  friend class Registry;
  friend class GaugeVec;
  Gauge() = default;
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  std::atomic<double> value_{0.0};
};

// Read-only view of a histogram's state. `buckets[i]` counts
// observations <= boundaries[i]; the final slot counts the overflow.
struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<double> boundaries;
  std::vector<int64_t> buckets;
  // Trace exemplars: the last trace id observed into each bucket (0 =
  // no exemplar yet). Parallel to `buckets`; joined by /tracez so a
  // latency bucket links to a concrete request's span tree.
  std::vector<uint64_t> exemplars;

  // Quantile estimate (q in [0, 1]) by linear interpolation inside the
  // covering bucket, clamped to the observed [min, max]. Returns 0 for
  // an empty histogram.
  double Quantile(double q) const;
};

// Fixed-bucket histogram tuned for latencies in microseconds (default
// boundaries span 1us .. 10s, roughly logarithmic). All updates are
// relaxed atomics on pre-allocated buckets — no locks, no allocation.
class Histogram {
 public:
  void Observe(double value) { Observe(value, 0); }
  // Exemplar form: additionally records `trace_id` (when nonzero) as the
  // covering bucket's last-seen exemplar, so the bucket can be joined
  // back to that request's span tree. Same cost: one extra relaxed
  // store on the pre-allocated exemplar slot.
  void Observe(double value, uint64_t trace_id);
  HistogramSnapshot Snapshot() const;

  static const std::vector<double>& DefaultBoundaries();

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  friend class Registry;
  friend class HistogramVec;
  Histogram();
  void Reset();

  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::vector<std::atomic<int64_t>> buckets_;  // boundaries + overflow.
  // Last trace id observed per bucket (parallel to buckets_; 0 = none).
  std::vector<std::atomic<uint64_t>> exemplars_;
};

// ---------------------------------------------------------------------------
// Labeled metric families ("vectors"): one registered name fanning out
// into a small set of series keyed by a single low-cardinality label
// (e.g. per-offering counters keyed by model kind). The label key is
// fixed at registration; label VALUES are interned on first use into a
// bounded per-family set — once a family holds kMaxSeries distinct
// values, further new values collapse into the kOverflowLabel series so
// an unbounded label (a buyer id, say) can never grow the registry
// without bound. WithLabel is a locked map lookup; hot paths cache the
// returned reference per label value, exactly like scalar metrics:
//
//   static telemetry::CounterVec& quotes =
//       telemetry::Registry::Global().GetCounterVec(
//           "broker_quotes_total", "offering");
//   static telemetry::Counter& logistic = quotes.WithLabel("logistic");
//   logistic.Increment();

class CounterVec {
 public:
  static constexpr size_t kMaxSeries = 64;
  static constexpr const char* kOverflowLabel = "__other__";

  Counter& WithLabel(const std::string& label_value);
  const std::string& label_key() const { return label_key_; }

  CounterVec(const CounterVec&) = delete;
  CounterVec& operator=(const CounterVec&) = delete;

 private:
  friend class Registry;
  explicit CounterVec(std::string label_key)
      : label_key_(std::move(label_key)) {}
  void Reset();

  const std::string label_key_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> series_;
};

class GaugeVec {
 public:
  static constexpr size_t kMaxSeries = 64;
  static constexpr const char* kOverflowLabel = "__other__";

  Gauge& WithLabel(const std::string& label_value);
  const std::string& label_key() const { return label_key_; }

  GaugeVec(const GaugeVec&) = delete;
  GaugeVec& operator=(const GaugeVec&) = delete;

 private:
  friend class Registry;
  explicit GaugeVec(std::string label_key) : label_key_(std::move(label_key)) {}
  void Reset();

  const std::string label_key_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Gauge>> series_;
};

class HistogramVec {
 public:
  static constexpr size_t kMaxSeries = 64;
  static constexpr const char* kOverflowLabel = "__other__";

  Histogram& WithLabel(const std::string& label_value);
  const std::string& label_key() const { return label_key_; }

  HistogramVec(const HistogramVec&) = delete;
  HistogramVec& operator=(const HistogramVec&) = delete;

 private:
  friend class Registry;
  explicit HistogramVec(std::string label_key)
      : label_key_(std::move(label_key)) {}
  void Reset();

  const std::string label_key_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Histogram>> series_;
};

enum class MetricKind {
  kCounter,
  kGauge,
  kHistogram,
  kCounterVec,
  kGaugeVec,
  kHistogramVec,
};

const char* MetricKindName(MetricKind kind);
// The unlabeled kind a vec fans out from (identity for scalar kinds) —
// what the Prometheus # TYPE line advertises.
MetricKind MetricBaseKind(MetricKind kind);

// Process-wide metric registry. Metrics are created on first Get* and
// live for the process lifetime, so call sites cache the reference:
//
//   static telemetry::Counter& submitted =
//       telemetry::Registry::Global().GetCounter("service_submitted_total");
//   submitted.Increment();
//
// Requesting an existing name with a different kind is a programming
// error and fails a NIMBUS_CHECK (scripts/check_metrics_names.sh lints
// the same property statically at build time).
class Registry {
 public:
  static Registry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  // Labeled families. The label key is part of the registration: asking
  // for an existing family with a different key (or a scalar name as a
  // vec, or vice versa) fails a NIMBUS_CHECK, same as a kind clash.
  CounterVec& GetCounterVec(const std::string& name,
                            const std::string& label_key);
  GaugeVec& GetGaugeVec(const std::string& name, const std::string& label_key);
  HistogramVec& GetHistogramVec(const std::string& name,
                                const std::string& label_key);

  // One series of a labeled family at snapshot time.
  struct LabeledValue {
    std::string label;  // The series' label value.
    int64_t counter_value = 0;
    double gauge_value = 0.0;
    HistogramSnapshot histogram;
  };

  struct SnapshotEntry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    int64_t counter_value = 0;
    double gauge_value = 0.0;
    HistogramSnapshot histogram;
    // Vec kinds only: the family's label key and its series, sorted by
    // label value (deterministic like the name ordering).
    std::string label_key;
    std::vector<LabeledValue> series;
  };

  // Consistent-enough view of every registered metric, sorted by name —
  // the ordering (and, for a deterministic workload, every counter value
  // and histogram count) is identical across runs.
  std::vector<SnapshotEntry> Snapshot() const;

  // Zeroes every metric's value while keeping registrations (and cached
  // references) valid. Test-only; not safe concurrently with updates.
  void ResetForTest();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry() = default;

  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<CounterVec> counter_vec;
    std::unique_ptr<GaugeVec> gauge_vec;
    std::unique_ptr<HistogramVec> histogram_vec;
  };

  Entry& GetOrCreate(const std::string& name, MetricKind kind,
                     const std::string& label_key = std::string());

  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;
};

// Human-readable one-metric-per-line dump.
std::string SnapshotToText(const std::vector<Registry::SnapshotEntry>& snap);
// Prometheus exposition text (metric names get a "nimbus_" prefix and
// are sanitized to the exposition charset; histograms render as
// _bucket/_sum/_count families with cumulative le="" buckets).
std::string SnapshotToPrometheus(
    const std::vector<Registry::SnapshotEntry>& snap);
// Maps an arbitrary metric name onto the Prometheus name charset
// [a-zA-Z0-9_:] (invalid characters become '_'; a leading digit gets a
// '_' prefix).
std::string SanitizeMetricName(const std::string& name);
// Appends the global registry's current state in Prometheus text
// exposition format to `*out` — the scrape body served by the admin
// endpoint's /metrics.
void ExportPrometheus(std::string* out);
// Single JSON object {"metrics": {...}} for embedding in bench output.
std::string SnapshotToJson(const std::vector<Registry::SnapshotEntry>& snap);

// RAII wall-clock timer: records the scope's duration in microseconds
// into `histogram` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  uint64_t start_ns_;
};

// ---------------------------------------------------------------------------
// Tracing: bounded in-memory span buffer exportable as Chrome-tracing
// JSON. Disabled by default (spans cost two relaxed atomic loads);
// enabled at startup when NIMBUS_TRACE is set, or explicitly via
// SetTracingEnabled. When the buffer (64K events) fills, further spans
// are dropped, counted in TraceDroppedCount() and in the
// `telemetry_trace_dropped_total` registry counter, and announced with
// one rate-limited warning so a truncated export is explainable.

bool TracingEnabled();
void SetTracingEnabled(bool enabled);

// Request-scoped trace identity, minted once per service ticket and
// carried explicitly down the serving stack (broker quote, error-curve
// build, journal append) so every span nests under its request. Ids are
// dense process-unique counters — nothing here reads an RNG stream, so
// propagation cannot perturb market output. trace_id 0 means "no
// request context" (anonymous spans, the pre-PR-5 behavior).
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;         // Span that currently owns the context.
  uint64_t parent_span_id = 0;  // Owner's parent (0 at the root).

  bool valid() const { return trace_id != 0; }
};

// Mints a fresh root context (new trace_id, no spans yet). Cheap: one
// relaxed atomic increment.
TraceContext NewTraceContext();

// RAII span: records {name, begin, duration, thread id, trace context,
// annotations} into the trace buffer on destruction. `name` and every
// annotation must be string literals (the pointer is stored, not the
// characters).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  // Child span: adopts `parent`'s trace_id and records parent's span_id
  // as its parent. nullptr (or an invalid context) degrades to the
  // anonymous form above. While tracing is disabled the parent context
  // is passed through untouched, so trace ids still flow to consumers
  // like the flight recorder.
  TraceSpan(const char* name, const TraceContext* parent);
  ~TraceSpan();

  // Context to hand to callees that should nest under this span.
  const TraceContext& context() const { return context_; }

  // Attaches a typed annotation ("shed", "breaker-open", "degraded",
  // "fault:<point>", ...). Up to 4 per span; extras are ignored.
  void Annotate(const char* note);

  static constexpr int kMaxNotes = 4;

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  TraceContext context_;
  const char* notes_[kMaxNotes] = {nullptr, nullptr, nullptr, nullptr};
  int note_count_ = 0;
  uint64_t start_ns_ = 0;
  bool active_ = false;
};

// Records a zero-duration instant event (e.g. a load shed, which has no
// span to hang an annotation on). `name` and `note` must be literals;
// `ctx` (optional) attaches the event to a request trace.
void TraceInstant(const char* name, const TraceContext* ctx,
                  const char* note = nullptr);

// Number of spans recorded / dropped since the last ClearTraceForTest.
int64_t TraceEventCount();
int64_t TraceDroppedCount();

// Chrome-tracing JSON ({"traceEvents": [...]}, "X" complete events with
// microsecond timestamps relative to process start; request-scoped
// spans carry {trace_id, span_id, parent_span_id, notes} in "args").
// Call from a quiescent point — spans still in flight may be omitted.
std::string TraceToJson();

// Decoded view of one recorded span, for live endpoints (/tracez) that
// need structured access rather than the chrome JSON blob.
struct TraceEventView {
  std::string name;
  double start_us = 0.0;
  double duration_us = 0.0;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  uint32_t tid = 0;
  std::vector<std::string> notes;
};

// Published spans, oldest first. `trace_id` != 0 filters to one request
// trace. Safe to call concurrently with recording (in-flight slots are
// skipped).
std::vector<TraceEventView> SnapshotTraceEvents(uint64_t trace_id = 0);

// Resets the trace buffer. Test-only; not safe concurrently with spans.
void ClearTraceForTest();

// Escapes `in` for embedding inside a JSON string literal (also used by
// the structured log sink).
std::string JsonEscape(const std::string& in);

}  // namespace nimbus::telemetry

#endif  // NIMBUS_COMMON_TELEMETRY_H_
