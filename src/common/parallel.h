#ifndef NIMBUS_COMMON_PARALLEL_H_
#define NIMBUS_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nimbus {

// Fixed-size worker pool behind ParallelFor/ParallelMap. Nimbus's hot
// loops (Monte-Carlo error-curve estimation, market replay, brute-force
// revenue search, cross-validation folds) are embarrassingly parallel;
// this pool runs them across cores while the determinism contract stays
// with the caller: derive one child RNG per index with Rng::Fork(i) and
// reduce results in index order, and the output is bit-identical for
// every thread count (see DESIGN.md, "Concurrency model").
//
// The pool is work-queue based: ParallelFor shares the index range
// through an atomic cursor, the calling thread participates, and helper
// tasks are enqueued for the workers. Nested ParallelFor calls from
// inside a body run inline on the calling thread, so parallel code can
// freely call other parallel code without deadlocking or oversubscribing.
class ThreadPool {
 public:
  // A pool "of N threads" runs work N-wide: N - 1 background workers
  // plus the calling thread. ThreadPool(1) spawns nothing and runs
  // every loop inline.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Process-wide pool, created on first use and sized by
  // ParallelThreadCount() at that moment (so NIMBUS_THREADS can also
  // raise the pool size when set before first use).
  static ThreadPool& Global();

  // Width of the pool including the calling thread.
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs body(i) for every i in [begin, end), at most `max_parallelism`
  // threads wide (calling thread included), and blocks until every index
  // finished. The first exception thrown by `body` cancels the remaining
  // indices and is rethrown here once the loop drains. Safe to call with
  // an empty range and from inside another ParallelFor body (runs inline).
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t)>& body,
                   int max_parallelism);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Effective parallelism: the NIMBUS_THREADS environment variable
// (clamped to >= 1) when set, otherwise std::thread::hardware_concurrency.
// Re-read on every call so tests and benches can flip the override at
// runtime; values above the global pool width use the full pool.
int ParallelThreadCount();

// ParallelFor over the global pool, honoring NIMBUS_THREADS.
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& body);

// {fn(0), ..., fn(n-1)} computed in parallel. fn must be safe to call
// concurrently from several threads; results land in index order.
template <typename Fn>
auto ParallelMap(int64_t n, Fn&& fn)
    -> std::vector<decltype(fn(int64_t{0}))> {
  std::vector<decltype(fn(int64_t{0}))> out(
      static_cast<size_t>(n > 0 ? n : 0));
  ParallelFor(0, n,
              [&](int64_t i) { out[static_cast<size_t>(i)] = fn(i); });
  return out;
}

}  // namespace nimbus

#endif  // NIMBUS_COMMON_PARALLEL_H_
