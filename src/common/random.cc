#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace nimbus {
namespace {

constexpr double kPi = 3.14159265358979323846;

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextUint64() {
  // xoshiro256++ step.
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 top bits give a double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  NIMBUS_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  NIMBUS_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v = NextUint64();
  while (v >= limit) {
    v = NextUint64();
  }
  return v % n;
}

double Rng::Gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  // Box-Muller transform; u1 is kept away from zero so log() is finite.
  double u1 = Uniform();
  while (u1 <= 1e-300) {
    u1 = Uniform();
  }
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  spare_ = radius * std::sin(2.0 * kPi * u2);
  has_spare_ = true;
  return radius * std::cos(2.0 * kPi * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  NIMBUS_CHECK_GE(stddev, 0.0);
  return mean + stddev * Gaussian();
}

double Rng::Laplace(double scale) {
  NIMBUS_CHECK_GT(scale, 0.0);
  const double u = Uniform() - 0.5;
  const double sign = u < 0 ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int Rng::Poisson(double mean) {
  NIMBUS_CHECK_GE(mean, 0.0);
  if (mean == 0.0) {
    return 0;
  }
  if (mean < 30.0) {
    // Knuth: multiply uniforms until below exp(-mean).
    const double limit = std::exp(-mean);
    int k = 0;
    double product = Uniform();
    while (product > limit) {
      ++k;
      product *= Uniform();
    }
    return k;
  }
  // Normal approximation for large means.
  const double draw = Gaussian(mean, std::sqrt(mean));
  return std::max(0, static_cast<int>(std::lround(draw)));
}

std::vector<double> Rng::GaussianVector(int n) {
  NIMBUS_CHECK_GE(n, 0);
  std::vector<double> out(static_cast<size_t>(n));
  for (double& v : out) {
    v = Gaussian();
  }
  return out;
}

Rng Rng::Fork() { return Rng(NextUint64() ^ 0xA5A5A5A5A5A5A5A5ULL); }

Rng Rng::Fork(uint64_t stream_id) const {
  // Hash the full 256-bit state together with the stream id through
  // SplitMix64 so distinct ids give statistically independent children.
  uint64_t acc = stream_id + 0x9E3779B97F4A7C15ULL;
  for (uint64_t s : state_) {
    uint64_t x = acc ^ s;
    acc = SplitMix64(x);
  }
  return Rng(acc);
}

}  // namespace nimbus
