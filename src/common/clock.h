#ifndef NIMBUS_COMMON_CLOCK_H_
#define NIMBUS_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"

namespace nimbus {

// Time source abstraction for the serving layer. Everything that makes a
// time-based decision (deadlines, retry backoff sleeps, circuit-breaker
// cooldowns) reads the clock through this interface so tests can swap in
// a ManualClock and drive the state machines deterministically — a
// breaker cooldown or a deadline expiry becomes a pure function of the
// advanced virtual time instead of a scheduler race.
class Clock {
 public:
  virtual ~Clock() = default;

  // Monotonic nanoseconds since an arbitrary (per-clock) epoch.
  virtual int64_t NowNanos() const = 0;

  // Blocks the caller for `seconds` of this clock's time. The manual
  // clock implements this by advancing itself, so code that "sleeps"
  // between retries runs instantly — and reproducibly — under test.
  virtual void SleepSeconds(double seconds) = 0;
};

// Wall time via std::chrono::steady_clock. Stateless; the process-wide
// instance from Get() is what production code uses by default.
class SystemClock : public Clock {
 public:
  static SystemClock* Get();

  int64_t NowNanos() const override;
  void SleepSeconds(double seconds) override;
};

// Virtual time that only moves when told to. SleepSeconds advances the
// clock (so a retry loop's backoff schedule plays out instantly), and
// AdvanceSeconds lets a test step a breaker or deadline across a
// threshold exactly. Thread-safe: time is a single atomic.
class ManualClock : public Clock {
 public:
  explicit ManualClock(int64_t start_nanos = 0) : now_ns_(start_nanos) {}

  int64_t NowNanos() const override {
    return now_ns_.load(std::memory_order_relaxed);
  }
  void SleepSeconds(double seconds) override { AdvanceSeconds(seconds); }

  void AdvanceNanos(int64_t nanos) {
    now_ns_.fetch_add(nanos, std::memory_order_relaxed);
  }
  void AdvanceSeconds(double seconds) {
    AdvanceNanos(static_cast<int64_t>(seconds * 1e9));
  }

 private:
  std::atomic<int64_t> now_ns_;
};

// Cooperative cancellation handle carried by one in-flight request: a
// deadline on some Clock plus a manual cancel bit. Work loops check the
// token at natural boundaries (admission, each quote attempt, each
// error-curve grid point) and unwind with a typed Status instead of
// being killed — a slow Monte-Carlo estimate cannot wedge a worker
// forever. Checking is two relaxed atomic loads; thread-safe.
class CancelToken {
 public:
  // A token that never expires and is not cancelled.
  CancelToken() = default;

  // Expires `deadline_seconds` from now on `clock` (which must outlive
  // the token). deadline_seconds <= 0 means no deadline.
  CancelToken(const Clock* clock, double deadline_seconds);

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Flags the token cancelled (idempotent; safe from any thread).
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool Cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  bool Expired() const;

  // OK while live; kUnavailable after Cancel(), kDeadlineExceeded once
  // the deadline passed. `what` names the interrupted work in the
  // message. Passing a null `token` is allowed and always OK, so call
  // sites can thread an optional token without branching.
  Status Check(const char* what) const;
  static Status Check(const CancelToken* token, const char* what);

  // Seconds until expiry: +inf without a deadline, <= 0 once expired.
  double RemainingSeconds() const;

 private:
  const Clock* clock_ = nullptr;
  int64_t deadline_ns_ = 0;  // Absolute on clock_; meaningless when null.
  std::atomic<bool> cancelled_{false};
};

}  // namespace nimbus

#endif  // NIMBUS_COMMON_CLOCK_H_
