#include "common/fault.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "common/logging.h"
#include "common/random.h"
#include "common/statusor.h"
#include "common/telemetry.h"

namespace nimbus::fault {
namespace {

// Every FAULT_POINT / ShouldFail name in the tree must be listed here;
// scripts/check_fault_points.sh fails the build on a call site missing
// from the catalog or a duplicate entry. Keep the list sorted.
// FAULT-POINT-CATALOG-BEGIN
constexpr const char* kFaultPointCatalog[] = {
    "audit.verify",
    "broker.quote",
    "io.read",
    "io.write",
    "journal.append",
    "journal.fsync",
    "journal.replay",
    "journal.rotate",
    "service.enqueue",
    "service.execute",
    "snapshot.fsync",
    "snapshot.rename",
    "snapshot.write",
    "solver.cholesky",
};
// FAULT-POINT-CATALOG-END

telemetry::Counter& InjectedCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("fault_injected_total");
  return counter;
}

// One armed clause plus its runtime state. Deterministic clauses fire on
// hits [nth, nth+count) (count < 0 = forever); probabilistic clauses
// (nth == 0) draw from a per-rule seeded stream.
struct Rule {
  int64_t nth = 0;
  int64_t count = 1;
  double probability = 0.0;
  Mode mode = Mode::kStatus;
  std::unique_ptr<Rng> rng;
  int64_t hits = 0;
  int64_t fires = 0;
};

std::atomic<bool> g_armed{false};

// Thread-local fault scope set by ScopedFaultScope ("" = unscoped).
thread_local std::string t_scope;

std::mutex& Mutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

// Armed rules plus hit counters for known points seen while armed.
// Leaked (like the telemetry registry) so exit-time paths never race
// static destruction.
std::map<std::string, Rule>& Rules() {
  static std::map<std::string, Rule>* rules = new std::map<std::string, Rule>();
  return *rules;
}

// Stable 64-bit string hash (FNV-1a) mixing the point name into the
// probabilistic seed so distinct points armed with the same seed draw
// independent streams.
uint64_t HashName(const std::string& name) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

StatusOr<Rule> ParseClauseBody(const std::string& point,
                               std::vector<std::string> tokens) {
  Rule rule;
  // A trailing mode token applies to either clause form:
  // `point:3:enospc`, `point:3:2:enospc`, `point:p=0.5:enospc`.
  if (!tokens.empty() && tokens.back() == "enospc") {
    rule.mode = Mode::kEnospc;
    tokens.pop_back();
  }
  if (tokens.empty()) {
    return InvalidArgumentError("fault clause '" + point +
                                "' needs ':nth' or ':p=<prob>'");
  }
  if (tokens[0].rfind("p=", 0) == 0) {
    char* end = nullptr;
    rule.probability = std::strtod(tokens[0].c_str() + 2, &end);
    if (end == tokens[0].c_str() + 2 || *end != '\0' ||
        !(rule.probability > 0.0) || rule.probability > 1.0) {
      return InvalidArgumentError("bad probability in fault clause '" + point +
                                  "'");
    }
    uint64_t seed = 0;
    if (tokens.size() > 1) {
      if (tokens.size() > 2 || tokens[1].rfind("seed=", 0) != 0) {
        return InvalidArgumentError("bad probabilistic fault clause '" + point +
                                    "'");
      }
      seed = std::strtoull(tokens[1].c_str() + 5, &end, 10);
      if (end == tokens[1].c_str() + 5 || *end != '\0') {
        return InvalidArgumentError("bad seed in fault clause '" + point + "'");
      }
    }
    rule.rng = std::make_unique<Rng>(seed ^ HashName(point));
    return rule;
  }
  char* end = nullptr;
  rule.nth = static_cast<int64_t>(std::strtoll(tokens[0].c_str(), &end, 10));
  if (end == tokens[0].c_str() || *end != '\0' || rule.nth < 1) {
    return InvalidArgumentError("bad hit index in fault clause '" + point +
                                "' (want a 1-based integer)");
  }
  if (tokens.size() > 2) {
    return InvalidArgumentError("too many fields in fault clause '" + point +
                                "'");
  }
  if (tokens.size() == 2) {
    if (tokens[1] == "*") {
      rule.count = -1;
    } else {
      rule.count =
          static_cast<int64_t>(std::strtoll(tokens[1].c_str(), &end, 10));
      if (end == tokens[1].c_str() || *end != '\0' || rule.count < 1) {
        return InvalidArgumentError("bad count in fault clause '" + point +
                                    "' (want a positive integer or '*')");
      }
    }
  }
  return rule;
}

StatusOr<std::map<std::string, Rule>> ParseSpec(const std::string& spec) {
  std::map<std::string, Rule> rules;
  size_t start = 0;
  while (start < spec.size()) {
    size_t end = spec.find(',', start);
    if (end == std::string::npos) {
      end = spec.size();
    }
    const std::string clause = spec.substr(start, end - start);
    start = end + 1;
    if (clause.empty()) {
      continue;
    }
    std::vector<std::string> tokens;
    size_t pos = 0;
    while (pos <= clause.size()) {
      size_t colon = clause.find(':', pos);
      if (colon == std::string::npos) {
        colon = clause.size();
      }
      tokens.push_back(clause.substr(pos, colon - pos));
      if (colon == clause.size()) {
        break;
      }
      pos = colon + 1;
    }
    // The rule key is the full `point` or `point@scope` token; only the
    // base point name must exist in the catalog.
    const std::string key = tokens.front();
    tokens.erase(tokens.begin());
    const size_t at = key.find('@');
    const std::string point = key.substr(0, at);
    if (!IsKnownPoint(point)) {
      return InvalidArgumentError("unknown fault point '" + point +
                                  "' (see the catalog in common/fault.cc)");
    }
    if (at != std::string::npos && at + 1 >= key.size()) {
      return InvalidArgumentError("empty scope in fault clause '" + key + "'");
    }
    if (rules.count(key) > 0) {
      return InvalidArgumentError("fault point '" + key +
                                  "' armed twice in one spec");
    }
    NIMBUS_ASSIGN_OR_RETURN(Rule rule, ParseClauseBody(key, std::move(tokens)));
    rules.emplace(key, std::move(rule));
  }
  return rules;
}

// First-use hook honoring NIMBUS_FAULTS, mirroring telemetry's
// EnsureInitialized so any binary gets env-driven injection without
// explicit setup.
void EnsureInitialized() {
  static const bool initialized = [] {
    ArmFromEnvOrDie();
    return true;
  }();
  (void)initialized;
}

// Evaluates one armed rule against its next hit; logs and counts fires.
bool EvaluateRuleLocked(const std::string& key, Rule& rule) {
  const int64_t hit = ++rule.hits;
  bool fire = false;
  if (rule.rng != nullptr) {
    fire = rule.rng->Bernoulli(rule.probability);
  } else {
    fire = hit >= rule.nth &&
           (rule.count < 0 || hit < rule.nth + rule.count);
  }
  if (fire) {
    ++rule.fires;
    InjectedCounter().Increment();
    NIMBUS_LOG(kWarning) << "fault injected at '" << key << "' (hit #"
                         << hit << ")";
  }
  return fire;
}

}  // namespace

Injection Check(const char* point) {
  EnsureInitialized();
  Injection result;
  if (!g_armed.load(std::memory_order_relaxed)) {
    return result;
  }
  std::lock_guard<std::mutex> lock(Mutex());
  // An unscoped clause applies on every thread; a `point@scope` clause
  // only on threads inside a matching ScopedFaultScope. Both count
  // their hits independently (the scoped rule only counts scoped hits,
  // so `journal.append@shard-7:3` means shard-7's third append).
  auto it = Rules().find(point);
  if (it != Rules().end()) {
    if (EvaluateRuleLocked(it->first, it->second)) {
      result.fire = true;
      result.mode = it->second.mode;
    }
  } else {
    // Count hits at unarmed-but-known points too, so a drill can see
    // which recovery paths were exercised without arming them.
    ++Rules()[point].hits;
  }
  if (!t_scope.empty()) {
    const std::string scoped_key = std::string(point) + "@" + t_scope;
    auto scoped = Rules().find(scoped_key);
    if (scoped != Rules().end() &&
        EvaluateRuleLocked(scoped->first, scoped->second)) {
      result.fire = true;
      result.mode = scoped->second.mode;
    }
  }
  return result;
}

bool ShouldFail(const char* point) { return Check(point).fire; }

ScopedFaultScope::ScopedFaultScope(const std::string& scope)
    : previous_(t_scope) {
  t_scope = scope;
}

ScopedFaultScope::~ScopedFaultScope() { t_scope = previous_; }

const std::string& CurrentFaultScope() { return t_scope; }

void ArmFromEnvOrDie() {
  const char* spec = std::getenv("NIMBUS_FAULTS");
  if (spec == nullptr || *spec == '\0') {
    return;
  }
  const Status status = Configure(spec);
  if (!status.ok()) {
    // Fail fast: an operator who armed a drill with a typo'd point name
    // would otherwise run a chaos exercise that silently tests nothing.
    NIMBUS_LOG(kFatal) << "invalid NIMBUS_FAULTS spec '" << spec
                       << "': " << status.ToString();
  }
}

Status Configure(const std::string& spec) {
  StatusOr<std::map<std::string, Rule>> rules = ParseSpec(spec);
  if (!rules.ok()) {
    return rules.status();
  }
  std::lock_guard<std::mutex> lock(Mutex());
  Rules() = *std::move(rules);
  g_armed.store(!Rules().empty(), std::memory_order_relaxed);
  return OkStatus();
}

void Reset() {
  std::lock_guard<std::mutex> lock(Mutex());
  Rules().clear();
  g_armed.store(false, std::memory_order_relaxed);
}

int64_t HitCount(const std::string& point) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Rules().find(point);
  return it == Rules().end() ? 0 : it->second.hits;
}

int64_t FireCount(const std::string& point) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Rules().find(point);
  return it == Rules().end() ? 0 : it->second.fires;
}

bool IsKnownPoint(const std::string& name) {
  const std::vector<std::string>& points = KnownPoints();
  return std::binary_search(points.begin(), points.end(), name);
}

const std::vector<std::string>& KnownPoints() {
  static const std::vector<std::string>* points = [] {
    auto* out = new std::vector<std::string>(std::begin(kFaultPointCatalog),
                                             std::end(kFaultPointCatalog));
    std::sort(out->begin(), out->end());
    return out;
  }();
  return *points;
}

}  // namespace nimbus::fault
