#include "common/fault.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "common/logging.h"
#include "common/random.h"
#include "common/statusor.h"
#include "common/telemetry.h"

namespace nimbus::fault {
namespace {

// Every FAULT_POINT / ShouldFail name in the tree must be listed here;
// scripts/check_fault_points.sh fails the build on a call site missing
// from the catalog or a duplicate entry. Keep the list sorted.
// FAULT-POINT-CATALOG-BEGIN
constexpr const char* kFaultPointCatalog[] = {
    "broker.quote",
    "io.read",
    "io.write",
    "journal.append",
    "journal.fsync",
    "journal.replay",
    "journal.rotate",
    "service.enqueue",
    "service.execute",
    "snapshot.fsync",
    "snapshot.rename",
    "snapshot.write",
    "solver.cholesky",
};
// FAULT-POINT-CATALOG-END

telemetry::Counter& InjectedCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("fault_injected_total");
  return counter;
}

// One armed clause plus its runtime state. Deterministic clauses fire on
// hits [nth, nth+count) (count < 0 = forever); probabilistic clauses
// (nth == 0) draw from a per-rule seeded stream.
struct Rule {
  int64_t nth = 0;
  int64_t count = 1;
  double probability = 0.0;
  std::unique_ptr<Rng> rng;
  int64_t hits = 0;
  int64_t fires = 0;
};

std::atomic<bool> g_armed{false};

std::mutex& Mutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

// Armed rules plus hit counters for known points seen while armed.
// Leaked (like the telemetry registry) so exit-time paths never race
// static destruction.
std::map<std::string, Rule>& Rules() {
  static std::map<std::string, Rule>* rules = new std::map<std::string, Rule>();
  return *rules;
}

// Stable 64-bit string hash (FNV-1a) mixing the point name into the
// probabilistic seed so distinct points armed with the same seed draw
// independent streams.
uint64_t HashName(const std::string& name) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

StatusOr<Rule> ParseClauseBody(const std::string& point,
                               const std::vector<std::string>& tokens) {
  Rule rule;
  if (tokens.empty()) {
    return InvalidArgumentError("fault clause '" + point +
                                "' needs ':nth' or ':p=<prob>'");
  }
  if (tokens[0].rfind("p=", 0) == 0) {
    char* end = nullptr;
    rule.probability = std::strtod(tokens[0].c_str() + 2, &end);
    if (end == tokens[0].c_str() + 2 || *end != '\0' ||
        !(rule.probability > 0.0) || rule.probability > 1.0) {
      return InvalidArgumentError("bad probability in fault clause '" + point +
                                  "'");
    }
    uint64_t seed = 0;
    if (tokens.size() > 1) {
      if (tokens.size() > 2 || tokens[1].rfind("seed=", 0) != 0) {
        return InvalidArgumentError("bad probabilistic fault clause '" + point +
                                    "'");
      }
      seed = std::strtoull(tokens[1].c_str() + 5, &end, 10);
      if (end == tokens[1].c_str() + 5 || *end != '\0') {
        return InvalidArgumentError("bad seed in fault clause '" + point + "'");
      }
    }
    rule.rng = std::make_unique<Rng>(seed ^ HashName(point));
    return rule;
  }
  char* end = nullptr;
  rule.nth = static_cast<int64_t>(std::strtoll(tokens[0].c_str(), &end, 10));
  if (end == tokens[0].c_str() || *end != '\0' || rule.nth < 1) {
    return InvalidArgumentError("bad hit index in fault clause '" + point +
                                "' (want a 1-based integer)");
  }
  if (tokens.size() > 2) {
    return InvalidArgumentError("too many fields in fault clause '" + point +
                                "'");
  }
  if (tokens.size() == 2) {
    if (tokens[1] == "*") {
      rule.count = -1;
    } else {
      rule.count =
          static_cast<int64_t>(std::strtoll(tokens[1].c_str(), &end, 10));
      if (end == tokens[1].c_str() || *end != '\0' || rule.count < 1) {
        return InvalidArgumentError("bad count in fault clause '" + point +
                                    "' (want a positive integer or '*')");
      }
    }
  }
  return rule;
}

StatusOr<std::map<std::string, Rule>> ParseSpec(const std::string& spec) {
  std::map<std::string, Rule> rules;
  size_t start = 0;
  while (start < spec.size()) {
    size_t end = spec.find(',', start);
    if (end == std::string::npos) {
      end = spec.size();
    }
    const std::string clause = spec.substr(start, end - start);
    start = end + 1;
    if (clause.empty()) {
      continue;
    }
    std::vector<std::string> tokens;
    size_t pos = 0;
    while (pos <= clause.size()) {
      size_t colon = clause.find(':', pos);
      if (colon == std::string::npos) {
        colon = clause.size();
      }
      tokens.push_back(clause.substr(pos, colon - pos));
      if (colon == clause.size()) {
        break;
      }
      pos = colon + 1;
    }
    const std::string point = tokens.front();
    tokens.erase(tokens.begin());
    if (!IsKnownPoint(point)) {
      return InvalidArgumentError("unknown fault point '" + point +
                                  "' (see the catalog in common/fault.cc)");
    }
    if (rules.count(point) > 0) {
      return InvalidArgumentError("fault point '" + point +
                                  "' armed twice in one spec");
    }
    NIMBUS_ASSIGN_OR_RETURN(Rule rule, ParseClauseBody(point, tokens));
    rules.emplace(point, std::move(rule));
  }
  return rules;
}

// First-use hook honoring NIMBUS_FAULTS, mirroring telemetry's
// EnsureInitialized so any binary gets env-driven injection without
// explicit setup.
void EnsureInitialized() {
  static const bool initialized = [] {
    ArmFromEnvOrDie();
    return true;
  }();
  (void)initialized;
}

}  // namespace

bool ShouldFail(const char* point) {
  EnsureInitialized();
  if (!g_armed.load(std::memory_order_relaxed)) {
    return false;
  }
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Rules().find(point);
  if (it == Rules().end()) {
    // Count hits at unarmed-but-known points too, so a drill can see
    // which recovery paths were exercised without arming them.
    ++Rules()[point].hits;
    return false;
  }
  Rule& rule = it->second;
  const int64_t hit = ++rule.hits;
  bool fire = false;
  if (rule.rng != nullptr) {
    fire = rule.rng->Bernoulli(rule.probability);
  } else {
    fire = hit >= rule.nth &&
           (rule.count < 0 || hit < rule.nth + rule.count);
  }
  if (fire) {
    ++rule.fires;
    InjectedCounter().Increment();
    NIMBUS_LOG(kWarning) << "fault injected at '" << point << "' (hit #"
                         << hit << ")";
  }
  return fire;
}

void ArmFromEnvOrDie() {
  const char* spec = std::getenv("NIMBUS_FAULTS");
  if (spec == nullptr || *spec == '\0') {
    return;
  }
  const Status status = Configure(spec);
  if (!status.ok()) {
    // Fail fast: an operator who armed a drill with a typo'd point name
    // would otherwise run a chaos exercise that silently tests nothing.
    NIMBUS_LOG(kFatal) << "invalid NIMBUS_FAULTS spec '" << spec
                       << "': " << status.ToString();
  }
}

Status Configure(const std::string& spec) {
  StatusOr<std::map<std::string, Rule>> rules = ParseSpec(spec);
  if (!rules.ok()) {
    return rules.status();
  }
  std::lock_guard<std::mutex> lock(Mutex());
  Rules() = *std::move(rules);
  g_armed.store(!Rules().empty(), std::memory_order_relaxed);
  return OkStatus();
}

void Reset() {
  std::lock_guard<std::mutex> lock(Mutex());
  Rules().clear();
  g_armed.store(false, std::memory_order_relaxed);
}

int64_t HitCount(const std::string& point) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Rules().find(point);
  return it == Rules().end() ? 0 : it->second.hits;
}

int64_t FireCount(const std::string& point) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Rules().find(point);
  return it == Rules().end() ? 0 : it->second.fires;
}

bool IsKnownPoint(const std::string& name) {
  const std::vector<std::string>& points = KnownPoints();
  return std::binary_search(points.begin(), points.end(), name);
}

const std::vector<std::string>& KnownPoints() {
  static const std::vector<std::string>* points = [] {
    auto* out = new std::vector<std::string>(std::begin(kFaultPointCatalog),
                                             std::end(kFaultPointCatalog));
    std::sort(out->begin(), out->end());
    return out;
  }();
  return *points;
}

}  // namespace nimbus::fault
