#ifndef NIMBUS_COMMON_BACKOFF_H_
#define NIMBUS_COMMON_BACKOFF_H_

#include <functional>

#include "common/clock.h"
#include "common/random.h"
#include "common/status.h"

namespace nimbus {

// Exponential backoff with deterministic jitter, shared by the serving
// layer's retry paths. The jitter stream comes from an Rng the caller
// seeds (typically Rng::Fork of a request-scoped stream), so a retry
// schedule — like everything else in Nimbus — is a pure function of its
// seed: drills replay with the same sleeps, and tests can assert the
// exact schedule.
struct BackoffOptions {
  // Total tries including the first (1 = no retries). <= 0 behaves as 1.
  int max_attempts = 4;
  double initial_delay_seconds = 1e-4;
  double multiplier = 2.0;
  double max_delay_seconds = 0.05;
  // Fraction of each delay that is randomized: the k-th delay is
  // base_k * (1 - jitter * u) with u ~ Uniform[0, 1), keeping retries
  // from different workers out of lockstep without ever exceeding the
  // deterministic envelope base_k.
  double jitter = 0.5;
};

// Produces the delay sequence for one retried operation.
class Backoff {
 public:
  Backoff(const BackoffOptions& options, Rng rng);

  // Delay to sleep before the next retry. Grows by `multiplier` per
  // call, capped at max_delay_seconds, then jittered downward.
  double NextDelaySeconds();

  int delays_issued() const { return delays_issued_; }

 private:
  BackoffOptions options_;
  Rng rng_;
  double base_;
  int delays_issued_ = 0;
};

// True for status codes that mark transient failures worth retrying:
// kInternal (injected/infrastructure faults), kUnavailable (overload,
// open breaker) and kResourceExhausted. Caller errors (kInvalidArgument,
// kOutOfRange, kInfeasible, ...) and kDeadlineExceeded are final.
bool IsRetryableStatusCode(StatusCode code);

// Runs `op` until it returns OK, a non-retryable status, or the attempt
// budget is exhausted; sleeps the jittered backoff on `clock` between
// tries. A cancelled/expired `cancel` token (optional) stops the loop
// before the next attempt — and pre-empts a sleep that could not finish
// before the deadline. `attempts_out` (optional) receives the number of
// attempts actually made. Returns the last attempt's status.
Status RetryWithBackoff(const BackoffOptions& options, Rng rng, Clock& clock,
                        const CancelToken* cancel,
                        const std::function<Status()>& op,
                        int* attempts_out = nullptr);

}  // namespace nimbus

#endif  // NIMBUS_COMMON_BACKOFF_H_
