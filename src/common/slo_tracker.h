#ifndef NIMBUS_COMMON_SLO_TRACKER_H_
#define NIMBUS_COMMON_SLO_TRACKER_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/clock.h"

namespace nimbus::telemetry {

// Tuning for one SloTracker. The defaults express "99.9% of requests
// succeed, judged over a 1-minute fast window and a 10-minute slow
// window" — the classic multi-window burn-rate alerting setup, scaled
// down to soak-harness time horizons.
struct SloOptions {
  // Objective: the fraction of requests that must be good. The error
  // budget is 1 - target_availability.
  double target_availability = 0.999;
  // > 0: a request slower than this (microseconds) counts against the
  // budget even when it succeeded — the latency half of the SLO.
  // 0 disables the latency component.
  double slow_request_us = 0.0;
  // Window widths. The fast window catches sharp burns (page now), the
  // slow window catches slow leaks (ticket tomorrow).
  double fast_window_seconds = 60.0;
  double slow_window_seconds = 600.0;
  // Ring resolution; windows are quantized to whole buckets.
  double bucket_seconds = 1.0;
  // Time source; nullptr = the process SystemClock. Tests pass a
  // ManualClock, making every window edge a pure function of virtual
  // time.
  const Clock* clock = nullptr;
};

// Windowed availability / error-budget tracker. RecordRequest files
// each terminal request outcome into a time-bucketed ring sized to the
// slow window; Snapshot computes availability and burn rate over both
// windows. Burn rate is the standard SRE quantity
//
//   burn = (bad / total) / (1 - target_availability)
//
// i.e. how many times faster than "exactly on budget" the error budget
// is being spent: 0 = no errors, 1 = burning exactly at budget, >> 1 =
// incident. Thread-safe (one short mutex hold per call); deterministic
// under a ManualClock.
class SloTracker {
 public:
  explicit SloTracker(SloOptions options);

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  // Files one terminal outcome. `ok` is the request's status; a slow
  // success still burns budget when slow_request_us is configured.
  void RecordRequest(bool ok, double latency_us);

  struct Report {
    int64_t fast_good = 0;
    int64_t fast_bad = 0;
    int64_t slow_good = 0;
    int64_t slow_bad = 0;
    // good / total per window; 1.0 when the window is empty (no traffic
    // is not an outage).
    double fast_availability = 1.0;
    double slow_availability = 1.0;
    // Budget spend speed per window; 0.0 when the window is empty.
    double fast_burn_rate = 0.0;
    double slow_burn_rate = 0.0;
    double error_budget = 0.0;  // 1 - target_availability.
  };
  Report Snapshot() const;

  // Mirrors the report into the registry gauges `slo_availability`
  // (slow window), `slo_fast_burn_rate` and `slo_slow_burn_rate`, plus
  // `slo_window_requests` (slow-window traffic) so a scrape can tell
  // "healthy" from "idle".
  void ExportGauges() const;

  const SloOptions& options() const { return options_; }

 private:
  struct Bucket {
    int64_t epoch = -1;  // NowNanos / bucket width; -1 = never used.
    int64_t good = 0;
    int64_t bad = 0;
  };

  int64_t EpochNow() const;

  SloOptions options_;
  const Clock* clock_;
  int64_t bucket_ns_ = 0;
  int64_t fast_buckets_ = 0;
  int64_t slow_buckets_ = 0;

  mutable std::mutex mu_;
  std::vector<Bucket> ring_;
};

}  // namespace nimbus::telemetry

#endif  // NIMBUS_COMMON_SLO_TRACKER_H_
