#ifndef NIMBUS_COMMON_STATUSOR_H_
#define NIMBUS_COMMON_STATUSOR_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <utility>

#include "common/status.h"

namespace nimbus {

// StatusOr<T> holds either a value of type T or a non-OK Status explaining
// why the value is absent. Accessing the value of a non-OK StatusOr aborts
// the process (there are no exceptions in this codebase), so callers must
// check ok() first or use value_or().
//
// Example:
//   StatusOr<Model> m = TrainModel(data);
//   if (!m.ok()) return m.status();
//   Use(*m);
template <typename T>
class StatusOr {
 public:
  // Constructs from an error status. `status` must not be OK: an OK status
  // carries no value and would leave the StatusOr in a contradictory state.
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = InternalError("StatusOr constructed from OK status");
    }
  }

  // Constructs from a value.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return value_.has_value(); }

  // Returns the contained status: OK when a value is present.
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value, or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckHasValue() const {
    if (!ok()) {
      std::cerr << "Fatal: accessing value of failed StatusOr: "
                << status_.ToString() << std::endl;
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace nimbus

// Assigns the value of `rexpr` (a StatusOr expression) to `lhs`, or
// returns the error status from the enclosing function.
#define NIMBUS_STATUSOR_CONCAT_INNER(a, b) a##b
#define NIMBUS_STATUSOR_CONCAT(a, b) NIMBUS_STATUSOR_CONCAT_INNER(a, b)
#define NIMBUS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) {                                    \
    return tmp.status();                              \
  }                                                   \
  lhs = std::move(tmp).value()
#define NIMBUS_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  NIMBUS_ASSIGN_OR_RETURN_IMPL(                                              \
      NIMBUS_STATUSOR_CONCAT(nimbus_statusor_tmp_, __LINE__), lhs, rexpr)

#endif  // NIMBUS_COMMON_STATUSOR_H_
