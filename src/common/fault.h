#ifndef NIMBUS_COMMON_FAULT_H_
#define NIMBUS_COMMON_FAULT_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace nimbus::fault {

// Deterministic fault injection for recovery-path testing. Production
// code marks the places where an induced failure is interesting with
// FAULT_POINT("name"); tests (or an operator drill) arm points through
// the NIMBUS_FAULTS environment variable or Configure(). Disarmed, a
// fault point costs one relaxed atomic load — the same budget as a
// disabled telemetry span — so the markers stay in release builds.
//
// Spec grammar (comma-separated clauses, one per point):
//   point:nth            fire exactly on the nth hit (1-based)
//   point:nth:count      fire on hits [nth, nth+count)
//   point:nth:*          fire on every hit from the nth on
//   point:p=0.25         fire each hit with probability 0.25 (seed 0)
//   point:p=0.25:seed=7  same, seeded — the firing sequence is a pure
//                        function of (point, p, seed), so probabilistic
//                        drills are reproducible
// Example: NIMBUS_FAULTS=journal.append:3,io.write:1:*
//
// Two orthogonal extensions:
//
//   point@scope:...      the clause only counts hits (and fires) on
//                        threads whose current fault scope equals
//                        `scope` (see ScopedFaultScope below). Shards
//                        set their product id as the scope around
//                        quote/commit/recovery work, so a drill can
//                        poison exactly one shard's journal while the
//                        rest of the catalog runs fault-free.
//   ...:enospc           trailing mode token: instead of the clean
//                        injected kInternal Status, the call site
//                        simulates a disk-full condition — an
//                        errno-shaped short write (ENOSPC) that leaves
//                        a torn record behind, exactly like a real full
//                        disk. Only call sites that query Check()
//                        honor the mode; FAULT_POINT sites treat it as
//                        a plain failure.
// Example: NIMBUS_FAULTS=journal.append@shard-7:5:enospc
//
// Every point name must appear in the catalog in fault.cc
// (scripts/check_fault_points.sh enforces the same statically); arming
// an unknown point is an InvalidArgument. Every fire increments the
// `fault_injected_total` telemetry counter and logs a warning.

// How an armed clause asks the call site to fail.
enum class Mode {
  kStatus,  // return the usual injected kInternal Status
  kEnospc,  // simulate a disk-full short write (errno-shaped ENOSPC)
};

// Result of consulting a fault point: whether to fail this hit, and how.
struct Injection {
  bool fire = false;
  Mode mode = Mode::kStatus;
};

// True when the named point should fail this hit. Hits are counted per
// point only while injection is armed.
bool ShouldFail(const char* point);

// Like ShouldFail, but also reports the clause's failure mode so call
// sites that know how to fake a disk-full condition can do so.
Injection Check(const char* point);

// RAII thread-local fault scope. While alive, clauses armed as
// `point@scope` with a matching scope apply on this thread (unscoped
// clauses always apply). Scopes nest; the destructor restores the
// previous scope.
class ScopedFaultScope {
 public:
  explicit ScopedFaultScope(const std::string& scope);
  ~ScopedFaultScope();
  ScopedFaultScope(const ScopedFaultScope&) = delete;
  ScopedFaultScope& operator=(const ScopedFaultScope&) = delete;

 private:
  std::string previous_;
};

// The current thread's fault scope ("" when none is set).
const std::string& CurrentFaultScope();

// Arms injection from a spec string (see grammar above). Replaces any
// previous configuration; an empty spec disarms. Invalid clauses or
// unknown point names leave the previous configuration in place.
Status Configure(const std::string& spec);

// Applies the NIMBUS_FAULTS environment variable (no-op when unset or
// empty). Unlike Configure, an invalid spec here is FATAL: a drill whose
// spec names an unknown point (or cannot be parsed) must not silently
// run with injection disarmed, so this logs the precise parse error and
// aborts. Called automatically on first fault-point use; exposed for
// tests and for binaries that want the env applied eagerly.
void ArmFromEnvOrDie();

// Disarms all points and clears hit counters.
void Reset();

// Hits observed at `point` since the last Configure/Reset (armed runs
// only; 0 for unknown points). Scoped clauses count under their full
// key, e.g. HitCount("journal.append@shard-7").
int64_t HitCount(const std::string& point);

// Fires delivered at `point` since the last Configure/Reset.
int64_t FireCount(const std::string& point);

// True when `name` is in the compiled-in fault-point catalog.
bool IsKnownPoint(const std::string& name);

// The compiled-in catalog, sorted (exposed for tests and tooling).
const std::vector<std::string>& KnownPoints();

}  // namespace nimbus::fault

// Fails the enclosing Status/StatusOr-returning function with an
// injected kInternal error when the named point is armed and due.
#define FAULT_POINT(name)                                          \
  do {                                                             \
    if (::nimbus::fault::ShouldFail(name)) {                       \
      return ::nimbus::InternalError(                              \
          std::string("fault injected at '") + (name) + "'");      \
    }                                                              \
  } while (false)

#endif  // NIMBUS_COMMON_FAULT_H_
