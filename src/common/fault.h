#ifndef NIMBUS_COMMON_FAULT_H_
#define NIMBUS_COMMON_FAULT_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace nimbus::fault {

// Deterministic fault injection for recovery-path testing. Production
// code marks the places where an induced failure is interesting with
// FAULT_POINT("name"); tests (or an operator drill) arm points through
// the NIMBUS_FAULTS environment variable or Configure(). Disarmed, a
// fault point costs one relaxed atomic load — the same budget as a
// disabled telemetry span — so the markers stay in release builds.
//
// Spec grammar (comma-separated clauses, one per point):
//   point:nth            fire exactly on the nth hit (1-based)
//   point:nth:count      fire on hits [nth, nth+count)
//   point:nth:*          fire on every hit from the nth on
//   point:p=0.25         fire each hit with probability 0.25 (seed 0)
//   point:p=0.25:seed=7  same, seeded — the firing sequence is a pure
//                        function of (point, p, seed), so probabilistic
//                        drills are reproducible
// Example: NIMBUS_FAULTS=journal.append:3,io.write:1:*
//
// Every point name must appear in the catalog in fault.cc
// (scripts/check_fault_points.sh enforces the same statically); arming
// an unknown point is an InvalidArgument. Every fire increments the
// `fault_injected_total` telemetry counter and logs a warning.

// True when the named point should fail this hit. Hits are counted per
// point only while injection is armed.
bool ShouldFail(const char* point);

// Arms injection from a spec string (see grammar above). Replaces any
// previous configuration; an empty spec disarms. Invalid clauses or
// unknown point names leave the previous configuration in place.
Status Configure(const std::string& spec);

// Applies the NIMBUS_FAULTS environment variable (no-op when unset or
// empty). Unlike Configure, an invalid spec here is FATAL: a drill whose
// spec names an unknown point (or cannot be parsed) must not silently
// run with injection disarmed, so this logs the precise parse error and
// aborts. Called automatically on first fault-point use; exposed for
// tests and for binaries that want the env applied eagerly.
void ArmFromEnvOrDie();

// Disarms all points and clears hit counters.
void Reset();

// Hits observed at `point` since the last Configure/Reset (armed runs
// only; 0 for unknown points).
int64_t HitCount(const std::string& point);

// Fires delivered at `point` since the last Configure/Reset.
int64_t FireCount(const std::string& point);

// True when `name` is in the compiled-in fault-point catalog.
bool IsKnownPoint(const std::string& name);

// The compiled-in catalog, sorted (exposed for tests and tooling).
const std::vector<std::string>& KnownPoints();

}  // namespace nimbus::fault

// Fails the enclosing Status/StatusOr-returning function with an
// injected kInternal error when the named point is armed and due.
#define FAULT_POINT(name)                                          \
  do {                                                             \
    if (::nimbus::fault::ShouldFail(name)) {                       \
      return ::nimbus::InternalError(                              \
          std::string("fault injected at '") + (name) + "'");      \
    }                                                              \
  } while (false)

#endif  // NIMBUS_COMMON_FAULT_H_
