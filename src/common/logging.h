#ifndef NIMBUS_COMMON_LOGGING_H_
#define NIMBUS_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace nimbus {

enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

// Returns/sets the minimum severity that is actually emitted. Defaults to
// kInfo; benches raise it to kWarning to keep output machine-parseable.
// Backed by an atomic so worker threads may log while another thread
// flips the threshold.
LogSeverity MinLogSeverity();
void SetMinLogSeverity(LogSeverity severity);

// Output format of the log sink. kText is the classic
// "[I file.cc:42] msg" line; kJson emits one JSON object per line
// ({"ts":...,"severity":...,"file":...,"line":...,"msg":...}) so logs
// and telemetry snapshots can be ingested by the same tooling. The
// default comes from NIMBUS_LOG_FORMAT ("json" selects kJson), read once
// at first use; SetLogFormat overrides it at runtime.
enum class LogFormat { kText = 0, kJson = 1 };
LogFormat GetLogFormat();
void SetLogFormat(LogFormat format);

// Formats one finished log line (including the trailing newline) in the
// given format. Exposed for tests; LogMessage uses it internally.
std::string FormatLogLine(LogFormat format, LogSeverity severity,
                          const char* file, int line, const std::string& msg);

namespace internal {

// Accumulates one log line and emits it (with severity tag and source
// location) on destruction. A kFatal message aborts the process.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogSeverity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Swallows a log statement whose severity is below the threshold; the
// operator& trick gives it lower precedence than <<.
class LogMessageVoidify {
 public:
  void operator&(LogMessage&) {}
};

}  // namespace internal
}  // namespace nimbus

#define NIMBUS_LOG_INTERNAL(severity)                                      \
  ::nimbus::internal::LogMessage(::nimbus::LogSeverity::severity, __FILE__, \
                                 __LINE__)

// Usage: NIMBUS_LOG(kInfo) << "message"; Fatal logs abort.
#define NIMBUS_LOG(severity) NIMBUS_LOG_INTERNAL(severity)

// Checks `condition` in all build modes; logs fatally when it fails.
#define NIMBUS_CHECK(condition)                                   \
  (condition) ? (void)0                                           \
              : ::nimbus::internal::LogMessageVoidify() &         \
                    NIMBUS_LOG_INTERNAL(kFatal)                   \
                        << "Check failed: " #condition " "

#define NIMBUS_CHECK_EQ(a, b) NIMBUS_CHECK((a) == (b))
#define NIMBUS_CHECK_NE(a, b) NIMBUS_CHECK((a) != (b))
#define NIMBUS_CHECK_LT(a, b) NIMBUS_CHECK((a) < (b))
#define NIMBUS_CHECK_LE(a, b) NIMBUS_CHECK((a) <= (b))
#define NIMBUS_CHECK_GT(a, b) NIMBUS_CHECK((a) > (b))
#define NIMBUS_CHECK_GE(a, b) NIMBUS_CHECK((a) >= (b))

#endif  // NIMBUS_COMMON_LOGGING_H_
