#ifndef NIMBUS_COMMON_RANDOM_H_
#define NIMBUS_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace nimbus {

// Deterministic pseudo-random source used everywhere in Nimbus. Wraps a
// xoshiro256++ generator seeded through SplitMix64, so that a single
// 64-bit seed reproduces every experiment bit-for-bit across platforms
// (std::normal_distribution is implementation-defined, so we implement the
// distributions ourselves).
//
// Not thread-safe; create one Rng per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Returns the next raw 64-bit output.
  uint64_t NextUint64();

  // Uniform in [0, 1).
  double Uniform();

  // Uniform in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  // Standard normal via Box-Muller (cached spare deviate).
  double Gaussian();

  // Normal with the given mean and standard deviation (stddev >= 0).
  double Gaussian(double mean, double stddev);

  // Zero-mean Laplace with scale b > 0 (variance 2 b^2).
  double Laplace(double scale);

  // Bernoulli draw returning true with probability p in [0, 1].
  bool Bernoulli(double p);

  // Poisson draw with the given mean >= 0 (Knuth's method below mean 30,
  // clamped normal approximation above).
  int Poisson(double mean);

  // Returns a vector of `n` iid standard normals.
  std::vector<double> GaussianVector(int n);

  // Derives an independent child generator and advances this one; useful
  // for giving each agent or worker its own stream from one master seed.
  Rng Fork();

  // Derives an independent child stream from the current state and
  // `stream_id` WITHOUT advancing this generator: Fork(0), Fork(1), ...
  // are pure functions of (state, id), so a parallel loop can hand index
  // i the stream Fork(i) from any thread and reproduce results
  // bit-for-bit at every thread count. Advance the parent between
  // batches (e.g. with the argument-less Fork()) so successive batches
  // do not reuse the same streams.
  Rng Fork(uint64_t stream_id) const;

 private:
  uint64_t state_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace nimbus

#endif  // NIMBUS_COMMON_RANDOM_H_
