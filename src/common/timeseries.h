#ifndef NIMBUS_COMMON_TIMESERIES_H_
#define NIMBUS_COMMON_TIMESERIES_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"

namespace nimbus::telemetry {

// Fixed-size ring of periodic registry snapshots: every `step_seconds`
// (on a pluggable Clock) the ring captures the current value of every
// registered counter and gauge — including each labeled family's
// series, flattened to `name{key="value"}` — and retains the last
// `capacity` samples. This gives the process a bounded metric HISTORY:
// /statz renders per-series rate windows from it, and the marketplace
// auditor answers "when did this invariant first fail" by asking for
// the earliest retained sample where a violation counter crossed zero
// (FirstAtLeast), instead of only knowing the current total.
//
// Like the rest of the telemetry substrate this is observation-only
// (reads registry snapshots; never touches RNG streams or market
// state) and thread-safe: sampling and queries serialize on one mutex,
// off every serving hot path (the auditor's background loop is the
// only periodic caller).
struct TimeseriesOptions {
  // Minimum spacing between retained samples.
  double step_seconds = 1.0;
  // Samples retained (ring capacity). Defaults to a 10-minute window
  // at the 1 s step.
  int capacity = 600;
};

class TimeseriesRing {
 public:
  // `clock` must outlive the ring; nullptr means SystemClock::Get().
  explicit TimeseriesRing(TimeseriesOptions options,
                          const Clock* clock = nullptr);

  // One retained observation of one series.
  struct Point {
    int64_t t_ns = 0;    // Clock::NowNanos at sample time.
    double value = 0.0;  // Counter value (as double) or gauge reading.
  };

  // Captures a sample if at least one step elapsed since the last one
  // (or the ring is empty). Returns whether a sample was taken.
  bool SampleIfDue();
  // Captures a sample unconditionally — used by tests and by the
  // auditor on a first violation, so the crossing timestamp is in the
  // ring immediately rather than up to one step late.
  void SampleNow();

  // Series names with at least one retained point, sorted.
  std::vector<std::string> Names() const;

  // Retained points for one series, oldest first (empty when unknown).
  // Series that appeared mid-window have points only from their first
  // sampled registration onward.
  std::vector<Point> Series(const std::string& name) const;

  // Timestamp of the earliest retained sample where `name` >=
  // `threshold`; nullopt when no retained sample crosses it. This is
  // the auditor's "first failure" query: the first sample with
  // audit_violations_total >= 1 dates the incident to within one step.
  std::optional<int64_t> FirstAtLeast(const std::string& name,
                                      double threshold) const;

  int sample_count() const;

  // {"step_seconds":..,"samples":N,"series":{name:{"latest":..,
  // "window_seconds":..,"rate_per_second":..,"points":[[t_seconds,
  // value],..]},..}} — the /statz body. `max_points` caps the rendered
  // tail per series (0 = all retained); latest/rate always use the
  // full window.
  std::string ToJson(int max_points = 0) const;

  // Process-wide instance (1 s x 600, system clock) pumped by whichever
  // background loop runs (the auditor); /statz reads it.
  static TimeseriesRing& Global();

  TimeseriesRing(const TimeseriesRing&) = delete;
  TimeseriesRing& operator=(const TimeseriesRing&) = delete;

 private:
  void SampleLocked(int64_t now_ns);

  const TimeseriesOptions options_;
  const Clock* const clock_;

  mutable std::mutex mu_;
  // Per-series ring of retained points, oldest first (vector rotation
  // happens at most once per step, on sizes <= capacity — not a hot
  // path). Name-sorted map keeps Names()/ToJson deterministic.
  std::map<std::string, std::vector<Point>> series_;
  std::vector<int64_t> sample_times_ns_;  // Oldest first, <= capacity.
  int64_t last_sample_ns_ = 0;
  bool has_sampled_ = false;
};

}  // namespace nimbus::telemetry

#endif  // NIMBUS_COMMON_TIMESERIES_H_
