#include "common/timeseries.h"

#include <cstdio>
#include <sstream>

#include "common/telemetry.h"

namespace nimbus::telemetry {
namespace {

// Self-accounting: scrape-visible evidence that history is being
// captured (and at what cost), without reading process internals.
Counter& SamplesCounter() {
  static Counter& counter =
      Registry::Global().GetCounter("timeseries_samples_total");
  return counter;
}

Counter& EvictionsCounter() {
  static Counter& counter =
      Registry::Global().GetCounter("timeseries_evictions_total");
  return counter;
}

Gauge& SeriesGauge() {
  static Gauge& gauge = Registry::Global().GetGauge("timeseries_series");
  return gauge;
}

void AppendDouble17(std::ostringstream& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out << buf;
}

}  // namespace

TimeseriesRing::TimeseriesRing(TimeseriesOptions options, const Clock* clock)
    : options_(options),
      clock_(clock != nullptr ? clock : SystemClock::Get()) {}

bool TimeseriesRing::SampleIfDue() {
  const int64_t now_ns = clock_->NowNanos();
  const int64_t step_ns = static_cast<int64_t>(options_.step_seconds * 1e9);
  std::lock_guard<std::mutex> lock(mu_);
  if (has_sampled_ && now_ns - last_sample_ns_ < step_ns) {
    return false;
  }
  SampleLocked(now_ns);
  return true;
}

void TimeseriesRing::SampleNow() {
  const int64_t now_ns = clock_->NowNanos();
  std::lock_guard<std::mutex> lock(mu_);
  SampleLocked(now_ns);
}

void TimeseriesRing::SampleLocked(int64_t now_ns) {
  const std::vector<Registry::SnapshotEntry> snap =
      Registry::Global().Snapshot();
  const size_t capacity = options_.capacity > 0
                              ? static_cast<size_t>(options_.capacity)
                              : size_t{1};
  auto record = [&](const std::string& name, double value) {
    std::vector<Point>& points = series_[name];
    points.push_back(Point{now_ns, value});
    if (points.size() > capacity) {
      points.erase(points.begin());
      EvictionsCounter().Increment();
    }
  };
  for (const Registry::SnapshotEntry& e : snap) {
    switch (e.kind) {
      case MetricKind::kCounter:
        record(e.name, static_cast<double>(e.counter_value));
        break;
      case MetricKind::kGauge:
        record(e.name, e.gauge_value);
        break;
      case MetricKind::kCounterVec:
      case MetricKind::kGaugeVec:
        // Labeled families flatten to one series per label value, in
        // the exposition spelling so /statz and scrape names line up.
        for (const Registry::LabeledValue& v : e.series) {
          const std::string flat =
              e.name + "{" + e.label_key + "=\"" + v.label + "\"}";
          record(flat, e.kind == MetricKind::kCounterVec
                           ? static_cast<double>(v.counter_value)
                           : v.gauge_value);
        }
        break;
      case MetricKind::kHistogram:
      case MetricKind::kHistogramVec:
        // Histories are for counters/gauges; histograms already carry
        // their own distribution state.
        break;
    }
  }
  if (sample_times_ns_.size() >= capacity) {
    sample_times_ns_.erase(sample_times_ns_.begin());
  }
  sample_times_ns_.push_back(now_ns);
  last_sample_ns_ = now_ns;
  has_sampled_ = true;
  SamplesCounter().Increment();
  SeriesGauge().Set(static_cast<double>(series_.size()));
}

std::vector<std::string> TimeseriesRing::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, points] : series_) {
    names.push_back(name);
  }
  return names;
}

std::vector<TimeseriesRing::Point> TimeseriesRing::Series(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  return it != series_.end() ? it->second : std::vector<Point>{};
}

std::optional<int64_t> TimeseriesRing::FirstAtLeast(const std::string& name,
                                                    double threshold) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end()) {
    return std::nullopt;
  }
  for (const Point& p : it->second) {
    if (p.value >= threshold) {
      return p.t_ns;
    }
  }
  return std::nullopt;
}

int TimeseriesRing::sample_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(sample_times_ns_.size());
}

std::string TimeseriesRing::ToJson(int max_points) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"step_seconds\":";
  AppendDouble17(out, options_.step_seconds);
  out << ",\"capacity\":" << options_.capacity
      << ",\"samples\":" << sample_times_ns_.size() << ",\"series\":{";
  bool first = true;
  for (const auto& [name, points] : series_) {
    if (points.empty()) {
      continue;
    }
    if (!first) {
      out << ',';
    }
    first = false;
    const Point& oldest = points.front();
    const Point& latest = points.back();
    const double window_s =
        static_cast<double>(latest.t_ns - oldest.t_ns) * 1e-9;
    const double rate =
        window_s > 0.0 ? (latest.value - oldest.value) / window_s : 0.0;
    out << '"' << JsonEscape(name) << "\":{\"latest\":";
    AppendDouble17(out, latest.value);
    out << ",\"window_seconds\":";
    AppendDouble17(out, window_s);
    out << ",\"rate_per_second\":";
    AppendDouble17(out, rate);
    out << ",\"points\":[";
    size_t begin = 0;
    if (max_points > 0 && points.size() > static_cast<size_t>(max_points)) {
      begin = points.size() - static_cast<size_t>(max_points);
    }
    for (size_t i = begin; i < points.size(); ++i) {
      if (i != begin) {
        out << ',';
      }
      out << '[';
      AppendDouble17(out, static_cast<double>(points[i].t_ns) * 1e-9);
      out << ',';
      AppendDouble17(out, points[i].value);
      out << ']';
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

TimeseriesRing& TimeseriesRing::Global() {
  // Leaked, like Registry::Global(): late background samplers must
  // never race static destruction.
  static TimeseriesRing* ring = new TimeseriesRing(TimeseriesOptions{});
  return *ring;
}

}  // namespace nimbus::telemetry
