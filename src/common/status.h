#ifndef NIMBUS_COMMON_STATUS_H_
#define NIMBUS_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace nimbus {

// Canonical error space for the library. Mirrors the subset of the
// well-known canonical codes that Nimbus actually produces.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kUnimplemented = 6,
  kResourceExhausted = 7,
  kInfeasible = 8,   // Optimization problem has no feasible solution.
  kUnbounded = 9,    // Optimization problem is unbounded.
  kUnavailable = 10,       // Transient overload/shedding; safe to retry.
  kDeadlineExceeded = 11,  // The request's deadline expired.
};

// Returns the canonical spelling of `code`, e.g. "INVALID_ARGUMENT".
std::string_view StatusCodeToString(StatusCode code);

// A Status conveys either success ("OK") or an error code plus a
// human-readable message. Nimbus does not throw exceptions across API
// boundaries; fallible operations return Status or StatusOr<T>.
//
// Example:
//   Status s = model.Fit(dataset);
//   if (!s.ok()) { LOG(ERROR) << s; return s; }
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "OK" or "CODE: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Factory helpers, one per error code.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InfeasibleError(std::string message);
Status UnboundedError(std::string message);
Status UnavailableError(std::string message);
Status DeadlineExceededError(std::string message);

}  // namespace nimbus

// Evaluates `expr` (a Status expression); returns it from the enclosing
// function if it is not OK.
#define NIMBUS_RETURN_IF_ERROR(expr)                   \
  do {                                                 \
    ::nimbus::Status nimbus_status_macro_tmp = (expr); \
    if (!nimbus_status_macro_tmp.ok()) {               \
      return nimbus_status_macro_tmp;                  \
    }                                                  \
  } while (false)

#endif  // NIMBUS_COMMON_STATUS_H_
