#include "common/telemetry.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <thread>

#include "common/logging.h"

namespace nimbus::telemetry {
namespace {

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Trace timestamps are reported relative to the first telemetry use so
// the chrome://tracing timeline starts near zero.
uint64_t TraceEpochNs() {
  static const uint64_t epoch = MonotonicNowNs();
  return epoch;
}

// Small dense thread ids (0 = first thread to trace) — chrome://tracing
// renders one row per tid, so dense ids keep the timeline compact.
uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id = next.fetch_add(1);
  return id;
}

// One recorded span. `ready` is set (release) after the payload fields
// are written, so the exporter (acquire) never reads a half-filled slot.
struct TraceEvent {
  std::atomic<uint32_t> ready{0};
  const char* name = nullptr;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  uint32_t tid = 0;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  const char* notes[TraceSpan::kMaxNotes] = {nullptr, nullptr, nullptr,
                                             nullptr};
  int note_count = 0;
};

constexpr size_t kTraceCapacity = size_t{1} << 16;

std::atomic<bool> g_tracing_enabled{false};
std::atomic<int64_t> g_trace_next{0};
std::atomic<int64_t> g_trace_dropped{0};
std::atomic<bool> g_trace_drop_warned{false};
std::atomic<uint64_t> g_next_trace_id{1};
std::atomic<uint64_t> g_next_span_id{1};

// Registry mirror of TraceDroppedCount() so a scrape explains a
// truncated chrome-tracing export without reading process internals.
Counter& TraceDroppedCounter() {
  static Counter& counter =
      Registry::Global().GetCounter("telemetry_trace_dropped_total");
  return counter;
}

// Accounts one dropped span: registry counter, in-process counter, and
// a single warning the first time drops start (per ClearTraceForTest
// epoch) so logs stay quiet under sustained overflow.
void RecordTraceDrop() {
  g_trace_dropped.fetch_add(1, std::memory_order_relaxed);
  TraceDroppedCounter().Increment();
  if (!g_trace_drop_warned.exchange(true, std::memory_order_relaxed)) {
    NIMBUS_LOG(kWarning)
        << "telemetry: trace buffer full (" << kTraceCapacity
        << " events); further spans are dropped and the chrome-tracing "
           "export is truncated (see telemetry_trace_dropped_total)";
  }
}

TraceEvent* TraceBuffer() {
  // Allocated once, on the first call (SetTracingEnabled(true) forces it
  // before the flag is visible), and intentionally leaked.
  static TraceEvent* buffer = new TraceEvent[kTraceCapacity];
  return buffer;
}

void WriteStringToFile(const char* path, const std::string& contents) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[telemetry] cannot open '%s' for writing\n", path);
    return;
  }
  // Runs from an atexit hook, so failures can only be reported, not
  // returned — but a short write or failed close must not pass silently.
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  bool ok = written == contents.size();
  ok = std::fflush(f) == 0 && ok;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::fprintf(stderr, "[telemetry] short or failed write to '%s'\n", path);
  }
}

void FlushAtExit() {
  if (const char* path = std::getenv("NIMBUS_METRICS");
      path != nullptr && *path != '\0') {
    const std::string text = SnapshotToText(Registry::Global().Snapshot());
    if (path[0] == '-' && path[1] == '\0') {
      std::fwrite(text.data(), 1, text.size(), stdout);
    } else {
      WriteStringToFile(path, text);
    }
  }
  if (const char* path = std::getenv("NIMBUS_TRACE");
      path != nullptr && *path != '\0') {
    WriteStringToFile(path, TraceToJson());
  }
}

// First-use initialization: honor NIMBUS_TRACE and install the exit
// flush. Reached from Registry::Global() and TracingEnabled(), so any
// instrumented binary gets the export hooks without explicit setup.
void EnsureInitialized() {
  static const bool initialized = [] {
    if (const char* trace = std::getenv("NIMBUS_TRACE");
        trace != nullptr && *trace != '\0') {
      TraceBuffer();
      TraceEpochNs();
      g_tracing_enabled.store(true, std::memory_order_release);
    }
    std::atexit(FlushAtExit);
    return true;
  }();
  (void)initialized;
}

void AppendDouble(std::ostringstream& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out << buf;
}

}  // namespace

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void Gauge::UpdateMax(double value) {
  double current = value_.load(std::memory_order_relaxed);
  while (current < value &&
         !value_.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

const std::vector<double>& Histogram::DefaultBoundaries() {
  // 1-2-5 decades from 1us to 10s: fine enough for p99 interpolation on
  // quote latencies, coarse enough that one histogram is 26 counters.
  static const std::vector<double> boundaries = {
      1.0,    2.0,    5.0,    1e1, 2e1, 5e1, 1e2, 2e2, 5e2, 1e3, 2e3, 5e3,
      1e4,    2e4,    5e4,    1e5, 2e5, 5e5, 1e6, 2e6, 5e6, 1e7};
  return boundaries;
}

Histogram::Histogram()
    : buckets_(DefaultBoundaries().size() + 1),
      exemplars_(DefaultBoundaries().size() + 1) {}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  for (std::atomic<int64_t>& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  for (std::atomic<uint64_t>& e : exemplars_) {
    e.store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value, uint64_t trace_id) {
  const std::vector<double>& bounds = DefaultBoundaries();
  size_t bucket = bounds.size();  // Overflow slot.
  for (size_t i = 0; i < bounds.size(); ++i) {
    if (value <= bounds[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  if (trace_id != 0) {
    exemplars_[bucket].store(trace_id, std::memory_order_relaxed);
  }
  // Seed min/max from the first observation: a histogram with count 0 has
  // min == max == 0, so distinguish "empty" via count.
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  }
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
  double lo = min_.load(std::memory_order_relaxed);
  while (value < lo &&
         !min_.compare_exchange_weak(lo, value, std::memory_order_relaxed)) {
  }
  double hi = max_.load(std::memory_order_relaxed);
  while (value > hi &&
         !max_.compare_exchange_weak(hi, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.boundaries = DefaultBoundaries();
  snap.buckets.reserve(buckets_.size());
  for (const std::atomic<int64_t>& b : buckets_) {
    snap.buckets.push_back(b.load(std::memory_order_relaxed));
  }
  snap.exemplars.reserve(exemplars_.size());
  for (const std::atomic<uint64_t>& e : exemplars_) {
    snap.exemplars.push_back(e.load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count <= 0) {
    return 0.0;
  }
  if (q <= 0.0) {
    return min;
  }
  if (q >= 1.0) {
    return max;
  }
  const double target = q * static_cast<double>(count);
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) {
      continue;
    }
    const int64_t next = cumulative + buckets[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate within [lower, upper) by the rank's position in the
      // bucket, then clamp to the observed range.
      const double lower = i == 0 ? 0.0 : boundaries[i - 1];
      const double upper = i < boundaries.size() ? boundaries[i] : max;
      const double frac =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[i]);
      double value = lower + frac * (upper - lower);
      if (value < min) value = min;
      if (value > max) value = max;
      return value;
    }
    cumulative = next;
  }
  return max;
}

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
    case MetricKind::kCounterVec:
      return "counter_vec";
    case MetricKind::kGaugeVec:
      return "gauge_vec";
    case MetricKind::kHistogramVec:
      return "histogram_vec";
  }
  return "?";
}

MetricKind MetricBaseKind(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounterVec:
      return MetricKind::kCounter;
    case MetricKind::kGaugeVec:
      return MetricKind::kGauge;
    case MetricKind::kHistogramVec:
      return MetricKind::kHistogram;
    default:
      return kind;
  }
}

// Find-or-intern, identical across the three vec types: label values
// beyond kMaxSeries collapse into the overflow series so a
// high-cardinality label can never grow the registry without bound.
Counter& CounterVec::WithLabel(const std::string& label_value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(label_value);
  if (it == series_.end()) {
    const std::string& key =
        series_.size() < kMaxSeries ? label_value : kOverflowLabel;
    it = series_.find(key);
    if (it == series_.end()) {
      it = series_.emplace(key, std::unique_ptr<Counter>(new Counter()))
               .first;
    }
  }
  return *it->second;
}

void CounterVec::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [label, counter] : series_) {
    counter->Reset();
  }
}

Gauge& GaugeVec::WithLabel(const std::string& label_value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(label_value);
  if (it == series_.end()) {
    const std::string& key =
        series_.size() < kMaxSeries ? label_value : kOverflowLabel;
    it = series_.find(key);
    if (it == series_.end()) {
      it = series_.emplace(key, std::unique_ptr<Gauge>(new Gauge())).first;
    }
  }
  return *it->second;
}

void GaugeVec::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [label, gauge] : series_) {
    gauge->Reset();
  }
}

Histogram& HistogramVec::WithLabel(const std::string& label_value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(label_value);
  if (it == series_.end()) {
    const std::string& key =
        series_.size() < kMaxSeries ? label_value : kOverflowLabel;
    it = series_.find(key);
    if (it == series_.end()) {
      it = series_.emplace(key, std::unique_ptr<Histogram>(new Histogram()))
               .first;
    }
  }
  return *it->second;
}

void HistogramVec::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [label, histogram] : series_) {
    histogram->Reset();
  }
}

Registry& Registry::Global() {
  EnsureInitialized();
  // Leaked so exit-time flushing (and late logging from worker threads)
  // never races static destruction.
  static Registry* registry = new Registry();
  return *registry;
}

Registry::Entry& Registry::GetOrCreate(const std::string& name,
                                       MetricKind kind,
                                       const std::string& label_key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = kind;
    switch (kind) {
      case MetricKind::kCounter:
        entry.counter.reset(new Counter());
        break;
      case MetricKind::kGauge:
        entry.gauge.reset(new Gauge());
        break;
      case MetricKind::kHistogram:
        entry.histogram.reset(new Histogram());
        break;
      case MetricKind::kCounterVec:
        entry.counter_vec.reset(new CounterVec(label_key));
        break;
      case MetricKind::kGaugeVec:
        entry.gauge_vec.reset(new GaugeVec(label_key));
        break;
      case MetricKind::kHistogramVec:
        entry.histogram_vec.reset(new HistogramVec(label_key));
        break;
    }
    it = metrics_.emplace(name, std::move(entry)).first;
  }
  NIMBUS_CHECK(it->second.kind == kind)
      << "metric '" << name << "' registered as "
      << MetricKindName(it->second.kind) << " but requested as "
      << MetricKindName(kind);
  return it->second;
}

Counter& Registry::GetCounter(const std::string& name) {
  return *GetOrCreate(name, MetricKind::kCounter).counter;
}

Gauge& Registry::GetGauge(const std::string& name) {
  return *GetOrCreate(name, MetricKind::kGauge).gauge;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  return *GetOrCreate(name, MetricKind::kHistogram).histogram;
}

CounterVec& Registry::GetCounterVec(const std::string& name,
                                    const std::string& label_key) {
  CounterVec& vec =
      *GetOrCreate(name, MetricKind::kCounterVec, label_key).counter_vec;
  NIMBUS_CHECK(vec.label_key() == label_key)
      << "metric '" << name << "' registered with label key '"
      << vec.label_key() << "' but requested with '" << label_key << "'";
  return vec;
}

GaugeVec& Registry::GetGaugeVec(const std::string& name,
                                const std::string& label_key) {
  GaugeVec& vec =
      *GetOrCreate(name, MetricKind::kGaugeVec, label_key).gauge_vec;
  NIMBUS_CHECK(vec.label_key() == label_key)
      << "metric '" << name << "' registered with label key '"
      << vec.label_key() << "' but requested with '" << label_key << "'";
  return vec;
}

HistogramVec& Registry::GetHistogramVec(const std::string& name,
                                        const std::string& label_key) {
  HistogramVec& vec =
      *GetOrCreate(name, MetricKind::kHistogramVec, label_key).histogram_vec;
  NIMBUS_CHECK(vec.label_key() == label_key)
      << "metric '" << name << "' registered with label key '"
      << vec.label_key() << "' but requested with '" << label_key << "'";
  return vec;
}

std::vector<Registry::SnapshotEntry> Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SnapshotEntry> snap;
  snap.reserve(metrics_.size());
  // std::map iteration is name-sorted, so snapshot order is deterministic
  // regardless of registration order or thread interleaving.
  for (const auto& [name, entry] : metrics_) {
    SnapshotEntry e;
    e.name = name;
    e.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        e.counter_value = entry.counter->Value();
        break;
      case MetricKind::kGauge:
        e.gauge_value = entry.gauge->Value();
        break;
      case MetricKind::kHistogram:
        e.histogram = entry.histogram->Snapshot();
        break;
      case MetricKind::kCounterVec: {
        CounterVec& vec = *entry.counter_vec;
        e.label_key = vec.label_key();
        std::lock_guard<std::mutex> series_lock(vec.mu_);
        for (const auto& [label, counter] : vec.series_) {
          LabeledValue v;
          v.label = label;
          v.counter_value = counter->Value();
          e.series.push_back(std::move(v));
        }
        break;
      }
      case MetricKind::kGaugeVec: {
        GaugeVec& vec = *entry.gauge_vec;
        e.label_key = vec.label_key();
        std::lock_guard<std::mutex> series_lock(vec.mu_);
        for (const auto& [label, gauge] : vec.series_) {
          LabeledValue v;
          v.label = label;
          v.gauge_value = gauge->Value();
          e.series.push_back(std::move(v));
        }
        break;
      }
      case MetricKind::kHistogramVec: {
        HistogramVec& vec = *entry.histogram_vec;
        e.label_key = vec.label_key();
        std::lock_guard<std::mutex> series_lock(vec.mu_);
        for (const auto& [label, histogram] : vec.series_) {
          LabeledValue v;
          v.label = label;
          v.histogram = histogram->Snapshot();
          e.series.push_back(std::move(v));
        }
        break;
      }
    }
    snap.push_back(std::move(e));
  }
  return snap;
}

void Registry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case MetricKind::kCounter:
        entry.counter->Reset();
        break;
      case MetricKind::kGauge:
        entry.gauge->Reset();
        break;
      case MetricKind::kHistogram:
        entry.histogram->Reset();
        break;
      case MetricKind::kCounterVec:
        entry.counter_vec->Reset();
        break;
      case MetricKind::kGaugeVec:
        entry.gauge_vec->Reset();
        break;
      case MetricKind::kHistogramVec:
        entry.histogram_vec->Reset();
        break;
    }
  }
}

namespace {

// Escapes a label VALUE for the Prometheus exposition format (inside
// the double quotes of `name{key="value"}`).
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void AppendHistogramText(std::ostringstream& out, const HistogramSnapshot& h) {
  out << "count=" << h.count << " sum=";
  AppendDouble(out, h.sum);
  out << " min=";
  AppendDouble(out, h.min);
  out << " max=";
  AppendDouble(out, h.max);
  out << " p50=";
  AppendDouble(out, h.Quantile(0.50));
  out << " p95=";
  AppendDouble(out, h.Quantile(0.95));
  out << " p99=";
  AppendDouble(out, h.Quantile(0.99));
}

}  // namespace

std::string SnapshotToText(const std::vector<Registry::SnapshotEntry>& snap) {
  std::ostringstream out;
  for (const Registry::SnapshotEntry& e : snap) {
    switch (e.kind) {
      case MetricKind::kCounter:
        out << MetricKindName(e.kind) << ' ' << e.name << ' '
            << e.counter_value << '\n';
        break;
      case MetricKind::kGauge:
        out << MetricKindName(e.kind) << ' ' << e.name << ' ';
        AppendDouble(out, e.gauge_value);
        out << '\n';
        break;
      case MetricKind::kHistogram:
        out << MetricKindName(e.kind) << ' ' << e.name << ' ';
        AppendHistogramText(out, e.histogram);
        out << '\n';
        break;
      case MetricKind::kCounterVec:
      case MetricKind::kGaugeVec:
      case MetricKind::kHistogramVec:
        // One line per series, the label rendered Prometheus-style.
        for (const Registry::LabeledValue& v : e.series) {
          out << MetricKindName(e.kind) << ' ' << e.name << '{' << e.label_key
              << "=\"" << EscapeLabelValue(v.label) << "\"} ";
          if (e.kind == MetricKind::kCounterVec) {
            out << v.counter_value;
          } else if (e.kind == MetricKind::kGaugeVec) {
            AppendDouble(out, v.gauge_value);
          } else {
            AppendHistogramText(out, v.histogram);
          }
          out << '\n';
        }
        break;
    }
  }
  return out.str();
}

std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

namespace {

// Prometheus exposition floats: the text format spells non-finite
// values "+Inf"/"-Inf"/"NaN" (AppendDouble's "%.17g" would emit "inf").
void AppendPrometheusDouble(std::ostringstream& out, double value) {
  if (std::isnan(value)) {
    out << "NaN";
  } else if (std::isinf(value)) {
    out << (value > 0 ? "+Inf" : "-Inf");
  } else {
    AppendDouble(out, value);
  }
}

}  // namespace

namespace {

// Renders one histogram's _bucket/_sum/_count family. `labels` is either
// empty or a pre-rendered `key="value"` pair to merge ahead of `le`.
void AppendPrometheusHistogram(std::ostringstream& out,
                               const std::string& name,
                               const std::string& labels,
                               const HistogramSnapshot& h) {
  const std::string prefix = labels.empty() ? "" : labels + ",";
  int64_t cumulative = 0;
  for (size_t i = 0; i < h.boundaries.size(); ++i) {
    cumulative += h.buckets[i];
    out << name << "_bucket{" << prefix << "le=\"";
    AppendDouble(out, h.boundaries[i]);
    out << "\"} " << cumulative << '\n';
  }
  out << name << "_bucket{" << prefix << "le=\"+Inf\"} " << h.count << '\n';
  out << name << "_sum";
  if (!labels.empty()) {
    out << '{' << labels << '}';
  }
  out << ' ';
  AppendPrometheusDouble(out, h.sum);
  out << '\n';
  out << name << "_count";
  if (!labels.empty()) {
    out << '{' << labels << '}';
  }
  out << ' ' << h.count << '\n';
}

}  // namespace

std::string SnapshotToPrometheus(
    const std::vector<Registry::SnapshotEntry>& snap) {
  std::ostringstream out;
  for (const Registry::SnapshotEntry& e : snap) {
    const std::string name = "nimbus_" + SanitizeMetricName(e.name);
    // Labeled families advertise their base kind: a CounterVec is, to a
    // Prometheus scraper, just a counter with labeled samples.
    const char* type_name = MetricKindName(MetricBaseKind(e.kind));
    out << "# HELP " << name << " Nimbus " << MetricKindName(e.kind) << " '"
        << SanitizeMetricName(e.name) << "'.\n";
    out << "# TYPE " << name << ' ' << type_name << '\n';
    switch (e.kind) {
      case MetricKind::kCounter:
        out << name << ' ' << e.counter_value << '\n';
        break;
      case MetricKind::kGauge:
        out << name << ' ';
        AppendPrometheusDouble(out, e.gauge_value);
        out << '\n';
        break;
      case MetricKind::kHistogram:
        AppendPrometheusHistogram(out, name, "", e.histogram);
        break;
      case MetricKind::kCounterVec:
      case MetricKind::kGaugeVec:
      case MetricKind::kHistogramVec: {
        const std::string key = SanitizeMetricName(e.label_key);
        for (const Registry::LabeledValue& v : e.series) {
          const std::string labels =
              key + "=\"" + EscapeLabelValue(v.label) + "\"";
          if (e.kind == MetricKind::kCounterVec) {
            out << name << '{' << labels << "} " << v.counter_value << '\n';
          } else if (e.kind == MetricKind::kGaugeVec) {
            out << name << '{' << labels << "} ";
            AppendPrometheusDouble(out, v.gauge_value);
            out << '\n';
          } else {
            AppendPrometheusHistogram(out, name, labels, v.histogram);
          }
        }
        break;
      }
    }
  }
  return out.str();
}

void ExportPrometheus(std::string* out) {
  *out += SnapshotToPrometheus(Registry::Global().Snapshot());
}

namespace {

void AppendHistogramJson(std::ostringstream& out, const HistogramSnapshot& h) {
  out << "\"count\":" << h.count << ",\"sum\":";
  AppendDouble(out, h.sum);
  out << ",\"min\":";
  AppendDouble(out, h.min);
  out << ",\"max\":";
  AppendDouble(out, h.max);
  out << ",\"p50\":";
  AppendDouble(out, h.Quantile(0.50));
  out << ",\"p95\":";
  AppendDouble(out, h.Quantile(0.95));
  out << ",\"p99\":";
  AppendDouble(out, h.Quantile(0.99));
}

}  // namespace

std::string SnapshotToJson(const std::vector<Registry::SnapshotEntry>& snap) {
  std::ostringstream out;
  out << "{\"metrics\":{";
  bool first = true;
  for (const Registry::SnapshotEntry& e : snap) {
    if (!first) {
      out << ',';
    }
    first = false;
    out << '"' << JsonEscape(e.name) << "\":{\"type\":\""
        << MetricKindName(e.kind) << "\",";
    switch (e.kind) {
      case MetricKind::kCounter:
        out << "\"value\":" << e.counter_value;
        break;
      case MetricKind::kGauge:
        out << "\"value\":";
        AppendDouble(out, e.gauge_value);
        break;
      case MetricKind::kHistogram:
        AppendHistogramJson(out, e.histogram);
        break;
      case MetricKind::kCounterVec:
      case MetricKind::kGaugeVec:
      case MetricKind::kHistogramVec: {
        out << "\"label_key\":\"" << JsonEscape(e.label_key)
            << "\",\"series\":{";
        bool first_series = true;
        for (const Registry::LabeledValue& v : e.series) {
          if (!first_series) {
            out << ',';
          }
          first_series = false;
          out << '"' << JsonEscape(v.label) << "\":{";
          if (e.kind == MetricKind::kCounterVec) {
            out << "\"value\":" << v.counter_value;
          } else if (e.kind == MetricKind::kGaugeVec) {
            out << "\"value\":";
            AppendDouble(out, v.gauge_value);
          } else {
            AppendHistogramJson(out, v.histogram);
          }
          out << '}';
        }
        out << '}';
        break;
      }
    }
    out << '}';
  }
  out << "}}";
  return out.str();
}

ScopedTimer::ScopedTimer(Histogram& histogram)
    : histogram_(&histogram), start_ns_(MonotonicNowNs()) {}

ScopedTimer::~ScopedTimer() {
  const uint64_t elapsed_ns = MonotonicNowNs() - start_ns_;
  histogram_->Observe(static_cast<double>(elapsed_ns) * 1e-3);
}

bool TracingEnabled() {
  EnsureInitialized();
  return g_tracing_enabled.load(std::memory_order_acquire);
}

void SetTracingEnabled(bool enabled) {
  EnsureInitialized();
  if (enabled) {
    TraceBuffer();
    TraceEpochNs();
  }
  g_tracing_enabled.store(enabled, std::memory_order_release);
}

TraceContext NewTraceContext() {
  TraceContext ctx;
  ctx.trace_id = g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
  return ctx;
}

TraceSpan::TraceSpan(const char* name) : TraceSpan(name, nullptr) {}

TraceSpan::TraceSpan(const char* name, const TraceContext* parent)
    : name_(name) {
  if (parent != nullptr) {
    context_ = *parent;
  }
  if (TracingEnabled()) {
    active_ = true;
    start_ns_ = MonotonicNowNs();
    if (context_.valid()) {
      context_.parent_span_id = context_.span_id;
      context_.span_id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Tracing disabled: the parent context passes through untouched, so
  // trace ids still reach downstream consumers (flight recorder) at the
  // two-relaxed-loads disabled-span cost.
}

void TraceSpan::Annotate(const char* note) {
  if (note_count_ < kMaxNotes) {
    notes_[note_count_++] = note;
  }
}

TraceSpan::~TraceSpan() {
  if (!active_) {
    return;
  }
  const uint64_t end_ns = MonotonicNowNs();
  const int64_t slot = g_trace_next.fetch_add(1, std::memory_order_relaxed);
  if (slot >= static_cast<int64_t>(kTraceCapacity)) {
    RecordTraceDrop();
    return;
  }
  TraceEvent& event = TraceBuffer()[slot];
  event.name = name_;
  event.start_ns = start_ns_ - TraceEpochNs();
  event.duration_ns = end_ns - start_ns_;
  event.tid = CurrentThreadId();
  event.trace_id = context_.trace_id;
  event.span_id = context_.span_id;
  event.parent_span_id = context_.parent_span_id;
  event.note_count = note_count_;
  for (int i = 0; i < kMaxNotes; ++i) {
    event.notes[i] = i < note_count_ ? notes_[i] : nullptr;
  }
  event.ready.store(1, std::memory_order_release);
}

void TraceInstant(const char* name, const TraceContext* ctx,
                  const char* note) {
  if (!TracingEnabled()) {
    return;
  }
  const uint64_t now_ns = MonotonicNowNs();
  const int64_t slot = g_trace_next.fetch_add(1, std::memory_order_relaxed);
  if (slot >= static_cast<int64_t>(kTraceCapacity)) {
    RecordTraceDrop();
    return;
  }
  TraceEvent& event = TraceBuffer()[slot];
  event.name = name;
  event.start_ns = now_ns - TraceEpochNs();
  event.duration_ns = 0;
  event.tid = CurrentThreadId();
  if (ctx != nullptr && ctx->valid()) {
    event.trace_id = ctx->trace_id;
    event.span_id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
    event.parent_span_id = ctx->span_id;
  } else {
    event.trace_id = 0;
    event.span_id = 0;
    event.parent_span_id = 0;
  }
  event.notes[0] = note;
  for (int i = 1; i < TraceSpan::kMaxNotes; ++i) {
    event.notes[i] = nullptr;
  }
  event.note_count = note != nullptr ? 1 : 0;
  event.ready.store(1, std::memory_order_release);
}

int64_t TraceEventCount() {
  const int64_t next = g_trace_next.load(std::memory_order_relaxed);
  return next < static_cast<int64_t>(kTraceCapacity)
             ? next
             : static_cast<int64_t>(kTraceCapacity);
}

int64_t TraceDroppedCount() {
  return g_trace_dropped.load(std::memory_order_relaxed);
}

std::string TraceToJson() {
  const int64_t n = TraceEventCount();
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (int64_t i = 0; i < n; ++i) {
    const TraceEvent& event = TraceBuffer()[i];
    if (event.ready.load(std::memory_order_acquire) == 0) {
      continue;  // Reserved but not yet written; skip rather than tear.
    }
    if (!first) {
      out << ',';
    }
    first = false;
    // Complete ("X") events with microsecond timestamps, the format
    // chrome://tracing and Perfetto ingest directly. Request-scoped
    // spans carry their context in "args" so a trace viewer (or grep)
    // can reassemble one request's span tree by trace_id.
    out << "{\"name\":\"" << JsonEscape(event.name != nullptr ? event.name
                                                              : "?")
        << "\",\"cat\":\"nimbus\",\"ph\":\"X\",\"ts\":";
    AppendDouble(out, static_cast<double>(event.start_ns) * 1e-3);
    out << ",\"dur\":";
    AppendDouble(out, static_cast<double>(event.duration_ns) * 1e-3);
    out << ",\"pid\":1,\"tid\":" << event.tid;
    if (event.trace_id != 0 || event.note_count > 0) {
      out << ",\"args\":{";
      bool first_arg = true;
      if (event.trace_id != 0) {
        out << "\"trace_id\":" << event.trace_id
            << ",\"span_id\":" << event.span_id
            << ",\"parent_span_id\":" << event.parent_span_id;
        first_arg = false;
      }
      if (event.note_count > 0) {
        if (!first_arg) {
          out << ',';
        }
        out << "\"notes\":\"";
        for (int k = 0; k < event.note_count; ++k) {
          if (k > 0) {
            out << ';';
          }
          out << JsonEscape(event.notes[k] != nullptr ? event.notes[k] : "?");
        }
        out << '"';
      }
      out << '}';
    }
    out << '}';
  }
  out << "]}";
  return out.str();
}

std::vector<TraceEventView> SnapshotTraceEvents(uint64_t trace_id) {
  const int64_t n = TraceEventCount();
  std::vector<TraceEventView> views;
  for (int64_t i = 0; i < n; ++i) {
    const TraceEvent& event = TraceBuffer()[i];
    if (event.ready.load(std::memory_order_acquire) == 0) {
      continue;
    }
    if (trace_id != 0 && event.trace_id != trace_id) {
      continue;
    }
    TraceEventView view;
    view.name = event.name != nullptr ? event.name : "?";
    view.start_us = static_cast<double>(event.start_ns) * 1e-3;
    view.duration_us = static_cast<double>(event.duration_ns) * 1e-3;
    view.trace_id = event.trace_id;
    view.span_id = event.span_id;
    view.parent_span_id = event.parent_span_id;
    view.tid = event.tid;
    for (int k = 0; k < event.note_count; ++k) {
      if (event.notes[k] != nullptr) {
        view.notes.emplace_back(event.notes[k]);
      }
    }
    views.push_back(std::move(view));
  }
  return views;
}

void ClearTraceForTest() {
  const int64_t n = TraceEventCount();
  for (int64_t i = 0; i < n; ++i) {
    TraceBuffer()[i].ready.store(0, std::memory_order_relaxed);
  }
  g_trace_next.store(0, std::memory_order_relaxed);
  g_trace_dropped.store(0, std::memory_order_relaxed);
  g_trace_drop_warned.store(false, std::memory_order_relaxed);
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 8);
  for (unsigned char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace nimbus::telemetry
