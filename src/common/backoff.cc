#include "common/backoff.h"

#include <algorithm>
#include <utility>

namespace nimbus {

Backoff::Backoff(const BackoffOptions& options, Rng rng)
    : options_(options),
      rng_(std::move(rng)),
      base_(options.initial_delay_seconds) {}

double Backoff::NextDelaySeconds() {
  const double base = std::min(base_, options_.max_delay_seconds);
  base_ = std::min(base_ * options_.multiplier, options_.max_delay_seconds);
  ++delays_issued_;
  double jitter = std::clamp(options_.jitter, 0.0, 1.0);
  return base * (1.0 - jitter * rng_.Uniform());
}

bool IsRetryableStatusCode(StatusCode code) {
  switch (code) {
    case StatusCode::kInternal:
    case StatusCode::kUnavailable:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

Status RetryWithBackoff(const BackoffOptions& options, Rng rng, Clock& clock,
                        const CancelToken* cancel,
                        const std::function<Status()>& op, int* attempts_out) {
  const int max_attempts = std::max(options.max_attempts, 1);
  Backoff backoff(options, std::move(rng));
  Status last = OkStatus();
  int attempts = 0;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    last = CancelToken::Check(cancel, "retry loop");
    if (!last.ok()) {
      break;
    }
    ++attempts;
    last = op();
    if (last.ok() || !IsRetryableStatusCode(last.code()) ||
        attempt == max_attempts) {
      break;
    }
    const double delay = backoff.NextDelaySeconds();
    if (cancel != nullptr && cancel->RemainingSeconds() < delay) {
      // The deadline would expire mid-sleep; fail now with the real
      // reason (the pending retryable error) wrapped as an expiry.
      last = DeadlineExceededError("deadline expired backing off after: " +
                                   last.ToString());
      break;
    }
    clock.SleepSeconds(delay);
  }
  if (attempts_out != nullptr) {
    *attempts_out = attempts;
  }
  return last;
}

}  // namespace nimbus
