#ifndef NIMBUS_COMMON_FLIGHT_RECORDER_H_
#define NIMBUS_COMMON_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace nimbus::telemetry {

// One per-request black-box record filed by the serving layer at the
// request's terminal outcome. Everything an operator needs to answer
// "why was this quote slow / shed / degraded" without a debugger:
// request identity, the typed outcome, phase latencies, and the retry /
// degradation flags.
struct FlightRecord {
  uint64_t trace_id = 0;  // Matches the request's spans in the trace.
  int64_t ticket = -1;    // -1 for requests shed at admission.
  int32_t status_code = 0;  // nimbus::StatusCode as an int; 0 = OK.
  double queue_us = 0.0;    // Admission -> dequeue.
  double execute_us = 0.0;  // Quote phase (incl. retries).
  double commit_us = 0.0;   // Sequencer wait + journal commit.
  double total_us = 0.0;    // Submit -> terminal outcome.
  int32_t quote_attempts = 0;
  int32_t journal_attempts = 0;
  bool degraded = false;  // Quote served from a degraded error curve.
  bool shed = false;      // Rejected at admission (kUnavailable).
  // Filed by the marketplace auditor (not the serving path): this
  // record marks an economic-invariant violation attributed to the
  // trace above. /tracez includes such flights alongside errored/slow
  // ones so the violation links to its request's span tree.
  bool audit_violation = false;
};

// Bounded lock-free ring of the most recent FlightRecords — the
// service's flight recorder. Writers claim a slot with one fetch_add
// and publish through a per-slot version word (odd = write in
// progress); every payload field is a relaxed atomic, so concurrent
// record/snapshot is data-race-free (TSan-clean) and a reader simply
// skips slots that are mid-write. When the ring wraps, the oldest
// records are overwritten — it is a black box, not a log.
//
// Dumps: DumpOnIncident("reason") appends nothing in normal operation;
// when the NIMBUS_FLIGHT_RECORDER environment variable names a path,
// the first incident of each distinct reason rewrites that path with
// ToJson() (rate-limited per reason so a fault drill does not hammer
// the filesystem). The admin endpoint serves the same JSON at /flightz.
class FlightRecorder {
 public:
  static constexpr size_t kCapacity = 1024;

  static FlightRecorder& Global();

  void Record(const FlightRecord& record);

  // Published records, oldest first (at most kCapacity). Slots being
  // overwritten concurrently are skipped.
  std::vector<FlightRecord> Snapshot() const;

  // Records ever filed (>= Snapshot().size(); the excess was
  // overwritten by wraparound).
  int64_t TotalRecorded() const;

  // {"flight_records":[...],"total_recorded":N,"capacity":N} — records
  // oldest first.
  std::string ToJson() const;

  // Files an incident (counted in `flight_incidents_total`) and, when
  // NIMBUS_FLIGHT_RECORDER=<path> is set and this `reason` has not
  // dumped before, writes ToJson() to <path> (counted in
  // `flight_dumps_total`). `reason` must be a string literal-ish stable
  // name: "deadline-exceeded", "fault", "journal-poisoned".
  void DumpOnIncident(const char* reason);

  // Explicit dump, unconditionally (the /flightz handler and tests).
  // Returns false when the file could not be written.
  bool DumpToPath(const std::string& path) const;

  // Resets the ring, counters and per-reason dump latches. Test-only;
  // not safe concurrently with Record.
  void ClearForTest();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

 private:
  FlightRecorder();

  // One ring slot; `version` is the seqlock word (odd while a writer
  // owns the slot) and `seq` the global record index for ordering.
  struct Slot {
    std::atomic<uint64_t> version{0};
    std::atomic<int64_t> seq{-1};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<int64_t> ticket{-1};
    std::atomic<int32_t> status_code{0};
    std::atomic<double> queue_us{0.0};
    std::atomic<double> execute_us{0.0};
    std::atomic<double> commit_us{0.0};
    std::atomic<double> total_us{0.0};
    std::atomic<int32_t> quote_attempts{0};
    std::atomic<int32_t> journal_attempts{0};
    std::atomic<uint32_t> flags{0};  // bit 0 degraded, 1 shed, 2 audit.
  };

  std::vector<Slot> slots_;
  std::atomic<int64_t> next_{0};
  std::atomic<int64_t> skipped_{0};  // Writer collisions (slot busy).

  mutable std::mutex dump_mu_;
  std::set<std::string> dumped_reasons_;
};

}  // namespace nimbus::telemetry

#endif  // NIMBUS_COMMON_FLIGHT_RECORDER_H_
