#include "common/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/logging.h"
#include "common/telemetry.h"

namespace nimbus::telemetry {
namespace {

constexpr uint32_t kFlagDegraded = 1u << 0;
constexpr uint32_t kFlagShed = 1u << 1;
constexpr uint32_t kFlagAuditViolation = 1u << 2;

Counter& IncidentsCounter() {
  static Counter& counter =
      Registry::Global().GetCounter("flight_incidents_total");
  return counter;
}

Counter& DumpsCounter() {
  static Counter& counter = Registry::Global().GetCounter("flight_dumps_total");
  return counter;
}

void AppendJsonDouble(std::ostringstream& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out << buf;
}

}  // namespace

FlightRecorder::FlightRecorder() : slots_(kCapacity) {}

FlightRecorder& FlightRecorder::Global() {
  // Leaked, like the metric registry: incident dumps can fire from
  // worker threads during process teardown.
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::Record(const FlightRecord& record) {
  const int64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[static_cast<size_t>(seq) % kCapacity];
  uint64_t version = slot.version.load(std::memory_order_relaxed);
  if (version % 2 != 0 ||
      !slot.version.compare_exchange_strong(version, version + 1,
                                            std::memory_order_acquire)) {
    // Another writer lapped the ring onto this very slot mid-write;
    // losing one black-box record beats blocking the request path.
    skipped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slot.seq.store(seq, std::memory_order_relaxed);
  slot.trace_id.store(record.trace_id, std::memory_order_relaxed);
  slot.ticket.store(record.ticket, std::memory_order_relaxed);
  slot.status_code.store(record.status_code, std::memory_order_relaxed);
  slot.queue_us.store(record.queue_us, std::memory_order_relaxed);
  slot.execute_us.store(record.execute_us, std::memory_order_relaxed);
  slot.commit_us.store(record.commit_us, std::memory_order_relaxed);
  slot.total_us.store(record.total_us, std::memory_order_relaxed);
  slot.quote_attempts.store(record.quote_attempts, std::memory_order_relaxed);
  slot.journal_attempts.store(record.journal_attempts,
                              std::memory_order_relaxed);
  uint32_t flags = 0;
  if (record.degraded) flags |= kFlagDegraded;
  if (record.shed) flags |= kFlagShed;
  if (record.audit_violation) flags |= kFlagAuditViolation;
  slot.flags.store(flags, std::memory_order_relaxed);
  slot.version.store(version + 2, std::memory_order_release);
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  struct Ordered {
    int64_t seq;
    FlightRecord record;
  };
  std::vector<Ordered> collected;
  collected.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    const uint64_t before = slot.version.load(std::memory_order_acquire);
    if (before == 0 || before % 2 != 0) {
      continue;  // Never written, or a writer owns it right now.
    }
    Ordered item;
    item.seq = slot.seq.load(std::memory_order_relaxed);
    item.record.trace_id = slot.trace_id.load(std::memory_order_relaxed);
    item.record.ticket = slot.ticket.load(std::memory_order_relaxed);
    item.record.status_code = slot.status_code.load(std::memory_order_relaxed);
    item.record.queue_us = slot.queue_us.load(std::memory_order_relaxed);
    item.record.execute_us = slot.execute_us.load(std::memory_order_relaxed);
    item.record.commit_us = slot.commit_us.load(std::memory_order_relaxed);
    item.record.total_us = slot.total_us.load(std::memory_order_relaxed);
    item.record.quote_attempts =
        slot.quote_attempts.load(std::memory_order_relaxed);
    item.record.journal_attempts =
        slot.journal_attempts.load(std::memory_order_relaxed);
    const uint32_t flags = slot.flags.load(std::memory_order_relaxed);
    item.record.degraded = (flags & kFlagDegraded) != 0;
    item.record.shed = (flags & kFlagShed) != 0;
    item.record.audit_violation = (flags & kFlagAuditViolation) != 0;
    const uint64_t after = slot.version.load(std::memory_order_acquire);
    if (after != before) {
      continue;  // Overwritten while we read; drop the torn view.
    }
    collected.push_back(std::move(item));
  }
  std::sort(collected.begin(), collected.end(),
            [](const Ordered& a, const Ordered& b) { return a.seq < b.seq; });
  std::vector<FlightRecord> records;
  records.reserve(collected.size());
  for (Ordered& item : collected) {
    records.push_back(item.record);
  }
  return records;
}

int64_t FlightRecorder::TotalRecorded() const {
  return next_.load(std::memory_order_relaxed);
}

std::string FlightRecorder::ToJson() const {
  const std::vector<FlightRecord> records = Snapshot();
  std::ostringstream out;
  out << "{\"flight_records\":[";
  bool first = true;
  for (const FlightRecord& r : records) {
    if (!first) {
      out << ',';
    }
    first = false;
    out << "{\"trace_id\":" << r.trace_id << ",\"ticket\":" << r.ticket
        << ",\"status_code\":" << r.status_code << ",\"queue_us\":";
    AppendJsonDouble(out, r.queue_us);
    out << ",\"execute_us\":";
    AppendJsonDouble(out, r.execute_us);
    out << ",\"commit_us\":";
    AppendJsonDouble(out, r.commit_us);
    out << ",\"total_us\":";
    AppendJsonDouble(out, r.total_us);
    out << ",\"quote_attempts\":" << r.quote_attempts
        << ",\"journal_attempts\":" << r.journal_attempts
        << ",\"degraded\":" << (r.degraded ? "true" : "false")
        << ",\"shed\":" << (r.shed ? "true" : "false")
        << ",\"audit_violation\":" << (r.audit_violation ? "true" : "false")
        << '}';
  }
  out << "],\"total_recorded\":" << TotalRecorded()
      << ",\"capacity\":" << kCapacity << '}';
  return out.str();
}

bool FlightRecorder::DumpToPath(const std::string& path) const {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    NIMBUS_LOG(kWarning) << "flight recorder: cannot open '" << path
                         << "' for writing";
    return false;
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = written == json.size();
  ok = std::fflush(f) == 0 && ok;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    NIMBUS_LOG(kWarning) << "flight recorder: short or failed write to '"
                         << path << "'";
  }
  return ok;
}

void FlightRecorder::DumpOnIncident(const char* reason) {
  IncidentsCounter().Increment();
  const char* path = std::getenv("NIMBUS_FLIGHT_RECORDER");
  if (path == nullptr || *path == '\0') {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(dump_mu_);
    if (!dumped_reasons_.insert(reason).second) {
      return;  // This reason already dumped; keep drills cheap.
    }
  }
  NIMBUS_LOG(kWarning) << "flight recorder: incident '" << reason
                       << "' — dumping " << kCapacity << "-slot ring to '"
                       << path << "'";
  if (DumpToPath(path)) {
    DumpsCounter().Increment();
  }
}

void FlightRecorder::ClearForTest() {
  for (Slot& slot : slots_) {
    slot.version.store(0, std::memory_order_relaxed);
    slot.seq.store(-1, std::memory_order_relaxed);
  }
  next_.store(0, std::memory_order_relaxed);
  skipped_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(dump_mu_);
  dumped_reasons_.clear();
}

}  // namespace nimbus::telemetry
