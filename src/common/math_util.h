#ifndef NIMBUS_COMMON_MATH_UTIL_H_
#define NIMBUS_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <vector>

namespace nimbus {

// Numerical tolerance used by the comparison helpers below when the caller
// does not supply one.
inline constexpr double kDefaultTolerance = 1e-9;

// Returns true when |a - b| <= tol * max(1, |a|, |b|) (mixed absolute /
// relative comparison, robust for both tiny and large magnitudes).
bool AlmostEqual(double a, double b, double tol = kDefaultTolerance);

// Element-wise AlmostEqual over two equally sized vectors.
bool AlmostEqual(const std::vector<double>& a, const std::vector<double>& b,
                 double tol = kDefaultTolerance);

// Arithmetic mean; returns 0 for an empty input.
double Mean(const std::vector<double>& values);

// Unbiased sample variance (divides by n - 1); returns 0 when n < 2.
double SampleVariance(const std::vector<double>& values);

// Sample standard deviation.
double SampleStddev(const std::vector<double>& values);

// Returns the q-quantile (q in [0, 1]) using linear interpolation between
// order statistics. Aborts on an empty input.
double Quantile(std::vector<double> values, double q);

// Numerically stable log(1 + exp(x)).
double Log1pExp(double x);

// Logistic sigmoid 1 / (1 + exp(-x)).
double Sigmoid(double x);

// Clamps v into [lo, hi].
double Clamp(double v, double lo, double hi);

// Returns n evenly spaced values from lo to hi inclusive (n >= 2), or
// {lo} when n == 1.
std::vector<double> Linspace(double lo, double hi, int n);

// Returns true when `values` is non-decreasing up to `tol` slack, i.e.
// values[i+1] >= values[i] - tol for all i.
bool IsNonDecreasing(const std::vector<double>& values, double tol = 0.0);

// Returns true when `values` is non-increasing up to `tol` slack.
bool IsNonIncreasing(const std::vector<double>& values, double tol = 0.0);

}  // namespace nimbus

#endif  // NIMBUS_COMMON_MATH_UTIL_H_
