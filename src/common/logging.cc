#include "common/logging.h"

#include <atomic>
#include <cstring>

namespace nimbus {
namespace {

std::atomic<LogSeverity> g_min_severity{LogSeverity::kInfo};

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogSeverity MinLogSeverity() { return g_min_severity.load(); }

void SetMinLogSeverity(LogSeverity severity) { g_min_severity.store(severity); }

namespace internal {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    std::cerr << "[" << SeverityTag(severity_) << " " << Basename(file_) << ":"
              << line_ << "] " << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace nimbus
