#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "common/telemetry.h"

namespace nimbus {
namespace {

// Both knobs are atomics: worker threads log concurrently while tests and
// benches flip them, and a plain global would be a data race.
std::atomic<LogSeverity> g_min_severity{LogSeverity::kInfo};
std::atomic<int> g_log_format{-1};  // -1: not yet initialized from env.

// Serializes emission so concurrent log lines never interleave mid-line;
// each finished line is written with a single locked fwrite.
std::mutex& EmitMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

const char* SeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "info";
    case LogSeverity::kWarning:
      return "warning";
    case LogSeverity::kError:
      return "error";
    case LogSeverity::kFatal:
      return "fatal";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogSeverity MinLogSeverity() { return g_min_severity.load(); }

void SetMinLogSeverity(LogSeverity severity) { g_min_severity.store(severity); }

LogFormat GetLogFormat() {
  int format = g_log_format.load(std::memory_order_acquire);
  if (format < 0) {
    const char* env = std::getenv("NIMBUS_LOG_FORMAT");
    format = (env != nullptr && std::strcmp(env, "json") == 0)
                 ? static_cast<int>(LogFormat::kJson)
                 : static_cast<int>(LogFormat::kText);
    g_log_format.store(format, std::memory_order_release);
  }
  return static_cast<LogFormat>(format);
}

void SetLogFormat(LogFormat format) {
  g_log_format.store(static_cast<int>(format), std::memory_order_release);
}

std::string FormatLogLine(LogFormat format, LogSeverity severity,
                          const char* file, int line, const std::string& msg) {
  std::string out;
  if (format == LogFormat::kJson) {
    const double ts =
        std::chrono::duration<double>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    char prefix[128];
    std::snprintf(prefix, sizeof(prefix), "{\"ts\":%.6f,\"severity\":\"%s\",",
                  ts, SeverityName(severity));
    out += prefix;
    out += "\"file\":\"";
    out += telemetry::JsonEscape(Basename(file));
    out += "\",\"line\":";
    out += std::to_string(line);
    out += ",\"msg\":\"";
    out += telemetry::JsonEscape(msg);
    out += "\"}\n";
  } else {
    out += '[';
    out += SeverityTag(severity);
    out += ' ';
    out += Basename(file);
    out += ':';
    out += std::to_string(line);
    out += "] ";
    out += msg;
    out += '\n';
  }
  return out;
}

namespace internal {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    const std::string line =
        FormatLogLine(GetLogFormat(), severity_, file_, line_, stream_.str());
    std::lock_guard<std::mutex> lock(EmitMutex());
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace nimbus
