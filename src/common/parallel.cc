#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/telemetry.h"

namespace nimbus {
namespace {

// Pool telemetry: how many helper tasks ran, the deepest the queue ever
// got, and total worker busy time. Registered once, updated with relaxed
// atomics — the pool's hot path stays lock-free outside its own queue
// mutex.
telemetry::Counter& PoolTasksCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("parallel_tasks_total");
  return counter;
}

telemetry::Gauge& PoolQueueHighWater() {
  static telemetry::Gauge& gauge =
      telemetry::Registry::Global().GetGauge("parallel_queue_depth_high_water");
  return gauge;
}

telemetry::Counter& PoolBusyMicros() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("parallel_worker_busy_us_total");
  return counter;
}

// Set while a thread executes loop bodies, so nested ParallelFor calls
// run inline instead of re-entering the pool.
thread_local bool tls_in_parallel_region = false;

int DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<int>(hw);
}

}  // namespace

int ParallelThreadCount() {
  if (const char* env = std::getenv("NIMBUS_THREADS");
      env != nullptr && *env != '\0') {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) {
      return static_cast<int>(std::min(parsed, 1024L));
    }
    NIMBUS_LOG(kWarning) << "ignoring invalid NIMBUS_THREADS='" << env << "'";
  }
  return DefaultThreadCount();
}

ThreadPool::ThreadPool(int num_threads) {
  NIMBUS_CHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int t = 0; t < num_threads - 1; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

ThreadPool& ThreadPool::Global() {
  // Function-local static: workers join cleanly at process exit.
  static ThreadPool pool(std::max(ParallelThreadCount(),
                                  DefaultThreadCount()));
  return pool;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) {
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    const auto busy_start = std::chrono::steady_clock::now();
    task();
    PoolTasksCounter().Increment();
    PoolBusyMicros().Increment(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - busy_start)
            .count());
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end,
                             const std::function<void(int64_t)>& body,
                             int max_parallelism) {
  if (end <= begin) {
    return;
  }
  const int64_t n = end - begin;
  const int width = static_cast<int>(std::min<int64_t>(
      std::min(max_parallelism, num_threads()), n));
  if (tls_in_parallel_region || width <= 1) {
    // Serial path: either a nested call (the outer loop already spans the
    // pool) or parallelism is disabled. Exceptions propagate directly.
    for (int64_t i = begin; i < end; ++i) {
      body(i);
    }
    return;
  }

  // Shared loop state. Helpers may still be queued when the range drains,
  // so they hold shared ownership instead of borrowing the caller's stack.
  struct LoopState {
    std::atomic<int64_t> next{0};
    int64_t end = 0;
    const std::function<void(int64_t)>* body = nullptr;
    std::mutex mu;
    std::condition_variable done;
    int running_helpers = 0;
    std::exception_ptr exception;

    void Drain() {
      const bool was_nested = tls_in_parallel_region;
      tls_in_parallel_region = true;
      for (;;) {
        const int64_t i = next.fetch_add(1);
        if (i >= end) {
          break;
        }
        try {
          (*body)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu);
          if (!exception) {
            exception = std::current_exception();
          }
          next.store(end);  // Cancel the remaining indices.
        }
      }
      tls_in_parallel_region = was_nested;
    }
  };
  auto state = std::make_shared<LoopState>();
  state->next.store(begin);
  state->end = end;
  state->body = &body;
  state->running_helpers = width - 1;

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int h = 0; h < width - 1; ++h) {
      tasks_.emplace_back([state] {
        state->Drain();
        {
          std::lock_guard<std::mutex> state_lock(state->mu);
          --state->running_helpers;
        }
        state->done.notify_one();
      });
    }
    PoolQueueHighWater().UpdateMax(static_cast<double>(tasks_.size()));
  }
  cv_.notify_all();

  state->Drain();
  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&] { return state->running_helpers == 0; });
  if (state->exception) {
    std::rethrow_exception(state->exception);
  }
}

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& body) {
  ThreadPool::Global().ParallelFor(begin, end, body, ParallelThreadCount());
}

}  // namespace nimbus
