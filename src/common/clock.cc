#include "common/clock.h"

#include <chrono>
#include <limits>
#include <string>
#include <thread>

namespace nimbus {

SystemClock* SystemClock::Get() {
  static SystemClock* clock = new SystemClock();
  return clock;
}

int64_t SystemClock::NowNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SystemClock::SleepSeconds(double seconds) {
  if (seconds <= 0.0) {
    return;
  }
  std::this_thread::sleep_for(
      std::chrono::nanoseconds(static_cast<int64_t>(seconds * 1e9)));
}

CancelToken::CancelToken(const Clock* clock, double deadline_seconds) {
  if (clock != nullptr && deadline_seconds > 0.0) {
    clock_ = clock;
    deadline_ns_ =
        clock->NowNanos() + static_cast<int64_t>(deadline_seconds * 1e9);
  }
}

bool CancelToken::Expired() const {
  return clock_ != nullptr && clock_->NowNanos() >= deadline_ns_;
}

Status CancelToken::Check(const char* what) const {
  if (Cancelled()) {
    return UnavailableError(std::string("request cancelled during ") + what);
  }
  if (Expired()) {
    return DeadlineExceededError(std::string("deadline expired during ") +
                                 what);
  }
  return OkStatus();
}

Status CancelToken::Check(const CancelToken* token, const char* what) {
  return token == nullptr ? OkStatus() : token->Check(what);
}

double CancelToken::RemainingSeconds() const {
  if (clock_ == nullptr) {
    return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(deadline_ns_ - clock_->NowNanos()) * 1e-9;
}

}  // namespace nimbus
