#include "common/slo_tracker.h"

#include <algorithm>
#include <cmath>

#include "common/telemetry.h"

namespace nimbus::telemetry {
namespace {

Gauge& AvailabilityGauge() {
  static Gauge& gauge = Registry::Global().GetGauge("slo_availability");
  return gauge;
}

Gauge& FastBurnGauge() {
  static Gauge& gauge = Registry::Global().GetGauge("slo_fast_burn_rate");
  return gauge;
}

Gauge& SlowBurnGauge() {
  static Gauge& gauge = Registry::Global().GetGauge("slo_slow_burn_rate");
  return gauge;
}

Gauge& WindowRequestsGauge() {
  static Gauge& gauge = Registry::Global().GetGauge("slo_window_requests");
  return gauge;
}

}  // namespace

SloTracker::SloTracker(SloOptions options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : SystemClock::Get()) {
  if (!(options_.bucket_seconds > 0.0)) {
    options_.bucket_seconds = 1.0;
  }
  options_.fast_window_seconds =
      std::max(options_.fast_window_seconds, options_.bucket_seconds);
  options_.slow_window_seconds =
      std::max(options_.slow_window_seconds, options_.fast_window_seconds);
  options_.target_availability =
      std::min(std::max(options_.target_availability, 0.0), 1.0 - 1e-9);
  bucket_ns_ = static_cast<int64_t>(options_.bucket_seconds * 1e9);
  fast_buckets_ = static_cast<int64_t>(
      std::ceil(options_.fast_window_seconds / options_.bucket_seconds));
  slow_buckets_ = static_cast<int64_t>(
      std::ceil(options_.slow_window_seconds / options_.bucket_seconds));
  // One spare slot so the bucket being overwritten "now" never aliases
  // the oldest bucket still inside the slow window.
  ring_.assign(static_cast<size_t>(slow_buckets_ + 1), Bucket{});
}

int64_t SloTracker::EpochNow() const {
  return clock_->NowNanos() / bucket_ns_;
}

void SloTracker::RecordRequest(bool ok, double latency_us) {
  const bool good =
      ok && !(options_.slow_request_us > 0.0 &&
              latency_us > options_.slow_request_us);
  const int64_t epoch = EpochNow();
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& bucket = ring_[static_cast<size_t>(
      epoch % static_cast<int64_t>(ring_.size()))];
  if (bucket.epoch != epoch) {
    bucket.epoch = epoch;
    bucket.good = 0;
    bucket.bad = 0;
  }
  (good ? bucket.good : bucket.bad) += 1;
}

SloTracker::Report SloTracker::Snapshot() const {
  Report report;
  report.error_budget = 1.0 - options_.target_availability;
  const int64_t epoch = EpochNow();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Bucket& bucket : ring_) {
      if (bucket.epoch < 0 || bucket.epoch > epoch) {
        continue;
      }
      const int64_t age = epoch - bucket.epoch;
      if (age >= slow_buckets_) {
        continue;  // Aged out of even the slow window.
      }
      report.slow_good += bucket.good;
      report.slow_bad += bucket.bad;
      if (age < fast_buckets_) {
        report.fast_good += bucket.good;
        report.fast_bad += bucket.bad;
      }
    }
  }
  const int64_t fast_total = report.fast_good + report.fast_bad;
  const int64_t slow_total = report.slow_good + report.slow_bad;
  if (fast_total > 0) {
    report.fast_availability =
        static_cast<double>(report.fast_good) / static_cast<double>(fast_total);
    report.fast_burn_rate =
        (static_cast<double>(report.fast_bad) /
         static_cast<double>(fast_total)) /
        report.error_budget;
  }
  if (slow_total > 0) {
    report.slow_availability =
        static_cast<double>(report.slow_good) / static_cast<double>(slow_total);
    report.slow_burn_rate =
        (static_cast<double>(report.slow_bad) /
         static_cast<double>(slow_total)) /
        report.error_budget;
  }
  return report;
}

void SloTracker::ExportGauges() const {
  const Report report = Snapshot();
  AvailabilityGauge().Set(report.slow_availability);
  FastBurnGauge().Set(report.fast_burn_rate);
  SlowBurnGauge().Set(report.slow_burn_rate);
  WindowRequestsGauge().Set(
      static_cast<double>(report.slow_good + report.slow_bad));
}

}  // namespace nimbus::telemetry
