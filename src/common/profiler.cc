#include "common/profiler.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>
#include <time.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace nimbus::prof {
namespace {

uint64_t MonotonicNowNs() {
  timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

uint64_t ProcessCpuNs() {
  timespec ts;
  if (::clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) {
    return 0;
  }
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

// ---------------------------------------------------------------------------
// Sample ring. Slots are claimed with one relaxed fetch_add and
// published with a release store on `ready`, the same discipline as the
// telemetry trace buffer — the folder (acquire) never reads a
// half-written stack. Everything the handler touches is preallocated.

constexpr int kMaxFrames = 48;
constexpr int64_t kMaxSamples = int64_t{1} << 14;  // 16Ki stacks / window.

struct RawSample {
  std::atomic<uint32_t> ready{0};
  int32_t depth = 0;
  void* pcs[kMaxFrames];
};

RawSample* g_ring = nullptr;  // Allocated on first Start, leaked.
std::atomic<int64_t> g_next{0};
std::atomic<int64_t> g_dropped{0};
std::atomic<int64_t> g_handler_ns{0};
// Gate read by the handler: set only while the timer is armed, so a
// late-delivered SIGPROF after Stop is a no-op.
std::atomic<bool> g_armed{false};
bool g_handler_installed = false;  // Guarded by the profiler control_mu_.
timer_t g_timer;
bool g_timer_active = false;    // Guarded by control_mu_.
bool g_itimer_active = false;   // setitimer fallback armed instead.

// Async-signal-safe by construction: clock_gettime, one atomic claim,
// backtrace() into preallocated storage (primed at Start so the
// unwinder's lazy initialization never runs here), a release store.
// errno is saved/restored around everything.
void ProfilerSignalHandler(int, siginfo_t*, void*) {
  if (!g_armed.load(std::memory_order_relaxed)) {
    return;
  }
  const int saved_errno = errno;
  const uint64_t t0 = MonotonicNowNs();
  const int64_t slot = g_next.fetch_add(1, std::memory_order_relaxed);
  if (slot < kMaxSamples) {
    RawSample& s = g_ring[slot];
    s.depth = ::backtrace(s.pcs, kMaxFrames);
    s.ready.store(1, std::memory_order_release);
  } else {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
  }
  g_handler_ns.fetch_add(static_cast<int64_t>(MonotonicNowNs() - t0),
                         std::memory_order_relaxed);
  errno = saved_errno;
}

// ---------------------------------------------------------------------------
// Off-path symbolization, cached per program counter.

std::string SymbolizePc(void* pc) {
  // Backtrace records return addresses; step one byte back so a call at
  // the end of a function does not symbolize to its successor.
  void* lookup = static_cast<char*>(pc) - 1;
  Dl_info info;
  std::memset(&info, 0, sizeof(info));
  if (::dladdr(lookup, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    std::string name =
        (status == 0 && demangled != nullptr) ? demangled : info.dli_sname;
    std::free(demangled);
    return name;
  }
  char buf[64];
  if (info.dli_fname != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    base = base != nullptr ? base + 1 : info.dli_fname;
    std::snprintf(buf, sizeof(buf), "%s+0x%zx", base,
                  static_cast<size_t>(static_cast<char*>(pc) -
                                      static_cast<char*>(info.dli_fbase)));
    return buf;
  }
  std::snprintf(buf, sizeof(buf), "0x%zx", reinterpret_cast<size_t>(pc));
  return buf;
}

const std::string& CachedSymbol(void* pc) {
  static std::mutex mu;
  static auto* cache = new std::unordered_map<void*, std::string>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache->find(pc);
  if (it == cache->end()) {
    it = cache->emplace(pc, SymbolizePc(pc)).first;
  }
  return it->second;
}

// Frames are leaf-first and start inside the signal machinery (the
// handler itself, then the kernel's sigreturn trampoline). Fold from
// just past the deepest frame that symbolizes to either, so the
// interrupted code is the leaf of the folded stack.
int SignalFrameSkip(const std::vector<const std::string*>& names) {
  int skip = 0;
  const int probe = std::min<int>(static_cast<int>(names.size()), 6);
  for (int i = 0; i < probe; ++i) {
    if (names[i]->find("ProfilerSignalHandler") != std::string::npos ||
        names[i]->find("__restore_rt") != std::string::npos) {
      skip = i + 1;
    }
  }
  return skip;
}

telemetry::Counter& WindowsCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("profiler_windows_total");
  return counter;
}

telemetry::Counter& SamplesCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("profiler_samples_total");
  return counter;
}

telemetry::Counter& DroppedSamplesCounter() {
  static telemetry::Counter& counter = telemetry::Registry::Global().GetCounter(
      "profiler_samples_dropped_total");
  return counter;
}

telemetry::Gauge& OverheadGauge() {
  static telemetry::Gauge& gauge =
      telemetry::Registry::Global().GetGauge("profiler_overhead_ratio");
  return gauge;
}

}  // namespace

CpuProfiler& CpuProfiler::Global() {
  static CpuProfiler* profiler = new CpuProfiler();
  return *profiler;
}

Status CpuProfiler::Start(int hz) {
  if (hz < 1 || hz > 1000) {
    return InvalidArgumentError("profiler rate must be in [1, 1000] Hz");
  }
  std::lock_guard<std::mutex> lock(control_mu_);
  if (running_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("cpu profiler already running");
  }
  if (g_ring == nullptr) {
    g_ring = new RawSample[kMaxSamples];
  }
  const int64_t used =
      std::min(g_next.load(std::memory_order_relaxed), kMaxSamples);
  for (int64_t i = 0; i < used; ++i) {
    g_ring[i].ready.store(0, std::memory_order_relaxed);
  }
  g_next.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  g_handler_ns.store(0, std::memory_order_relaxed);

  // Prime the unwinder outside signal context: glibc's backtrace lazily
  // loads libgcc on first use, which is not async-signal-safe.
  void* prime[4];
  ::backtrace(prime, 4);

  if (!g_handler_installed) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = &ProfilerSignalHandler;
    // SA_RESTART: profiled syscalls restart instead of failing EINTR —
    // sampling must never change program behavior.
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    if (::sigaction(SIGPROF, &sa, nullptr) != 0) {
      return InternalError("profiler: sigaction(SIGPROF) failed");
    }
    // Left installed for the process lifetime: restoring a SIG_DFL
    // disposition while one last SIGPROF is pending would kill the
    // process (SIGPROF's default action terminates).
    g_handler_installed = true;
  }
  g_armed.store(true, std::memory_order_release);

  const long interval_ns = std::max(1000000L, 1000000000L / hz);
  itimerspec spec;
  spec.it_interval.tv_sec = interval_ns / 1000000000L;
  spec.it_interval.tv_nsec = interval_ns % 1000000000L;
  spec.it_value = spec.it_interval;
  // Preferred source: a POSIX timer on the process CPU clock (fires per
  // consumed CPU-second, the classic profiling cadence). Some kernels
  // reject signal-notified CPU-clock timers; fall back to the
  // equivalent setitimer(ITIMER_PROF).
  sigevent sev;
  std::memset(&sev, 0, sizeof(sev));
  sev.sigev_notify = SIGEV_SIGNAL;
  sev.sigev_signo = SIGPROF;
  if (::timer_create(CLOCK_PROCESS_CPUTIME_ID, &sev, &g_timer) == 0) {
    if (::timer_settime(g_timer, 0, &spec, nullptr) != 0) {
      ::timer_delete(g_timer);
      g_armed.store(false, std::memory_order_release);
      return InternalError("profiler: timer_settime failed");
    }
    g_timer_active = true;
  } else {
    itimerval val;
    val.it_interval.tv_sec = interval_ns / 1000000000L;
    val.it_interval.tv_usec = (interval_ns % 1000000000L) / 1000;
    val.it_value = val.it_interval;
    if (::setitimer(ITIMER_PROF, &val, nullptr) != 0) {
      g_armed.store(false, std::memory_order_release);
      return InternalError("profiler: timer_create and setitimer failed");
    }
    g_itimer_active = true;
  }
  window_cpu_start_ns_ = ProcessCpuNs();
  running_.store(true, std::memory_order_release);
  return OkStatus();
}

Status CpuProfiler::Stop() {
  std::lock_guard<std::mutex> lock(control_mu_);
  if (!running_.load(std::memory_order_acquire)) {
    return OkStatus();
  }
  g_armed.store(false, std::memory_order_release);
  if (g_timer_active) {
    ::timer_delete(g_timer);
    g_timer_active = false;
  }
  if (g_itimer_active) {
    itimerval off;
    std::memset(&off, 0, sizeof(off));
    ::setitimer(ITIMER_PROF, &off, nullptr);
    g_itimer_active = false;
  }
  const uint64_t cpu_ns =
      std::max<uint64_t>(1, ProcessCpuNs() - window_cpu_start_ns_);
  const double overhead =
      static_cast<double>(g_handler_ns.load(std::memory_order_relaxed)) /
      static_cast<double>(cpu_ns);
  last_overhead_.store(overhead, std::memory_order_relaxed);
  OverheadGauge().Set(overhead);
  WindowsCounter().Increment();
  SamplesCounter().Increment(
      std::min(g_next.load(std::memory_order_relaxed), kMaxSamples));
  DroppedSamplesCounter().Increment(g_dropped.load(std::memory_order_relaxed));
  running_.store(false, std::memory_order_release);
  return OkStatus();
}

int64_t CpuProfiler::SampleCount() const {
  return std::min(g_next.load(std::memory_order_relaxed), kMaxSamples);
}

double CpuProfiler::last_overhead_ratio() const {
  return last_overhead_.load(std::memory_order_relaxed);
}

std::string CpuProfiler::FoldedText() {
  const int64_t n = std::min(g_next.load(std::memory_order_acquire),
                             kMaxSamples);
  std::map<std::string, int64_t> folded;
  std::vector<const std::string*> names;
  for (int64_t i = 0; i < n; ++i) {
    RawSample& s = g_ring[i];
    if (s.ready.load(std::memory_order_acquire) == 0) {
      continue;  // Claimed but unwritten (in-flight at Stop).
    }
    const int depth = std::min<int>(s.depth, kMaxFrames);
    if (depth <= 0) {
      continue;
    }
    names.clear();
    for (int f = 0; f < depth; ++f) {
      names.push_back(&CachedSymbol(s.pcs[f]));
    }
    const int skip = SignalFrameSkip(names);
    if (skip >= depth) {
      continue;
    }
    // Leaf-first storage, root-first folded output.
    std::string key;
    for (int f = depth - 1; f >= skip; --f) {
      if (!key.empty()) {
        key += ';';
      }
      key += *names[f];
    }
    ++folded[key];
  }
  std::ostringstream out;
  for (const auto& [stack, count] : folded) {
    out << stack << ' ' << count << '\n';
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Profile windows (the /profilez and --profile entry point).

namespace {

std::atomic<bool> g_window_busy{false};

struct WindowGuard {
  ~WindowGuard() { g_window_busy.store(false, std::memory_order_release); }
};

void SleepWindow(double seconds, const std::atomic<bool>* abort) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds));
  while (std::chrono::steady_clock::now() < deadline) {
    if (abort != nullptr && abort->load(std::memory_order_acquire)) {
      return;
    }
    const auto remaining = deadline - std::chrono::steady_clock::now();
    std::this_thread::sleep_for(
        std::min<std::chrono::steady_clock::duration>(
            remaining, std::chrono::milliseconds(50)));
  }
}

const telemetry::Registry::SnapshotEntry* FindEntry(
    const std::vector<telemetry::Registry::SnapshotEntry>& snap,
    const std::string& name) {
  for (const auto& e : snap) {
    if (e.name == name) {
      return &e;
    }
  }
  return nullptr;
}

int64_t SeriesCounterValue(const telemetry::Registry::SnapshotEntry* entry,
                           const std::string& label) {
  if (entry == nullptr) {
    return 0;
  }
  for (const auto& v : entry->series) {
    if (v.label == label) {
      return v.counter_value;
    }
  }
  return 0;
}

const telemetry::HistogramSnapshot* SeriesHistogram(
    const telemetry::Registry::SnapshotEntry* entry,
    const std::string& label) {
  if (entry == nullptr) {
    return nullptr;
  }
  for (const auto& v : entry->series) {
    if (v.label == label) {
      return &v.histogram;
    }
  }
  return nullptr;
}

// after - before, bucket-wise; quantiles of the difference describe the
// window alone. min/max are taken from `after` (clamped bounds only).
telemetry::HistogramSnapshot DiffHistogram(
    const telemetry::HistogramSnapshot* before,
    const telemetry::HistogramSnapshot& after) {
  telemetry::HistogramSnapshot d = after;
  if (before != nullptr && before->buckets.size() == after.buckets.size()) {
    d.count -= before->count;
    d.sum -= before->sum;
    for (size_t i = 0; i < d.buckets.size(); ++i) {
      d.buckets[i] -= before->buckets[i];
    }
  }
  d.min = 0.0;
  return d;
}

void AppendHistogramColumns(std::ostringstream& out, const char* prefix,
                            const telemetry::HistogramSnapshot& h) {
  char buf[64];
  out << ' ' << prefix << "_count=" << h.count;
  std::snprintf(buf, sizeof(buf), " %s_total_us=%.1f", prefix, h.sum);
  out << buf;
  std::snprintf(buf, sizeof(buf), " %s_p50_us=%.2f", prefix,
                h.Quantile(0.50));
  out << buf;
  std::snprintf(buf, sizeof(buf), " %s_p95_us=%.2f", prefix,
                h.Quantile(0.95));
  out << buf;
  std::snprintf(buf, sizeof(buf), " %s_p99_us=%.2f", prefix,
                h.Quantile(0.99));
  out << buf;
}

std::string ContentionReport(
    const std::vector<telemetry::Registry::SnapshotEntry>& before,
    const std::vector<telemetry::Registry::SnapshotEntry>& after,
    double seconds) {
  const auto* acq_before = FindEntry(before, "mutex_acquisitions_total");
  const auto* acq_after = FindEntry(after, "mutex_acquisitions_total");
  const auto* con_before = FindEntry(before, "mutex_contention_total");
  const auto* con_after = FindEntry(after, "mutex_contention_total");
  const auto* wait_before = FindEntry(before, "mutex_wait_us");
  const auto* wait_after = FindEntry(after, "mutex_wait_us");
  const auto* hold_before = FindEntry(before, "mutex_hold_us");
  const auto* hold_after = FindEntry(after, "mutex_hold_us");

  std::ostringstream out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  out << "# nimbus contention profile window_s=" << buf << '\n';
  if (acq_after == nullptr || acq_after->series.empty()) {
    out << "# no profiled mutexes registered\n";
    return out.str();
  }
  for (const auto& series : acq_after->series) {
    const std::string& name = series.label;
    const int64_t acquisitions =
        series.counter_value - SeriesCounterValue(acq_before, name);
    const int64_t contended = SeriesCounterValue(con_after, name) -
                              SeriesCounterValue(con_before, name);
    out << "mutex=" << name << " acquisitions=" << acquisitions
        << " contended=" << contended;
    if (const auto* h = SeriesHistogram(wait_after, name)) {
      AppendHistogramColumns(out, "wait",
                             DiffHistogram(SeriesHistogram(wait_before, name),
                                           *h));
    }
    if (const auto* h = SeriesHistogram(hold_after, name)) {
      AppendHistogramColumns(out, "hold",
                             DiffHistogram(SeriesHistogram(hold_before, name),
                                           *h));
    }
    out << '\n';
  }
  return out.str();
}

std::string AllocReport(
    const AllocStats& before_global,
    const std::vector<telemetry::Registry::SnapshotEntry>& before,
    const std::vector<telemetry::Registry::SnapshotEntry>& after,
    double seconds) {
  const AllocStats g = GlobalAllocStats();
  std::ostringstream out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  out << "# nimbus alloc profile window_s=" << buf << " tracking="
      << (AllocTrackingEnabled() ? "enabled" : "disabled (sanitizer build)")
      << '\n';
  out << "global allocs=" << (g.allocs - before_global.allocs)
      << " alloc_bytes=" << (g.alloc_bytes - before_global.alloc_bytes)
      << " frees=" << (g.frees - before_global.frees)
      << " freed_bytes=" << (g.freed_bytes - before_global.freed_bytes)
      << '\n';
  const auto* site_allocs_before = FindEntry(before, "alloc_site_allocs_total");
  const auto* site_allocs_after = FindEntry(after, "alloc_site_allocs_total");
  const auto* site_bytes_before = FindEntry(before, "alloc_site_bytes_total");
  const auto* site_bytes_after = FindEntry(after, "alloc_site_bytes_total");
  if (site_allocs_after != nullptr) {
    for (const auto& series : site_allocs_after->series) {
      const int64_t allocs =
          series.counter_value -
          SeriesCounterValue(site_allocs_before, series.label);
      const int64_t bytes =
          SeriesCounterValue(site_bytes_after, series.label) -
          SeriesCounterValue(site_bytes_before, series.label);
      out << "site=" << series.label << " allocs=" << allocs
          << " bytes=" << bytes << '\n';
    }
  }
  return out.str();
}

}  // namespace

StatusOr<ProfileType> ParseProfileType(const std::string& name) {
  if (name == "cpu") {
    return ProfileType::kCpu;
  }
  if (name == "contention") {
    return ProfileType::kContention;
  }
  if (name == "alloc") {
    return ProfileType::kAlloc;
  }
  return InvalidArgumentError("unknown profile type '" + name +
                              "' (want cpu|contention|alloc)");
}

StatusOr<std::string> CollectProfile(ProfileType type, double seconds, int hz,
                                     const std::atomic<bool>* abort) {
  if (!(seconds > 0.0) || seconds > 300.0) {
    return InvalidArgumentError("profile window must be in (0, 300] seconds");
  }
  if (g_window_busy.exchange(true, std::memory_order_acq_rel)) {
    return UnavailableError("a profile window is already in progress");
  }
  WindowGuard guard;
  switch (type) {
    case ProfileType::kCpu: {
      NIMBUS_RETURN_IF_ERROR(CpuProfiler::Global().Start(hz));
      SleepWindow(seconds, abort);
      NIMBUS_RETURN_IF_ERROR(CpuProfiler::Global().Stop());
      return CpuProfiler::Global().FoldedText();
    }
    case ProfileType::kContention: {
      const auto before = telemetry::Registry::Global().Snapshot();
      SleepWindow(seconds, abort);
      const auto after = telemetry::Registry::Global().Snapshot();
      return ContentionReport(before, after, seconds);
    }
    case ProfileType::kAlloc: {
      const AllocStats before_global = GlobalAllocStats();
      const auto before = telemetry::Registry::Global().Snapshot();
      SleepWindow(seconds, abort);
      const auto after = telemetry::Registry::Global().Snapshot();
      return AllocReport(before_global, before, after, seconds);
    }
  }
  return InvalidArgumentError("unknown profile type");
}

// ---------------------------------------------------------------------------
// ProfiledMutex.

namespace {

telemetry::CounterVec& MutexAcquisitionsVec() {
  static telemetry::CounterVec& vec =
      telemetry::Registry::Global().GetCounterVec("mutex_acquisitions_total",
                                                  "mutex");
  return vec;
}

telemetry::CounterVec& MutexContentionVec() {
  static telemetry::CounterVec& vec =
      telemetry::Registry::Global().GetCounterVec("mutex_contention_total",
                                                  "mutex");
  return vec;
}

telemetry::HistogramVec& MutexWaitVec() {
  static telemetry::HistogramVec& vec =
      telemetry::Registry::Global().GetHistogramVec("mutex_wait_us", "mutex");
  return vec;
}

telemetry::HistogramVec& MutexHoldVec() {
  static telemetry::HistogramVec& vec =
      telemetry::Registry::Global().GetHistogramVec("mutex_hold_us", "mutex");
  return vec;
}

}  // namespace

ProfiledMutex::ProfiledMutex(const char* name)
    : name_(name),
      acquisitions_(&MutexAcquisitionsVec().WithLabel(name)),
      contended_(&MutexContentionVec().WithLabel(name)),
      wait_us_(&MutexWaitVec().WithLabel(name)),
      hold_us_(&MutexHoldVec().WithLabel(name)) {}

void ProfiledMutex::lock() {
  acquisitions_->Increment();
  if (mu_.try_lock()) {
    locked_at_ns_ = MonotonicNowNs();
    return;
  }
  contended_->Increment();
  const uint64_t wait_start = MonotonicNowNs();
  mu_.lock();
  const uint64_t acquired = MonotonicNowNs();
  wait_us_->Observe(static_cast<double>(acquired - wait_start) * 1e-3);
  locked_at_ns_ = acquired;
}

bool ProfiledMutex::try_lock() {
  if (mu_.try_lock()) {
    acquisitions_->Increment();
    locked_at_ns_ = MonotonicNowNs();
    return true;
  }
  return false;
}

void ProfiledMutex::unlock() {
  hold_us_->Observe(static_cast<double>(MonotonicNowNs() - locked_at_ns_) *
                    1e-3);
  mu_.unlock();
}

// ---------------------------------------------------------------------------
// Allocation accounting.

namespace {

struct ThreadAllocCounters {
  int64_t allocs = 0;
  int64_t alloc_bytes = 0;
  int64_t frees = 0;
  int64_t freed_bytes = 0;
};

// Trivially-initialized so reads from operator new during thread start
// and teardown are safe.
thread_local ThreadAllocCounters tl_alloc;

std::atomic<int64_t> g_allocs{0};
std::atomic<int64_t> g_alloc_bytes{0};
std::atomic<int64_t> g_frees{0};
std::atomic<int64_t> g_freed_bytes{0};

}  // namespace

namespace internal {

// Called from the operator new/delete replacements below — plain
// thread-local adds plus relaxed global adds; never allocates, never
// locks, never touches the registry (operator new re-entering the
// registry would recurse).
void NoteAlloc(size_t bytes) {
  tl_alloc.allocs += 1;
  tl_alloc.alloc_bytes += static_cast<int64_t>(bytes);
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(static_cast<int64_t>(bytes),
                          std::memory_order_relaxed);
}

void NoteFree(size_t bytes) {
  tl_alloc.frees += 1;
  tl_alloc.freed_bytes += static_cast<int64_t>(bytes);
  g_frees.fetch_add(1, std::memory_order_relaxed);
  if (bytes > 0) {
    g_freed_bytes.fetch_add(static_cast<int64_t>(bytes),
                            std::memory_order_relaxed);
  }
}

}  // namespace internal

bool AllocTrackingEnabled() {
#ifdef NIMBUS_ALLOC_TRACKING
  return true;
#else
  return false;
#endif
}

AllocStats ThreadAllocStats() {
  AllocStats s;
  s.allocs = tl_alloc.allocs;
  s.alloc_bytes = tl_alloc.alloc_bytes;
  s.frees = tl_alloc.frees;
  s.freed_bytes = tl_alloc.freed_bytes;
  return s;
}

AllocStats GlobalAllocStats() {
  AllocStats s;
  s.allocs = g_allocs.load(std::memory_order_relaxed);
  s.alloc_bytes = g_alloc_bytes.load(std::memory_order_relaxed);
  s.frees = g_frees.load(std::memory_order_relaxed);
  s.freed_bytes = g_freed_bytes.load(std::memory_order_relaxed);
  return s;
}

namespace {

telemetry::CounterVec& SiteAllocsVec() {
  static telemetry::CounterVec& vec =
      telemetry::Registry::Global().GetCounterVec("alloc_site_allocs_total",
                                                  "site");
  return vec;
}

telemetry::CounterVec& SiteBytesVec() {
  static telemetry::CounterVec& vec =
      telemetry::Registry::Global().GetCounterVec("alloc_site_bytes_total",
                                                  "site");
  return vec;
}

}  // namespace

ScopedAllocSample::ScopedAllocSample(const char* site)
    : allocs_(&SiteAllocsVec().WithLabel(site)),
      bytes_(&SiteBytesVec().WithLabel(site)),
      start_(ThreadAllocStats()) {}

ScopedAllocSample::~ScopedAllocSample() {
  const AllocStats end = ThreadAllocStats();
  allocs_->Increment(end.allocs - start_.allocs);
  bytes_->Increment(end.alloc_bytes - start_.alloc_bytes);
}

void PublishMetrics() {
  const AllocStats g = GlobalAllocStats();
  telemetry::Registry& registry = telemetry::Registry::Global();
  // Gauges, not counters: the tallies live in process globals (operator
  // new cannot call into the registry) and are mirrored whole per
  // scrape.
  registry.GetGauge("alloc_allocs_total").Set(static_cast<double>(g.allocs));
  registry.GetGauge("alloc_bytes_total")
      .Set(static_cast<double>(g.alloc_bytes));
  registry.GetGauge("alloc_frees_total").Set(static_cast<double>(g.frees));
  registry.GetGauge("alloc_freed_bytes_total")
      .Set(static_cast<double>(g.freed_bytes));
  registry.GetGauge("alloc_tracking_enabled")
      .Set(AllocTrackingEnabled() ? 1.0 : 0.0);
}

}  // namespace nimbus::prof

#ifdef NIMBUS_ALLOC_TRACKING

// Global operator new/delete replacements: the full C++17 set (scalar,
// array, aligned, nothrow) so every allocation in the process — ours,
// gtest's, libstdc++'s — is tallied. malloc/posix_memalign-backed, so
// interposed allocators (e.g. for future sanitizer use) still see the
// underlying calls; disabled entirely under sanitizer builds, which
// interpose operator new themselves.

namespace {

void* TrackedAlloc(std::size_t size) {
  if (size == 0) {
    size = 1;
  }
  void* p = std::malloc(size);
  while (p == nullptr) {
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) {
      throw std::bad_alloc();
    }
    handler();
    p = std::malloc(size);
  }
  nimbus::prof::internal::NoteAlloc(size);
  return p;
}

void* TrackedAllocAligned(std::size_t size, std::size_t alignment) {
  if (size == 0) {
    size = 1;
  }
  if (alignment < sizeof(void*)) {
    alignment = sizeof(void*);
  }
  void* p = nullptr;
  while (::posix_memalign(&p, alignment, size) != 0) {
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) {
      throw std::bad_alloc();
    }
    handler();
  }
  nimbus::prof::internal::NoteAlloc(size);
  return p;
}

void TrackedFree(void* p, std::size_t size) noexcept {
  if (p == nullptr) {
    return;
  }
  nimbus::prof::internal::NoteFree(size);
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) { return TrackedAlloc(size); }
void* operator new[](std::size_t size) { return TrackedAlloc(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return TrackedAlloc(size);
  } catch (...) {
    return nullptr;
  }
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return TrackedAlloc(size);
  } catch (...) {
    return nullptr;
  }
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  return TrackedAllocAligned(size, static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  return TrackedAllocAligned(size, static_cast<std::size_t>(alignment));
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  try {
    return TrackedAllocAligned(size, static_cast<std::size_t>(alignment));
  } catch (...) {
    return nullptr;
  }
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  try {
    return TrackedAllocAligned(size, static_cast<std::size_t>(alignment));
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { TrackedFree(p, 0); }
void operator delete[](void* p) noexcept { TrackedFree(p, 0); }
void operator delete(void* p, std::size_t size) noexcept {
  TrackedFree(p, size);
}
void operator delete[](void* p, std::size_t size) noexcept {
  TrackedFree(p, size);
}
void operator delete(void* p, std::align_val_t) noexcept { TrackedFree(p, 0); }
void operator delete[](void* p, std::align_val_t) noexcept {
  TrackedFree(p, 0);
}
void operator delete(void* p, std::size_t size, std::align_val_t) noexcept {
  TrackedFree(p, size);
}
void operator delete[](void* p, std::size_t size, std::align_val_t) noexcept {
  TrackedFree(p, size);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  TrackedFree(p, 0);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  TrackedFree(p, 0);
}

#endif  // NIMBUS_ALLOC_TRACKING
