#ifndef NIMBUS_COMMON_PROFILER_H_
#define NIMBUS_COMMON_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/statusor.h"
#include "common/telemetry.h"

namespace nimbus::prof {

// In-process continuous profiling for the serving stack: an on-demand
// CPU sampling profiler (SIGPROF + POSIX timer, async-signal-safe
// backtrace ring, symbolized off the hot path into folded-stack text),
// an instrumented mutex wrapper feeding per-lock contention metrics,
// and process-wide allocation accounting. Everything here is strictly
// observation-only — no RNG streams, no reduction orders — so profiled
// runs produce bit-identical market output to unprofiled runs (asserted
// by bench_soak's determinism phase with --profile).

// ---------------------------------------------------------------------------
// CPU sampling profiler.
//
// One process-wide sampler: Start arms a CLOCK_PROCESS_CPUTIME_ID POSIX
// timer delivering SIGPROF at `hz` per consumed CPU-second; the handler
// (async-signal-safe: a slot claim, one backtrace() into preallocated
// storage, a release store) appends raw program counters to a fixed
// ring. Nothing is symbolized, allocated, or locked on the hot path —
// dladdr + demangling run in FoldedText() after Stop. The handler is
// installed with SA_RESTART so profiled syscalls restart instead of
// surfacing spurious EINTRs (the admin server's write loop additionally
// retries EINTR for the cases SA_RESTART does not cover).
//
// Self-measured overhead: the handler times itself (clock_gettime is
// async-signal-safe) and Stop publishes handler-time / process-CPU-time
// for the window as the `profiler_overhead_ratio` gauge, alongside
// profiler_{windows,samples,samples_dropped}_total.
class CpuProfiler {
 public:
  static constexpr int kDefaultHz = 199;  // Prime: avoids phase-locking.

  static CpuProfiler& Global();

  // Arms the sampler. kFailedPrecondition when already running;
  // kInternal when the signal handler or timer cannot be installed.
  Status Start(int hz = kDefaultHz);

  // Disarms the timer and publishes the window's metrics. Idempotent:
  // stopping a stopped profiler is a no-op returning OK, so
  // start/stop/start cycles never wedge on an unpaired call.
  Status Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  // Samples captured since the last Start (ring capacity bound).
  int64_t SampleCount() const;

  // handler-time / process-CPU-time of the last completed window.
  double last_overhead_ratio() const;

  // Folded-stack text of the captured window, one line per distinct
  // stack: "root;caller;...;leaf <count>\n" — the format flamegraph.pl
  // and speedscope ingest directly. Symbolization (dladdr + demangle,
  // cached per pc) happens here, off the sampling path. Call after
  // Stop; calling mid-window folds whatever has been published so far.
  std::string FoldedText();

  CpuProfiler(const CpuProfiler&) = delete;
  CpuProfiler& operator=(const CpuProfiler&) = delete;

 private:
  CpuProfiler() = default;

  std::mutex control_mu_;  // Serializes Start/Stop pairs.
  std::atomic<bool> running_{false};
  uint64_t window_cpu_start_ns_ = 0;  // Guarded by control_mu_.
  // Written by Stop (under control_mu_), read lock-free by scrapers.
  std::atomic<double> last_overhead_{0.0};
};

enum class ProfileType { kCpu, kContention, kAlloc };

// One-shot profile window, the body behind /profilez and the benches'
// --profile flag: arms the matching collector for `seconds` (kCpu: the
// sampling profiler; kContention / kAlloc: a registry snapshot pair
// whose deltas are rendered as a text report) and returns the profile
// text. Single-flight process-wide: a second concurrent window fails
// with kUnavailable (the admin endpoint maps it to 503). `abort`
// (optional) ends the window early — checked every 50 ms — so shutdown
// never waits out a long window.
StatusOr<std::string> CollectProfile(ProfileType type, double seconds,
                                     int hz = CpuProfiler::kDefaultHz,
                                     const std::atomic<bool>* abort = nullptr);

// Parses "cpu" | "contention" | "alloc" (kInvalidArgument otherwise).
StatusOr<ProfileType> ParseProfileType(const std::string& name);

// ---------------------------------------------------------------------------
// Instrumented mutex: a drop-in BasicLockable whose lock/unlock feed
// per-mutex labeled metrics — mutex_acquisitions_total{mutex=...},
// mutex_contention_total (lock() found the mutex held),
// mutex_wait_us (contended acquisition wait), mutex_hold_us (time held,
// every unlock). Pair with std::condition_variable_any; each condvar
// re-acquisition is accounted like any other lock(), which is exactly
// what makes sequencer convoys visible in /profilez?type=contention.
//
// Cost: one relaxed counter bump on the uncontended fast path plus two
// clock reads per lock/unlock cycle (~tens of ns) — cheap enough for
// the admission queue and commit sequencer, whose waits it measures.
class ProfiledMutex {
 public:
  // `name` must be a string literal (stored, not copied) — the label
  // value of this mutex's metric series.
  explicit ProfiledMutex(const char* name);

  void lock();
  bool try_lock();
  void unlock();

  const char* name() const { return name_; }

  ProfiledMutex(const ProfiledMutex&) = delete;
  ProfiledMutex& operator=(const ProfiledMutex&) = delete;

 private:
  std::mutex mu_;
  const char* name_;
  telemetry::Counter* acquisitions_;
  telemetry::Counter* contended_;
  telemetry::Histogram* wait_us_;
  telemetry::Histogram* hold_us_;
  uint64_t locked_at_ns_ = 0;  // Guarded by mu_ (written by the holder).
};

using profiled_mutex = ProfiledMutex;

// ---------------------------------------------------------------------------
// Allocation accounting. When the build has tracking compiled in
// (NIMBUS_ALLOC_TRACKING, set for non-sanitizer builds — sanitizers
// bring their own allocator interposition), the global operator
// new/delete replacements bump thread-local and process-wide
// byte/count tallies; both are plain/relaxed integer adds, so the
// accounting adds a few nanoseconds per allocation and touches no
// locks. Sanitizer builds compile the API to zeros.

struct AllocStats {
  int64_t allocs = 0;
  int64_t alloc_bytes = 0;
  int64_t frees = 0;
  int64_t freed_bytes = 0;  // Sized deletes only — a lower bound.
};

// True when the operator new/delete replacements are compiled in.
bool AllocTrackingEnabled();

// Calling thread's allocation tally since thread start.
AllocStats ThreadAllocStats();

// Process-wide tally since process start.
AllocStats GlobalAllocStats();

// RAII call-site attribution at the telemetry layer's usual call-site
// granularity: diffs the calling thread's tally across the scope and
// adds it to the labeled families alloc_site_allocs_total{site=...} /
// alloc_site_bytes_total{site=...}. `site` must be a string literal.
class ScopedAllocSample {
 public:
  explicit ScopedAllocSample(const char* site);
  ~ScopedAllocSample();

  ScopedAllocSample(const ScopedAllocSample&) = delete;
  ScopedAllocSample& operator=(const ScopedAllocSample&) = delete;

 private:
  telemetry::Counter* allocs_;
  telemetry::Counter* bytes_;
  AllocStats start_;
};

// Mirrors the process-wide allocation tally and the profiler overhead
// gauge into the registry (alloc_allocs_total etc. are gauges refreshed
// here rather than counters bumped per allocation — operator new cannot
// touch the registry). The admin endpoint calls this per scrape.
void PublishMetrics();

}  // namespace nimbus::prof

#endif  // NIMBUS_COMMON_PROFILER_H_
