#include "common/math_util.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace nimbus {

bool AlmostEqual(double a, double b, double tol) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

bool AlmostEqual(const std::vector<double>& a, const std::vector<double>& b,
                 double tol) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (!AlmostEqual(a[i], b[i], tol)) {
      return false;
    }
  }
  return true;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double SampleVariance(const std::vector<double>& values) {
  const size_t n = values.size();
  if (n < 2) {
    return 0.0;
  }
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) {
    const double d = v - mean;
    sum_sq += d * d;
  }
  return sum_sq / static_cast<double>(n - 1);
}

double SampleStddev(const std::vector<double>& values) {
  return std::sqrt(SampleVariance(values));
}

double Quantile(std::vector<double> values, double q) {
  NIMBUS_CHECK(!values.empty()) << "Quantile of empty vector";
  NIMBUS_CHECK_GE(q, 0.0);
  NIMBUS_CHECK_LE(q, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(pos));
  const size_t hi = static_cast<size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Log1pExp(double x) {
  if (x > 35.0) {
    return x;  // exp(-x) underflows to a negligible correction.
  }
  if (x < -35.0) {
    return std::exp(x);
  }
  return std::log1p(std::exp(x));
}

double Sigmoid(double x) {
  if (x >= 0) {
    return 1.0 / (1.0 + std::exp(-x));
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

double Clamp(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

std::vector<double> Linspace(double lo, double hi, int n) {
  NIMBUS_CHECK_GE(n, 1);
  if (n == 1) {
    return {lo};
  }
  std::vector<double> out(static_cast<size_t>(n));
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (int i = 0; i < n; ++i) {
    out[static_cast<size_t>(i)] = lo + step * static_cast<double>(i);
  }
  out.back() = hi;  // Avoid accumulated round-off on the endpoint.
  return out;
}

bool IsNonDecreasing(const std::vector<double>& values, double tol) {
  for (size_t i = 1; i < values.size(); ++i) {
    if (values[i] < values[i - 1] - tol) {
      return false;
    }
  }
  return true;
}

bool IsNonIncreasing(const std::vector<double>& values, double tol) {
  for (size_t i = 1; i < values.size(); ++i) {
    if (values[i] > values[i - 1] + tol) {
      return false;
    }
  }
  return true;
}

}  // namespace nimbus
