#include "aggregate/aggregate_market.h"

#include <cmath>
#include <limits>
#include <utility>

#include "common/logging.h"

namespace nimbus::aggregate {

StatusOr<double> ComputeStatistic(const data::Dataset& dataset, int column,
                                  Statistic statistic) {
  if (dataset.empty()) {
    return InvalidArgumentError("dataset is empty");
  }
  if (column < 0 || column >= dataset.num_features()) {
    return OutOfRangeError("column " + std::to_string(column) +
                           " out of range");
  }
  double sum = 0.0;
  for (const data::Example& e : dataset.examples()) {
    sum += e.features[static_cast<size_t>(column)];
  }
  switch (statistic) {
    case Statistic::kMean:
      return sum / dataset.num_examples();
    case Statistic::kSum:
      return sum;
    case Statistic::kVariance: {
      const double mean = sum / dataset.num_examples();
      double sq = 0.0;
      for (const data::Example& e : dataset.examples()) {
        const double centred = e.features[static_cast<size_t>(column)] - mean;
        sq += centred * centred;
      }
      return sq / dataset.num_examples();
    }
  }
  return InternalError("unreachable statistic kind");
}

StatusOr<AggregateMarket> AggregateMarket::Create(
    const data::Dataset& dataset, int column, Statistic statistic,
    std::unique_ptr<mechanism::NoiseMechanism> mechanism, Options options) {
  if (mechanism == nullptr) {
    return InvalidArgumentError("aggregate market needs a mechanism");
  }
  if (!(options.min_inverse_ncp > 0.0) ||
      !(options.max_inverse_ncp > options.min_inverse_ncp)) {
    return InvalidArgumentError("need 0 < min_inverse_ncp < max_inverse_ncp");
  }
  NIMBUS_ASSIGN_OR_RETURN(double truth,
                          ComputeStatistic(dataset, column, statistic));
  return AggregateMarket(truth, std::move(mechanism), options);
}

AggregateMarket::AggregateMarket(
    double truth, std::unique_ptr<mechanism::NoiseMechanism> mechanism,
    Options options)
    : truth_(truth),
      mechanism_(std::move(mechanism)),
      options_(options),
      pricing_(std::make_shared<pricing::LinearPricing>(
          1.0, std::numeric_limits<double>::infinity(), "placeholder")),
      rng_(options.seed) {}

void AggregateMarket::SetPricingFunction(
    std::shared_ptr<const pricing::PricingFunction> pricing) {
  NIMBUS_CHECK(pricing != nullptr);
  pricing_ = std::move(pricing);
}

StatusOr<double> AggregateMarket::ExpectedSquaredErrorAt(
    double inverse_ncp) const {
  if (!(inverse_ncp > 0.0)) {
    return InvalidArgumentError("inverse NCP must be positive");
  }
  return mechanism_->ExpectedSquaredError({truth_}, 1.0 / inverse_ncp);
}

StatusOr<AggregateMarket::Sale> AggregateMarket::BuyAtInverseNcp(
    double inverse_ncp) {
  if (inverse_ncp < options_.min_inverse_ncp ||
      inverse_ncp > options_.max_inverse_ncp) {
    return OutOfRangeError("version outside the supported range");
  }
  Sale sale;
  sale.ncp = 1.0 / inverse_ncp;
  sale.price = pricing_->PriceAtInverseNcp(inverse_ncp);
  NIMBUS_ASSIGN_OR_RETURN(sale.expected_squared_error,
                          ExpectedSquaredErrorAt(inverse_ncp));
  sale.value = mechanism_->Perturb({truth_}, sale.ncp, rng_)[0];
  revenue_collected_ += sale.price;
  ++sales_count_;
  return sale;
}

StatusOr<AggregateMarket::Sale> AggregateMarket::BuyWithErrorBudget(
    double error_budget) {
  if (error_budget < 0.0) {
    return InvalidArgumentError("error budget must be non-negative");
  }
  // The expected squared error is monotone decreasing in x (restriction
  // two of §3.2); bisect for the smallest x meeting the budget.
  NIMBUS_ASSIGN_OR_RETURN(double err_lo,
                          ExpectedSquaredErrorAt(options_.min_inverse_ncp));
  NIMBUS_ASSIGN_OR_RETURN(double err_hi,
                          ExpectedSquaredErrorAt(options_.max_inverse_ncp));
  if (err_hi > error_budget) {
    return InfeasibleError("no supported version achieves the error budget");
  }
  if (err_lo <= error_budget) {
    return BuyAtInverseNcp(options_.min_inverse_ncp);
  }
  double lo = options_.min_inverse_ncp;  // Error above budget here.
  double hi = options_.max_inverse_ncp;  // Error within budget here.
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    NIMBUS_ASSIGN_OR_RETURN(double err, ExpectedSquaredErrorAt(mid));
    if (err <= error_budget) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return BuyAtInverseNcp(hi);
}

}  // namespace nimbus::aggregate
