#ifndef NIMBUS_AGGREGATE_AGGREGATE_MARKET_H_
#define NIMBUS_AGGREGATE_AGGREGATE_MARKET_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "common/statusor.h"
#include "data/dataset.h"
#include "mechanism/noise_mechanism.h"
#include "pricing/pricing_function.h"

namespace nimbus::aggregate {

// The paper's Example 1: the buyer "learns" a SQL-style aggregate of one
// feature column instead of a full model. The hypothesis space is R (a
// single number), the error is the squared distance to the true
// statistic, and the same NCP-controlled mechanisms and arbitrage-free
// pricing functions apply unchanged. This module is the minimal
// instantiation of the MBP framework on that setting.

enum class Statistic {
  kMean,      // Column average (the statistic used in Example 1).
  kSum,       // Column sum.
  kVariance,  // Population variance of the column.
};

// Computes the exact statistic of feature column `column`. Fails on an
// empty dataset or a column out of range.
StatusOr<double> ComputeStatistic(const data::Dataset& dataset, int column,
                                  Statistic statistic);

// A marketplace for one aggregate value: versions are NCPs, prices come
// from an arbitrage-free pricing function over x = 1/δ, and purchases
// return a noisy scalar produced by a mechanism (Example 1's K1 additive
// uniform and K2 multiplicative uniform both work, as does Gaussian).
class AggregateMarket {
 public:
  struct Options {
    double min_inverse_ncp = 1.0;
    double max_inverse_ncp = 1000.0;
    uint64_t seed = 1;
  };

  static StatusOr<AggregateMarket> Create(
      const data::Dataset& dataset, int column, Statistic statistic,
      std::unique_ptr<mechanism::NoiseMechanism> mechanism, Options options);

  AggregateMarket(AggregateMarket&&) = default;
  AggregateMarket& operator=(AggregateMarket&&) = default;

  double true_value() const { return truth_; }

  void SetPricingFunction(
      std::shared_ptr<const pricing::PricingFunction> pricing);

  // Expected squared error of the version at inverse NCP x (analytic,
  // via the mechanism's closed form).
  StatusOr<double> ExpectedSquaredErrorAt(double inverse_ncp) const;

  struct Sale {
    double value = 0.0;  // The noisy aggregate delivered.
    double price = 0.0;
    double ncp = 0.0;
    double expected_squared_error = 0.0;
  };

  // Buys the version at inverse NCP x (options-one purchase).
  StatusOr<Sale> BuyAtInverseNcp(double inverse_ncp);

  // Cheapest version with expected squared error <= budget (option two);
  // solved by bisection on the monotone error curve.
  StatusOr<Sale> BuyWithErrorBudget(double error_budget);

  double revenue_collected() const { return revenue_collected_; }
  int sales_count() const { return sales_count_; }

 private:
  AggregateMarket(double truth,
                  std::unique_ptr<mechanism::NoiseMechanism> mechanism,
                  Options options);

  double truth_;
  std::unique_ptr<mechanism::NoiseMechanism> mechanism_;
  Options options_;
  std::shared_ptr<const pricing::PricingFunction> pricing_;
  Rng rng_;
  double revenue_collected_ = 0.0;
  int sales_count_ = 0;
};

}  // namespace nimbus::aggregate

#endif  // NIMBUS_AGGREGATE_AGGREGATE_MARKET_H_
