#include "linalg/vector_ops.h"

#include <cmath>

#include "common/logging.h"

namespace nimbus::linalg {

double Dot(const Vector& a, const Vector& b) {
  NIMBUS_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

double Norm2(const Vector& a) { return std::sqrt(SquaredNorm2(a)); }

double SquaredNorm2(const Vector& a) { return Dot(a, a); }

double Norm1(const Vector& a) {
  double sum = 0.0;
  for (double v : a) {
    sum += std::fabs(v);
  }
  return sum;
}

double NormInf(const Vector& a) {
  double best = 0.0;
  for (double v : a) {
    best = std::max(best, std::fabs(v));
  }
  return best;
}

Vector Add(const Vector& a, const Vector& b) {
  NIMBUS_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] + b[i];
  }
  return out;
}

Vector Subtract(const Vector& a, const Vector& b) {
  NIMBUS_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] - b[i];
  }
  return out;
}

Vector Scale(const Vector& a, double scalar) {
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] * scalar;
  }
  return out;
}

void AxpyInPlace(double scalar, const Vector& b, Vector& a) {
  NIMBUS_CHECK_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] += scalar * b[i];
  }
}

double SquaredDistance(const Vector& a, const Vector& b) {
  NIMBUS_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

Vector Zeros(int d) {
  NIMBUS_CHECK_GE(d, 0);
  return Vector(static_cast<size_t>(d), 0.0);
}

Vector Ones(int d) {
  NIMBUS_CHECK_GE(d, 0);
  return Vector(static_cast<size_t>(d), 1.0);
}

}  // namespace nimbus::linalg
