#ifndef NIMBUS_LINALG_VECTOR_OPS_H_
#define NIMBUS_LINALG_VECTOR_OPS_H_

#include <vector>

namespace nimbus::linalg {

// Dense vectors are plain std::vector<double>; these free functions give
// them the small algebra kernel the ML and pricing layers need. All
// binary operations require equal sizes and abort otherwise (size
// mismatches are programming errors, not runtime conditions).

using Vector = std::vector<double>;

// Inner product <a, b>.
double Dot(const Vector& a, const Vector& b);

// Euclidean norm ||a||_2.
double Norm2(const Vector& a);

// Squared euclidean norm ||a||_2^2.
double SquaredNorm2(const Vector& a);

// L1 norm.
double Norm1(const Vector& a);

// Infinity norm.
double NormInf(const Vector& a);

// Element-wise a + b.
Vector Add(const Vector& a, const Vector& b);

// Element-wise a - b.
Vector Subtract(const Vector& a, const Vector& b);

// scalar * a.
Vector Scale(const Vector& a, double scalar);

// a += scalar * b (BLAS axpy), in place.
void AxpyInPlace(double scalar, const Vector& b, Vector& a);

// ||a - b||_2^2.
double SquaredDistance(const Vector& a, const Vector& b);

// Returns the all-zeros vector of dimension d.
Vector Zeros(int d);

// Returns the all-ones vector of dimension d.
Vector Ones(int d);

}  // namespace nimbus::linalg

#endif  // NIMBUS_LINALG_VECTOR_OPS_H_
