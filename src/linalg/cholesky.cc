#include "linalg/cholesky.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/fault.h"
#include "common/logging.h"
#include "common/telemetry.h"

namespace nimbus::linalg {
namespace {

telemetry::Counter& FallbackCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("solver_fallback_total");
  return counter;
}

bool AllFinite(const Vector& v) {
  for (double x : v) {
    if (!std::isfinite(x)) {
      return false;
    }
  }
  return true;
}

}  // namespace

StatusOr<CholeskyFactorization> CholeskyFactorization::Compute(
    const Matrix& a) {
  if (a.rows() != a.cols()) {
    return InvalidArgumentError("Cholesky requires a square matrix");
  }
  const int n = a.rows();
  Matrix lower(n, n);
  for (int j = 0; j < n; ++j) {
    double diag = a.At(j, j);
    for (int k = 0; k < j; ++k) {
      diag -= lower.At(j, k) * lower.At(j, k);
    }
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return FailedPreconditionError(
          "matrix is not numerically positive definite");
    }
    const double ljj = std::sqrt(diag);
    lower.At(j, j) = ljj;
    for (int i = j + 1; i < n; ++i) {
      double sum = a.At(i, j);
      for (int k = 0; k < j; ++k) {
        sum -= lower.At(i, k) * lower.At(j, k);
      }
      lower.At(i, j) = sum / ljj;
    }
  }
  return CholeskyFactorization(std::move(lower));
}

Vector CholeskyFactorization::Solve(const Vector& b) const {
  const int n = lower_.rows();
  NIMBUS_CHECK_EQ(static_cast<int>(b.size()), n);
  // Forward substitution: L y = b.
  Vector y(b);
  for (int i = 0; i < n; ++i) {
    double sum = y[static_cast<size_t>(i)];
    for (int k = 0; k < i; ++k) {
      sum -= lower_.At(i, k) * y[static_cast<size_t>(k)];
    }
    y[static_cast<size_t>(i)] = sum / lower_.At(i, i);
  }
  // Back substitution: L^T x = y.
  Vector x(y);
  for (int i = n - 1; i >= 0; --i) {
    double sum = x[static_cast<size_t>(i)];
    for (int k = i + 1; k < n; ++k) {
      sum -= lower_.At(k, i) * x[static_cast<size_t>(k)];
    }
    x[static_cast<size_t>(i)] = sum / lower_.At(i, i);
  }
  return x;
}

double CholeskyFactorization::LogDeterminant() const {
  double sum = 0.0;
  for (int i = 0; i < lower_.rows(); ++i) {
    sum += std::log(lower_.At(i, i));
  }
  return 2.0 * sum;
}

StatusOr<Vector> SolveSpd(const Matrix& a, const Vector& b,
                          SpdSolveDiagnostics* diagnostics) {
  if (a.rows() != a.cols()) {
    return InvalidArgumentError("SolveSpd requires a square matrix");
  }
  const int n = a.rows();
  if (static_cast<int>(b.size()) != n) {
    return InvalidArgumentError("right-hand side has wrong dimension");
  }
  double max_abs_diag = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (!std::isfinite(a.At(i, j))) {
        return InvalidArgumentError("SolveSpd: matrix entry (" +
                                    std::to_string(i) + ", " +
                                    std::to_string(j) + ") is not finite");
      }
    }
    max_abs_diag = std::max(max_abs_diag, std::fabs(a.At(i, i)));
  }
  if (!AllFinite(b)) {
    return InvalidArgumentError("SolveSpd: right-hand side is not finite");
  }
  if (diagnostics != nullptr) {
    *diagnostics = SpdSolveDiagnostics{};
  }
  // Rung 0: the plain factorization — bit-identical to the historical
  // solver whenever A is numerically SPD. (The fault point lets tests
  // force the ladder without constructing a degenerate system.)
  if (!fault::ShouldFail("solver.cholesky")) {
    StatusOr<CholeskyFactorization> chol = CholeskyFactorization::Compute(a);
    if (chol.ok()) {
      Vector x = chol->Solve(b);
      if (AllFinite(x)) {
        return x;
      }
    }
  }
  // Fallback ladder: retry with an escalating ridge shift. The shift is
  // relative to the diagonal scale so the ladder behaves identically
  // across data scalings.
  const double scale = max_abs_diag > 0.0 ? max_abs_diag : 1.0;
  double ridge = 0.0;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    ridge = scale * 1e-12 * std::pow(100.0, attempt);  // 1e-10 .. 1.
    Matrix shifted = a;
    shifted.AddToDiagonal(ridge);
    StatusOr<CholeskyFactorization> chol =
        CholeskyFactorization::Compute(shifted);
    if (!chol.ok()) {
      continue;
    }
    Vector x = chol->Solve(b);
    if (!AllFinite(x)) {
      continue;
    }
    FallbackCounter().Increment();
    NIMBUS_LOG(kWarning) << "SolveSpd degraded: order-" << n
                         << " system solved with ridge " << ridge
                         << " on attempt " << attempt;
    if (diagnostics != nullptr) {
      diagnostics->degraded = true;
      diagnostics->attempts = attempt;
      diagnostics->ridge = ridge;
    }
    return x;
  }
  return FailedPreconditionError(
      "SolveSpd: order-" + std::to_string(n) +
      " matrix is not positive definite even after ridge " +
      std::to_string(ridge) + " (max |diag| " + std::to_string(max_abs_diag) +
      ")");
}

StatusOr<Vector> SolveLinearSystem(const Matrix& a, const Vector& b) {
  if (a.rows() != a.cols()) {
    return InvalidArgumentError("SolveLinearSystem requires a square matrix");
  }
  const int n = a.rows();
  if (static_cast<int>(b.size()) != n) {
    return InvalidArgumentError("right-hand side has wrong dimension");
  }
  Matrix work = a;
  Vector rhs = b;
  for (int col = 0; col < n; ++col) {
    // Partial pivoting: bring the largest remaining entry to the diagonal.
    int pivot = col;
    double best = std::fabs(work.At(col, col));
    for (int r = col + 1; r < n; ++r) {
      const double v = std::fabs(work.At(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) {
      return FailedPreconditionError("matrix is numerically singular");
    }
    if (pivot != col) {
      for (int c = 0; c < n; ++c) {
        std::swap(work.At(pivot, c), work.At(col, c));
      }
      std::swap(rhs[static_cast<size_t>(pivot)], rhs[static_cast<size_t>(col)]);
    }
    const double inv = 1.0 / work.At(col, col);
    for (int r = col + 1; r < n; ++r) {
      const double factor = work.At(r, col) * inv;
      if (factor == 0.0) {
        continue;
      }
      work.At(r, col) = 0.0;
      for (int c = col + 1; c < n; ++c) {
        work.At(r, c) -= factor * work.At(col, c);
      }
      rhs[static_cast<size_t>(r)] -= factor * rhs[static_cast<size_t>(col)];
    }
  }
  // Back substitution.
  Vector x(static_cast<size_t>(n), 0.0);
  for (int i = n - 1; i >= 0; --i) {
    double sum = rhs[static_cast<size_t>(i)];
    for (int c = i + 1; c < n; ++c) {
      sum -= work.At(i, c) * x[static_cast<size_t>(c)];
    }
    x[static_cast<size_t>(i)] = sum / work.At(i, i);
  }
  return x;
}

}  // namespace nimbus::linalg
