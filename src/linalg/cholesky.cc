#include "linalg/cholesky.h"

#include <cmath>

#include "common/logging.h"

namespace nimbus::linalg {

StatusOr<CholeskyFactorization> CholeskyFactorization::Compute(
    const Matrix& a) {
  if (a.rows() != a.cols()) {
    return InvalidArgumentError("Cholesky requires a square matrix");
  }
  const int n = a.rows();
  Matrix lower(n, n);
  for (int j = 0; j < n; ++j) {
    double diag = a.At(j, j);
    for (int k = 0; k < j; ++k) {
      diag -= lower.At(j, k) * lower.At(j, k);
    }
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return FailedPreconditionError(
          "matrix is not numerically positive definite");
    }
    const double ljj = std::sqrt(diag);
    lower.At(j, j) = ljj;
    for (int i = j + 1; i < n; ++i) {
      double sum = a.At(i, j);
      for (int k = 0; k < j; ++k) {
        sum -= lower.At(i, k) * lower.At(j, k);
      }
      lower.At(i, j) = sum / ljj;
    }
  }
  return CholeskyFactorization(std::move(lower));
}

Vector CholeskyFactorization::Solve(const Vector& b) const {
  const int n = lower_.rows();
  NIMBUS_CHECK_EQ(static_cast<int>(b.size()), n);
  // Forward substitution: L y = b.
  Vector y(b);
  for (int i = 0; i < n; ++i) {
    double sum = y[static_cast<size_t>(i)];
    for (int k = 0; k < i; ++k) {
      sum -= lower_.At(i, k) * y[static_cast<size_t>(k)];
    }
    y[static_cast<size_t>(i)] = sum / lower_.At(i, i);
  }
  // Back substitution: L^T x = y.
  Vector x(y);
  for (int i = n - 1; i >= 0; --i) {
    double sum = x[static_cast<size_t>(i)];
    for (int k = i + 1; k < n; ++k) {
      sum -= lower_.At(k, i) * x[static_cast<size_t>(k)];
    }
    x[static_cast<size_t>(i)] = sum / lower_.At(i, i);
  }
  return x;
}

double CholeskyFactorization::LogDeterminant() const {
  double sum = 0.0;
  for (int i = 0; i < lower_.rows(); ++i) {
    sum += std::log(lower_.At(i, i));
  }
  return 2.0 * sum;
}

StatusOr<Vector> SolveSpd(const Matrix& a, const Vector& b) {
  NIMBUS_ASSIGN_OR_RETURN(CholeskyFactorization chol,
                          CholeskyFactorization::Compute(a));
  return chol.Solve(b);
}

StatusOr<Vector> SolveLinearSystem(const Matrix& a, const Vector& b) {
  if (a.rows() != a.cols()) {
    return InvalidArgumentError("SolveLinearSystem requires a square matrix");
  }
  const int n = a.rows();
  if (static_cast<int>(b.size()) != n) {
    return InvalidArgumentError("right-hand side has wrong dimension");
  }
  Matrix work = a;
  Vector rhs = b;
  for (int col = 0; col < n; ++col) {
    // Partial pivoting: bring the largest remaining entry to the diagonal.
    int pivot = col;
    double best = std::fabs(work.At(col, col));
    for (int r = col + 1; r < n; ++r) {
      const double v = std::fabs(work.At(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) {
      return FailedPreconditionError("matrix is numerically singular");
    }
    if (pivot != col) {
      for (int c = 0; c < n; ++c) {
        std::swap(work.At(pivot, c), work.At(col, c));
      }
      std::swap(rhs[static_cast<size_t>(pivot)], rhs[static_cast<size_t>(col)]);
    }
    const double inv = 1.0 / work.At(col, col);
    for (int r = col + 1; r < n; ++r) {
      const double factor = work.At(r, col) * inv;
      if (factor == 0.0) {
        continue;
      }
      work.At(r, col) = 0.0;
      for (int c = col + 1; c < n; ++c) {
        work.At(r, c) -= factor * work.At(col, c);
      }
      rhs[static_cast<size_t>(r)] -= factor * rhs[static_cast<size_t>(col)];
    }
  }
  // Back substitution.
  Vector x(static_cast<size_t>(n), 0.0);
  for (int i = n - 1; i >= 0; --i) {
    double sum = rhs[static_cast<size_t>(i)];
    for (int c = i + 1; c < n; ++c) {
      sum -= work.At(i, c) * x[static_cast<size_t>(c)];
    }
    x[static_cast<size_t>(i)] = sum / work.At(i, i);
  }
  return x;
}

}  // namespace nimbus::linalg
