#ifndef NIMBUS_LINALG_MATRIX_H_
#define NIMBUS_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "linalg/vector_ops.h"

namespace nimbus::linalg {

// Dense row-major matrix of doubles. Sized once at construction; supports
// the small set of operations needed for normal-equation solves, Newton
// steps and the simplex tableau.
class Matrix {
 public:
  // Creates a rows x cols matrix of zeros.
  Matrix(int rows, int cols);

  // Creates a matrix from nested initializer lists; all rows must have the
  // same length. Example: Matrix m({{1, 2}, {3, 4}});
  explicit Matrix(std::initializer_list<std::initializer_list<double>> rows);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& At(int r, int c) { return data_[Index(r, c)]; }
  double At(int r, int c) const { return data_[Index(r, c)]; }

  // Returns the r-th row as a vector copy (single contiguous memcpy).
  Vector Row(int r) const;

  // Returns the c-th column as a vector copy (strided raw-data walk).
  Vector Col(int c) const;

  // Returns the transpose (cache-blocked tile copy).
  Matrix Transpose() const;

  // Matrix-vector product (this * x). x.size() must equal cols().
  Vector MatVec(const Vector& x) const;

  // Transposed matrix-vector product (this^T * x). x.size() == rows().
  Vector TransposeMatVec(const Vector& x) const;

  // Matrix-matrix product (this * other).
  Matrix MatMul(const Matrix& other) const;

  // Returns this^T * this (the Gram matrix) via a fused upper-triangle
  // kernel; large inputs accumulate fixed-size row chunks in parallel
  // and reduce them in chunk order, so the result is bit-identical at
  // every thread count.
  Matrix Gram() const;

  // Adds `value` to every diagonal entry (ridge shift), in place.
  void AddToDiagonal(double value);

  // Returns the d x d identity.
  static Matrix Identity(int d);

 private:
  size_t Index(int r, int c) const;

  int rows_;
  int cols_;
  std::vector<double> data_;
};

}  // namespace nimbus::linalg

#endif  // NIMBUS_LINALG_MATRIX_H_
