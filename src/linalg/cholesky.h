#ifndef NIMBUS_LINALG_CHOLESKY_H_
#define NIMBUS_LINALG_CHOLESKY_H_

#include "common/statusor.h"
#include "linalg/matrix.h"
#include "linalg/vector_ops.h"

namespace nimbus::linalg {

// Cholesky factorization A = L L^T of a symmetric positive-definite
// matrix, plus triangular solves. Used for closed-form least squares
// (normal equations) and logistic-regression Newton steps.
class CholeskyFactorization {
 public:
  // Factorizes `a`, which must be square and symmetric. Fails with
  // kFailedPrecondition when `a` is not (numerically) positive definite.
  static StatusOr<CholeskyFactorization> Compute(const Matrix& a);

  // Solves A x = b via the stored factor. b.size() must equal A's order.
  Vector Solve(const Vector& b) const;

  // log(det(A)) = 2 * sum_i log(L_ii); useful for model diagnostics.
  double LogDeterminant() const;

  const Matrix& lower() const { return lower_; }

 private:
  explicit CholeskyFactorization(Matrix lower) : lower_(std::move(lower)) {}

  Matrix lower_;
};

// Diagnostics surfaced by SolveSpd's degradation ladder.
struct SpdSolveDiagnostics {
  bool degraded = false;  // True when a fallback rung was needed.
  int attempts = 0;       // Factorization retries beyond the first.
  double ridge = 0.0;     // Diagonal shift of the successful attempt.
};

// Solves the SPD system A x = b with graceful numerical degradation:
// a plain Cholesky first (bit-identical to the historical behaviour on
// well-conditioned inputs), then — when the factorization fails or the
// solution is non-finite — jittered-ridge retries with escalating
// diagonal regularization, and finally kFailedPrecondition carrying
// diagnostics instead of letting NaNs propagate. Non-finite inputs are
// rejected up front with kInvalidArgument. Fallback solves are counted
// in `solver_fallback_total` and reported through `diagnostics`.
StatusOr<Vector> SolveSpd(const Matrix& a, const Vector& b,
                          SpdSolveDiagnostics* diagnostics = nullptr);

// Solves a general square linear system A x = b with partially pivoted
// Gaussian elimination. Fails with kFailedPrecondition when A is singular.
StatusOr<Vector> SolveLinearSystem(const Matrix& a, const Vector& b);

}  // namespace nimbus::linalg

#endif  // NIMBUS_LINALG_CHOLESKY_H_
