#ifndef NIMBUS_LINALG_CHOLESKY_H_
#define NIMBUS_LINALG_CHOLESKY_H_

#include "common/statusor.h"
#include "linalg/matrix.h"
#include "linalg/vector_ops.h"

namespace nimbus::linalg {

// Cholesky factorization A = L L^T of a symmetric positive-definite
// matrix, plus triangular solves. Used for closed-form least squares
// (normal equations) and logistic-regression Newton steps.
class CholeskyFactorization {
 public:
  // Factorizes `a`, which must be square and symmetric. Fails with
  // kFailedPrecondition when `a` is not (numerically) positive definite.
  static StatusOr<CholeskyFactorization> Compute(const Matrix& a);

  // Solves A x = b via the stored factor. b.size() must equal A's order.
  Vector Solve(const Vector& b) const;

  // log(det(A)) = 2 * sum_i log(L_ii); useful for model diagnostics.
  double LogDeterminant() const;

  const Matrix& lower() const { return lower_; }

 private:
  explicit CholeskyFactorization(Matrix lower) : lower_(std::move(lower)) {}

  Matrix lower_;
};

// Convenience wrapper: solves the SPD system A x = b in one call.
StatusOr<Vector> SolveSpd(const Matrix& a, const Vector& b);

// Solves a general square linear system A x = b with partially pivoted
// Gaussian elimination. Fails with kFailedPrecondition when A is singular.
StatusOr<Vector> SolveLinearSystem(const Matrix& a, const Vector& b);

}  // namespace nimbus::linalg

#endif  // NIMBUS_LINALG_CHOLESKY_H_
