#include "linalg/matrix.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/telemetry.h"

namespace nimbus::linalg {
namespace {

// Tile edge for the blocked transpose: 32x32 doubles = two 8 KB tiles in
// flight, comfortably inside L1 on every target.
constexpr int kTransposeBlock = 32;

// Row-chunk size for the parallel Gram accumulation. Chunk boundaries
// depend only on the matrix shape — never on the thread count — and the
// partial sums are reduced in chunk order, so the result is bit-identical
// at every NIMBUS_THREADS setting.
constexpr int kGramChunk = 256;

// Parallelizing Gram only pays off once the flop count dwarfs the
// per-chunk buffer traffic.
constexpr int64_t kGramParallelMinFlops = 1 << 20;

}  // namespace

Matrix::Matrix(int rows, int cols)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0) {
  NIMBUS_CHECK_GE(rows, 0);
  NIMBUS_CHECK_GE(cols, 0);
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(static_cast<int>(rows.size())), cols_(0) {
  if (rows_ > 0) {
    cols_ = static_cast<int>(rows.begin()->size());
  }
  data_.reserve(static_cast<size_t>(rows_) * static_cast<size_t>(cols_));
  for (const auto& row : rows) {
    NIMBUS_CHECK_EQ(static_cast<int>(row.size()), cols_)
        << "ragged initializer list";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

size_t Matrix::Index(int r, int c) const {
  NIMBUS_CHECK_GE(r, 0);
  NIMBUS_CHECK_LT(r, rows_);
  NIMBUS_CHECK_GE(c, 0);
  NIMBUS_CHECK_LT(c, cols_);
  return static_cast<size_t>(r) * static_cast<size_t>(cols_) +
         static_cast<size_t>(c);
}

Vector Matrix::Row(int r) const {
  NIMBUS_CHECK_GE(r, 0);
  NIMBUS_CHECK_LT(r, rows_);
  Vector out(static_cast<size_t>(cols_));
  if (cols_ > 0) {
    std::memcpy(out.data(),
                &data_[static_cast<size_t>(r) * static_cast<size_t>(cols_)],
                static_cast<size_t>(cols_) * sizeof(double));
  }
  return out;
}

Vector Matrix::Col(int c) const {
  NIMBUS_CHECK_GE(c, 0);
  NIMBUS_CHECK_LT(c, cols_);
  Vector out(static_cast<size_t>(rows_));
  const double* src = data_.data() + static_cast<size_t>(c);
  for (int r = 0; r < rows_; ++r) {
    out[static_cast<size_t>(r)] = *src;
    src += cols_;
  }
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  // Blocked so both the row-major read and the column-major write stay
  // within one cache-resident tile at a time.
  for (int rb = 0; rb < rows_; rb += kTransposeBlock) {
    const int rmax = std::min(rb + kTransposeBlock, rows_);
    for (int cb = 0; cb < cols_; cb += kTransposeBlock) {
      const int cmax = std::min(cb + kTransposeBlock, cols_);
      for (int r = rb; r < rmax; ++r) {
        const double* src =
            &data_[static_cast<size_t>(r) * static_cast<size_t>(cols_)];
        for (int c = cb; c < cmax; ++c) {
          out.data_[static_cast<size_t>(c) * static_cast<size_t>(rows_) +
                    static_cast<size_t>(r)] = src[c];
        }
      }
    }
  }
  return out;
}

Vector Matrix::MatVec(const Vector& x) const {
  NIMBUS_CHECK_EQ(static_cast<int>(x.size()), cols_);
  Vector out(static_cast<size_t>(rows_), 0.0);
  for (int r = 0; r < rows_; ++r) {
    double sum = 0.0;
    const double* row = &data_[static_cast<size_t>(r) *
                               static_cast<size_t>(cols_)];
    for (int c = 0; c < cols_; ++c) {
      sum += row[c] * x[static_cast<size_t>(c)];
    }
    out[static_cast<size_t>(r)] = sum;
  }
  return out;
}

Vector Matrix::TransposeMatVec(const Vector& x) const {
  NIMBUS_CHECK_EQ(static_cast<int>(x.size()), rows_);
  Vector out(static_cast<size_t>(cols_), 0.0);
  for (int r = 0; r < rows_; ++r) {
    const double xr = x[static_cast<size_t>(r)];
    const double* row = &data_[static_cast<size_t>(r) *
                               static_cast<size_t>(cols_)];
    for (int c = 0; c < cols_; ++c) {
      out[static_cast<size_t>(c)] += row[c] * xr;
    }
  }
  return out;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  NIMBUS_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  const int oc = other.cols_;
  for (int r = 0; r < rows_; ++r) {
    const double* a_row =
        &data_[static_cast<size_t>(r) * static_cast<size_t>(cols_)];
    double* out_row =
        &out.data_[static_cast<size_t>(r) * static_cast<size_t>(oc)];
    for (int k = 0; k < cols_; ++k) {
      const double a = a_row[k];
      if (a == 0.0) {
        continue;
      }
      const double* b_row =
          &other.data_[static_cast<size_t>(k) * static_cast<size_t>(oc)];
      for (int c = 0; c < oc; ++c) {
        out_row[c] += a * b_row[c];
      }
    }
  }
  return out;
}

namespace {

// Accumulates the upper triangle of XᵀX over rows [row_begin, row_end)
// into `upper` (row-major d x d scratch, only j >= i written).
void AccumulateGramUpper(const double* data, int row_begin, int row_end,
                         int d, double* upper) {
  for (int r = row_begin; r < row_end; ++r) {
    const double* row = data + static_cast<size_t>(r) * static_cast<size_t>(d);
    for (int i = 0; i < d; ++i) {
      const double a = row[i];
      if (a == 0.0) {
        continue;
      }
      double* out = upper + static_cast<size_t>(i) * static_cast<size_t>(d);
      for (int j = i; j < d; ++j) {
        out[j] += a * row[j];
      }
    }
  }
}

}  // namespace

Matrix Matrix::Gram() const {
  // One timer per Gram call (not per chunk): the kernel feeds the ridge
  // normal equations, so its latency distribution is the training cost
  // the broker pays per (model, dataset) pair.
  static telemetry::Counter& calls =
      telemetry::Registry::Global().GetCounter("linalg_gram_calls_total");
  static telemetry::Histogram& latency =
      telemetry::Registry::Global().GetHistogram("linalg_gram_latency_us");
  calls.Increment();
  telemetry::ScopedTimer timer(latency);
  Matrix out(cols_, cols_);
  const int d = cols_;
  const int64_t flops = static_cast<int64_t>(rows_) * d * d;
  if (flops < kGramParallelMinFlops || rows_ <= kGramChunk) {
    AccumulateGramUpper(data_.data(), 0, rows_, d, out.data_.data());
  } else {
    // Fixed-size row chunks accumulated independently, then reduced in
    // chunk order — deterministic at every thread count.
    const int num_chunks = (rows_ + kGramChunk - 1) / kGramChunk;
    std::vector<std::vector<double>> partial(static_cast<size_t>(num_chunks));
    ParallelFor(0, num_chunks, [&](int64_t chunk) {
      std::vector<double>& local = partial[static_cast<size_t>(chunk)];
      local.assign(static_cast<size_t>(d) * static_cast<size_t>(d), 0.0);
      const int row_begin = static_cast<int>(chunk) * kGramChunk;
      const int row_end = std::min(row_begin + kGramChunk, rows_);
      AccumulateGramUpper(data_.data(), row_begin, row_end, d, local.data());
    });
    for (const std::vector<double>& local : partial) {
      for (size_t i = 0; i < local.size(); ++i) {
        out.data_[i] += local[i];
      }
    }
  }
  // Mirror the upper triangle into the lower one.
  for (int i = 0; i < d; ++i) {
    const double* upper_row =
        &out.data_[static_cast<size_t>(i) * static_cast<size_t>(d)];
    for (int j = i + 1; j < d; ++j) {
      out.data_[static_cast<size_t>(j) * static_cast<size_t>(d) +
                static_cast<size_t>(i)] = upper_row[j];
    }
  }
  return out;
}

void Matrix::AddToDiagonal(double value) {
  const int n = std::min(rows_, cols_);
  for (int i = 0; i < n; ++i) {
    At(i, i) += value;
  }
}

Matrix Matrix::Identity(int d) {
  Matrix out(d, d);
  for (int i = 0; i < d; ++i) {
    out.At(i, i) = 1.0;
  }
  return out;
}

}  // namespace nimbus::linalg
