#include "linalg/matrix.h"

#include "common/logging.h"

namespace nimbus::linalg {

Matrix::Matrix(int rows, int cols)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0) {
  NIMBUS_CHECK_GE(rows, 0);
  NIMBUS_CHECK_GE(cols, 0);
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(static_cast<int>(rows.size())), cols_(0) {
  if (rows_ > 0) {
    cols_ = static_cast<int>(rows.begin()->size());
  }
  data_.reserve(static_cast<size_t>(rows_) * static_cast<size_t>(cols_));
  for (const auto& row : rows) {
    NIMBUS_CHECK_EQ(static_cast<int>(row.size()), cols_)
        << "ragged initializer list";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

size_t Matrix::Index(int r, int c) const {
  NIMBUS_CHECK_GE(r, 0);
  NIMBUS_CHECK_LT(r, rows_);
  NIMBUS_CHECK_GE(c, 0);
  NIMBUS_CHECK_LT(c, cols_);
  return static_cast<size_t>(r) * static_cast<size_t>(cols_) +
         static_cast<size_t>(c);
}

Vector Matrix::Row(int r) const {
  Vector out(static_cast<size_t>(cols_));
  for (int c = 0; c < cols_; ++c) {
    out[static_cast<size_t>(c)] = At(r, c);
  }
  return out;
}

Vector Matrix::Col(int c) const {
  Vector out(static_cast<size_t>(rows_));
  for (int r = 0; r < rows_; ++r) {
    out[static_cast<size_t>(r)] = At(r, c);
  }
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      out.At(c, r) = At(r, c);
    }
  }
  return out;
}

Vector Matrix::MatVec(const Vector& x) const {
  NIMBUS_CHECK_EQ(static_cast<int>(x.size()), cols_);
  Vector out(static_cast<size_t>(rows_), 0.0);
  for (int r = 0; r < rows_; ++r) {
    double sum = 0.0;
    const double* row = &data_[static_cast<size_t>(r) *
                               static_cast<size_t>(cols_)];
    for (int c = 0; c < cols_; ++c) {
      sum += row[c] * x[static_cast<size_t>(c)];
    }
    out[static_cast<size_t>(r)] = sum;
  }
  return out;
}

Vector Matrix::TransposeMatVec(const Vector& x) const {
  NIMBUS_CHECK_EQ(static_cast<int>(x.size()), rows_);
  Vector out(static_cast<size_t>(cols_), 0.0);
  for (int r = 0; r < rows_; ++r) {
    const double xr = x[static_cast<size_t>(r)];
    const double* row = &data_[static_cast<size_t>(r) *
                               static_cast<size_t>(cols_)];
    for (int c = 0; c < cols_; ++c) {
      out[static_cast<size_t>(c)] += row[c] * xr;
    }
  }
  return out;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  NIMBUS_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int k = 0; k < cols_; ++k) {
      const double a = At(r, k);
      if (a == 0.0) {
        continue;
      }
      for (int c = 0; c < other.cols_; ++c) {
        out.At(r, c) += a * other.At(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::Gram() const {
  Matrix out(cols_, cols_);
  for (int r = 0; r < rows_; ++r) {
    const double* row = &data_[static_cast<size_t>(r) *
                               static_cast<size_t>(cols_)];
    for (int i = 0; i < cols_; ++i) {
      const double a = row[i];
      if (a == 0.0) {
        continue;
      }
      for (int j = i; j < cols_; ++j) {
        out.At(i, j) += a * row[j];
      }
    }
  }
  // Mirror the upper triangle into the lower one.
  for (int i = 0; i < cols_; ++i) {
    for (int j = i + 1; j < cols_; ++j) {
      out.At(j, i) = out.At(i, j);
    }
  }
  return out;
}

void Matrix::AddToDiagonal(double value) {
  const int n = std::min(rows_, cols_);
  for (int i = 0; i < n; ++i) {
    At(i, i) += value;
  }
}

Matrix Matrix::Identity(int d) {
  Matrix out(d, d);
  for (int i = 0; i < d; ++i) {
    out.At(i, i) = 1.0;
  }
  return out;
}

}  // namespace nimbus::linalg
