#ifndef NIMBUS_SERVICE_SERVICE_H_
#define NIMBUS_SERVICE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/backoff.h"
#include "common/clock.h"
#include "common/flight_recorder.h"
#include "common/parallel.h"
#include "common/profiler.h"
#include "common/random.h"
#include "common/slo_tracker.h"
#include "common/statusor.h"
#include "common/telemetry.h"
#include "market/auditor.h"
#include "market/catalog.h"
#include "market/marketplace.h"
#include "market/shard.h"
#include "service/admission_queue.h"
#include "service/circuit_breaker.h"

namespace nimbus::service {

// Tuning for one MarketService instance. The defaults are sized for the
// chaos soak; a real deployment scales queue_capacity and num_workers
// with the offered load.
struct ServiceOptions {
  // Worker width (calling-thread-inclusive, like ThreadPool).
  int num_workers = 4;
  // Admission queue bound; pushes beyond it are shed with kUnavailable.
  int queue_capacity = 256;
  // Deadline applied to requests that do not carry their own
  // (seconds; <= 0 = no deadline).
  double default_deadline_seconds = 0.0;
  // Retry policies wrapped around the two downstreams.
  BackoffOptions quote_retry;
  BackoffOptions journal_retry;
  // Breakers guarding those downstreams. Thresholds high enough to
  // never trip make the service deterministic under counted faults
  // (every injected failure is absorbed by a retry).
  CircuitBreakerOptions quote_breaker;
  CircuitBreakerOptions journal_breaker;
  // Upper bound on how many admitted quote-only requests one worker
  // drains per queue rendezvous. Batching amortizes queue and sequencer
  // synchronization (one wait + one wakeup per batch instead of per
  // request) and quotes each batch through Broker::QuoteBatch. 1 =
  // request-at-a-time draining. Ledger bytes are identical at every
  // setting: quotes stay pure per-ticket functions of the master seed.
  int max_quote_batch = 16;
  // Master seed: request `ticket` quotes with the pure child stream
  // Fork(4*ticket) of Rng(seed), so results are independent of worker
  // count, scheduling, and retry count.
  uint64_t seed = 20190642;
  // Time source for deadlines, backoff sleeps and breaker cooldowns;
  // nullptr = SystemClock. Tests pass a ManualClock.
  Clock* clock = nullptr;
  // Service-level objective tracked per terminal outcome (availability
  // plus optional latency half); clock defaults to the service clock.
  telemetry::SloOptions slo;
  // Optional online economic auditor (caller-owned, must outlive the
  // service). When set, every lane registers a commit tap and each
  // successful commit is observed (sampled) off the sequencer path.
  // Strictly detection-only: ledger bytes are identical either way.
  market::Auditor* auditor = nullptr;
};

// One buyer request: purchase the version at `inverse_ncp` of `model`.
struct PurchaseRequest {
  std::string buyer_id;
  ml::ModelKind model = ml::ModelKind::kLinearRegression;
  double inverse_ncp = 0.0;
  std::string report_loss_name;
  // Overrides ServiceOptions::default_deadline_seconds when > 0.
  double deadline_seconds = 0.0;
  // Which product to buy from. Routed by the catalog (exact product
  // match, then consistent hash) in sharded mode; must be empty for a
  // single-marketplace service.
  std::string product_id;
};

// Terminal outcome of one submitted request, delivered via the future
// returned by Submit. Every submission gets exactly one result — shed
// and failed requests carry the typed non-OK status, never a silent
// drop.
struct PurchaseResult {
  // Admission ticket (commit order within the routed shard's lane);
  // -1 for requests shed at admission.
  int64_t ticket = -1;
  // Product the request routed to ("" in single-marketplace mode).
  std::string product_id;
  // Trace id minted at submission — the key for correlating this result
  // with its spans (telemetry::SnapshotTraceEvents) and flight record.
  uint64_t trace_id = 0;
  Status status;
  market::Broker::Purchase purchase;  // Valid only when status.ok().
  int64_t sequence = -1;              // Ledger sequence when ok.
  int quote_attempts = 0;
  int journal_attempts = 0;
};

// Concurrent quote/purchase front end over one Marketplace — the layer
// that lets the in-process broker survive real traffic: a bounded
// admission queue with explicit load shedding, a worker pool (built on
// common/parallel.h) running the quote phase concurrently, per-request
// deadlines with cooperative cancellation down to the error-curve
// grid-point boundary, retry-with-backoff around the fault points from
// the recovery substrate, per-downstream circuit breakers, and a
// graceful drain that finishes in-flight work and flushes the journal.
//
// Determinism contract (the chaos soak's headline property): quotes are
// pure per-ticket functions of the master seed, and commits are
// serialized in ticket order by an internal sequencer. As long as
// admission order is deterministic (single submitter) and no request
// exhausts its retry budget, the final ledger — and therefore the
// journal and everything recovered from it — is byte-identical at every
// worker count, even with counted fault injection armed.
//
// Sharded mode (catalog constructor): every request routes by its
// product id to one bulkheaded Shard lane. The request pipeline gains a
// product dimension end to end — per-lane dense admission tickets,
// per-lane commit sequencers (a contiguous FIFO batch's per-lane
// subsequence is automatically a consecutive lane-ticket run, so batch
// commits need one rendezvous per lane per batch), per-lane circuit
// breakers, and per-lane RNG roots (seed ^ fnv(product)) so each
// shard's ledger is byte-identical at every worker count independently.
// A quarantined shard sheds its requests with a typed kUnavailable
// naming the shard while every other lane keeps serving.
class MarketService {
 public:
  // `market` must outlive the service. Offerings must be installed (and
  // the journal attached, if desired) before Start.
  MarketService(market::Marketplace* market, ServiceOptions options);
  // Sharded catalog mode: routes per-product requests to bulkheaded
  // shards. `catalog` must outlive the service, and every product must
  // be added before constructing the service (lanes are built here).
  MarketService(market::Catalog* catalog, ServiceOptions options);
  ~MarketService();  // Drains (best effort) when still running.

  MarketService(const MarketService&) = delete;
  MarketService& operator=(const MarketService&) = delete;

  // Pre-builds every offering's error curves (so worker threads hit
  // read-only brokers) and launches the worker pool.
  Status Start();

  // Admits the request or sheds it; always returns a future that will
  // hold the typed outcome. Sheds (queue full, draining, injected
  // 'service.enqueue' fault) resolve immediately with kUnavailable;
  // malformed requests with kInvalidArgument. Thread-safe.
  std::future<PurchaseResult> Submit(PurchaseRequest request);

  // Graceful shutdown: stops admissions (subsequent Submits are shed),
  // lets the workers finish every admitted request, then flushes the
  // marketplace journal (retried under the journal policy). Idempotent;
  // returns the flush status.
  Status Drain();

  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  // Monotone service-level counters (mirrored into the telemetry
  // registry under service_*).
  struct Stats {
    int64_t submitted = 0;
    int64_t admitted = 0;
    int64_t shed = 0;
    int64_t succeeded = 0;
    // Terminal non-OK results: admitted requests that did not book
    // (including deadline expiries) plus submissions rejected before
    // admission (service not started, malformed request). Sheds are
    // counted separately and never here.
    int64_t failed = 0;
    int64_t deadline_exceeded = 0;
    int64_t retries = 0;  // Extra attempts beyond the first, both stages.
  };
  Stats stats() const;

  // The first lane's breakers (the only lane in single-marketplace
  // mode). Sharded mode has one breaker pair per lane; see ShardViews.
  const CircuitBreaker& quote_breaker() const;
  const CircuitBreaker& journal_breaker() const;

  // Windowed availability / burn-rate tracker fed with every terminal
  // outcome (successes, failures, sheds, pre-admission rejects). The
  // admin endpoint exports its gauges; the soak harness asserts on it.
  const telemetry::SloTracker& slo_tracker() const { return slo_; }

  // The attached economic auditor (nullptr when auditing is off). The
  // admin server joins it into /auditz and the health report.
  market::Auditor* auditor() const { return options_.auditor; }

  // True while any marketplace (or shard) is rebuilding state from a
  // checkpoint or journal. /healthz reports the recovering components
  // so orchestrators hold traffic until restore completes.
  bool recovering() const;

  // Per-component liveness for /healthz and /shardz: `healthy` is the
  // 200/503 bit; `problems` enumerates every unhealthy component
  // ("shard shard-7: quarantined (...)", "service: draining", ...) so
  // an operator — or the CI curl smoke — can see exactly which bulkhead
  // tripped instead of an opaque global 503.
  struct HealthReport {
    bool healthy = false;
    std::vector<std::string> problems;
  };
  HealthReport GetHealthReport() const;

  // Liveness summary for /healthz: started, not draining, no component
  // mid-recovery or quarantined, and no lane breaker stuck open.
  bool Healthy() const { return GetHealthReport().healthy; }

  // One row per lane for /shardz and blast-radius assertions: shard
  // identity/health plus this service's per-lane traffic counters.
  struct ShardView {
    std::string product_id;
    market::ShardState state = market::ShardState::kServing;
    std::string state_detail;
    double revenue = 0.0;
    int64_t sales = 0;
    int64_t submitted = 0;
    int64_t shed = 0;
    int64_t succeeded = 0;
    int64_t failed = 0;
    market::Shard::Stats shard_stats;
    market::Marketplace::RestoreReport last_restore;
  };
  std::vector<ShardView> ShardViews() const;

 private:
  // Common constructor both public forms delegate to (exactly one of
  // `market` / `catalog` is non-null).
  MarketService(market::Marketplace* market, market::Catalog* catalog,
                ServiceOptions options);

  struct Item {
    int64_t ticket = 0;  // Dense per lane.
    int lane = 0;
    PurchaseRequest request;
    std::promise<PurchaseResult> promise;
    std::shared_ptr<CancelToken> cancel;
    int64_t submit_ns = 0;
    // The marketplace instance this item quotes against, resolved from
    // the lane at execution (keeps the instance alive across a
    // concurrent shard recovery swap).
    std::shared_ptr<market::Marketplace> market;
    // Request-scoped trace context: minted at submission, re-parented to
    // the worker's root span so every downstream span (curve build,
    // quote attempt, journal append) lands in one tree.
    telemetry::TraceContext trace;
  };

  // One product lane: the routing target of the sharded pipeline. The
  // single-marketplace constructor builds exactly one lane with a fixed
  // marketplace and an empty product id, which reproduces the legacy
  // behavior (and RNG streams) bit for bit.
  struct Lane {
    int index = 0;
    std::string product_id;              // "" on the legacy lane.
    market::Shard* shard = nullptr;      // Null on the legacy lane.
    market::Marketplace* fixed_market = nullptr;  // Legacy lane only.
    // Lane seed: the master seed on the legacy lane (byte-compat),
    // seed ^ fnv(product_id) on shard lanes — each shard's ledger is a
    // pure function of (master seed, product, its own request order).
    uint64_t seed = 0;
    Rng base_rng{0};
    std::unique_ptr<CircuitBreaker> quote_breaker;
    std::unique_ptr<CircuitBreaker> journal_breaker;
    // Commit tap of the attached auditor (nullptr when auditing is
    // off); written by the committing thread under the sequencer.
    market::AuditTap* audit_tap = nullptr;
    // Admission tickets are dense per lane; guarded by submit_mu_.
    int64_t next_ticket = 0;
    // Per-lane commit sequencer. Same instrumented name on every lane:
    // contention aggregates across the catalog.
    prof::ProfiledMutex seq_mu{"commit_sequencer"};
    std::condition_variable_any seq_cv;
    int64_t next_commit = 0;
    // Per-lane outcome counters (blast-radius accounting).
    std::atomic<int64_t> submitted{0};
    std::atomic<int64_t> shed{0};
    std::atomic<int64_t> succeeded{0};
    std::atomic<int64_t> failed{0};
    // Legacy-lane booked totals, stored by the committing worker (the
    // sequencer serializes commits) so ShardViews can report revenue
    // without reading the live ledger off-thread. Shard lanes keep the
    // equivalent cache in Shard::Stats, which also survives recovery.
    std::atomic<double> booked_revenue{0.0};
    std::atomic<int64_t> booked_sales{0};
  };

  void WorkerLoop();
  // Quote phase (concurrent): resolves the broker/curve and runs the
  // retried, breaker-gated quote. Fills result.status/purchase.
  void ExecuteQuote(const Item& item, PurchaseResult& result);
  // Batched quote phase over one PopBatch run: per-item admission/fault/
  // breaker checks, then one Broker::QuoteBatch per contiguous run of
  // items sharing a (broker, curve). An item whose batched first attempt
  // fails re-enters the standard retry loop with that outcome replayed
  // as attempt one, so attempt budgets, backoff delays, deadline expiry
  // — and ledger bytes — match request-at-a-time draining exactly.
  void ExecuteQuoteBatch(std::vector<Item>& items,
                         std::vector<PurchaseResult>& results);
  // The retried, breaker-gated quote loop shared by both paths. When
  // `first_attempt` is non-null its status is served as attempt one
  // (the already-executed batched attempt) instead of re-quoting.
  void RunQuoteRetries(const Item& item, PurchaseResult& result,
                       market::Broker* broker,
                       const pricing::ErrorCurve& curve,
                       const Status* first_attempt);
  // Books one successful quote (retried, breaker-gated journal append).
  // Caller holds the sequencer turn for the item's ticket.
  void CommitOne(Item& item, PurchaseResult& result);
  // Commit phase: waits for the sequencer turn of `ticket`, then (for
  // successful quotes) books the sale with the retried, breaker-gated
  // journal append.
  void CommitInOrder(Item& item, PurchaseResult& result);
  // Batch commit: one sequencer wait for the batch's first ticket, then
  // commits the (consecutive) tickets in order with a single wakeup at
  // the end — the per-request condvar thundering herd this replaces is
  // what made the soak scale negatively with workers.
  void CommitBatchInOrder(std::vector<Item>& items,
                          std::vector<PurchaseResult>& results);
  void Finish(Item& item, PurchaseResult result,
              telemetry::FlightRecord flight);
  // Files a terminal outcome that never reached a worker (shed or
  // pre-admission reject) into the flight recorder and SLO tracker.
  void RecordRejected(uint64_t trace_id, const Status& status, bool shed,
                      int64_t submit_ns);

  // Routes a request to its lane (the single lane in legacy mode; by
  // product id through the catalog in sharded mode). Returns nullptr
  // with a typed status — kUnavailable naming the shard for quarantined
  // lanes, kInvalidArgument for malformed routing — when unroutable.
  Lane* RouteLane(const PurchaseRequest& request, Status* status);

  StatusOr<std::pair<market::Broker*, std::shared_ptr<const pricing::ErrorCurve>>>
  ResolveTarget(market::Marketplace* market, const PurchaseRequest& request,
                const CancelToken* cancel,
                const telemetry::TraceContext* trace);

  // Journal flush (retried under the journal policy) for one lane's
  // marketplace — the per-lane half of Drain.
  Status FlushLaneJournal(Lane& lane);

  market::Marketplace* market_;            // Legacy mode; null if sharded.
  market::Catalog* catalog_ = nullptr;     // Sharded mode; null if legacy.
  ServiceOptions options_;
  Clock* clock_;
  telemetry::SloTracker slo_;

  // Lanes are built in the constructor and never resized afterwards, so
  // lookups are lock-free. lane index == shard index in sharded mode.
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::unordered_map<const market::Shard*, int> lane_by_shard_;

  BoundedQueue<Item> queue_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread runner_;

  // Admission: ticket assignment must be atomic with the queue push so
  // each lane's admitted tickets are dense (the sequencers rely on it).
  // The queue is globally FIFO, which makes the per-lane subsequence of
  // any contiguous batch a consecutive run of that lane's tickets.
  std::mutex submit_mu_;

  // Serializes error-curve resolution only for cache-off brokers, whose
  // legacy curve map is not concurrency-safe. Cache-on brokers (the
  // default) resolve through the single-flight CurveCache and never
  // take this lock.
  std::mutex curve_mu_;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::mutex drain_mu_;  // Serializes concurrent Drain calls.
  std::atomic<bool> drained_{false};
  Status drain_status_;  // Guarded by drain_mu_ + drained_ flag.

  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> admitted_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> succeeded_{0};
  std::atomic<int64_t> failed_{0};
  std::atomic<int64_t> deadline_exceeded_{0};
  std::atomic<int64_t> retries_{0};
};

}  // namespace nimbus::service

#endif  // NIMBUS_SERVICE_SERVICE_H_
