#include "service/service.h"

#include <algorithm>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "common/telemetry.h"

namespace nimbus::service {
namespace {

telemetry::Counter& SubmittedCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("service_submitted_total");
  return counter;
}

// Per-offering admission volume — the serving-layer face of the
// broker's labeled quote/sale/revenue families. Label values are model
// kinds (bounded, low-cardinality).
telemetry::CounterVec& OfferingRequestsVec() {
  static telemetry::CounterVec& vec =
      telemetry::Registry::Global().GetCounterVec(
          "service_offering_requests_total", "offering");
  return vec;
}

telemetry::Counter& ShedCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("service_shed_total");
  return counter;
}

telemetry::Counter& CompletedCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("service_completed_total");
  return counter;
}

telemetry::Counter& FailedCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("service_failed_total");
  return counter;
}

telemetry::Counter& DeadlineCounter() {
  static telemetry::Counter& counter = telemetry::Registry::Global().GetCounter(
      "service_deadline_exceeded_total");
  return counter;
}

telemetry::Counter& RetryCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("service_retry_total");
  return counter;
}

telemetry::Gauge& QueueDepthGauge() {
  static telemetry::Gauge& gauge =
      telemetry::Registry::Global().GetGauge("service_queue_depth");
  return gauge;
}

telemetry::Histogram& LatencyHistogram() {
  static telemetry::Histogram& histogram =
      telemetry::Registry::Global().GetHistogram("service_request_latency_us");
  return histogram;
}

// Per-ticket RNG stream ids under the service master seed. Keeping the
// purposes on disjoint strides makes every stream a pure function of
// (seed, ticket, purpose) — independent of scheduling and retries.
constexpr uint64_t kQuoteStream = 0;
constexpr uint64_t kQuoteBackoffStream = 1;
constexpr uint64_t kJournalBackoffStream = 2;
constexpr uint64_t kStreamsPerTicket = 4;

uint64_t StreamId(int64_t ticket, uint64_t purpose) {
  return static_cast<uint64_t>(ticket) * kStreamsPerTicket + purpose;
}

}  // namespace

MarketService::MarketService(market::Marketplace* market,
                             ServiceOptions options)
    : market_(market),
      options_(options),
      clock_(options.clock != nullptr ? options.clock : SystemClock::Get()),
      base_rng_(options.seed),
      slo_([&] {
        telemetry::SloOptions slo = options.slo;
        if (slo.clock == nullptr) slo.clock = clock_;
        return slo;
      }()),
      queue_(static_cast<size_t>(std::max(options.queue_capacity, 1))),
      quote_breaker_("broker.quote", [&] {
        CircuitBreakerOptions breaker = options.quote_breaker;
        if (breaker.clock == nullptr) breaker.clock = clock_;
        return breaker;
      }()),
      journal_breaker_("journal.append", [&] {
        CircuitBreakerOptions breaker = options.journal_breaker;
        if (breaker.clock == nullptr) breaker.clock = clock_;
        return breaker;
      }()) {
  options_.num_workers = std::max(options_.num_workers, 1);
}

MarketService::~MarketService() {
  if (started_.load(std::memory_order_acquire)) {
    const Status status = Drain();
    if (!status.ok()) {
      NIMBUS_LOG(kWarning) << "service drain in destructor failed: "
                           << status.ToString();
    }
  }
}

Status MarketService::Start() {
  if (started_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("service already started");
  }
  if (market_ == nullptr) {
    return InvalidArgumentError("service needs a marketplace");
  }
  // Prewarm every offering's error curves so the workers only ever hit
  // the (stable-address) cache; a cold build failing here is a
  // configuration error better surfaced at startup than per-request.
  for (ml::ModelKind kind : market_->Offerings()) {
    NIMBUS_ASSIGN_OR_RETURN(market::Broker * broker, market_->BrokerFor(kind));
    for (const auto& loss : broker->model().report_losses()) {
      NIMBUS_RETURN_IF_ERROR(broker->GetErrorCurve(loss->name()).status());
    }
  }
  // The pool is N-wide counting the calling thread, so the runner thread
  // itself drains the queue alongside num_workers - 1 pool workers.
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  runner_ = std::thread([this] {
    pool_->ParallelFor(
        0, options_.num_workers, [this](int64_t) { WorkerLoop(); },
        options_.num_workers);
  });
  // Publish started_ last: Drain and the destructor gate on it before
  // touching pool_/runner_, so the release store must not happen while
  // either is still being constructed (data race on runner_ otherwise).
  started_.store(true, std::memory_order_release);
  return OkStatus();
}

std::future<PurchaseResult> MarketService::Submit(PurchaseRequest request) {
  std::promise<PurchaseResult> reject;
  std::future<PurchaseResult> reject_future = reject.get_future();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  SubmittedCounter().Increment();
  OfferingRequestsVec()
      .WithLabel(std::string(ml::ModelKindToString(request.model)))
      .Increment();

  // One trace context per submission, minted from an atomic counter (no
  // RNG involved, so the ledger-determinism contract is untouched). The
  // id outlives the request: it keys spans, the flight record, and the
  // PurchaseResult the buyer sees.
  const telemetry::TraceContext trace = telemetry::NewTraceContext();
  const int64_t submit_ns = clock_->NowNanos();

  PurchaseResult result;
  result.trace_id = trace.trace_id;
  if (!started_.load(std::memory_order_acquire)) {
    result.status = FailedPreconditionError("service is not started");
    failed_.fetch_add(1, std::memory_order_relaxed);
    FailedCounter().Increment();
    RecordRejected(trace.trace_id, result.status, /*shed=*/false, submit_ns);
    reject.set_value(std::move(result));
    return reject_future;
  }
  if (request.buyer_id.empty()) {
    result.status = InvalidArgumentError("buyer id must be non-empty");
    failed_.fetch_add(1, std::memory_order_relaxed);
    FailedCounter().Increment();
    RecordRejected(trace.trace_id, result.status, /*shed=*/false, submit_ns);
    reject.set_value(std::move(result));
    return reject_future;
  }

  Item item;
  item.request = std::move(request);
  item.promise = std::move(reject);
  item.submit_ns = submit_ns;
  item.trace = trace;
  const double deadline = item.request.deadline_seconds > 0.0
                              ? item.request.deadline_seconds
                              : options_.default_deadline_seconds;
  item.cancel = std::make_shared<CancelToken>(clock_, deadline);

  const char* shed_reason = nullptr;
  {
    std::lock_guard<std::mutex> lock(submit_mu_);
    Status admit = OkStatus();
    if (fault::ShouldFail("service.enqueue")) {
      admit = UnavailableError("fault injected at 'service.enqueue'");
      shed_reason = "fault:service.enqueue";
    } else if (draining_.load(std::memory_order_acquire)) {
      admit = UnavailableError("service is draining");
      shed_reason = "draining";
    } else {
      item.ticket = next_ticket_;
      admit = queue_.TryPush(std::move(item));
      if (!admit.ok()) {
        shed_reason = "queue-full";
      }
    }
    if (admit.ok()) {
      ++next_ticket_;
      admitted_.fetch_add(1, std::memory_order_relaxed);
      QueueDepthGauge().Set(static_cast<double>(queue_.size()));
      return reject_future;
    }
    // TryPush only consumes `item` on success, but it was moved-from
    // regardless; rebuild the promise path for the shed result.
    result.status = std::move(admit);
  }
  shed_.fetch_add(1, std::memory_order_relaxed);
  ShedCounter().Increment();
  telemetry::TraceInstant("service.shed", &trace, shed_reason);
  RecordRejected(trace.trace_id, result.status, /*shed=*/true, submit_ns);
  std::promise<PurchaseResult> shed_promise;
  std::future<PurchaseResult> shed_future = shed_promise.get_future();
  shed_promise.set_value(std::move(result));
  return shed_future;
}

void MarketService::RecordRejected(uint64_t trace_id, const Status& status,
                                   bool shed, int64_t submit_ns) {
  telemetry::FlightRecord flight;
  flight.trace_id = trace_id;
  flight.ticket = -1;
  flight.status_code = static_cast<int>(status.code());
  flight.total_us =
      static_cast<double>(clock_->NowNanos() - submit_ns) / 1000.0;
  flight.shed = shed;
  telemetry::FlightRecorder::Global().Record(flight);
  slo_.RecordRequest(/*ok=*/false, flight.total_us);
}

StatusOr<std::pair<market::Broker*, std::shared_ptr<const pricing::ErrorCurve>>>
MarketService::ResolveTarget(const PurchaseRequest& request,
                             const CancelToken* cancel,
                             const telemetry::TraceContext* trace) {
  NIMBUS_ASSIGN_OR_RETURN(market::Broker * broker,
                          market_->BrokerFor(request.model));
  std::string loss_name = request.report_loss_name;
  if (loss_name.empty()) {
    loss_name = broker->model().report_losses().front()->name();
  }
  std::shared_ptr<const pricing::ErrorCurve> curve;
  if (broker->curve_cache_enabled()) {
    // The CurveCache is concurrency-safe (hits are shared-lock lookups,
    // cold builds single-flight), so the hot path takes no service lock.
    NIMBUS_ASSIGN_OR_RETURN(curve,
                            broker->GetErrorCurve(loss_name, cancel, trace));
  } else {
    // Legacy cache-off path: GetErrorCurve mutates the broker's private
    // map on a cold miss, so resolution is serialized.
    std::lock_guard<std::mutex> lock(curve_mu_);
    NIMBUS_ASSIGN_OR_RETURN(curve,
                            broker->GetErrorCurve(loss_name, cancel, trace));
  }
  return std::make_pair(broker, std::move(curve));
}

void MarketService::ExecuteQuote(const Item& item, PurchaseResult& result) {
  const CancelToken* cancel = item.cancel.get();
  result.status = CancelToken::Check(cancel, "admission-to-execution");
  if (!result.status.ok()) {
    return;
  }
  auto target = ResolveTarget(item.request, cancel, &item.trace);
  if (!target.ok()) {
    result.status = target.status();
    return;
  }
  RunQuoteRetries(item, result, target->first, *target->second,
                  /*first_attempt=*/nullptr);
}

void MarketService::RunQuoteRetries(const Item& item, PurchaseResult& result,
                                    market::Broker* broker,
                                    const pricing::ErrorCurve& curve,
                                    const Status* first_attempt) {
  bool replay_first = first_attempt != nullptr;
  auto attempt = [&]() -> Status {
    if (replay_first) {
      // The batched path already executed (and accounted) attempt one;
      // hand its outcome to the retry loop so budgets and backoff line
      // up with request-at-a-time draining.
      replay_first = false;
      return *first_attempt;
    }
    // One child span per attempt, so a retried request shows each try —
    // and why it failed — as a sibling under the request's root span.
    telemetry::TraceSpan span("service.quote.attempt", &item.trace);
    if (fault::ShouldFail("service.execute")) {
      span.Annotate("fault:service.execute");
      return InternalError("fault injected at 'service.execute'");
    }
    if (Status allowed = quote_breaker_.Allow(); !allowed.ok()) {
      span.Annotate("breaker-open");
      return allowed;
    }
    // A fresh fork per attempt: a retried quote redraws the exact same
    // noise, so retries cannot perturb the ledger bytes.
    Rng rng = base_rng_.Fork(StreamId(item.ticket, kQuoteStream));
    StatusOr<market::Broker::Purchase> quote = broker->QuoteAtInverseNcp(
        item.request.inverse_ncp, curve, rng, &span.context());
    if (quote.ok()) {
      quote_breaker_.RecordSuccess();
      result.purchase = std::move(*quote);
      return OkStatus();
    }
    if (quote.status().code() == StatusCode::kInternal) {
      quote_breaker_.RecordFailure();
      if (quote.status().message().find("fault injected") !=
          std::string::npos) {
        span.Annotate("fault:broker.quote");
      }
    } else {
      // The downstream answered; a caller error is not broker sickness.
      quote_breaker_.RecordSuccess();
    }
    return quote.status();
  };
  result.status = RetryWithBackoff(
      options_.quote_retry,
      base_rng_.Fork(StreamId(item.ticket, kQuoteBackoffStream)), *clock_,
      item.cancel.get(), attempt, &result.quote_attempts);
}

void MarketService::ExecuteQuoteBatch(std::vector<Item>& items,
                                      std::vector<PurchaseResult>& results) {
  const size_t n = items.size();
  // Per-item admission checks and target resolution. Distinct items may
  // name distinct models (brokers), so targets are tracked per item.
  struct Target {
    market::Broker* broker = nullptr;
    std::shared_ptr<const pricing::ErrorCurve> curve;
    bool pending = false;  // Still needs its first quote attempt.
  };
  std::vector<Target> targets(n);
  for (size_t i = 0; i < n; ++i) {
    const Item& item = items[i];
    results[i].status =
        CancelToken::Check(item.cancel.get(), "admission-to-execution");
    if (!results[i].status.ok()) {
      continue;
    }
    auto target = ResolveTarget(item.request, item.cancel.get(), &item.trace);
    if (!target.ok()) {
      results[i].status = target.status();
      continue;
    }
    targets[i].broker = target->first;
    targets[i].curve = std::move(target->second);
    targets[i].pending = true;
  }
  // First attempt, batched: one Broker::QuoteBatch per contiguous run of
  // items sharing a (broker, curve). Per-item service.execute fault and
  // breaker checks mirror the single path's attempt preamble.
  for (size_t begin = 0; begin < n;) {
    if (!targets[begin].pending) {
      ++begin;
      continue;
    }
    size_t end = begin + 1;
    while (end < n && targets[end].pending &&
           targets[end].broker == targets[begin].broker &&
           targets[end].curve == targets[begin].curve) {
      ++end;
    }
    telemetry::TraceSpan span("service.quote.batch_attempt",
                              &items[begin].trace);
    std::vector<size_t> quoted;             // Items that reach the broker.
    std::vector<Rng> rngs;                  // Stable storage for item rngs.
    quoted.reserve(end - begin);
    rngs.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      if (fault::ShouldFail("service.execute")) {
        span.Annotate("fault:service.execute");
        results[i].status = InternalError("fault injected at 'service.execute'");
        continue;
      }
      if (Status allowed = quote_breaker_.Allow(); !allowed.ok()) {
        span.Annotate("breaker-open");
        results[i].status = std::move(allowed);
        continue;
      }
      quoted.push_back(i);
      rngs.push_back(base_rng_.Fork(StreamId(items[i].ticket, kQuoteStream)));
    }
    if (!quoted.empty()) {
      std::vector<market::Broker::QuoteBatchItem> batch(quoted.size());
      std::vector<StatusOr<market::Broker::Purchase>> outcomes(
          quoted.size(), StatusOr<market::Broker::Purchase>(
                             InternalError("quote batch slot not filled")));
      for (size_t j = 0; j < quoted.size(); ++j) {
        batch[j].inverse_ncp = items[quoted[j]].request.inverse_ncp;
        batch[j].rng = &rngs[j];
      }
      targets[begin].broker->QuoteBatch(*targets[begin].curve, batch, outcomes,
                                        &span.context());
      for (size_t j = 0; j < quoted.size(); ++j) {
        const size_t i = quoted[j];
        if (outcomes[j].ok()) {
          quote_breaker_.RecordSuccess();
          results[i].purchase = std::move(*outcomes[j]);
          results[i].status = OkStatus();
          results[i].quote_attempts = 1;
          targets[i].pending = false;
          continue;
        }
        if (outcomes[j].status().code() == StatusCode::kInternal) {
          quote_breaker_.RecordFailure();
          if (outcomes[j].status().message().find("fault injected") !=
              std::string::npos) {
            span.Annotate("fault:broker.quote");
          }
        } else {
          quote_breaker_.RecordSuccess();
        }
        results[i].status = outcomes[j].status();
      }
    }
    begin = end;
  }
  // Items whose batched first attempt failed re-enter the standard retry
  // loop with that outcome replayed as attempt one — budgets, backoff
  // delays, and deadline handling are byte-for-byte the single path's
  // (fresh per-ticket forks redraw identical noise on real retries).
  for (size_t i = 0; i < n; ++i) {
    if (!targets[i].pending || results[i].status.ok()) {
      continue;
    }
    const Status first_attempt = std::move(results[i].status);
    RunQuoteRetries(items[i], results[i], targets[i].broker, *targets[i].curve,
                    &first_attempt);
  }
}

void MarketService::CommitOne(Item& item, PurchaseResult& result) {
  if (result.status.ok()) {
    auto attempt = [&]() -> Status {
      telemetry::TraceSpan span("service.commit.attempt", &item.trace);
      if (Status allowed = journal_breaker_.Allow(); !allowed.ok()) {
        span.Annotate("breaker-open");
        return allowed;
      }
      StatusOr<int64_t> sequence =
          market_->RecordQuotedSale(item.request.buyer_id, item.request.model,
                                    result.purchase, &span.context());
      if (sequence.ok()) {
        journal_breaker_.RecordSuccess();
        result.sequence = *sequence;
        return OkStatus();
      }
      if (sequence.status().code() == StatusCode::kInternal) {
        journal_breaker_.RecordFailure();
        if (sequence.status().message().find("fault injected") !=
            std::string::npos) {
          span.Annotate("fault:journal.append");
        }
      } else {
        journal_breaker_.RecordSuccess();
      }
      return sequence.status();
    };
    // Deliberately NOT bounded by the request deadline: once the quote
    // succeeded the commit must land or fail on its own merits —
    // abandoning a half-committed sale on a buyer timeout would fork the
    // ledger from the books.
    result.status = RetryWithBackoff(
        options_.journal_retry,
        base_rng_.Fork(StreamId(item.ticket, kJournalBackoffStream)), *clock_,
        /*cancel=*/nullptr, attempt, &result.journal_attempts);
  }
}

void MarketService::CommitInOrder(Item& item, PurchaseResult& result) {
  std::unique_lock<prof::ProfiledMutex> lock(seq_mu_);
  seq_cv_.wait(lock, [&] { return next_commit_ == item.ticket; });
  CommitOne(item, result);
  ++next_commit_;
  seq_cv_.notify_all();
}

void MarketService::CommitBatchInOrder(std::vector<Item>& items,
                                       std::vector<PurchaseResult>& results) {
  if (items.empty()) {
    return;
  }
  std::unique_lock<prof::ProfiledMutex> lock(seq_mu_);
  // PopBatch guarantees the batch is one consecutive ticket run, so one
  // rendezvous on the first ticket covers the whole batch — and one
  // notify_all at the end replaces the per-request wakeup storm that
  // made every waiting worker recheck its predicate n times per n
  // commits.
  seq_cv_.wait(lock, [&] { return next_commit_ == items.front().ticket; });
  for (size_t i = 0; i < items.size(); ++i) {
    CommitOne(items[i], results[i]);
    ++next_commit_;
  }
  seq_cv_.notify_all();
}

void MarketService::Finish(Item& item, PurchaseResult result,
                           telemetry::FlightRecord flight) {
  const int extra = std::max(result.quote_attempts - 1, 0) +
                    std::max(result.journal_attempts - 1, 0);
  if (extra > 0) {
    retries_.fetch_add(extra, std::memory_order_relaxed);
    RetryCounter().Increment(extra);
  }
  if (result.status.ok()) {
    succeeded_.fetch_add(1, std::memory_order_relaxed);
    CompletedCounter().Increment();
  } else {
    if (result.status.code() == StatusCode::kDeadlineExceeded) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      DeadlineCounter().Increment();
    }
    failed_.fetch_add(1, std::memory_order_relaxed);
    FailedCounter().Increment();
  }
  const double total_us =
      static_cast<double>(clock_->NowNanos() - item.submit_ns) / 1000.0;
  LatencyHistogram().Observe(total_us);

  flight.status_code = static_cast<int32_t>(result.status.code());
  flight.total_us = total_us;
  flight.quote_attempts = result.quote_attempts;
  flight.journal_attempts = result.journal_attempts;
  flight.degraded = result.purchase.degraded;
  telemetry::FlightRecorder::Global().Record(flight);
  slo_.RecordRequest(result.status.ok(), total_us);

  // Black-box auto-dump on the terminal outcomes an operator would page
  // on. Absorbed (retried-away) faults never land here — only faults
  // that survived the retry budget reach a terminal status.
  if (!result.status.ok()) {
    if (result.status.code() == StatusCode::kDeadlineExceeded) {
      telemetry::FlightRecorder::Global().DumpOnIncident("deadline-exceeded");
    } else if (result.status.code() == StatusCode::kFailedPrecondition &&
               result.status.message().find("poisoned") != std::string::npos) {
      telemetry::FlightRecorder::Global().DumpOnIncident("journal-poisoned");
    } else if (result.status.message().find("fault injected") !=
               std::string::npos) {
      telemetry::FlightRecorder::Global().DumpOnIncident("fault");
    }
  }
  item.promise.set_value(std::move(result));
}

void MarketService::WorkerLoop() {
  const size_t max_batch =
      static_cast<size_t>(std::max(options_.max_quote_batch, 1));
  while (true) {
    std::vector<Item> batch = queue_.PopBatch(max_batch);
    if (batch.empty()) {
      return;  // Closed and drained.
    }
    QueueDepthGauge().Set(static_cast<double>(queue_.size()));
    const size_t n = batch.size();
    std::vector<PurchaseResult> results(n);
    std::vector<telemetry::FlightRecord> flights(n);
    // Root span of each request's trace tree; every downstream span
    // (curve build, quote attempts, journal append) parents here.
    // unique_ptr because TraceSpan is pinned (non-movable).
    std::vector<std::unique_ptr<telemetry::TraceSpan>> roots(n);
    const int64_t dequeue_ns = clock_->NowNanos();
    for (size_t i = 0; i < n; ++i) {
      results[i].ticket = batch[i].ticket;
      results[i].trace_id = batch[i].trace.trace_id;
      flights[i].trace_id = batch[i].trace.trace_id;
      flights[i].ticket = batch[i].ticket;
      flights[i].queue_us =
          static_cast<double>(dequeue_ns - batch[i].submit_ns) / 1000.0;
      roots[i] = std::make_unique<telemetry::TraceSpan>("service.request",
                                                        &batch[i].trace);
      batch[i].trace = roots[i]->context();
    }
    const int64_t execute_start_ns = clock_->NowNanos();
    ExecuteQuoteBatch(batch, results);
    const int64_t execute_end_ns = clock_->NowNanos();
    CommitBatchInOrder(batch, results);
    const int64_t commit_end_ns = clock_->NowNanos();
    // Phase timings are batch-level: each request in the batch reports
    // the batch's execute/commit window (the flight record's per-request
    // split is for attribution, not accounting).
    const double execute_us =
        static_cast<double>(execute_end_ns - execute_start_ns) / 1000.0;
    const double commit_us =
        static_cast<double>(commit_end_ns - execute_end_ns) / 1000.0;
    for (size_t i = 0; i < n; ++i) {
      flights[i].execute_us = execute_us;
      flights[i].commit_us = commit_us;
      if (results[i].status.code() == StatusCode::kDeadlineExceeded) {
        roots[i]->Annotate("deadline-exceeded");
      } else if (!results[i].status.ok()) {
        roots[i]->Annotate("failed");
      }
      if (results[i].purchase.degraded) {
        roots[i]->Annotate("degraded");
      }
      roots[i].reset();  // Close the root span before filing the result.
      Finish(batch[i], std::move(results[i]), flights[i]);
    }
  }
}

Status MarketService::Drain() {
  if (!started_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("service was never started");
  }
  draining_.store(true, std::memory_order_release);
  queue_.Close();
  // Concurrent drains serialize here; the first one does the work and
  // later ones return its status.
  std::lock_guard<std::mutex> lock(drain_mu_);
  if (drained_.load(std::memory_order_acquire)) {
    return drain_status_;
  }
  if (runner_.joinable()) {
    runner_.join();
  }
  pool_.reset();
  // Flush under the journal retry policy: a transient fsync fault at
  // shutdown should not lose the tail of the books.
  Rng flush_rng(options_.seed ^ 0x9e3779b97f4a7c15ull);
  drain_status_ = RetryWithBackoff(
      options_.journal_retry, std::move(flush_rng), *clock_,
      /*cancel=*/nullptr, [&] { return market_->FlushJournal(); });
  // Checkpoint-on-drain: with the queue closed and the pool joined the
  // ledger is quiescent, so a graceful shutdown leaves a fresh snapshot
  // behind and the next start recovers in O(delta) over an empty tail.
  // (No-op when the last cadence checkpoint already covers everything.)
  if (drain_status_.ok() && market_->checkpoints_enabled()) {
    const StatusOr<int64_t> generation = market_->CheckpointNow();
    if (!generation.ok()) {
      // Durability is intact (the flush above succeeded); surface the
      // failure so operators notice the degraded restart cost.
      NIMBUS_LOG(kWarning) << "checkpoint on drain failed: "
                           << generation.status().message();
      drain_status_ = generation.status();
    }
  }
  drained_.store(true, std::memory_order_release);
  return drain_status_;
}

bool MarketService::recovering() const { return market_->recovering(); }

MarketService::Stats MarketService::stats() const {
  Stats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.succeeded = succeeded_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  stats.retries = retries_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace nimbus::service
