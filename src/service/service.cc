#include "service/service.h"

#include <algorithm>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "common/telemetry.h"

namespace nimbus::service {
namespace {

telemetry::Counter& SubmittedCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("service_submitted_total");
  return counter;
}

// Per-offering admission volume — the serving-layer face of the
// broker's labeled quote/sale/revenue families. Label values are model
// kinds (bounded, low-cardinality).
telemetry::CounterVec& OfferingRequestsVec() {
  static telemetry::CounterVec& vec =
      telemetry::Registry::Global().GetCounterVec(
          "service_offering_requests_total", "offering");
  return vec;
}

telemetry::Counter& ShedCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("service_shed_total");
  return counter;
}

telemetry::Counter& CompletedCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("service_completed_total");
  return counter;
}

telemetry::Counter& FailedCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("service_failed_total");
  return counter;
}

telemetry::Counter& DeadlineCounter() {
  static telemetry::Counter& counter = telemetry::Registry::Global().GetCounter(
      "service_deadline_exceeded_total");
  return counter;
}

telemetry::Counter& RetryCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("service_retry_total");
  return counter;
}

telemetry::Gauge& QueueDepthGauge() {
  static telemetry::Gauge& gauge =
      telemetry::Registry::Global().GetGauge("service_queue_depth");
  return gauge;
}

telemetry::Histogram& LatencyHistogram() {
  static telemetry::Histogram& histogram =
      telemetry::Registry::Global().GetHistogram("service_request_latency_us");
  return histogram;
}

// Per-ticket RNG stream ids under the lane seed. Keeping the purposes
// on disjoint strides makes every stream a pure function of
// (lane seed, lane ticket, purpose) — independent of scheduling,
// retries, and every other lane's traffic.
constexpr uint64_t kQuoteStream = 0;
constexpr uint64_t kQuoteBackoffStream = 1;
constexpr uint64_t kJournalBackoffStream = 2;
constexpr uint64_t kStreamsPerTicket = 4;

uint64_t StreamId(int64_t ticket, uint64_t purpose) {
  return static_cast<uint64_t>(ticket) * kStreamsPerTicket + purpose;
}

// FNV-1a — folds a product id into the master seed so each shard lane
// draws from its own stream family.
uint64_t Fnv64(const std::string& key) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// Non-owning shared_ptr over a caller-owned marketplace (legacy lane):
// the aliasing constructor with an empty control block never deletes.
std::shared_ptr<market::Marketplace> Unowned(market::Marketplace* market) {
  return std::shared_ptr<market::Marketplace>(
      std::shared_ptr<market::Marketplace>(), market);
}

}  // namespace

MarketService::MarketService(market::Marketplace* market,
                             market::Catalog* catalog, ServiceOptions options)
    : market_(market),
      catalog_(catalog),
      options_(options),
      clock_(options.clock != nullptr ? options.clock : SystemClock::Get()),
      slo_([&] {
        telemetry::SloOptions slo = options.slo;
        if (slo.clock == nullptr) slo.clock = clock_;
        return slo;
      }()),
      queue_(static_cast<size_t>(std::max(options.queue_capacity, 1))) {
  options_.num_workers = std::max(options_.num_workers, 1);
  auto make_breaker = [&](const std::string& name,
                          CircuitBreakerOptions breaker) {
    if (breaker.clock == nullptr) breaker.clock = clock_;
    return std::make_unique<CircuitBreaker>(name, breaker);
  };
  auto add_lane = [&](const std::string& product_id, market::Shard* shard,
                      market::Marketplace* fixed_market) {
    auto lane = std::make_unique<Lane>();
    lane->index = static_cast<int>(lanes_.size());
    lane->product_id = product_id;
    lane->shard = shard;
    lane->fixed_market = fixed_market;
    // The legacy lane keeps the raw master seed (and the undecorated
    // breaker names), so single-marketplace behavior — ledger bytes
    // included — is bit-identical to the pre-sharding service.
    lane->seed = product_id.empty() ? options_.seed
                                    : options_.seed ^ Fnv64(product_id);
    lane->base_rng = Rng(lane->seed);
    const std::string suffix =
        product_id.empty() ? std::string() : "@" + product_id;
    lane->quote_breaker =
        make_breaker("broker.quote" + suffix, options_.quote_breaker);
    lane->journal_breaker =
        make_breaker("journal.append" + suffix, options_.journal_breaker);
    if (shard != nullptr) {
      lane_by_shard_.emplace(shard, lane->index);
    }
    // Register the auditor's commit tap before any traffic exists. The
    // tap is observation-only: the lane's RNG streams and ledger bytes
    // are identical with or without it.
    if (options_.auditor != nullptr) {
      lane->audit_tap =
          options_.auditor->RegisterLane(product_id, shard, fixed_market);
    }
    lanes_.push_back(std::move(lane));
  };
  if (catalog_ != nullptr) {
    for (const std::unique_ptr<market::Shard>& shard : catalog_->shards()) {
      add_lane(shard->product_id(), shard.get(), nullptr);
    }
  } else {
    add_lane("", nullptr, market_);
  }
  if (options_.auditor != nullptr && catalog_ != nullptr) {
    options_.auditor->AttachCatalog(catalog_);
  }
}

MarketService::MarketService(market::Marketplace* market,
                             ServiceOptions options)
    : MarketService(market, /*catalog=*/nullptr, options) {}

MarketService::MarketService(market::Catalog* catalog, ServiceOptions options)
    : MarketService(/*market=*/nullptr, catalog, options) {}

MarketService::~MarketService() {
  if (started_.load(std::memory_order_acquire)) {
    const Status status = Drain();
    if (!status.ok()) {
      NIMBUS_LOG(kWarning) << "service drain in destructor failed: "
                           << status.ToString();
    }
  }
}

Status MarketService::Start() {
  if (started_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("service already started");
  }
  if (market_ == nullptr && catalog_ == nullptr) {
    return InvalidArgumentError("service needs a marketplace or a catalog");
  }
  if (catalog_ != nullptr && lanes_.empty()) {
    return InvalidArgumentError(
        "catalog has no shards (add products before constructing the "
        "service)");
  }
  // Prewarm every serving marketplace's error curves so the workers only
  // ever hit the (stable-address) cache; a cold build failing here is a
  // configuration error better surfaced at startup than per-request.
  // Quarantined shards are skipped — their lanes shed until the
  // recovery loop re-admits them (and recovery rebuilds curves cold).
  for (const std::unique_ptr<Lane>& lane : lanes_) {
    market::Marketplace* market = lane->fixed_market;
    std::shared_ptr<market::Marketplace> held;
    if (lane->shard != nullptr) {
      StatusOr<std::shared_ptr<market::Marketplace>> serve =
          lane->shard->Serve();
      if (!serve.ok()) {
        continue;
      }
      held = *std::move(serve);
      market = held.get();
    }
    for (ml::ModelKind kind : market->Offerings()) {
      NIMBUS_ASSIGN_OR_RETURN(market::Broker * broker, market->BrokerFor(kind));
      for (const auto& loss : broker->model().report_losses()) {
        NIMBUS_RETURN_IF_ERROR(broker->GetErrorCurve(loss->name()).status());
      }
    }
  }
  // The pool is N-wide counting the calling thread, so the runner thread
  // itself drains the queue alongside num_workers - 1 pool workers.
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  runner_ = std::thread([this] {
    pool_->ParallelFor(
        0, options_.num_workers, [this](int64_t) { WorkerLoop(); },
        options_.num_workers);
  });
  // Publish started_ last: Drain and the destructor gate on it before
  // touching pool_/runner_, so the release store must not happen while
  // either is still being constructed (data race on runner_ otherwise).
  started_.store(true, std::memory_order_release);
  return OkStatus();
}

MarketService::Lane* MarketService::RouteLane(const PurchaseRequest& request,
                                              Status* status) {
  if (catalog_ == nullptr) {
    if (!request.product_id.empty()) {
      *status = InvalidArgumentError(
          "product_id set on a single-marketplace service (no catalog)");
      return nullptr;
    }
    return lanes_.front().get();
  }
  market::Shard* shard = catalog_->Route(request.product_id);
  if (shard == nullptr) {
    *status = UnavailableError("catalog has no shards");
    return nullptr;
  }
  return lanes_[lane_by_shard_.at(shard)].get();
}

std::future<PurchaseResult> MarketService::Submit(PurchaseRequest request) {
  std::promise<PurchaseResult> reject;
  std::future<PurchaseResult> reject_future = reject.get_future();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  SubmittedCounter().Increment();
  OfferingRequestsVec()
      .WithLabel(std::string(ml::ModelKindToString(request.model)))
      .Increment();

  // One trace context per submission, minted from an atomic counter (no
  // RNG involved, so the ledger-determinism contract is untouched). The
  // id outlives the request: it keys spans, the flight record, and the
  // PurchaseResult the buyer sees.
  const telemetry::TraceContext trace = telemetry::NewTraceContext();
  const int64_t submit_ns = clock_->NowNanos();

  PurchaseResult result;
  result.trace_id = trace.trace_id;
  result.product_id = request.product_id;
  if (!started_.load(std::memory_order_acquire)) {
    result.status = FailedPreconditionError("service is not started");
    failed_.fetch_add(1, std::memory_order_relaxed);
    FailedCounter().Increment();
    RecordRejected(trace.trace_id, result.status, /*shed=*/false, submit_ns);
    reject.set_value(std::move(result));
    return reject_future;
  }
  if (request.buyer_id.empty()) {
    result.status = InvalidArgumentError("buyer id must be non-empty");
    failed_.fetch_add(1, std::memory_order_relaxed);
    FailedCounter().Increment();
    RecordRejected(trace.trace_id, result.status, /*shed=*/false, submit_ns);
    reject.set_value(std::move(result));
    return reject_future;
  }

  Status route_status = OkStatus();
  Lane* lane = RouteLane(request, &route_status);
  if (lane == nullptr) {
    result.status = std::move(route_status);
    failed_.fetch_add(1, std::memory_order_relaxed);
    FailedCounter().Increment();
    RecordRejected(trace.trace_id, result.status, /*shed=*/false, submit_ns);
    reject.set_value(std::move(result));
    return reject_future;
  }
  lane->submitted.fetch_add(1, std::memory_order_relaxed);

  Item item;
  item.lane = lane->index;
  item.request = std::move(request);
  item.promise = std::move(reject);
  item.submit_ns = submit_ns;
  item.trace = trace;
  const double deadline = item.request.deadline_seconds > 0.0
                              ? item.request.deadline_seconds
                              : options_.default_deadline_seconds;
  item.cancel = std::make_shared<CancelToken>(clock_, deadline);

  // Resolve the lane's marketplace up front. On a shard lane this is the
  // bulkhead gate: a quarantined/recovering shard sheds here with the
  // typed kUnavailable naming the shard, and an admitted item pins the
  // instance it was admitted against (a concurrent recovery swap cannot
  // pull the marketplace out from under the worker).
  const char* shed_reason = nullptr;
  Status admit = OkStatus();
  if (lane->shard != nullptr) {
    StatusOr<std::shared_ptr<market::Marketplace>> serve = lane->shard->Serve();
    if (serve.ok()) {
      item.market = *std::move(serve);
    } else {
      admit = serve.status();
      shed_reason = "shard-unavailable";
    }
  } else {
    item.market = Unowned(lane->fixed_market);
  }

  if (admit.ok()) {
    std::lock_guard<std::mutex> lock(submit_mu_);
    if (fault::ShouldFail("service.enqueue")) {
      admit = UnavailableError("fault injected at 'service.enqueue'");
      shed_reason = "fault:service.enqueue";
    } else if (draining_.load(std::memory_order_acquire)) {
      admit = UnavailableError("service is draining");
      shed_reason = "draining";
    } else {
      item.ticket = lane->next_ticket;
      admit = queue_.TryPush(std::move(item));
      if (!admit.ok()) {
        shed_reason = "queue-full";
      }
    }
    if (admit.ok()) {
      ++lane->next_ticket;
      admitted_.fetch_add(1, std::memory_order_relaxed);
      QueueDepthGauge().Set(static_cast<double>(queue_.size()));
      return reject_future;
    }
  }
  // TryPush only consumes `item` on success, but it was moved-from
  // regardless; rebuild the promise path for the shed result.
  result.status = std::move(admit);
  shed_.fetch_add(1, std::memory_order_relaxed);
  lane->shed.fetch_add(1, std::memory_order_relaxed);
  ShedCounter().Increment();
  telemetry::TraceInstant("service.shed", &trace, shed_reason);
  RecordRejected(trace.trace_id, result.status, /*shed=*/true, submit_ns);
  std::promise<PurchaseResult> shed_promise;
  std::future<PurchaseResult> shed_future = shed_promise.get_future();
  shed_promise.set_value(std::move(result));
  return shed_future;
}

void MarketService::RecordRejected(uint64_t trace_id, const Status& status,
                                   bool shed, int64_t submit_ns) {
  telemetry::FlightRecord flight;
  flight.trace_id = trace_id;
  flight.ticket = -1;
  flight.status_code = static_cast<int>(status.code());
  flight.total_us =
      static_cast<double>(clock_->NowNanos() - submit_ns) / 1000.0;
  flight.shed = shed;
  telemetry::FlightRecorder::Global().Record(flight);
  slo_.RecordRequest(/*ok=*/false, flight.total_us);
}

StatusOr<std::pair<market::Broker*, std::shared_ptr<const pricing::ErrorCurve>>>
MarketService::ResolveTarget(market::Marketplace* market,
                             const PurchaseRequest& request,
                             const CancelToken* cancel,
                             const telemetry::TraceContext* trace) {
  NIMBUS_ASSIGN_OR_RETURN(market::Broker * broker,
                          market->BrokerFor(request.model));
  std::string loss_name = request.report_loss_name;
  if (loss_name.empty()) {
    loss_name = broker->model().report_losses().front()->name();
  }
  std::shared_ptr<const pricing::ErrorCurve> curve;
  if (broker->curve_cache_enabled()) {
    // The CurveCache is concurrency-safe (hits are shared-lock lookups,
    // cold builds single-flight), so the hot path takes no service lock.
    NIMBUS_ASSIGN_OR_RETURN(curve,
                            broker->GetErrorCurve(loss_name, cancel, trace));
  } else {
    // Legacy cache-off path: GetErrorCurve mutates the broker's private
    // map on a cold miss, so resolution is serialized.
    std::lock_guard<std::mutex> lock(curve_mu_);
    NIMBUS_ASSIGN_OR_RETURN(curve,
                            broker->GetErrorCurve(loss_name, cancel, trace));
  }
  return std::make_pair(broker, std::move(curve));
}

void MarketService::ExecuteQuote(const Item& item, PurchaseResult& result) {
  const CancelToken* cancel = item.cancel.get();
  result.status = CancelToken::Check(cancel, "admission-to-execution");
  if (!result.status.ok()) {
    return;
  }
  // Injected faults scoped to this lane's product ('point@product'
  // clauses) fire for this request and no other lane's.
  fault::ScopedFaultScope fault_scope(lanes_[item.lane]->product_id);
  auto target =
      ResolveTarget(item.market.get(), item.request, cancel, &item.trace);
  if (!target.ok()) {
    result.status = target.status();
    return;
  }
  RunQuoteRetries(item, result, target->first, *target->second,
                  /*first_attempt=*/nullptr);
}

void MarketService::RunQuoteRetries(const Item& item, PurchaseResult& result,
                                    market::Broker* broker,
                                    const pricing::ErrorCurve& curve,
                                    const Status* first_attempt) {
  Lane& lane = *lanes_[item.lane];
  bool replay_first = first_attempt != nullptr;
  auto attempt = [&]() -> Status {
    if (replay_first) {
      // The batched path already executed (and accounted) attempt one;
      // hand its outcome to the retry loop so budgets and backoff line
      // up with request-at-a-time draining.
      replay_first = false;
      return *first_attempt;
    }
    // One child span per attempt, so a retried request shows each try —
    // and why it failed — as a sibling under the request's root span.
    telemetry::TraceSpan span("service.quote.attempt", &item.trace);
    if (fault::Check("service.execute").fire) {
      span.Annotate("fault:service.execute");
      return InternalError("fault injected at 'service.execute'");
    }
    if (Status allowed = lane.quote_breaker->Allow(); !allowed.ok()) {
      span.Annotate("breaker-open");
      return allowed;
    }
    // A fresh fork per attempt: a retried quote redraws the exact same
    // noise, so retries cannot perturb the ledger bytes.
    Rng rng = lane.base_rng.Fork(StreamId(item.ticket, kQuoteStream));
    StatusOr<market::Broker::Purchase> quote = broker->QuoteAtInverseNcp(
        item.request.inverse_ncp, curve, rng, &span.context());
    if (quote.ok()) {
      lane.quote_breaker->RecordSuccess();
      result.purchase = std::move(*quote);
      return OkStatus();
    }
    if (quote.status().code() == StatusCode::kInternal) {
      lane.quote_breaker->RecordFailure();
      if (quote.status().message().find("fault injected") !=
          std::string::npos) {
        span.Annotate("fault:broker.quote");
      }
    } else {
      // The downstream answered; a caller error is not broker sickness.
      lane.quote_breaker->RecordSuccess();
    }
    return quote.status();
  };
  result.status = RetryWithBackoff(
      options_.quote_retry,
      lane.base_rng.Fork(StreamId(item.ticket, kQuoteBackoffStream)), *clock_,
      item.cancel.get(), attempt, &result.quote_attempts);
}

void MarketService::ExecuteQuoteBatch(std::vector<Item>& items,
                                      std::vector<PurchaseResult>& results) {
  const size_t n = items.size();
  // Per-item admission checks and target resolution. Distinct items may
  // name distinct models (brokers) or lanes (marketplaces), so targets
  // are tracked per item.
  struct Target {
    market::Broker* broker = nullptr;
    std::shared_ptr<const pricing::ErrorCurve> curve;
    bool pending = false;  // Still needs its first quote attempt.
  };
  std::vector<Target> targets(n);
  for (size_t i = 0; i < n; ++i) {
    const Item& item = items[i];
    results[i].status =
        CancelToken::Check(item.cancel.get(), "admission-to-execution");
    if (!results[i].status.ok()) {
      continue;
    }
    fault::ScopedFaultScope fault_scope(lanes_[item.lane]->product_id);
    auto target = ResolveTarget(item.market.get(), item.request,
                                item.cancel.get(), &item.trace);
    if (!target.ok()) {
      results[i].status = target.status();
      continue;
    }
    targets[i].broker = target->first;
    targets[i].curve = std::move(target->second);
    targets[i].pending = true;
  }
  // First attempt, batched: one Broker::QuoteBatch per contiguous run of
  // items sharing a (broker, curve) — runs never span lanes, because
  // each lane's marketplace owns distinct brokers. Per-item
  // service.execute fault and breaker checks mirror the single path's
  // attempt preamble.
  for (size_t begin = 0; begin < n;) {
    if (!targets[begin].pending) {
      ++begin;
      continue;
    }
    size_t end = begin + 1;
    while (end < n && targets[end].pending &&
           targets[end].broker == targets[begin].broker &&
           targets[end].curve == targets[begin].curve) {
      ++end;
    }
    Lane& lane = *lanes_[items[begin].lane];
    fault::ScopedFaultScope fault_scope(lane.product_id);
    telemetry::TraceSpan span("service.quote.batch_attempt",
                              &items[begin].trace);
    std::vector<size_t> quoted;             // Items that reach the broker.
    std::vector<Rng> rngs;                  // Stable storage for item rngs.
    quoted.reserve(end - begin);
    rngs.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      if (fault::Check("service.execute").fire) {
        span.Annotate("fault:service.execute");
        results[i].status = InternalError("fault injected at 'service.execute'");
        continue;
      }
      if (Status allowed = lane.quote_breaker->Allow(); !allowed.ok()) {
        span.Annotate("breaker-open");
        results[i].status = std::move(allowed);
        continue;
      }
      quoted.push_back(i);
      rngs.push_back(lane.base_rng.Fork(StreamId(items[i].ticket, kQuoteStream)));
    }
    if (!quoted.empty()) {
      std::vector<market::Broker::QuoteBatchItem> batch(quoted.size());
      std::vector<StatusOr<market::Broker::Purchase>> outcomes(
          quoted.size(), StatusOr<market::Broker::Purchase>(
                             InternalError("quote batch slot not filled")));
      for (size_t j = 0; j < quoted.size(); ++j) {
        batch[j].inverse_ncp = items[quoted[j]].request.inverse_ncp;
        batch[j].rng = &rngs[j];
      }
      targets[begin].broker->QuoteBatch(*targets[begin].curve, batch, outcomes,
                                        &span.context());
      for (size_t j = 0; j < quoted.size(); ++j) {
        const size_t i = quoted[j];
        if (outcomes[j].ok()) {
          lane.quote_breaker->RecordSuccess();
          results[i].purchase = std::move(*outcomes[j]);
          results[i].status = OkStatus();
          results[i].quote_attempts = 1;
          targets[i].pending = false;
          continue;
        }
        if (outcomes[j].status().code() == StatusCode::kInternal) {
          lane.quote_breaker->RecordFailure();
          if (outcomes[j].status().message().find("fault injected") !=
              std::string::npos) {
            span.Annotate("fault:broker.quote");
          }
        } else {
          lane.quote_breaker->RecordSuccess();
        }
        results[i].status = outcomes[j].status();
      }
    }
    begin = end;
  }
  // Items whose batched first attempt failed re-enter the standard retry
  // loop with that outcome replayed as attempt one — budgets, backoff
  // delays, and deadline handling are byte-for-byte the single path's
  // (fresh per-ticket forks redraw identical noise on real retries).
  for (size_t i = 0; i < n; ++i) {
    if (!targets[i].pending || results[i].status.ok()) {
      continue;
    }
    fault::ScopedFaultScope fault_scope(lanes_[items[i].lane]->product_id);
    const Status first_attempt = std::move(results[i].status);
    RunQuoteRetries(items[i], results[i], targets[i].broker, *targets[i].curve,
                    &first_attempt);
  }
}

void MarketService::CommitOne(Item& item, PurchaseResult& result) {
  Lane& lane = *lanes_[item.lane];
  if (result.status.ok()) {
    fault::ScopedFaultScope fault_scope(lane.product_id);
    auto attempt = [&]() -> Status {
      telemetry::TraceSpan span("service.commit.attempt", &item.trace);
      if (Status allowed = lane.journal_breaker->Allow(); !allowed.ok()) {
        span.Annotate("breaker-open");
        return allowed;
      }
      StatusOr<int64_t> sequence = item.market->RecordQuotedSale(
          item.request.buyer_id, item.request.model, result.purchase,
          &span.context());
      if (sequence.ok()) {
        lane.journal_breaker->RecordSuccess();
        result.sequence = *sequence;
        return OkStatus();
      }
      if (sequence.status().code() == StatusCode::kInternal) {
        lane.journal_breaker->RecordFailure();
        if (sequence.status().message().find("fault injected") !=
            std::string::npos) {
          span.Annotate("fault:journal.append");
        }
      } else {
        lane.journal_breaker->RecordSuccess();
      }
      return sequence.status();
    };
    // Deliberately NOT bounded by the request deadline: once the quote
    // succeeded the commit must land or fail on its own merits —
    // abandoning a half-committed sale on a buyer timeout would fork the
    // ledger from the books.
    result.status = RetryWithBackoff(
        options_.journal_retry,
        lane.base_rng.Fork(StreamId(item.ticket, kJournalBackoffStream)),
        *clock_, /*cancel=*/nullptr, attempt, &result.journal_attempts);
  }
  // Bulkhead triage: the shard inspects every terminal commit outcome.
  // Successes refresh its revenue rollup and checkpoint health; a
  // failure implicating durable state (poisoned journal, short write,
  // ENOSPC) quarantines exactly this shard — the other lanes never see
  // anything.
  if (lane.shard != nullptr) {
    lane.shard->ReportCommitOutcome(result.status);
  } else if (lane.fixed_market != nullptr && result.status.ok()) {
    // Refresh the legacy lane's booked-total cache while this thread
    // still owns the commit sequencer slot (the only safe ledger read).
    lane.booked_revenue.store(lane.fixed_market->total_revenue(),
                              std::memory_order_relaxed);
    lane.booked_sales.store(lane.fixed_market->ledger().SaleCount(),
                            std::memory_order_relaxed);
  }
  // Hand the committed sale to the economic auditor while this thread
  // still owns the sequencer slot — the post-commit ledger totals it
  // fingerprints are only safe to read here. Detection-only: OnCommit
  // never blocks, fails, or touches any lane RNG stream.
  if (lane.audit_tap != nullptr && result.status.ok()) {
    market::Auditor::CommitView view;
    view.model = item.request.model;
    view.inverse_ncp = result.purchase.inverse_ncp;
    view.price = result.purchase.price;
    view.booked_revenue_after = item.market->total_revenue();
    view.sales_after = item.market->ledger().SaleCount();
    view.trace_id = item.trace.trace_id;
    view.ticket = item.ticket;
    view.degraded = result.purchase.degraded;
    options_.auditor->OnCommit(lane.audit_tap, view);
  }
}

void MarketService::CommitInOrder(Item& item, PurchaseResult& result) {
  Lane& lane = *lanes_[item.lane];
  std::unique_lock<prof::ProfiledMutex> lock(lane.seq_mu);
  lane.seq_cv.wait(lock, [&] { return lane.next_commit == item.ticket; });
  CommitOne(item, result);
  ++lane.next_commit;
  lane.seq_cv.notify_all();
}

void MarketService::CommitBatchInOrder(std::vector<Item>& items,
                                       std::vector<PurchaseResult>& results) {
  if (items.empty()) {
    return;
  }
  // Group the batch by lane, in order of first appearance. The queue is
  // globally FIFO and lane tickets are dense, so each lane's
  // subsequence of this contiguous batch is one consecutive run of that
  // lane's tickets: one sequencer rendezvous per lane per batch, one
  // wakeup at the end. Deadlock-free across workers: a group's first
  // ticket only ever waits on runs admitted strictly earlier, so the
  // wait-for graph between batches is acyclic.
  std::vector<int> order;                    // Lane ids, first-appearance.
  std::vector<std::vector<size_t>> groups;   // Item indices per lane.
  for (size_t i = 0; i < items.size(); ++i) {
    const int lane = items[i].lane;
    size_t g = 0;
    while (g < order.size() && order[g] != lane) {
      ++g;
    }
    if (g == order.size()) {
      order.push_back(lane);
      groups.emplace_back();
    }
    groups[g].push_back(i);
  }
  for (size_t g = 0; g < order.size(); ++g) {
    Lane& lane = *lanes_[order[g]];
    std::unique_lock<prof::ProfiledMutex> lock(lane.seq_mu);
    lane.seq_cv.wait(lock, [&] {
      return lane.next_commit == items[groups[g].front()].ticket;
    });
    for (size_t i : groups[g]) {
      CommitOne(items[i], results[i]);
      ++lane.next_commit;
    }
    lane.seq_cv.notify_all();
  }
}

void MarketService::Finish(Item& item, PurchaseResult result,
                           telemetry::FlightRecord flight) {
  Lane& lane = *lanes_[item.lane];
  const int extra = std::max(result.quote_attempts - 1, 0) +
                    std::max(result.journal_attempts - 1, 0);
  if (extra > 0) {
    retries_.fetch_add(extra, std::memory_order_relaxed);
    RetryCounter().Increment(extra);
  }
  if (result.status.ok()) {
    succeeded_.fetch_add(1, std::memory_order_relaxed);
    lane.succeeded.fetch_add(1, std::memory_order_relaxed);
    CompletedCounter().Increment();
  } else {
    if (result.status.code() == StatusCode::kDeadlineExceeded) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      DeadlineCounter().Increment();
    }
    failed_.fetch_add(1, std::memory_order_relaxed);
    lane.failed.fetch_add(1, std::memory_order_relaxed);
    FailedCounter().Increment();
  }
  const double total_us =
      static_cast<double>(clock_->NowNanos() - item.submit_ns) / 1000.0;
  // The trace id rides along as the bucket's exemplar, so /tracez can
  // join a latency bucket back to this request's span tree.
  LatencyHistogram().Observe(total_us, item.trace.trace_id);

  flight.status_code = static_cast<int32_t>(result.status.code());
  flight.total_us = total_us;
  flight.quote_attempts = result.quote_attempts;
  flight.journal_attempts = result.journal_attempts;
  flight.degraded = result.purchase.degraded;
  telemetry::FlightRecorder::Global().Record(flight);
  slo_.RecordRequest(result.status.ok(), total_us);

  // Black-box auto-dump on the terminal outcomes an operator would page
  // on. Absorbed (retried-away) faults never land here — only faults
  // that survived the retry budget reach a terminal status.
  if (!result.status.ok()) {
    if (result.status.code() == StatusCode::kDeadlineExceeded) {
      telemetry::FlightRecorder::Global().DumpOnIncident("deadline-exceeded");
    } else if (result.status.code() == StatusCode::kFailedPrecondition &&
               result.status.message().find("poisoned") != std::string::npos) {
      telemetry::FlightRecorder::Global().DumpOnIncident("journal-poisoned");
    } else if (result.status.message().find("fault injected") !=
               std::string::npos) {
      telemetry::FlightRecorder::Global().DumpOnIncident("fault");
    }
  }
  item.promise.set_value(std::move(result));
}

void MarketService::WorkerLoop() {
  const size_t max_batch =
      static_cast<size_t>(std::max(options_.max_quote_batch, 1));
  while (true) {
    std::vector<Item> batch = queue_.PopBatch(max_batch);
    if (batch.empty()) {
      return;  // Closed and drained.
    }
    QueueDepthGauge().Set(static_cast<double>(queue_.size()));
    const size_t n = batch.size();
    std::vector<PurchaseResult> results(n);
    std::vector<telemetry::FlightRecord> flights(n);
    // Root span of each request's trace tree; every downstream span
    // (curve build, quote attempts, journal append) parents here.
    // unique_ptr because TraceSpan is pinned (non-movable).
    std::vector<std::unique_ptr<telemetry::TraceSpan>> roots(n);
    const int64_t dequeue_ns = clock_->NowNanos();
    for (size_t i = 0; i < n; ++i) {
      results[i].ticket = batch[i].ticket;
      results[i].product_id = lanes_[batch[i].lane]->product_id.empty()
                                  ? batch[i].request.product_id
                                  : lanes_[batch[i].lane]->product_id;
      results[i].trace_id = batch[i].trace.trace_id;
      flights[i].trace_id = batch[i].trace.trace_id;
      flights[i].ticket = batch[i].ticket;
      flights[i].queue_us =
          static_cast<double>(dequeue_ns - batch[i].submit_ns) / 1000.0;
      roots[i] = std::make_unique<telemetry::TraceSpan>("service.request",
                                                        &batch[i].trace);
      batch[i].trace = roots[i]->context();
    }
    const int64_t execute_start_ns = clock_->NowNanos();
    ExecuteQuoteBatch(batch, results);
    const int64_t execute_end_ns = clock_->NowNanos();
    CommitBatchInOrder(batch, results);
    const int64_t commit_end_ns = clock_->NowNanos();
    // Phase timings are batch-level: each request in the batch reports
    // the batch's execute/commit window (the flight record's per-request
    // split is for attribution, not accounting).
    const double execute_us =
        static_cast<double>(execute_end_ns - execute_start_ns) / 1000.0;
    const double commit_us =
        static_cast<double>(commit_end_ns - execute_end_ns) / 1000.0;
    for (size_t i = 0; i < n; ++i) {
      flights[i].execute_us = execute_us;
      flights[i].commit_us = commit_us;
      if (results[i].status.code() == StatusCode::kDeadlineExceeded) {
        roots[i]->Annotate("deadline-exceeded");
      } else if (!results[i].status.ok()) {
        roots[i]->Annotate("failed");
      }
      if (results[i].purchase.degraded) {
        roots[i]->Annotate("degraded");
      }
      roots[i].reset();  // Close the root span before filing the result.
      Finish(batch[i], std::move(results[i]), flights[i]);
    }
  }
}

Status MarketService::FlushLaneJournal(Lane& lane) {
  market::Marketplace* market = lane.fixed_market;
  std::shared_ptr<market::Marketplace> held;
  if (lane.shard != nullptr) {
    StatusOr<std::shared_ptr<market::Marketplace>> serve = lane.shard->Serve();
    if (!serve.ok()) {
      // Quarantined/recovering shards have nothing flushable: the
      // poisoned journal's buffer was already discarded, and durability
      // is the recovery ladder's job now. Not a drain error.
      return OkStatus();
    }
    held = *std::move(serve);
    market = held.get();
  }
  fault::ScopedFaultScope fault_scope(lane.product_id);
  // Flush under the journal retry policy: a transient fsync fault at
  // shutdown should not lose the tail of the books.
  Rng flush_rng(lane.seed ^ 0x9e3779b97f4a7c15ull);
  Status status = RetryWithBackoff(
      options_.journal_retry, std::move(flush_rng), *clock_,
      /*cancel=*/nullptr, [&] { return market->FlushJournal(); });
  // Checkpoint-on-drain: with the queue closed and the pool joined the
  // ledger is quiescent, so a graceful shutdown leaves a fresh snapshot
  // behind and the next start recovers in O(delta) over an empty tail.
  // (No-op when the last cadence checkpoint already covers everything.)
  if (status.ok() && market->checkpoints_enabled()) {
    const StatusOr<int64_t> generation = market->CheckpointNow();
    if (!generation.ok()) {
      // Durability is intact (the flush above succeeded); surface the
      // failure so operators notice the degraded restart cost.
      NIMBUS_LOG(kWarning) << "checkpoint on drain failed"
                           << (lane.product_id.empty()
                                   ? std::string()
                                   : " (shard '" + lane.product_id + "')")
                           << ": " << generation.status().message();
      status = generation.status();
    }
  }
  return status;
}

Status MarketService::Drain() {
  if (!started_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("service was never started");
  }
  draining_.store(true, std::memory_order_release);
  queue_.Close();
  // Concurrent drains serialize here; the first one does the work and
  // later ones return its status.
  std::lock_guard<std::mutex> lock(drain_mu_);
  if (drained_.load(std::memory_order_acquire)) {
    return drain_status_;
  }
  if (runner_.joinable()) {
    runner_.join();
  }
  pool_.reset();
  // Every serving lane flushes (and checkpoints) independently; the
  // first failure is reported, but no lane's flush is skipped because a
  // sibling's failed — drains are bulkheaded like everything else.
  drain_status_ = OkStatus();
  for (const std::unique_ptr<Lane>& lane : lanes_) {
    const Status status = FlushLaneJournal(*lane);
    if (!status.ok() && drain_status_.ok()) {
      drain_status_ = status;
    }
  }
  drained_.store(true, std::memory_order_release);
  return drain_status_;
}

const CircuitBreaker& MarketService::quote_breaker() const {
  return *lanes_.front()->quote_breaker;
}

const CircuitBreaker& MarketService::journal_breaker() const {
  return *lanes_.front()->journal_breaker;
}

bool MarketService::recovering() const {
  if (market_ != nullptr) {
    return market_->recovering();
  }
  for (const std::unique_ptr<Lane>& lane : lanes_) {
    if (lane->shard != nullptr &&
        lane->shard->state() == market::ShardState::kRecovering) {
      return true;
    }
  }
  return false;
}

MarketService::HealthReport MarketService::GetHealthReport() const {
  HealthReport report;
  report.healthy = true;
  if (!started_.load(std::memory_order_acquire)) {
    report.healthy = false;
    report.problems.push_back("service: not started");
  }
  if (draining()) {
    report.healthy = false;
    report.problems.push_back("service: draining");
  }
  if (market_ != nullptr && market_->recovering()) {
    report.healthy = false;
    report.problems.push_back("marketplace: recovering");
  }
  for (const std::unique_ptr<Lane>& lane : lanes_) {
    const std::string name =
        lane->product_id.empty() ? "default" : lane->product_id;
    if (lane->shard != nullptr) {
      const market::ShardState state = lane->shard->state();
      if (state != market::ShardState::kServing) {
        const std::string detail = lane->shard->state_detail();
        report.problems.push_back(
            "shard " + name + ": " + market::ShardStateName(state) +
            (detail.empty() ? "" : " (" + detail + ")"));
        // Degraded shards still serve (journal tail intact); only a
        // quarantined or mid-recovery bulkhead flips the liveness bit.
        if (state != market::ShardState::kDegraded) {
          report.healthy = false;
        }
      }
    }
    if (lane->quote_breaker->state() == CircuitBreaker::State::kOpen) {
      report.healthy = false;
      report.problems.push_back("lane " + name + ": quote breaker open");
    }
    if (lane->journal_breaker->state() == CircuitBreaker::State::kOpen) {
      report.healthy = false;
      report.problems.push_back("lane " + name + ": journal breaker open");
    }
  }
  // Economic-auditor verdicts: a detected invariant violation is a
  // quarantine-grade annotation on the owning shard's health — it flips
  // the liveness bit (the books can no longer be trusted) but never
  // blocks the quote path; the auditor is detection-only.
  if (options_.auditor != nullptr) {
    const market::Auditor::Status audit = options_.auditor->GetStatus();
    if (audit.violations > 0) {
      report.healthy = false;
      for (const market::Auditor::Violation& v : audit.recent) {
        const std::string owner = v.product.empty() ? "default" : v.product;
        report.problems.push_back("shard " + owner + ": audit violation (" +
                                  market::AuditInvariantName(v.invariant) +
                                  ": " + v.detail + ")");
      }
    }
  }
  return report;
}

std::vector<MarketService::ShardView> MarketService::ShardViews() const {
  std::vector<ShardView> views;
  views.reserve(lanes_.size());
  for (const std::unique_ptr<Lane>& lane : lanes_) {
    ShardView view;
    view.product_id = lane->product_id;
    view.submitted = lane->submitted.load(std::memory_order_relaxed);
    view.shed = lane->shed.load(std::memory_order_relaxed);
    view.succeeded = lane->succeeded.load(std::memory_order_relaxed);
    view.failed = lane->failed.load(std::memory_order_relaxed);
    // Booked totals come from caches maintained on the serialized
    // commit path — /shardz may be scraped while workers are mid-commit
    // and must never read the live ledger from this thread.
    if (lane->shard != nullptr) {
      view.state = lane->shard->state();
      view.state_detail = lane->shard->state_detail();
      view.shard_stats = lane->shard->stats();
      view.last_restore = lane->shard->last_restore_report();
      view.revenue = view.shard_stats.revenue;
      view.sales = view.shard_stats.sales;
    } else if (lane->fixed_market != nullptr) {
      view.revenue = lane->booked_revenue.load(std::memory_order_relaxed);
      view.sales = lane->booked_sales.load(std::memory_order_relaxed);
    }
    views.push_back(std::move(view));
  }
  return views;
}

MarketService::Stats MarketService::stats() const {
  Stats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.succeeded = succeeded_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  stats.retries = retries_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace nimbus::service
