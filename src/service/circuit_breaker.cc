#include "service/circuit_breaker.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/telemetry.h"

namespace nimbus::service {
namespace {

// Registry mirrors aggregated across every breaker instance (per-breaker
// detail stays on the instance; names are dynamic, metric names must be
// literals for the lint).
telemetry::Counter& OpenedCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("breaker_opened_total");
  return counter;
}

telemetry::Counter& ClosedCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("breaker_closed_total");
  return counter;
}

telemetry::Counter& HalfOpenCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("breaker_half_open_total");
  return counter;
}

telemetry::Counter& RejectedCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("breaker_rejected_total");
  return counter;
}

}  // namespace

CircuitBreaker::CircuitBreaker(std::string name, CircuitBreakerOptions options)
    : name_(std::move(name)),
      options_(options),
      clock_(options.clock != nullptr ? options.clock : SystemClock::Get()) {}

const char* CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

void CircuitBreaker::TransitionLocked(State next) {
  if (state_ == next) {
    return;
  }
  NIMBUS_LOG(kWarning) << "breaker '" << name_ << "': " << StateName(state_)
                       << " -> " << StateName(next);
  state_ = next;
  switch (next) {
    case State::kOpen:
      ++opened_count_;
      OpenedCounter().Increment();
      open_until_ns_ =
          clock_->NowNanos() +
          static_cast<int64_t>(std::max(options_.open_seconds, 0.0) * 1e9);
      break;
    case State::kHalfOpen:
      HalfOpenCounter().Increment();
      half_open_successes_ = 0;
      probes_in_flight_ = 0;
      break;
    case State::kClosed:
      ClosedCounter().Increment();
      consecutive_failures_ = 0;
      break;
  }
}

void CircuitBreaker::MaybeHalfOpenLocked() {
  if (state_ == State::kOpen && clock_->NowNanos() >= open_until_ns_) {
    TransitionLocked(State::kHalfOpen);
  }
}

Status CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  MaybeHalfOpenLocked();
  switch (state_) {
    case State::kClosed:
      return OkStatus();
    case State::kOpen:
      ++rejected_count_;
      RejectedCounter().Increment();
      return UnavailableError("breaker '" + name_ + "' is open");
    case State::kHalfOpen:
      if (probes_in_flight_ >= std::max(options_.half_open_max_probes, 1)) {
        ++rejected_count_;
        RejectedCounter().Increment();
        return UnavailableError("breaker '" + name_ +
                                "' is half-open (probe quota in flight)");
      }
      ++probes_in_flight_;
      return OkStatus();
  }
  return InternalError("breaker '" + name_ + "' in impossible state");
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kHalfOpen:
      probes_in_flight_ = std::max(probes_in_flight_ - 1, 0);
      if (++half_open_successes_ >=
          std::max(options_.half_open_successes, 1)) {
        TransitionLocked(State::kClosed);
      }
      break;
    case State::kOpen:
      // A success racing the open transition (its Allow predated the
      // trip) carries no new information; ignore it.
      break;
  }
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= std::max(options_.failure_threshold, 1)) {
        TransitionLocked(State::kOpen);
      }
      break;
    case State::kHalfOpen:
      probes_in_flight_ = std::max(probes_in_flight_ - 1, 0);
      // The downstream is still sick: re-open and restart the cooldown.
      TransitionLocked(State::kOpen);
      break;
    case State::kOpen:
      break;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Surface the cooldown expiry to observers too, not just to Allow.
  auto* self = const_cast<CircuitBreaker*>(this);
  self->MaybeHalfOpenLocked();
  return state_;
}

int64_t CircuitBreaker::opened_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opened_count_;
}

int64_t CircuitBreaker::rejected_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_count_;
}

}  // namespace nimbus::service
