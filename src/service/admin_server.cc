#include "service/admin_server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <vector>

#include "common/flight_recorder.h"
#include "common/logging.h"
#include "common/profiler.h"
#include "common/telemetry.h"
#include "common/timeseries.h"

namespace nimbus::service {
namespace {

telemetry::Counter& ScrapesCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("admin_requests_total");
  return counter;
}

std::string HttpResponse(int code, const char* reason,
                         const char* content_type, const std::string& body) {
  std::ostringstream out;
  out << "HTTP/1.1 " << code << ' ' << reason << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

void AppendJsonDouble(std::ostringstream& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out << buf;
}

// "seconds=2&type=cpu" → value of `key`, or `fallback` when absent.
std::string QueryParam(const std::string& query, const std::string& key,
                       const std::string& fallback) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) {
      amp = query.size();
    }
    const size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return fallback;
}

}  // namespace

AdminServer::AdminServer(MarketService* service, AdminServerOptions options)
    : service_(service), options_(options) {
  options_.max_traces = std::max(options_.max_traces, 1);
}

AdminServer::~AdminServer() { Stop(); }

Status AdminServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("admin server already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return UnavailableError("admin server: socket() failed");
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return UnavailableError("admin server: cannot bind 127.0.0.1:" +
                            std::to_string(options_.port));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return UnavailableError("admin server: listen() failed");
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    ::close(fd);
    return UnavailableError("admin server: getsockname() failed");
  }
  listen_fd_ = fd;
  port_ = static_cast<int>(ntohs(bound.sin_port));
  abort_profiles_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { ServeLoop(); });
  NIMBUS_LOG(kInfo) << "admin server listening on 127.0.0.1:" << port_;
  return OkStatus();
}

void AdminServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  // Unwind a mid-window /profilez (checked every 50 ms), then wake the
  // blocking accept; the loop sees running_ == false and exits.
  abort_profiles_.store(true, std::memory_order_release);
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) {
    thread_.join();
  }
  // Handler threads are bounded: socket ops time out at 2 s and the
  // profile window aborts, so the count drains promptly.
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    conn_cv_.wait(lock, [this] { return active_connections_ == 0; });
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void AdminServer::ServeLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) {
        return;  // Stop() shut the listener down.
      }
      continue;  // Transient (EINTR, aborted connection).
    }
    // One short-lived thread per connection so a slow handler (a
    // multi-second /profilez window) never blocks the next scrape —
    // which is also what lets a second /profilez observe the
    // single-flight 503 while the first is still running.
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      ++active_connections_;
    }
    std::thread([this, fd] {
      HandleConnection(fd);
      ::close(fd);
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (--active_connections_ == 0) {
        conn_cv_.notify_all();
      }
    }).detach();
  }
}

void AdminServer::HandleConnection(int fd) const {
  // Bound both the read and the client: a stalled scraper must not
  // wedge the handler forever. (Note: timeouts make recv/send return
  // EINTR even under SA_RESTART — see signal(7) — so the I/O loops
  // below retry it explicitly; the profiler's SIGPROF lands here.)
  timeval timeout;
  timeout.tv_sec = 2;
  timeout.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  if (options_.sndbuf_bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                 sizeof(options_.sndbuf_bytes));
  }

  std::string request;
  char buf[2048];
  while (request.size() < 16 * 1024 &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;
    }
    request.append(buf, static_cast<size_t>(n));
  }
  // "GET <path> HTTP/1.1" — anything else is a 400/405.
  std::string response;
  const size_t line_end = request.find("\r\n");
  std::istringstream line(request.substr(0, line_end));
  std::string method, target;
  line >> method >> target;
  if (method.empty() || target.empty()) {
    response = HttpResponse(400, "Bad Request", "text/plain; charset=utf-8",
                            "bad request\n");
  } else if (method != "GET") {
    response = HttpResponse(405, "Method Not Allowed",
                            "text/plain; charset=utf-8",
                            "only GET is supported\n");
  } else {
    response = HandlePath(target);
  }
  // Loop over partial writes AND EINTR: a large /tracez or /profilez
  // body against a small send buffer takes many send()s, and a signal
  // (SIGPROF during a profile window) can interrupt any of them.
  // MSG_NOSIGNAL turns a hung-up scraper into EPIPE, not process death.
  size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n = ::send(fd, response.data() + sent,
                             response.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;  // Timed out or peer hung up; drop the rest.
    }
    sent += static_cast<size_t>(n);
  }
}

std::string AdminServer::MetricsBody() const {
  if (service_ != nullptr) {
    // Refresh the SLO gauges so every scrape sees current burn rates.
    service_->slo_tracker().ExportGauges();
  }
  // Mirror the process-wide allocation tallies (kept outside the
  // registry — operator new cannot re-enter it) into the alloc_* gauges.
  prof::PublishMetrics();
  std::string body;
  telemetry::ExportPrometheus(&body);
  return body;
}

std::string AdminServer::TracezBody() const {
  const std::vector<telemetry::FlightRecord> records =
      telemetry::FlightRecorder::Global().Snapshot();
  // Newest interesting requests first: errored always qualifies, as
  // does a flight the economic auditor flagged (those are the traces
  // an operator needs to see the mispriced request's span tree); slow
  // successes qualify when a slow_us threshold is configured.
  std::vector<const telemetry::FlightRecord*> picked;
  for (auto it = records.rbegin();
       it != records.rend() &&
       picked.size() < static_cast<size_t>(options_.max_traces);
       ++it) {
    const bool errored = it->status_code != 0;
    const bool slow = options_.slow_us > 0.0 && it->total_us >= options_.slow_us;
    if (errored || slow || it->audit_violation) {
      picked.push_back(&*it);
    }
  }
  // Exemplar join: which histogram buckets cite a picked trace as their
  // last-seen exemplar. Each picked flight lists its citations as
  // "metric{le}" strings, so a /tracez reader can hop from a latency
  // bucket to the concrete request and back.
  std::map<uint64_t, std::vector<std::string>> exemplar_citations;
  {
    std::map<uint64_t, bool> wanted;
    for (const telemetry::FlightRecord* r : picked) {
      if (r->trace_id != 0) {
        wanted[r->trace_id] = true;
      }
    }
    auto cite = [&](const std::string& metric,
                    const telemetry::HistogramSnapshot& h) {
      for (size_t b = 0; b < h.exemplars.size(); ++b) {
        const uint64_t id = h.exemplars[b];
        if (id == 0 || wanted.find(id) == wanted.end()) {
          continue;
        }
        std::ostringstream label;
        label << metric << "{le=";
        if (b < h.boundaries.size()) {
          AppendJsonDouble(label, h.boundaries[b]);
        } else {
          label << "+Inf";
        }
        label << '}';
        exemplar_citations[id].push_back(label.str());
      }
    };
    if (!wanted.empty()) {
      for (const telemetry::Registry::SnapshotEntry& entry :
           telemetry::Registry::Global().Snapshot()) {
        if (entry.kind == telemetry::MetricKind::kHistogram) {
          cite(entry.name, entry.histogram);
        } else if (entry.kind == telemetry::MetricKind::kHistogramVec) {
          for (const telemetry::Registry::LabeledValue& series :
               entry.series) {
            cite(entry.name + "{" + entry.label_key + "=\"" + series.label +
                     "\"}",
                 series.histogram);
          }
        }
      }
    }
  }
  std::ostringstream out;
  out << "{\"tracez\":[";
  bool first = true;
  for (const telemetry::FlightRecord* r : picked) {
    if (!first) {
      out << ',';
    }
    first = false;
    out << "{\"trace_id\":" << r->trace_id << ",\"ticket\":" << r->ticket
        << ",\"status_code\":" << r->status_code << ",\"total_us\":";
    AppendJsonDouble(out, r->total_us);
    out << ",\"shed\":" << (r->shed ? "true" : "false")
        << ",\"audit_violation\":" << (r->audit_violation ? "true" : "false")
        << ",\"exemplar_of\":[";
    const auto cited = exemplar_citations.find(r->trace_id);
    if (cited != exemplar_citations.end()) {
      for (size_t i = 0; i < cited->second.size(); ++i) {
        if (i > 0) {
          out << ',';
        }
        out << '"' << telemetry::JsonEscape(cited->second[i]) << '"';
      }
    }
    out << "],\"spans\":[";
    bool first_span = true;
    for (const telemetry::TraceEventView& span :
         telemetry::SnapshotTraceEvents(r->trace_id)) {
      if (!first_span) {
        out << ',';
      }
      first_span = false;
      out << "{\"name\":\"" << telemetry::JsonEscape(span.name)
          << "\",\"span_id\":" << span.span_id
          << ",\"parent_span_id\":" << span.parent_span_id
          << ",\"duration_us\":";
      AppendJsonDouble(out, span.duration_us);
      out << ",\"notes\":[";
      for (size_t i = 0; i < span.notes.size(); ++i) {
        if (i > 0) {
          out << ',';
        }
        out << '"' << telemetry::JsonEscape(span.notes[i]) << '"';
      }
      out << "]}";
    }
    out << "]}";
  }
  out << "],\"tracing_enabled\":"
      << (telemetry::TracingEnabled() ? "true" : "false") << '}';
  return out.str();
}

std::string AdminServer::ShardzBody() const {
  std::ostringstream out;
  out << "{\"shards\":[";
  if (service_ != nullptr) {
    bool first = true;
    for (const MarketService::ShardView& view : service_->ShardViews()) {
      if (!first) {
        out << ',';
      }
      first = false;
      out << "{\"product\":\"" << telemetry::JsonEscape(view.product_id)
          << "\",\"state\":\"" << market::ShardStateName(view.state)
          << "\",\"detail\":\"" << telemetry::JsonEscape(view.state_detail)
          << "\",\"revenue\":";
      AppendJsonDouble(out, view.revenue);
      out << ",\"sales\":" << view.sales << ",\"submitted\":" << view.submitted
          << ",\"shed\":" << view.shed << ",\"succeeded\":" << view.succeeded
          << ",\"failed\":" << view.failed
          << ",\"quarantines\":" << view.shard_stats.quarantines
          << ",\"recoveries\":" << view.shard_stats.recoveries
          << ",\"recovery_failures\":" << view.shard_stats.recovery_failures
          << ",\"restore_tail_records\":" << view.last_restore.tail_records
          << ",\"restore_generation\":" << view.last_restore.generation << '}';
    }
  }
  out << "]}";
  return out.str();
}

std::string AdminServer::AuditzBody() const {
  market::Auditor* auditor =
      service_ != nullptr ? service_->auditor() : nullptr;
  if (auditor == nullptr) {
    return "{\"enabled\":false}";
  }
  // The auditor's own JSON starts with '{'; tag it enabled so a smoke
  // curl can tell "no auditor attached" from "auditor attached, clean".
  std::string body = auditor->ToJson();
  if (!body.empty() && body.front() == '{') {
    body.insert(1, "\"enabled\":true,");
  }
  return body;
}

std::string AdminServer::StatzBody(const std::string& query) const {
  const std::string points_text = QueryParam(query, "points", "0");
  char* end = nullptr;
  const long points = std::strtol(points_text.c_str(), &end, 10);
  const int max_points =
      (end != points_text.c_str() && *end == '\0' && points > 0)
          ? static_cast<int>(std::min<long>(points, 1 << 20))
          : 0;
  return telemetry::TimeseriesRing::Global().ToJson(max_points);
}

std::string AdminServer::ProfilezResponse(const std::string& query) const {
  const std::string type_name = QueryParam(query, "type", "cpu");
  const StatusOr<prof::ProfileType> type = prof::ParseProfileType(type_name);
  if (!type.ok()) {
    return HttpResponse(400, "Bad Request", "text/plain; charset=utf-8",
                        type.status().message() + "\n");
  }
  const std::string seconds_text = QueryParam(query, "seconds", "2");
  char* end = nullptr;
  const double seconds = std::strtod(seconds_text.c_str(), &end);
  if (end == seconds_text.c_str() || *end != '\0' || !(seconds > 0.0) ||
      seconds > 300.0) {
    return HttpResponse(400, "Bad Request", "text/plain; charset=utf-8",
                        "seconds must be a number in (0, 300]\n");
  }
  const StatusOr<std::string> profile = prof::CollectProfile(
      *type, seconds, prof::CpuProfiler::kDefaultHz, &abort_profiles_);
  if (!profile.ok()) {
    if (profile.status().code() == StatusCode::kUnavailable) {
      // Single-flight: one window at a time, process-wide.
      return HttpResponse(503, "Service Unavailable",
                          "text/plain; charset=utf-8",
                          profile.status().message() + "\n");
    }
    return HttpResponse(500, "Internal Server Error",
                        "text/plain; charset=utf-8",
                        profile.status().message() + "\n");
  }
  return HttpResponse(200, "OK", "text/plain; charset=utf-8", *profile);
}

std::string AdminServer::HandlePath(const std::string& target) const {
  ScrapesCounter().Increment();
  std::string path = target;
  std::string query;
  const size_t qpos = target.find('?');
  if (qpos != std::string::npos) {
    path = target.substr(0, qpos);
    query = target.substr(qpos + 1);
  }
  if (path == "/metrics") {
    return HttpResponse(200, "OK", "text/plain; version=0.0.4; charset=utf-8",
                        MetricsBody());
  }
  if (path == "/healthz") {
    if (service_ == nullptr) {
      return HttpResponse(200, "OK", "text/plain; charset=utf-8", "ok\n");
    }
    // The body enumerates every unhealthy component — "shard wine-7:
    // quarantined (...)", "service: draining" — so an orchestrator (or
    // the CI curl smoke) can tell exactly which bulkhead tripped
    // instead of reading an opaque 503. A healthy service with degraded
    // components still answers 200 but lists them.
    const MarketService::HealthReport report = service_->GetHealthReport();
    std::string body = report.healthy ? "ok\n" : "unhealthy\n";
    for (const std::string& problem : report.problems) {
      body += problem + "\n";
    }
    if (report.healthy) {
      return HttpResponse(200, "OK", "text/plain; charset=utf-8", body);
    }
    return HttpResponse(503, "Service Unavailable",
                        "text/plain; charset=utf-8", body);
  }
  if (path == "/shardz") {
    return HttpResponse(200, "OK", "application/json", ShardzBody());
  }
  if (path == "/tracez") {
    return HttpResponse(200, "OK", "application/json", TracezBody());
  }
  if (path == "/flightz") {
    return HttpResponse(200, "OK", "application/json",
                        telemetry::FlightRecorder::Global().ToJson());
  }
  if (path == "/auditz") {
    return HttpResponse(200, "OK", "application/json", AuditzBody());
  }
  if (path == "/statz") {
    return HttpResponse(200, "OK", "application/json", StatzBody(query));
  }
  if (path == "/profilez") {
    return ProfilezResponse(query);
  }
  if (path == "/") {
    return HttpResponse(200, "OK", "text/plain; charset=utf-8",
                        "nimbus admin endpoint\n"
                        "  /metrics   Prometheus exposition\n"
                        "  /healthz   liveness; body lists unhealthy "
                        "components (shards, breakers, drain)\n"
                        "  /shardz    per-shard health/traffic/revenue "
                        "rollup (JSON)\n"
                        "  /tracez    recent errored/slow/audit-flagged "
                        "request traces with histogram exemplars\n"
                        "  /flightz   flight-recorder ring dump\n"
                        "  /auditz    economic-auditor verdicts "
                        "(invariant violations, first failures)\n"
                        "  /statz     metric history ring (?points=N)\n"
                        "  /profilez  ?seconds=N&type=cpu|contention|alloc\n");
  }
  return HttpResponse(404, "Not Found", "text/plain; charset=utf-8",
                      "not found\n");
}

}  // namespace nimbus::service
