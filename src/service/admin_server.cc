#include "service/admin_server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <vector>

#include "common/flight_recorder.h"
#include "common/logging.h"
#include "common/telemetry.h"

namespace nimbus::service {
namespace {

telemetry::Counter& ScrapesCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("admin_requests_total");
  return counter;
}

std::string HttpResponse(int code, const char* reason,
                         const char* content_type, const std::string& body) {
  std::ostringstream out;
  out << "HTTP/1.1 " << code << ' ' << reason << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

void AppendJsonDouble(std::ostringstream& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out << buf;
}

}  // namespace

AdminServer::AdminServer(MarketService* service, AdminServerOptions options)
    : service_(service), options_(options) {
  options_.max_traces = std::max(options_.max_traces, 1);
}

AdminServer::~AdminServer() { Stop(); }

Status AdminServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("admin server already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return UnavailableError("admin server: socket() failed");
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return UnavailableError("admin server: cannot bind 127.0.0.1:" +
                            std::to_string(options_.port));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return UnavailableError("admin server: listen() failed");
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    ::close(fd);
    return UnavailableError("admin server: getsockname() failed");
  }
  listen_fd_ = fd;
  port_ = static_cast<int>(ntohs(bound.sin_port));
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { ServeLoop(); });
  NIMBUS_LOG(kInfo) << "admin server listening on 127.0.0.1:" << port_;
  return OkStatus();
}

void AdminServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  // Wake the blocking accept; the loop sees running_ == false and exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) {
    thread_.join();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void AdminServer::ServeLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) {
        return;  // Stop() shut the listener down.
      }
      continue;  // Transient (EINTR, aborted connection).
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

void AdminServer::HandleConnection(int fd) const {
  // Bound both the read and the client: a stalled scraper must not
  // wedge the admin thread forever.
  timeval timeout;
  timeout.tv_sec = 2;
  timeout.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  std::string request;
  char buf[2048];
  while (request.size() < 16 * 1024 &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      break;
    }
    request.append(buf, static_cast<size_t>(n));
  }
  // "GET <path> HTTP/1.1" — anything else is a 400/405.
  std::string response;
  const size_t line_end = request.find("\r\n");
  std::istringstream line(request.substr(0, line_end));
  std::string method, path;
  line >> method >> path;
  if (method.empty() || path.empty()) {
    response = HttpResponse(400, "Bad Request", "text/plain; charset=utf-8",
                            "bad request\n");
  } else if (method != "GET") {
    response = HttpResponse(405, "Method Not Allowed",
                            "text/plain; charset=utf-8",
                            "only GET is supported\n");
  } else {
    // Strip a query string; the endpoints take no parameters.
    const size_t query = path.find('?');
    if (query != std::string::npos) {
      path.resize(query);
    }
    response = HandlePath(path);
  }
  size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n =
        ::send(fd, response.data() + sent, response.size() - sent, 0);
    if (n <= 0) {
      break;
    }
    sent += static_cast<size_t>(n);
  }
}

std::string AdminServer::MetricsBody() const {
  if (service_ != nullptr) {
    // Refresh the SLO gauges so every scrape sees current burn rates.
    service_->slo_tracker().ExportGauges();
  }
  std::string body;
  telemetry::ExportPrometheus(&body);
  return body;
}

std::string AdminServer::TracezBody() const {
  const std::vector<telemetry::FlightRecord> records =
      telemetry::FlightRecorder::Global().Snapshot();
  // Newest interesting requests first: errored always qualifies; slow
  // successes qualify when a slow_us threshold is configured.
  std::vector<const telemetry::FlightRecord*> picked;
  for (auto it = records.rbegin();
       it != records.rend() &&
       picked.size() < static_cast<size_t>(options_.max_traces);
       ++it) {
    const bool errored = it->status_code != 0;
    const bool slow = options_.slow_us > 0.0 && it->total_us >= options_.slow_us;
    if (errored || slow) {
      picked.push_back(&*it);
    }
  }
  std::ostringstream out;
  out << "{\"tracez\":[";
  bool first = true;
  for (const telemetry::FlightRecord* r : picked) {
    if (!first) {
      out << ',';
    }
    first = false;
    out << "{\"trace_id\":" << r->trace_id << ",\"ticket\":" << r->ticket
        << ",\"status_code\":" << r->status_code << ",\"total_us\":";
    AppendJsonDouble(out, r->total_us);
    out << ",\"shed\":" << (r->shed ? "true" : "false") << ",\"spans\":[";
    bool first_span = true;
    for (const telemetry::TraceEventView& span :
         telemetry::SnapshotTraceEvents(r->trace_id)) {
      if (!first_span) {
        out << ',';
      }
      first_span = false;
      out << "{\"name\":\"" << telemetry::JsonEscape(span.name)
          << "\",\"span_id\":" << span.span_id
          << ",\"parent_span_id\":" << span.parent_span_id
          << ",\"duration_us\":";
      AppendJsonDouble(out, span.duration_us);
      out << ",\"notes\":[";
      for (size_t i = 0; i < span.notes.size(); ++i) {
        if (i > 0) {
          out << ',';
        }
        out << '"' << telemetry::JsonEscape(span.notes[i]) << '"';
      }
      out << "]}";
    }
    out << "]}";
  }
  out << "],\"tracing_enabled\":"
      << (telemetry::TracingEnabled() ? "true" : "false") << '}';
  return out.str();
}

std::string AdminServer::HandlePath(const std::string& path) const {
  ScrapesCounter().Increment();
  if (path == "/metrics") {
    return HttpResponse(200, "OK", "text/plain; version=0.0.4; charset=utf-8",
                        MetricsBody());
  }
  if (path == "/healthz") {
    const bool healthy = service_ == nullptr || service_->Healthy();
    if (healthy) {
      return HttpResponse(200, "OK", "text/plain; charset=utf-8", "ok\n");
    }
    return HttpResponse(503, "Service Unavailable",
                        "text/plain; charset=utf-8", "draining\n");
  }
  if (path == "/tracez") {
    return HttpResponse(200, "OK", "application/json", TracezBody());
  }
  if (path == "/flightz") {
    return HttpResponse(200, "OK", "application/json",
                        telemetry::FlightRecorder::Global().ToJson());
  }
  if (path == "/") {
    return HttpResponse(200, "OK", "text/plain; charset=utf-8",
                        "nimbus admin endpoint\n"
                        "  /metrics  Prometheus exposition\n"
                        "  /healthz  liveness (503 while draining)\n"
                        "  /tracez   recent errored/slow request traces\n"
                        "  /flightz  flight-recorder ring dump\n");
  }
  return HttpResponse(404, "Not Found", "text/plain; charset=utf-8",
                      "not found\n");
}

}  // namespace nimbus::service
