#ifndef NIMBUS_SERVICE_CIRCUIT_BREAKER_H_
#define NIMBUS_SERVICE_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "common/status.h"

namespace nimbus::service {

struct CircuitBreakerOptions {
  // Consecutive failures that trip the breaker open (<= 0 behaves as 1).
  int failure_threshold = 5;
  // Cooldown after opening before a half-open probe is allowed.
  double open_seconds = 1.0;
  // Consecutive probe successes in half-open required to close again.
  int half_open_successes = 1;
  // Probes allowed in flight while half-open; extra callers are
  // rejected so a recovering downstream is not stampeded.
  int half_open_max_probes = 1;
  // Time source; nullptr = the process SystemClock. Tests pass a
  // ManualClock so every transition is a pure function of virtual time.
  const Clock* clock = nullptr;
};

// Classic three-state circuit breaker guarding one downstream (broker
// quotes, journal appends). Closed counts consecutive failures and
// opens at the threshold; open rejects calls with kUnavailable until the
// cooldown elapses; half-open admits a bounded number of probes and
// closes on enough consecutive successes (any probe failure re-opens
// and restarts the cooldown). Fully deterministic under a ManualClock:
// given the same call/outcome sequence and clock readings, the state
// trajectory is identical. Thread-safe; every call is one short
// critical section.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  CircuitBreaker(std::string name, CircuitBreakerOptions options);

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  // Gate before each attempt: OK admits the call (and, in half-open,
  // reserves a probe slot the caller MUST release via RecordSuccess or
  // RecordFailure); kUnavailable means the breaker is open (or the
  // half-open probe quota is taken) and the caller should shed or back
  // off.
  Status Allow();

  // Outcome of an admitted call.
  void RecordSuccess();
  void RecordFailure();

  State state() const;
  const std::string& name() const { return name_; }

  // Monotone transition counters (for tests and drain reports; the
  // telemetry registry mirrors them across all breakers).
  int64_t opened_count() const;
  int64_t rejected_count() const;

  static const char* StateName(State state);

 private:
  // Moves open -> half-open once the cooldown elapsed. Caller holds mu_.
  void MaybeHalfOpenLocked();
  void TransitionLocked(State next);

  const std::string name_;
  const CircuitBreakerOptions options_;
  const Clock* clock_;

  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  int probes_in_flight_ = 0;
  int64_t open_until_ns_ = 0;
  int64_t opened_count_ = 0;
  int64_t rejected_count_ = 0;
};

}  // namespace nimbus::service

#endif  // NIMBUS_SERVICE_CIRCUIT_BREAKER_H_
