#ifndef NIMBUS_SERVICE_ADMIN_SERVER_H_
#define NIMBUS_SERVICE_ADMIN_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "service/service.h"

namespace nimbus::service {

struct AdminServerOptions {
  // TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  // back with port() after Start — this is what tests and the soak
  // harness use to avoid collisions).
  int port = 0;
  // /tracez returns at most this many request summaries.
  int max_traces = 16;
  // > 0: a request slower than this (microseconds) qualifies for
  // /tracez even when it succeeded. Errored requests always qualify.
  double slow_us = 0.0;
  // > 0: shrink each accepted connection's SO_SNDBUF to this many
  // bytes. A test knob: forces large responses through many partial
  // send()s so the write loop's partial/EINTR handling is exercised.
  int sndbuf_bytes = 0;
};

// Minimal blocking HTTP/1.1 admin endpoint over POSIX sockets — no
// third-party dependencies. One accept thread dispatches each
// connection to a short-lived handler thread, so a multi-second
// /profilez window never blocks a concurrent /metrics scrape; Stop
// waits for in-flight handlers (profile windows abort early). Serves:
//
//   /metrics   Prometheus text exposition of the global registry (the
//              service's SLO gauges and the allocation tallies are
//              refreshed per scrape).
//   /healthz   200 while the service is live, 503 otherwise; the body
//              enumerates every unhealthy component by name (draining,
//              quarantined/recovering shards, stuck-open breakers) so
//              callers can see which bulkhead tripped.
//   /shardz    Per-shard catalog rollup as JSON: state, quarantine and
//              recovery counts, traffic, revenue, last restore.
//   /tracez    JSON summaries of the most recent errored/slow/
//              audit-flagged requests, with their spans when tracing
//              is enabled, each joined against the latency histograms'
//              trace exemplars (which buckets cite this trace).
//   /flightz   The flight recorder's ring as JSON (same payload as an
//              incident dump).
//   /auditz    The economic auditor's verdicts as JSON: pass counts,
//              recent invariant violations with owning shard/offering,
//              and each invariant's first-failure timestamp from the
//              metric-history ring. {"enabled":false} when the service
//              has no auditor attached.
//   /statz     The metric-history ring (periodic registry snapshots)
//              as JSON: per-series points, latest value, and windowed
//              rate. ?points=N bounds points per series.
//   /profilez  On-demand profile window:
//              ?seconds=N&type=cpu|contention|alloc (defaults 2, cpu).
//              cpu returns folded stacks (flamegraph/speedscope
//              input); contention/alloc return windowed text reports.
//              Single-flight: a concurrent window answers 503.
//   /          Plain-text index of the endpoints above.
//
// The server only ever *reads* service and telemetry state; it cannot
// perturb market output.
class AdminServer {
 public:
  // `service` may be nullptr (metrics/flightz still work; /healthz
  // reports 200 and /tracez serves whatever the recorder holds).
  AdminServer(MarketService* service, AdminServerOptions options);
  ~AdminServer();  // Stops the server if still running.

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  // Binds 127.0.0.1:<port>, starts the accept loop. Fails with
  // kUnavailable when the port cannot be bound.
  Status Start();

  // Wakes the accept loop, aborts any in-flight profile window, and
  // joins the accept thread and all handler threads. Idempotent.
  void Stop();

  // Bound port (after Start); 0 before.
  int port() const { return port_; }

  // Builds the full HTTP response for `target` (path plus optional
  // ?query) — the request handler, exposed so tests can validate
  // payloads without a socket. Note /profilez blocks for its window.
  std::string HandlePath(const std::string& target) const;

 private:
  void ServeLoop();
  void HandleConnection(int fd) const;

  std::string MetricsBody() const;
  std::string TracezBody() const;
  std::string ShardzBody() const;
  std::string AuditzBody() const;
  std::string StatzBody(const std::string& query) const;
  std::string ProfilezResponse(const std::string& query) const;

  MarketService* service_;
  AdminServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  // Set by Stop before joining so a mid-window /profilez unwinds
  // within ~50 ms instead of sleeping out its full window.
  std::atomic<bool> abort_profiles_{false};
  // Handler-thread accounting: threads detach themselves, Stop blocks
  // until the count drains (handlers are bounded by the 2 s socket
  // timeouts plus the aborted profile window, so this terminates).
  mutable std::mutex conn_mu_;
  mutable std::condition_variable conn_cv_;
  mutable int active_connections_ = 0;
};

}  // namespace nimbus::service

#endif  // NIMBUS_SERVICE_ADMIN_SERVER_H_
