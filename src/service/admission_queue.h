#ifndef NIMBUS_SERVICE_ADMISSION_QUEUE_H_
#define NIMBUS_SERVICE_ADMISSION_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/profiler.h"
#include "common/status.h"

namespace nimbus::service {

// Bounded MPMC admission queue for the serving layer. Producers never
// block: a push against a full (or closed) queue fails immediately with
// a typed kUnavailable so overload turns into explicit load shedding
// instead of unbounded latency — rejected work is always visible to the
// caller, never silently dropped. Consumers block in Pop until an item
// arrives or the queue is closed and drained.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Admits `item` or sheds it: kUnavailable when the queue is at
  // capacity (overload) or closed (draining). Never blocks.
  Status TryPush(T item) {
    std::lock_guard<prof::ProfiledMutex> lock(mu_);
    if (closed_) {
      return UnavailableError("admission queue is closed (draining)");
    }
    if (items_.size() >= capacity_) {
      return UnavailableError("admission queue is full (load shed)");
    }
    items_.push_back(std::move(item));
    cv_.notify_one();
    return OkStatus();
  }

  // Blocks until an item is available (FIFO) or the queue is closed and
  // empty (returns nullopt — the consumer should exit).
  std::optional<T> Pop() {
    std::unique_lock<prof::ProfiledMutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Blocks like Pop for the first item, then drains up to `max_items`
  // total without further blocking, all under one lock hold — the
  // returned items are one contiguous FIFO run (for the service's dense
  // tickets: consecutive), so a consumer can commit them with a single
  // sequencer rendezvous. Empty result = closed and drained.
  std::vector<T> PopBatch(size_t max_items) {
    std::vector<T> out;
    std::unique_lock<prof::ProfiledMutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    while (!items_.empty() && out.size() < max_items) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return out;
  }

  // Stops admissions; queued items still drain through Pop. Idempotent.
  void Close() {
    std::lock_guard<prof::ProfiledMutex> lock(mu_);
    closed_ = true;
    cv_.notify_all();
  }

  size_t size() const {
    std::lock_guard<prof::ProfiledMutex> lock(mu_);
    return items_.size();
  }
  size_t capacity() const { return capacity_; }
  bool closed() const {
    std::lock_guard<prof::ProfiledMutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  // Instrumented (mutex_*{mutex="admission_queue"}): producer/consumer
  // convoys on the queue lock show up in /profilez?type=contention.
  // condition_variable_any pairs with the wrapper; consumer wakeups
  // re-acquiring a held lock are counted as contention, by design.
  mutable prof::ProfiledMutex mu_{"admission_queue"};
  std::condition_variable_any cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace nimbus::service

#endif  // NIMBUS_SERVICE_ADMISSION_QUEUE_H_
