#ifndef NIMBUS_REVENUE_SENSITIVITY_H_
#define NIMBUS_REVENUE_SENSITIVITY_H_

#include <vector>

#include "common/statusor.h"
#include "revenue/buyer_model.h"

namespace nimbus::revenue {

// Seller-side robustness analysis: the DP prices are optimal *for the
// estimated* value curve, but real buyers deviate from market research.
// This module quantifies how much revenue the nominal prices lose when
// valuations are perturbed — the practical question behind §5's reliance
// on the curves of Figure 2(a).

struct SensitivityOptions {
  // Relative stddev of the multiplicative valuation perturbation:
  // v'_j = v_j * max(0, 1 + noise * N(0,1)).
  double valuation_noise = 0.1;
  int trials = 200;
  uint64_t seed = 1;
};

struct SensitivityReport {
  // Revenue the DP prices earn on the nominal research curve.
  double nominal_revenue = 0.0;
  // Distribution of the revenue those same prices earn when valuations
  // are perturbed.
  double mean_realized_revenue = 0.0;
  double worst_realized_revenue = 0.0;
  // Mean regret against clairvoyant re-optimization: the DP re-run on
  // each perturbed curve (with valuations restored to monotone via
  // isotonic smoothing) minus the realized revenue. Always >= ~0.
  double mean_regret = 0.0;
  double worst_regret = 0.0;
};

// Runs the analysis for the DP pricing computed from `research` (which
// must satisfy the DP preconditions). Deterministic given the seed.
StatusOr<SensitivityReport> AnalyzeRevenueSensitivity(
    const std::vector<BuyerPoint>& research,
    const SensitivityOptions& options = {});

}  // namespace nimbus::revenue

#endif  // NIMBUS_REVENUE_SENSITIVITY_H_
