#ifndef NIMBUS_REVENUE_RESEARCH_IO_H_
#define NIMBUS_REVENUE_RESEARCH_IO_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "revenue/buyer_model.h"

namespace nimbus::revenue {

// CSV persistence for market research (the seller's value/demand curves
// as buyer points). Format, one row per version:
//   a,b,v
// with `a` the version parameter (inverse NCP), `b` the demand mass and
// `v` the valuation. Rows must be sorted by strictly increasing `a`;
// loading re-validates through ValidateBuyerPoints.

std::string SerializeBuyerPoints(const std::vector<BuyerPoint>& points);

StatusOr<std::vector<BuyerPoint>> DeserializeBuyerPoints(
    const std::string& text);

Status SaveBuyerPoints(const std::vector<BuyerPoint>& points,
                       const std::string& path);

StatusOr<std::vector<BuyerPoint>> LoadBuyerPoints(const std::string& path);

}  // namespace nimbus::revenue

#endif  // NIMBUS_REVENUE_RESEARCH_IO_H_
