#ifndef NIMBUS_REVENUE_BUYER_MODEL_H_
#define NIMBUS_REVENUE_BUYER_MODEL_H_

#include <vector>

#include "common/statusor.h"
#include "pricing/pricing_function.h"

namespace nimbus::revenue {

// One market-research point (§5): buyers with demand mass `b` are
// interested in the model version with parameter `a` (inverse NCP after
// the error transformation of Figure 2) and value it at `v`. They buy
// iff the price at `a` is at most `v`.
struct BuyerPoint {
  double a = 0.0;  // Version parameter x = 1/δ; strictly increasing.
  double b = 0.0;  // Demand mass (>= 0); need not sum to 1.
  double v = 0.0;  // Valuation (>= 0).
};

// Validates a market-research curve for the revenue-optimization
// algorithms: a strictly increasing and positive, b non-negative, v
// non-negative. When `require_monotone_valuations` is set, additionally
// enforces v_1 <= ... <= v_n (the paper's standing assumption that
// valuations are monotone w.r.t. accuracy, required by Algorithm 1).
Status ValidateBuyerPoints(const std::vector<BuyerPoint>& points,
                           bool require_monotone_valuations);

// TBV of §5 for explicit prices: Σ_j b_j z_j · 1[z_j <= v_j].
double RevenueForPrices(const std::vector<BuyerPoint>& points,
                        const std::vector<double>& prices);

// Fraction of buyer mass that can afford its version:
// Σ_j b_j 1[z_j <= v_j] / Σ_j b_j  (the affordability ratio of §6.2).
double AffordabilityForPrices(const std::vector<BuyerPoint>& points,
                              const std::vector<double>& prices);

// Evaluates a pricing function at every a_j.
std::vector<double> PricesAt(const pricing::PricingFunction& pricing,
                             const std::vector<BuyerPoint>& points);

// Convenience: revenue / affordability of a pricing function.
double RevenueForPricing(const std::vector<BuyerPoint>& points,
                         const pricing::PricingFunction& pricing);
double AffordabilityForPricing(const std::vector<BuyerPoint>& points,
                               const pricing::PricingFunction& pricing);

}  // namespace nimbus::revenue

#endif  // NIMBUS_REVENUE_BUYER_MODEL_H_
