#include "revenue/sensitivity.h"

#include <algorithm>
#include <limits>

#include "common/random.h"
#include "revenue/dp_optimizer.h"
#include "solver/isotonic.h"

namespace nimbus::revenue {

StatusOr<SensitivityReport> AnalyzeRevenueSensitivity(
    const std::vector<BuyerPoint>& research,
    const SensitivityOptions& options) {
  if (options.trials < 1) {
    return InvalidArgumentError("need at least one trial");
  }
  if (options.valuation_noise < 0.0) {
    return InvalidArgumentError("valuation_noise must be >= 0");
  }
  NIMBUS_ASSIGN_OR_RETURN(DpResult nominal, OptimizeRevenueDp(research));

  SensitivityReport report;
  report.nominal_revenue = nominal.revenue;
  report.worst_realized_revenue = std::numeric_limits<double>::infinity();
  report.worst_regret = 0.0;

  Rng rng(options.seed);
  double realized_sum = 0.0;
  double regret_sum = 0.0;
  for (int trial = 0; trial < options.trials; ++trial) {
    // Perturb each valuation multiplicatively.
    std::vector<BuyerPoint> perturbed = research;
    std::vector<double> raw_values(perturbed.size());
    for (size_t j = 0; j < perturbed.size(); ++j) {
      perturbed[j].v *=
          std::max(0.0, 1.0 + options.valuation_noise * rng.Gaussian());
      raw_values[j] = perturbed[j].v;
    }
    const double realized = RevenueForPrices(perturbed, nominal.prices);
    realized_sum += realized;
    report.worst_realized_revenue =
        std::min(report.worst_realized_revenue, realized);

    // Clairvoyant benchmark: smooth the perturbed valuations back to a
    // monotone curve (the DP precondition) and re-optimize.
    NIMBUS_ASSIGN_OR_RETURN(std::vector<double> monotone_values,
                            solver::IsotonicIncreasing(raw_values));
    std::vector<BuyerPoint> smoothed = perturbed;
    for (size_t j = 0; j < smoothed.size(); ++j) {
      smoothed[j].v = std::max(0.0, monotone_values[j]);
    }
    NIMBUS_ASSIGN_OR_RETURN(DpResult reoptimized,
                            OptimizeRevenueDp(smoothed));
    // Regret is measured on the same perturbed population: what the
    // clairvoyant prices earn there minus what the nominal prices earned.
    const double clairvoyant =
        RevenueForPrices(perturbed, reoptimized.prices);
    const double regret = std::max(0.0, clairvoyant - realized);
    regret_sum += regret;
    report.worst_regret = std::max(report.worst_regret, regret);
  }
  report.mean_realized_revenue = realized_sum / options.trials;
  report.mean_regret = regret_sum / options.trials;
  return report;
}

}  // namespace nimbus::revenue
