#include "revenue/brute_force.h"

#include <cmath>
#include <limits>
#include <string>

#include "common/logging.h"
#include "solver/milp.h"

namespace nimbus::revenue {

StatusOr<double> SubadditiveClosurePrice(const std::vector<BuyerPoint>& points,
                                         const std::vector<bool>& member,
                                         double a, int64_t* nodes_accum) {
  if (member.size() != points.size()) {
    return InvalidArgumentError("membership mask size mismatch");
  }
  std::vector<int> active;
  for (size_t w = 0; w < points.size(); ++w) {
    if (member[w]) {
      active.push_back(static_cast<int>(w));
    }
  }
  if (active.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  // Unbounded-knapsack covering MILP:
  //   minimize Σ v_w k_w   s.t.  Σ a_w k_w >= a,  0 <= k_w <= ceil(a/a_w),
  // with k_w integral. The per-variable caps are valid (one copy of any
  // single item already covers a) and keep branch-and-bound finite.
  solver::MilpProblem milp;
  milp.lp.num_vars = static_cast<int>(active.size());
  milp.lp.maximize = false;
  milp.lp.objective.resize(active.size());
  milp.integer.assign(active.size(), true);
  solver::LpConstraint cover;
  cover.coeffs.resize(active.size());
  cover.sense = solver::ConstraintSense::kGreaterEqual;
  cover.rhs = a;
  for (size_t i = 0; i < active.size(); ++i) {
    const BuyerPoint& pt = points[static_cast<size_t>(active[i])];
    milp.lp.objective[i] = pt.v;
    cover.coeffs[i] = pt.a;
    solver::LpConstraint cap;
    cap.coeffs.assign(active.size(), 0.0);
    cap.coeffs[i] = 1.0;
    cap.sense = solver::ConstraintSense::kLessEqual;
    cap.rhs = std::ceil(a / pt.a);
    milp.lp.constraints.push_back(std::move(cap));
  }
  milp.lp.constraints.push_back(std::move(cover));
  NIMBUS_ASSIGN_OR_RETURN(solver::MilpSolution solution,
                          solver::SolveMilp(milp));
  if (nodes_accum != nullptr) {
    *nodes_accum += solution.nodes_explored;
  }
  return solution.objective_value;
}

StatusOr<BruteForceResult> OptimizeRevenueBruteForce(
    const std::vector<BuyerPoint>& points, int max_points) {
  NIMBUS_RETURN_IF_ERROR(
      ValidateBuyerPoints(points, /*require_monotone_valuations=*/true));
  const int n = static_cast<int>(points.size());
  if (n > max_points) {
    return InvalidArgumentError(
        "brute force capped at " + std::to_string(max_points) +
        " points (got " + std::to_string(n) + "); use the DP instead");
  }
  BruteForceResult best;
  best.prices.assign(static_cast<size_t>(n), 0.0);
  best.revenue = 0.0;

  std::vector<bool> member(static_cast<size_t>(n), false);
  std::vector<double> prices(static_cast<size_t>(n), 0.0);
  const uint32_t limit = 1u << n;
  for (uint32_t mask = 1; mask < limit; ++mask) {
    for (int w = 0; w < n; ++w) {
      member[static_cast<size_t>(w)] = (mask >> w) & 1u;
    }
    bool feasible = true;
    for (int j = 0; j < n && feasible; ++j) {
      NIMBUS_ASSIGN_OR_RETURN(
          double price,
          SubadditiveClosurePrice(points, member,
                                  points[static_cast<size_t>(j)].a,
                                  &best.milp_nodes));
      if (!std::isfinite(price)) {
        feasible = false;
        break;
      }
      prices[static_cast<size_t>(j)] = price;
    }
    ++best.subsets_evaluated;
    if (!feasible) {
      continue;
    }
    const double revenue = RevenueForPrices(points, prices);
    if (revenue > best.revenue) {
      best.revenue = revenue;
      best.prices = prices;
    }
  }
  return best;
}

}  // namespace nimbus::revenue
