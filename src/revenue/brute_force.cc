#include "revenue/brute_force.h"

#include <cmath>
#include <limits>
#include <string>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/telemetry.h"
#include "solver/milp.h"

namespace nimbus::revenue {
namespace {

telemetry::Counter& SubsetsCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("revenue_bf_subsets_total");
  return counter;
}

telemetry::Counter& InfeasibleCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("revenue_bf_infeasible_total");
  return counter;
}

telemetry::Counter& NonFiniteCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("revenue_nonfinite_guard_total");
  return counter;
}

}  // namespace

StatusOr<double> SubadditiveClosurePrice(const std::vector<BuyerPoint>& points,
                                         const std::vector<bool>& member,
                                         double a, int64_t* nodes_accum) {
  if (member.size() != points.size()) {
    return InvalidArgumentError("membership mask size mismatch");
  }
  std::vector<int> active;
  for (size_t w = 0; w < points.size(); ++w) {
    if (member[w]) {
      active.push_back(static_cast<int>(w));
    }
  }
  if (active.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  // Unbounded-knapsack covering MILP:
  //   minimize Σ v_w k_w   s.t.  Σ a_w k_w >= a,  0 <= k_w <= ceil(a/a_w),
  // with k_w integral. The per-variable caps are valid (one copy of any
  // single item already covers a) and keep branch-and-bound finite.
  solver::MilpProblem milp;
  milp.lp.num_vars = static_cast<int>(active.size());
  milp.lp.maximize = false;
  milp.lp.objective.resize(active.size());
  milp.integer.assign(active.size(), true);
  solver::LpConstraint cover;
  cover.coeffs.resize(active.size());
  cover.sense = solver::ConstraintSense::kGreaterEqual;
  cover.rhs = a;
  for (size_t i = 0; i < active.size(); ++i) {
    const BuyerPoint& pt = points[static_cast<size_t>(active[i])];
    milp.lp.objective[i] = pt.v;
    cover.coeffs[i] = pt.a;
    solver::LpConstraint cap;
    cap.coeffs.assign(active.size(), 0.0);
    cap.coeffs[i] = 1.0;
    cap.sense = solver::ConstraintSense::kLessEqual;
    cap.rhs = std::ceil(a / pt.a);
    milp.lp.constraints.push_back(std::move(cap));
  }
  milp.lp.constraints.push_back(std::move(cover));
  NIMBUS_ASSIGN_OR_RETURN(solver::MilpSolution solution,
                          solver::SolveMilp(milp));
  if (nodes_accum != nullptr) {
    *nodes_accum += solution.nodes_explored;
  }
  return solution.objective_value;
}

StatusOr<BruteForceResult> OptimizeRevenueBruteForce(
    const std::vector<BuyerPoint>& points, int max_points) {
  NIMBUS_RETURN_IF_ERROR(
      ValidateBuyerPoints(points, /*require_monotone_valuations=*/true));
  const int n = static_cast<int>(points.size());
  if (n > max_points) {
    return InvalidArgumentError(
        "brute force capped at " + std::to_string(max_points) +
        " points (got " + std::to_string(n) + "); use the DP instead");
  }
  // Every subset is an independent batch of MILP solves, so the 2^n
  // enumeration is evaluated in parallel; the per-mask revenues are then
  // reduced serially in mask order, matching the serial tie-breaking
  // (first-best subset wins) at every thread count.
  telemetry::TraceSpan span("revenue.brute_force");
  const uint32_t limit = 1u << n;
  std::vector<double> mask_revenue(limit,
                                   -std::numeric_limits<double>::infinity());
  std::vector<int64_t> mask_nodes(limit, 0);
  std::vector<Status> mask_status(limit);
  ParallelFor(1, limit, [&](int64_t m) {
    const uint32_t mask = static_cast<uint32_t>(m);
    SubsetsCounter().Increment();
    std::vector<bool> member(static_cast<size_t>(n), false);
    std::vector<double> prices(static_cast<size_t>(n), 0.0);
    for (int w = 0; w < n; ++w) {
      member[static_cast<size_t>(w)] = (mask >> w) & 1u;
    }
    for (int j = 0; j < n; ++j) {
      StatusOr<double> price =
          SubadditiveClosurePrice(points, member,
                                  points[static_cast<size_t>(j)].a,
                                  &mask_nodes[mask]);
      if (!price.ok()) {
        mask_status[mask] = price.status();
        return;
      }
      if (!std::isfinite(*price)) {
        InfeasibleCounter().Increment();
        return;  // Infeasible subset; revenue stays -inf.
      }
      prices[static_cast<size_t>(j)] = *price;
    }
    const double revenue = RevenueForPrices(points, prices);
    if (!std::isfinite(revenue)) {
      // Degraded-mode guard: a pathological price vector must not let a
      // NaN/inf win the arg-max and poison the seller's menu. The subset
      // is skipped (revenue stays -inf) and counted.
      NonFiniteCounter().Increment();
      return;
    }
    mask_revenue[mask] = revenue;
  });

  BruteForceResult best;
  best.prices.assign(static_cast<size_t>(n), 0.0);
  best.revenue = 0.0;
  uint32_t best_mask = 0;
  for (uint32_t mask = 1; mask < limit; ++mask) {
    NIMBUS_RETURN_IF_ERROR(mask_status[mask]);
    best.milp_nodes += mask_nodes[mask];
    ++best.subsets_evaluated;
    if (mask_revenue[mask] > best.revenue) {
      best.revenue = mask_revenue[mask];
      best_mask = mask;
    }
  }
  if (best_mask != 0) {
    // Re-derive the winning price vector (n extra MILPs — noise next to
    // the n · 2^n solved above).
    std::vector<bool> member(static_cast<size_t>(n), false);
    for (int w = 0; w < n; ++w) {
      member[static_cast<size_t>(w)] = (best_mask >> w) & 1u;
    }
    for (int j = 0; j < n; ++j) {
      NIMBUS_ASSIGN_OR_RETURN(
          double price,
          SubadditiveClosurePrice(points, member,
                                  points[static_cast<size_t>(j)].a,
                                  /*nodes_accum=*/nullptr));
      best.prices[static_cast<size_t>(j)] = price;
    }
  }
  return best;
}

}  // namespace nimbus::revenue
