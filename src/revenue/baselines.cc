#include "revenue/baselines.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/logging.h"

namespace nimbus::revenue {
namespace {

using pricing::PricingFunction;

Status Validate(const std::vector<BuyerPoint>& points) {
  return ValidateBuyerPoints(points, /*require_monotone_valuations=*/false);
}

double MinValuation(const std::vector<BuyerPoint>& points) {
  double v = points.front().v;
  for (const BuyerPoint& p : points) {
    v = std::min(v, p.v);
  }
  return v;
}

double MaxValuation(const std::vector<BuyerPoint>& points) {
  double v = points.front().v;
  for (const BuyerPoint& p : points) {
    v = std::max(v, p.v);
  }
  return v;
}

}  // namespace

StatusOr<std::unique_ptr<PricingFunction>> MakeLinBaseline(
    const std::vector<BuyerPoint>& points) {
  NIMBUS_RETURN_IF_ERROR(Validate(points));
  const double a_lo = points.front().a;
  const double a_hi = points.back().a;
  const double v_lo = MinValuation(points);
  const double v_hi = MaxValuation(points);
  if (points.size() == 1 || a_hi == a_lo || v_hi == v_lo) {
    return std::unique_ptr<PricingFunction>(
        new pricing::ConstantPricing(v_hi, "lin"));
  }
  const double slope = (v_hi - v_lo) / (a_hi - a_lo);
  const double intercept = v_lo - slope * a_lo;
  if (intercept >= 0.0) {
    return std::unique_ptr<PricingFunction>(
        new pricing::AffinePricing(intercept, slope, "lin"));
  }
  // The affine extension would be negative at 0 (not subadditive); use
  // the steepest origin line under both anchors instead.
  const double origin_slope = std::min(v_lo / a_lo, v_hi / a_hi);
  return std::unique_ptr<PricingFunction>(new pricing::LinearPricing(
      origin_slope, std::numeric_limits<double>::infinity(), "lin"));
}

StatusOr<std::unique_ptr<PricingFunction>> MakeMaxCBaseline(
    const std::vector<BuyerPoint>& points) {
  NIMBUS_RETURN_IF_ERROR(Validate(points));
  return std::unique_ptr<PricingFunction>(
      new pricing::ConstantPricing(MaxValuation(points), "maxc"));
}

StatusOr<std::unique_ptr<PricingFunction>> MakeMedCBaseline(
    const std::vector<BuyerPoint>& points) {
  NIMBUS_RETURN_IF_ERROR(Validate(points));
  // Demand-weighted median valuation: the largest price that at least
  // half of the buyer mass can still afford.
  std::vector<std::pair<double, double>> by_value;  // (valuation, mass)
  double total = 0.0;
  for (const BuyerPoint& p : points) {
    by_value.emplace_back(p.v, p.b);
    total += p.b;
  }
  std::sort(by_value.begin(), by_value.end(),
            [](const auto& x, const auto& y) { return x.first > y.first; });
  double running = 0.0;
  double price = MinValuation(points);
  for (const auto& [valuation, mass] : by_value) {
    running += mass;
    if (running >= 0.5 * total) {
      price = valuation;
      break;
    }
  }
  return std::unique_ptr<PricingFunction>(
      new pricing::ConstantPricing(price, "medc"));
}

StatusOr<std::unique_ptr<PricingFunction>> MakeOptCBaseline(
    const std::vector<BuyerPoint>& points) {
  NIMBUS_RETURN_IF_ERROR(Validate(points));
  // The optimal constant price is one of the valuations.
  double best_price = 0.0;
  double best_revenue = -1.0;
  for (const BuyerPoint& candidate : points) {
    const double c = candidate.v;
    double revenue = 0.0;
    for (const BuyerPoint& p : points) {
      if (c <= p.v) {
        revenue += p.b * c;
      }
    }
    if (revenue > best_revenue) {
      best_revenue = revenue;
      best_price = c;
    }
  }
  return std::unique_ptr<PricingFunction>(
      new pricing::ConstantPricing(best_price, "optc"));
}

}  // namespace nimbus::revenue
