#ifndef NIMBUS_REVENUE_FAIRNESS_H_
#define NIMBUS_REVENUE_FAIRNESS_H_

#include <vector>

#include "common/statusor.h"
#include "revenue/buyer_model.h"

namespace nimbus::revenue {

// Revenue/fairness trade-off (§6.3 observes MedC can beat MBP on
// affordability because it *requires* half the buyers to afford a model;
// §7 lists the formal trade-off as future work). This module implements
// the natural mechanism: scale the revenue-optimal DP prices by a global
// factor s in (0, 1]. Scaling preserves the chain constraints of (5)
// (both are homogeneous in the prices), hence arbitrage-freeness, while
// the affordability ratio is non-increasing in s — so the seller can
// trade revenue for reach along a one-dimensional, always-safe knob.

struct FairPricingResult {
  std::vector<double> prices;   // Scaled DP prices.
  double scale = 1.0;           // The chosen factor s.
  double revenue = 0.0;
  double affordability = 0.0;
};

// Maximizes revenue subject to an affordability floor: at least
// `min_affordability` (in [0, 1]) of the buyer mass must afford its
// version. Searches the candidate scale factors s = v_j / z_j (the only
// points where affordability changes) plus s = 1, keeping the
// highest-revenue one that meets the floor. Fails with kInfeasible when
// even free pricing cannot reach the floor (only possible when the floor
// exceeds the total mass share with positive demand).
StatusOr<FairPricingResult> OptimizeRevenueWithAffordabilityFloor(
    const std::vector<BuyerPoint>& points, double min_affordability);

}  // namespace nimbus::revenue

#endif  // NIMBUS_REVENUE_FAIRNESS_H_
