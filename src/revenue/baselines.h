#ifndef NIMBUS_REVENUE_BASELINES_H_
#define NIMBUS_REVENUE_BASELINES_H_

#include <memory>
#include <vector>

#include "common/statusor.h"
#include "pricing/pricing_function.h"
#include "revenue/buyer_model.h"

namespace nimbus::revenue {

// The four baseline pricing schemes of §6.2, all of which produce
// well-behaved (arbitrage-free, non-negative) pricing functions.

// "Lin": linear interpolation between the smallest and largest buyer
// value. When the affine extension would be negative at x = 0 (which
// would break subadditivity), the line is replaced by the steepest
// through-the-origin line below the two anchor values, preserving
// arbitrage-freeness.
StatusOr<std::unique_ptr<pricing::PricingFunction>> MakeLinBaseline(
    const std::vector<BuyerPoint>& points);

// "MaxC": constant price equal to the highest buyer value.
StatusOr<std::unique_ptr<pricing::PricingFunction>> MakeMaxCBaseline(
    const std::vector<BuyerPoint>& points);

// "MedC": constant price at the demand-weighted median valuation, so at
// least half of the buyer mass can afford a model instance.
StatusOr<std::unique_ptr<pricing::PricingFunction>> MakeMedCBaseline(
    const std::vector<BuyerPoint>& points);

// "OptC": the revenue-optimal constant price (always one of the
// valuations; found by direct search).
StatusOr<std::unique_ptr<pricing::PricingFunction>> MakeOptCBaseline(
    const std::vector<BuyerPoint>& points);

}  // namespace nimbus::revenue

#endif  // NIMBUS_REVENUE_BASELINES_H_
