#include "revenue/buyer_model.h"

#include <cmath>

#include "common/logging.h"

namespace nimbus::revenue {
namespace {

// Purchases are decided with a hair of tolerance so that prices set
// exactly at the valuation (the common optimal case) count as sales
// despite floating-point round-off.
constexpr double kPurchaseTol = 1e-9;

bool Buys(double price, double valuation) {
  return price <= valuation * (1.0 + kPurchaseTol) + kPurchaseTol;
}

}  // namespace

Status ValidateBuyerPoints(const std::vector<BuyerPoint>& points,
                           bool require_monotone_valuations) {
  if (points.empty()) {
    return InvalidArgumentError("need at least one buyer point");
  }
  double prev_a = 0.0;
  double prev_v = -1.0;
  for (const BuyerPoint& p : points) {
    if (!(p.a > prev_a) || !std::isfinite(p.a)) {
      return InvalidArgumentError(
          "buyer parameters must be finite, strictly increasing and positive");
    }
    if (p.b < 0.0 || !std::isfinite(p.b)) {
      return InvalidArgumentError("demand masses must be finite and >= 0");
    }
    if (p.v < 0.0 || !std::isfinite(p.v)) {
      return InvalidArgumentError("valuations must be finite and >= 0");
    }
    if (require_monotone_valuations && p.v < prev_v) {
      return InvalidArgumentError(
          "valuations must be monotone non-decreasing in the parameter");
    }
    prev_a = p.a;
    prev_v = p.v;
  }
  return OkStatus();
}

double RevenueForPrices(const std::vector<BuyerPoint>& points,
                        const std::vector<double>& prices) {
  NIMBUS_CHECK_EQ(points.size(), prices.size());
  double revenue = 0.0;
  for (size_t j = 0; j < points.size(); ++j) {
    if (Buys(prices[j], points[j].v)) {
      revenue += points[j].b * prices[j];
    }
  }
  return revenue;
}

double AffordabilityForPrices(const std::vector<BuyerPoint>& points,
                              const std::vector<double>& prices) {
  NIMBUS_CHECK_EQ(points.size(), prices.size());
  double total_mass = 0.0;
  double affordable_mass = 0.0;
  for (size_t j = 0; j < points.size(); ++j) {
    total_mass += points[j].b;
    if (Buys(prices[j], points[j].v)) {
      affordable_mass += points[j].b;
    }
  }
  return total_mass > 0.0 ? affordable_mass / total_mass : 0.0;
}

std::vector<double> PricesAt(const pricing::PricingFunction& pricing,
                             const std::vector<BuyerPoint>& points) {
  std::vector<double> prices;
  prices.reserve(points.size());
  for (const BuyerPoint& p : points) {
    prices.push_back(pricing.PriceAtInverseNcp(p.a));
  }
  return prices;
}

double RevenueForPricing(const std::vector<BuyerPoint>& points,
                         const pricing::PricingFunction& pricing) {
  return RevenueForPrices(points, PricesAt(pricing, points));
}

double AffordabilityForPricing(const std::vector<BuyerPoint>& points,
                               const pricing::PricingFunction& pricing) {
  return AffordabilityForPrices(points, PricesAt(pricing, points));
}

}  // namespace nimbus::revenue
