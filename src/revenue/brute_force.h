#ifndef NIMBUS_REVENUE_BRUTE_FORCE_H_
#define NIMBUS_REVENUE_BRUTE_FORCE_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "revenue/buyer_model.h"

namespace nimbus::revenue {

// Result of the exponential-time optimal revenue search.
struct BruteForceResult {
  std::vector<double> prices;
  double revenue = 0.0;
  int subsets_evaluated = 0;
  int64_t milp_nodes = 0;  // Total branch-and-bound nodes across all MILPs.
};

// Algorithm 2 of the paper (Appendix C): the brute-force optimum of the
// *unrelaxed* problem (3) under TBV. For every subset S of buyer points,
// pin p(a_w) = v_w for w in S and extend with the tightest monotone +
// subadditive closure
//   p_S(a) = min { Σ_{w∈S} k_w v_w : Σ_{w∈S} k_w a_w >= a, k_w ∈ ℕ },
// evaluated by solving one small MILP per (subset, point) with the
// in-repo branch-and-bound solver; the best subset wins. Subsets are
// evaluated in parallel (NIMBUS_THREADS wide) and reduced in mask order,
// so the winner is identical at every thread count. Runtime grows as
// 2^n — this is the expensive baseline the DP is benchmarked against
// (Figures 9/10). `points` must satisfy the same preconditions as the DP;
// n is capped at `max_points` (default 14) to keep the enumeration sane.
StatusOr<BruteForceResult> OptimizeRevenueBruteForce(
    const std::vector<BuyerPoint>& points, int max_points = 14);

// The subadditive-closure price p_S(a) described above for one subset
// (exposed for tests). `member[w]` marks the pinned points. Returns
// +infinity when S is empty (no finite cover exists).
StatusOr<double> SubadditiveClosurePrice(const std::vector<BuyerPoint>& points,
                                         const std::vector<bool>& member,
                                         double a, int64_t* nodes_accum);

}  // namespace nimbus::revenue

#endif  // NIMBUS_REVENUE_BRUTE_FORCE_H_
