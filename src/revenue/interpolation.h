#ifndef NIMBUS_REVENUE_INTERPOLATION_H_
#define NIMBUS_REVENUE_INTERPOLATION_H_

#include <vector>

#include "common/statusor.h"
#include "pricing/pricing_function.h"

namespace nimbus::revenue {

// Price-interpolation problems of §5: the seller provides target prices
// P_j at parameters a_j and wants a well-behaved (arbitrage-free,
// non-negative) pricing function whose values at a_j are as close as
// possible to P_j. The exact problem is coNP-hard (Theorem 7); these
// solvers work on the relaxed feasible region (5), losing at most the
// additive gaps of Proposition 2.

// One target point of a price-interpolation instance.
struct InterpolationPoint {
  double a = 0.0;  // Strictly increasing, positive.
  double target_price = 0.0;
};

// Solves the T²PI objective (squared loss) exactly over region (5) by
// Euclidean projection (Dykstra + isotonic regressions). Returns the
// fitted prices z_j in input order.
StatusOr<std::vector<double>> InterpolatePricesL2(
    const std::vector<InterpolationPoint>& points);

// Solves the T∞PI objective (max absolute deviation) over region (5) as
// a linear program with the in-repo simplex solver.
StatusOr<std::vector<double>> InterpolatePricesLInf(
    const std::vector<InterpolationPoint>& points);

// Builds the Proposition 1 piecewise-linear pricing function through the
// fitted prices.
StatusOr<pricing::PiecewiseLinearPricing> MakeInterpolatedPricing(
    const std::vector<InterpolationPoint>& points,
    const std::vector<double>& fitted_prices, std::string name = "pi");

// Decides the *exact* SUBADDITIVE INTERPOLATION problem (Definition 6)
// for instances whose parameters a_j are positive integers: does a
// positive, monotone, subadditive p with p(a_j) = P_j exist? Implements
// the closure construction from the proof of Theorem 7: the candidate
// f(x) = min(µ(x), cap) where µ(x) is the cheapest unbounded combination
// of the given points covering x (computed by knapsack DP over the
// integer grid). Exponential-free but pseudo-polynomial; intended for
// the hardness-gadget tests, not production sizes.
StatusOr<bool> ExactSubadditiveInterpolationFeasible(
    const std::vector<InterpolationPoint>& points);

}  // namespace nimbus::revenue

#endif  // NIMBUS_REVENUE_INTERPOLATION_H_
