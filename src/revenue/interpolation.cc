#include "revenue/interpolation.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "solver/dykstra.h"
#include "solver/lp.h"

namespace nimbus::revenue {
namespace {

Status ValidatePoints(const std::vector<InterpolationPoint>& points) {
  if (points.empty()) {
    return InvalidArgumentError("need at least one interpolation point");
  }
  double prev_a = 0.0;
  for (const InterpolationPoint& p : points) {
    if (!(p.a > prev_a)) {
      return InvalidArgumentError(
          "interpolation parameters must be strictly increasing and "
          "positive");
    }
    if (p.target_price < 0.0 || !std::isfinite(p.target_price)) {
      return InvalidArgumentError("target prices must be finite and >= 0");
    }
    prev_a = p.a;
  }
  return OkStatus();
}

}  // namespace

StatusOr<std::vector<double>> InterpolatePricesL2(
    const std::vector<InterpolationPoint>& points) {
  NIMBUS_RETURN_IF_ERROR(ValidatePoints(points));
  std::vector<double> targets(points.size());
  std::vector<double> a(points.size());
  for (size_t j = 0; j < points.size(); ++j) {
    targets[j] = points[j].target_price;
    a[j] = points[j].a;
  }
  return solver::ProjectOntoPricingPolytope(targets, a);
}

StatusOr<std::vector<double>> InterpolatePricesLInf(
    const std::vector<InterpolationPoint>& points) {
  NIMBUS_RETURN_IF_ERROR(ValidatePoints(points));
  const int n = static_cast<int>(points.size());
  // Variables: z_1..z_n (prices), then t (the max deviation).
  solver::LpProblem lp;
  lp.num_vars = n + 1;
  lp.maximize = false;
  lp.objective.assign(static_cast<size_t>(n) + 1, 0.0);
  lp.objective.back() = 1.0;

  auto zero_row = [&]() {
    return std::vector<double>(static_cast<size_t>(n) + 1, 0.0);
  };
  for (int j = 0; j < n; ++j) {
    // z_j - t <= P_j.
    solver::LpConstraint upper;
    upper.coeffs = zero_row();
    upper.coeffs[static_cast<size_t>(j)] = 1.0;
    upper.coeffs.back() = -1.0;
    upper.sense = solver::ConstraintSense::kLessEqual;
    upper.rhs = points[static_cast<size_t>(j)].target_price;
    lp.constraints.push_back(std::move(upper));
    // -z_j - t <= -P_j  (i.e. P_j - z_j <= t).
    solver::LpConstraint lower;
    lower.coeffs = zero_row();
    lower.coeffs[static_cast<size_t>(j)] = -1.0;
    lower.coeffs.back() = -1.0;
    lower.sense = solver::ConstraintSense::kLessEqual;
    lower.rhs = -points[static_cast<size_t>(j)].target_price;
    lp.constraints.push_back(std::move(lower));
  }
  for (int j = 0; j + 1 < n; ++j) {
    // Monotonicity: z_j - z_{j+1} <= 0.
    solver::LpConstraint mono;
    mono.coeffs = zero_row();
    mono.coeffs[static_cast<size_t>(j)] = 1.0;
    mono.coeffs[static_cast<size_t>(j) + 1] = -1.0;
    mono.sense = solver::ConstraintSense::kLessEqual;
    mono.rhs = 0.0;
    lp.constraints.push_back(std::move(mono));
    // Relaxed subadditivity: z_{j+1} a_j - z_j a_{j+1} <= 0.
    solver::LpConstraint slope;
    slope.coeffs = zero_row();
    slope.coeffs[static_cast<size_t>(j) + 1] = points[static_cast<size_t>(j)].a;
    slope.coeffs[static_cast<size_t>(j)] =
        -points[static_cast<size_t>(j) + 1].a;
    slope.sense = solver::ConstraintSense::kLessEqual;
    slope.rhs = 0.0;
    lp.constraints.push_back(std::move(slope));
  }
  NIMBUS_ASSIGN_OR_RETURN(solver::LpSolution solution, solver::SolveLp(lp));
  solution.values.pop_back();  // Drop t.
  return solution.values;
}

StatusOr<pricing::PiecewiseLinearPricing> MakeInterpolatedPricing(
    const std::vector<InterpolationPoint>& points,
    const std::vector<double>& fitted_prices, std::string name) {
  if (points.size() != fitted_prices.size()) {
    return InvalidArgumentError("points / prices size mismatch");
  }
  std::vector<pricing::PricePoint> support(points.size());
  for (size_t j = 0; j < points.size(); ++j) {
    support[j] =
        pricing::PricePoint{points[j].a, std::max(0.0, fitted_prices[j])};
  }
  return pricing::PiecewiseLinearPricing::Create(std::move(support),
                                                 std::move(name));
}

StatusOr<bool> ExactSubadditiveInterpolationFeasible(
    const std::vector<InterpolationPoint>& points) {
  NIMBUS_RETURN_IF_ERROR(ValidatePoints(points));
  // Require integer parameters so µ can be computed on the integer grid.
  std::vector<int> a(points.size());
  int max_a = 0;
  for (size_t j = 0; j < points.size(); ++j) {
    const double rounded = std::round(points[j].a);
    if (std::fabs(points[j].a - rounded) > 1e-9) {
      return InvalidArgumentError(
          "exact interpolation feasibility requires integer parameters");
    }
    a[j] = static_cast<int>(rounded);
    max_a = std::max(max_a, a[j]);
  }
  if (max_a > 1000000) {
    return InvalidArgumentError("integer parameters too large (max 1e6)");
  }
  // µ(x): cheapest unbounded multiset of points whose parameters sum to at
  // least x (proof of Theorem 7). g is its table over 0..max_a.
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> g(static_cast<size_t>(max_a) + 1, kInf);
  g[0] = 0.0;
  for (int x = 1; x <= max_a; ++x) {
    double best = kInf;
    for (size_t j = 0; j < points.size(); ++j) {
      const int remaining = std::max(0, x - a[j]);
      if (g[static_cast<size_t>(remaining)] < kInf) {
        best = std::min(best, points[j].target_price +
                                  g[static_cast<size_t>(remaining)]);
      }
    }
    g[static_cast<size_t>(x)] = best;
  }
  // Any monotone subadditive interpolant f satisfies f(x) <= µ(x), so
  // feasibility requires µ(a_j) >= P_j; conversely min(µ, ·) interpolates.
  for (size_t j = 0; j < points.size(); ++j) {
    if (g[static_cast<size_t>(a[j])] < points[j].target_price - 1e-9) {
      return false;
    }
  }
  return true;
}

}  // namespace nimbus::revenue
