#include "revenue/fairness.h"

#include <algorithm>

#include "revenue/dp_optimizer.h"

namespace nimbus::revenue {
namespace {

FairPricingResult Evaluate(const std::vector<BuyerPoint>& points,
                           const std::vector<double>& base_prices,
                           double scale) {
  FairPricingResult result;
  result.scale = scale;
  result.prices.resize(base_prices.size());
  for (size_t j = 0; j < base_prices.size(); ++j) {
    result.prices[j] = scale * base_prices[j];
  }
  result.revenue = RevenueForPrices(points, result.prices);
  result.affordability = AffordabilityForPrices(points, result.prices);
  return result;
}

}  // namespace

StatusOr<FairPricingResult> OptimizeRevenueWithAffordabilityFloor(
    const std::vector<BuyerPoint>& points, double min_affordability) {
  if (min_affordability < 0.0 || min_affordability > 1.0) {
    return InvalidArgumentError("min_affordability must be in [0, 1]");
  }
  NIMBUS_ASSIGN_OR_RETURN(DpResult dp, OptimizeRevenueDp(points));

  // Candidate scales: 1 (the unconstrained optimum) and every point
  // where a buyer flips from priced-out to affordable.
  std::vector<double> candidates = {1.0};
  for (size_t j = 0; j < points.size(); ++j) {
    if (dp.prices[j] > 0.0) {
      const double s = points[j].v / dp.prices[j];
      if (s > 0.0 && s < 1.0) {
        candidates.push_back(s);
      }
    }
  }
  // Free pricing is the affordability-maximal fallback.
  candidates.push_back(0.0);

  bool found = false;
  FairPricingResult best;
  for (double s : candidates) {
    FairPricingResult candidate = Evaluate(points, dp.prices, s);
    if (candidate.affordability + 1e-12 < min_affordability) {
      continue;
    }
    if (!found || candidate.revenue > best.revenue) {
      best = candidate;
      found = true;
    }
  }
  if (!found) {
    return InfeasibleError(
        "affordability floor unreachable even with free pricing");
  }
  return best;
}

}  // namespace nimbus::revenue
