#include "revenue/dp_optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/telemetry.h"

namespace nimbus::revenue {
namespace {

// Suffix-choice tags for reconstructing the optimal price vector.
enum class Choice : unsigned char {
  kClamped,   // a_k Δ <= v_k: price pinned to Δ a_k, Δ unchanged.
  kSellAtV,   // price = v_k, suffix continues with Δ' = v_k / a_k.
  kSkip,      // price rides above v_k (no sale at k), Δ unchanged.
};

}  // namespace

StatusOr<DpResult> OptimizeRevenueDp(const std::vector<BuyerPoint>& points) {
  NIMBUS_RETURN_IF_ERROR(
      ValidateBuyerPoints(points, /*require_monotone_valuations=*/true));
  telemetry::TraceSpan span("revenue.dp_optimize");
  static telemetry::Counter& runs =
      telemetry::Registry::Global().GetCounter("revenue_dp_runs_total");
  static telemetry::Counter& cells =
      telemetry::Registry::Global().GetCounter("revenue_dp_cells_total");
  static telemetry::Histogram& latency =
      telemetry::Registry::Global().GetHistogram("revenue_dp_latency_us");
  telemetry::ScopedTimer timer(latency);
  runs.Increment();
  const int n = static_cast<int>(points.size());
  // The table is n rows by n + 1 Δ columns — the O(n²) of Algorithm 1.
  cells.Increment(static_cast<int64_t>(n) * (n + 1));
  const double kInf = std::numeric_limits<double>::infinity();

  // Δ can only take the n values v_j / a_j plus +infinity (§5.3).
  std::vector<double> delta(static_cast<size_t>(n) + 1);
  for (int j = 0; j < n; ++j) {
    delta[static_cast<size_t>(j)] = points[static_cast<size_t>(j)].v /
                                    points[static_cast<size_t>(j)].a;
  }
  delta[static_cast<size_t>(n)] = kInf;

  // opt[k][i]   = OPT(k, Δ_i): best suffix revenue from point k on, with
  //               every suffix price z_j constrained by z_j / a_j <= Δ_i.
  // price[k][i] = s_k(k, Δ_i): the price of point k in that optimum.
  // choice[k][i] records which recurrence branch won.
  const size_t cols = static_cast<size_t>(n) + 1;
  std::vector<std::vector<double>> opt(
      static_cast<size_t>(n), std::vector<double>(cols, 0.0));
  std::vector<std::vector<double>> price(
      static_cast<size_t>(n), std::vector<double>(cols, 0.0));
  std::vector<std::vector<Choice>> choice(
      static_cast<size_t>(n), std::vector<Choice>(cols, Choice::kClamped));

  // Base case k = n - 1: it is always best to charge the highest price
  // allowed, capped at the valuation.
  for (size_t i = 0; i < cols; ++i) {
    const BuyerPoint& last = points[static_cast<size_t>(n - 1)];
    const double cap = delta[i] * last.a;  // inf * a = inf is fine here.
    const double s = std::min(last.v, cap);
    price[static_cast<size_t>(n - 1)][i] = s;
    opt[static_cast<size_t>(n - 1)][i] = last.b * s;
  }

  for (int k = n - 2; k >= 0; --k) {
    const BuyerPoint& pt = points[static_cast<size_t>(k)];
    for (size_t i = 0; i < cols; ++i) {
      const double cap = delta[i] * pt.a;
      if (cap <= pt.v) {
        // Lemma 11: the cap binds; sell at Δ a_k and keep Δ.
        price[static_cast<size_t>(k)][i] = cap;
        opt[static_cast<size_t>(k)][i] =
            pt.b * cap + opt[static_cast<size_t>(k + 1)][i];
        choice[static_cast<size_t>(k)][i] = Choice::kClamped;
      } else {
        // Lemma 12: either sell at v_k (tightening Δ to v_k / a_k for the
        // suffix), or skip the sale and let the price ride above v_k.
        const double sell = pt.b * pt.v +
                            opt[static_cast<size_t>(k + 1)][
                                static_cast<size_t>(k)];
        const double skip = opt[static_cast<size_t>(k + 1)][i];
        if (sell > skip) {
          price[static_cast<size_t>(k)][i] = pt.v;
          opt[static_cast<size_t>(k)][i] = sell;
          choice[static_cast<size_t>(k)][i] = Choice::kSellAtV;
        } else {
          // Price scaled down from the next point keeps monotonicity and
          // the slope constraint while extracting nothing at k.
          price[static_cast<size_t>(k)][i] =
              price[static_cast<size_t>(k + 1)][i] * pt.a /
              points[static_cast<size_t>(k + 1)].a;
          opt[static_cast<size_t>(k)][i] = skip;
          choice[static_cast<size_t>(k)][i] = Choice::kSkip;
        }
      }
    }
  }

  // Reconstruct the price vector by walking the choice table from
  // (k = 0, Δ = +infinity).
  DpResult result;
  result.prices.resize(static_cast<size_t>(n));
  size_t i = static_cast<size_t>(n);
  for (int k = 0; k < n; ++k) {
    result.prices[static_cast<size_t>(k)] = price[static_cast<size_t>(k)][i];
    if (k < n - 1 &&
        choice[static_cast<size_t>(k)][i] == Choice::kSellAtV) {
      i = static_cast<size_t>(k);
    }
  }
  result.revenue = opt[0][static_cast<size_t>(n)];
  // Degraded-mode guard: surface a Status instead of tripping the
  // reconstruction NIMBUS_CHECK below if a non-finite value ever crept
  // through the table (e.g. overflowing b * z products).
  if (!std::isfinite(result.revenue)) {
    return FailedPreconditionError(
        "DP revenue is non-finite; buyer curve is numerically degenerate");
  }

  // Cross-check: the reconstructed prices must earn the DP's value.
  const double realized = RevenueForPrices(points, result.prices);
  NIMBUS_CHECK(std::fabs(realized - result.revenue) <=
               1e-6 * std::max(1.0, result.revenue))
      << "DP reconstruction mismatch: " << realized << " vs "
      << result.revenue;
  return result;
}

StatusOr<DpResult> OptimizeRevenueDpWithMargin(
    const std::vector<BuyerPoint>& points, double margin) {
  if (margin < 0.0 || margin >= 1.0) {
    return InvalidArgumentError("margin must be in [0, 1)");
  }
  std::vector<BuyerPoint> discounted = points;
  for (BuyerPoint& p : discounted) {
    p.v *= 1.0 - margin;
  }
  NIMBUS_ASSIGN_OR_RETURN(DpResult result, OptimizeRevenueDp(discounted));
  // Report what the margin prices earn against the undiscounted curve.
  result.revenue = RevenueForPrices(points, result.prices);
  return result;
}

StatusOr<pricing::PiecewiseLinearPricing> MakeDpPricingFunction(
    const std::vector<BuyerPoint>& points, const DpResult& result) {
  if (points.size() != result.prices.size()) {
    return InvalidArgumentError("points / prices size mismatch");
  }
  std::vector<pricing::PricePoint> support(points.size());
  for (size_t j = 0; j < points.size(); ++j) {
    support[j] = pricing::PricePoint{points[j].a, result.prices[j]};
  }
  return pricing::PiecewiseLinearPricing::Create(std::move(support), "mbp");
}

}  // namespace nimbus::revenue
