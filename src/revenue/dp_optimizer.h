#ifndef NIMBUS_REVENUE_DP_OPTIMIZER_H_
#define NIMBUS_REVENUE_DP_OPTIMIZER_H_

#include <vector>

#include "common/statusor.h"
#include "pricing/pricing_function.h"
#include "revenue/buyer_model.h"

namespace nimbus::revenue {

// Result of the MBP revenue optimization: the optimal version prices of
// the relaxed problem (5) under the buyer-valuation objective TBV.
struct DpResult {
  // Price z_j assigned to each buyer point (same order as the input).
  std::vector<double> prices;
  // Objective value Σ b_j z_j 1[z_j <= v_j] achieved by `prices`.
  double revenue = 0.0;
};

// Algorithm 1 of the paper: the O(n²) dynamic program that solves the
// relaxed revenue-maximization problem (5) exactly for the TBV objective.
// Requires: buyer points strictly increasing in `a` with monotone
// non-decreasing valuations (the paper's standing assumption). By
// Lemma 8 the returned prices induce an arbitrage-free pricing function;
// by Proposition 3 their revenue is at least half the unrelaxed optimum.
StatusOr<DpResult> OptimizeRevenueDp(const std::vector<BuyerPoint>& points);

// Wraps DP prices into the piecewise-linear arbitrage-free pricing
// function of Proposition 1 (named "mbp").
StatusOr<pricing::PiecewiseLinearPricing> MakeDpPricingFunction(
    const std::vector<BuyerPoint>& points, const DpResult& result);

// Robust variant: optimizes against valuations discounted by `margin`
// in [0, 1). The exact DP prices sit *on* the valuations, so any
// downward error in market research loses the sale (the knife-edge
// surfaced by sensitivity.h); a margin trades a (1 − margin) factor of
// nominal revenue for sales that survive relative valuation errors up
// to `margin`. The returned revenue is computed against the ORIGINAL
// valuations.
StatusOr<DpResult> OptimizeRevenueDpWithMargin(
    const std::vector<BuyerPoint>& points, double margin);

}  // namespace nimbus::revenue

#endif  // NIMBUS_REVENUE_DP_OPTIMIZER_H_
