#include "revenue/research_io.h"

#include <fstream>
#include <limits>
#include <sstream>

#include "common/fault.h"

namespace nimbus::revenue {

std::string SerializeBuyerPoints(const std::vector<BuyerPoint>& points) {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  for (const BuyerPoint& p : points) {
    out << p.a << ',' << p.b << ',' << p.v << '\n';
  }
  return out.str();
}

StatusOr<std::vector<BuyerPoint>> DeserializeBuyerPoints(
    const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::vector<BuyerPoint> points;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty()) {
      continue;
    }
    BuyerPoint p;
    char comma1 = 0;
    char comma2 = 0;
    std::istringstream row(line);
    if (!(row >> p.a >> comma1 >> p.b >> comma2 >> p.v) || comma1 != ',' ||
        comma2 != ',') {
      return InvalidArgumentError("malformed research row on line " +
                                  std::to_string(line_number));
    }
    std::string trailing;
    if (row >> trailing) {
      return InvalidArgumentError("trailing data on line " +
                                  std::to_string(line_number));
    }
    points.push_back(p);
  }
  NIMBUS_RETURN_IF_ERROR(
      ValidateBuyerPoints(points, /*require_monotone_valuations=*/false));
  return points;
}

Status SaveBuyerPoints(const std::vector<BuyerPoint>& points,
                       const std::string& path) {
  FAULT_POINT("io.write");
  std::ofstream file(path);
  if (!file) {
    return InvalidArgumentError("cannot create '" + path + "'");
  }
  file << SerializeBuyerPoints(points);
  file.flush();
  if (!file) {
    return InternalError("write to '" + path + "' failed");
  }
  return OkStatus();
}

StatusOr<std::vector<BuyerPoint>> LoadBuyerPoints(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return NotFoundError("cannot open '" + path + "'");
  }
  std::ostringstream content;
  content << file.rdbuf();
  return DeserializeBuyerPoints(content.str());
}

}  // namespace nimbus::revenue
