#ifndef NIMBUS_ML_SGD_H_
#define NIMBUS_ML_SGD_H_

#include "common/random.h"
#include "common/statusor.h"
#include "data/dataset.h"
#include "ml/loss.h"
#include "ml/trainer.h"

namespace nimbus::ml {

// Learning-rate schedules for stochastic training.
enum class LearningRateSchedule {
  kConstant,     // eta_t = eta0.
  kInverseTime,  // eta_t = eta0 / (1 + decay * t).
  kSqrtDecay,    // eta_t = eta0 / sqrt(1 + t).
};

struct SgdOptions {
  int epochs = 30;
  int batch_size = 32;
  double initial_learning_rate = 0.1;
  LearningRateSchedule schedule = LearningRateSchedule::kInverseTime;
  // Decay constant for kInverseTime (per step, not per epoch).
  double decay = 1e-3;
  // Polyak-Ruppert averaging over the last `average_tail_fraction` of
  // steps (0 disables averaging). Averaging is what makes SGD usable for
  // the strictly convex losses MBP relies on.
  double average_tail_fraction = 0.5;
  uint64_t seed = 1;
};

// Mini-batch stochastic gradient descent over `loss` on `dataset`. This
// is the paper-scale training path: one pass over Simulated1's 7.5M rows
// is cheap where the closed form's Gram accumulation or full-batch GD
// would not be. Works for every differentiable loss in the library.
StatusOr<TrainResult> MinimizeWithSgd(const Loss& loss,
                                      const data::Dataset& dataset,
                                      const SgdOptions& options = {});

}  // namespace nimbus::ml

#endif  // NIMBUS_ML_SGD_H_
