#ifndef NIMBUS_ML_MODEL_IO_H_
#define NIMBUS_ML_MODEL_IO_H_

#include <string>

#include "common/statusor.h"
#include "linalg/vector_ops.h"

namespace nimbus::ml {

// Plain-text persistence for model instances, so a purchased model can be
// handed to the buyer as a file and reloaded by downstream tooling (see
// the nimbus_cli example). Format:
//   nimbus-model v1
//   <dimension>
//   <weight_0>
//   ...
// Weights round-trip exactly (printed with max_digits10 precision).

Status SaveWeights(const linalg::Vector& weights, const std::string& path);

StatusOr<linalg::Vector> LoadWeights(const std::string& path);

// String-based variants used by tests and in-memory transport.
std::string SerializeWeights(const linalg::Vector& weights);
StatusOr<linalg::Vector> DeserializeWeights(const std::string& text);

}  // namespace nimbus::ml

#endif  // NIMBUS_ML_MODEL_IO_H_
