#ifndef NIMBUS_ML_MODEL_H_
#define NIMBUS_ML_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "data/dataset.h"
#include "linalg/vector_ops.h"
#include "ml/loss.h"

namespace nimbus::ml {

// The ML models of the broker's menu M (Table 2).
enum class ModelKind {
  kLinearRegression,
  kLogisticRegression,
  kLinearSvm,
  kPoissonRegression,  // GLM extension beyond Table 2 (counts).
};

std::string_view ModelKindToString(ModelKind kind);

// Inverse of ModelKindToString; kInvalidArgument for unknown names.
StatusOr<ModelKind> ModelKindFromString(std::string_view name);

// One entry of the broker's menu: an ML model together with its training
// error function λ (Table 2, upper half) and the accuracy-report error
// functions ε it supports (lower half). The hypothesis space H is R^d.
class ModelSpec {
 public:
  // `ridge_mu` is the optional L2 regularizer µ of Table 2; the SVM
  // requires µ > 0 (its objective is only strictly convex then), the
  // others accept 0.
  static StatusOr<ModelSpec> Create(ModelKind kind, double ridge_mu);

  ModelKind kind() const { return kind_; }
  double ridge_mu() const { return ridge_mu_; }

  // The training loss λ (includes the regularizer when µ > 0).
  const Loss& training_loss() const { return *training_loss_; }
  std::shared_ptr<const Loss> training_loss_ptr() const {
    return training_loss_;
  }

  // Accuracy-report losses ε the broker offers for this model. Always
  // contains the training loss itself; classification models also offer
  // the 0/1 misclassification rate (Table 2).
  const std::vector<std::shared_ptr<const Loss>>& report_losses() const {
    return report_losses_;
  }

  // Looks up a report loss by Loss::name(); kNotFound if unsupported.
  StatusOr<std::shared_ptr<const Loss>> FindReportLoss(
      const std::string& name) const;

  // Trains the optimal model instance h*_λ(D) on `train` (closed-form for
  // linear regression, Newton for logistic, gradient descent for SVM).
  StatusOr<linalg::Vector> FitOptimal(const data::Dataset& train) const;

  // Whether this model's task matches the dataset labeling.
  bool IsCompatibleWith(const data::Dataset& dataset) const;

 private:
  ModelSpec(ModelKind kind, double ridge_mu,
            std::shared_ptr<const Loss> training_loss,
            std::vector<std::shared_ptr<const Loss>> report_losses)
      : kind_(kind),
        ridge_mu_(ridge_mu),
        training_loss_(std::move(training_loss)),
        report_losses_(std::move(report_losses)) {}

  ModelKind kind_;
  double ridge_mu_;
  std::shared_ptr<const Loss> training_loss_;
  std::vector<std::shared_ptr<const Loss>> report_losses_;
};

// Linear prediction: returns wᵀx.
double PredictScore(const linalg::Vector& w, const linalg::Vector& x);

// Classification prediction: sign(wᵀx) in {−1, +1}.
double PredictLabel(const linalg::Vector& w, const linalg::Vector& x);

}  // namespace nimbus::ml

#endif  // NIMBUS_ML_MODEL_H_
