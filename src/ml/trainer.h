#ifndef NIMBUS_ML_TRAINER_H_
#define NIMBUS_ML_TRAINER_H_

#include "common/statusor.h"
#include "data/dataset.h"
#include "linalg/vector_ops.h"
#include "ml/loss.h"

namespace nimbus::ml {

// Options for the first-order trainer.
struct GradientDescentOptions {
  int max_iterations = 2000;
  // Stop when the gradient infinity-norm drops below this.
  double gradient_tolerance = 1e-8;
  // Initial step size for backtracking line search.
  double initial_step = 1.0;
  // Backtracking shrink factor in (0, 1).
  double backtracking_beta = 0.5;
  // Armijo sufficient-decrease constant in (0, 1).
  double armijo_c = 1e-4;
};

// Result of a training run: the fitted weights and convergence info.
struct TrainResult {
  linalg::Vector weights;
  double final_loss = 0.0;
  int iterations = 0;
  bool converged = false;
};

// Minimizes `loss` over `dataset` with full-batch gradient descent and
// Armijo backtracking line search, starting from the zero vector.
// Deterministic; suitable for every differentiable loss in this library.
StatusOr<TrainResult> MinimizeWithGradientDescent(
    const Loss& loss, const data::Dataset& dataset,
    const GradientDescentOptions& options = {});

// Fits least-squares linear regression in closed form via the ridge
// normal equations (Xᵀ X / n + 2µ I) w = Xᵀ y / n, matching the
// SquaredLoss + RegularizedLoss(µ) objective exactly. `ridge_mu` may be 0
// when the Gram matrix is non-singular.
StatusOr<linalg::Vector> FitLinearRegressionClosedForm(
    const data::Dataset& dataset, double ridge_mu = 0.0);

// Fits L2-regularized logistic regression with damped Newton iterations
// (falls back to gradient descent when a Hessian solve fails).
// `ridge_mu` must be > 0 so the optimum is unique (strict convexity is
// what the MBP error transformation relies on).
StatusOr<TrainResult> FitLogisticRegressionNewton(
    const data::Dataset& dataset, double ridge_mu, int max_iterations = 100,
    double gradient_tolerance = 1e-10);

}  // namespace nimbus::ml

#endif  // NIMBUS_ML_TRAINER_H_
