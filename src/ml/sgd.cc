#include "ml/sgd.h"

#include <cmath>
#include <numeric>
#include <vector>

#include "common/logging.h"
#include "linalg/vector_ops.h"

namespace nimbus::ml {
namespace {

double LearningRateAt(const SgdOptions& options, int64_t step) {
  switch (options.schedule) {
    case LearningRateSchedule::kConstant:
      return options.initial_learning_rate;
    case LearningRateSchedule::kInverseTime:
      return options.initial_learning_rate /
             (1.0 + options.decay * static_cast<double>(step));
    case LearningRateSchedule::kSqrtDecay:
      return options.initial_learning_rate /
             std::sqrt(1.0 + static_cast<double>(step));
  }
  return options.initial_learning_rate;
}

}  // namespace

StatusOr<TrainResult> MinimizeWithSgd(const Loss& loss,
                                      const data::Dataset& dataset,
                                      const SgdOptions& options) {
  if (dataset.empty()) {
    return InvalidArgumentError("cannot train on an empty dataset");
  }
  if (!loss.IsDifferentiable()) {
    return InvalidArgumentError("loss '" + loss.name() +
                                "' is not differentiable");
  }
  if (options.epochs < 1 || options.batch_size < 1) {
    return InvalidArgumentError("epochs and batch_size must be positive");
  }
  if (options.initial_learning_rate <= 0.0) {
    return InvalidArgumentError("initial_learning_rate must be positive");
  }
  if (options.average_tail_fraction < 0.0 ||
      options.average_tail_fraction > 1.0) {
    return InvalidArgumentError("average_tail_fraction must be in [0, 1]");
  }

  const int n = dataset.num_examples();
  const int d = dataset.num_features();
  Rng rng(options.seed);
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  linalg::Vector weights = linalg::Zeros(d);
  linalg::Vector average = linalg::Zeros(d);
  const int64_t steps_per_epoch =
      (n + options.batch_size - 1) / options.batch_size;
  const int64_t total_steps = steps_per_epoch * options.epochs;
  const int64_t tail_start = static_cast<int64_t>(
      (1.0 - options.average_tail_fraction) * static_cast<double>(total_steps));
  int64_t averaged_steps = 0;
  int64_t step = 0;

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    // Fresh shuffle each epoch (Fisher-Yates on the index array).
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[static_cast<size_t>(rng.UniformInt(i))]);
    }
    for (int start = 0; start < n; start += options.batch_size) {
      const int end = std::min(start + options.batch_size, n);
      std::vector<int> batch_idx(order.begin() + start, order.begin() + end);
      const data::Dataset batch = dataset.Subset(batch_idx);
      const linalg::Vector grad = loss.Gradient(weights, batch);
      linalg::AxpyInPlace(-LearningRateAt(options, step), grad, weights);
      if (step >= tail_start) {
        linalg::AxpyInPlace(1.0, weights, average);
        ++averaged_steps;
      }
      ++step;
    }
  }

  TrainResult result;
  result.weights = averaged_steps > 0
                       ? linalg::Scale(average,
                                       1.0 / static_cast<double>(
                                                 averaged_steps))
                       : weights;
  result.final_loss = loss.Value(result.weights, dataset);
  result.iterations = static_cast<int>(step);
  // SGD has no gradient-norm stopping rule; completing the budget counts
  // as convergence for reporting purposes.
  result.converged = true;
  return result;
}

}  // namespace nimbus::ml
