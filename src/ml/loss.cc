#include "ml/loss.h"

#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace nimbus::ml {

using data::Dataset;
using data::Example;
using linalg::Vector;

linalg::Vector Loss::Gradient(const linalg::Vector& /*w*/,
                              const data::Dataset& /*dataset*/) const {
  NIMBUS_LOG(kFatal) << "Gradient requested for non-differentiable loss '"
                     << name() << "'";
  return {};
}

double SquaredLoss::Value(const Vector& w, const Dataset& dataset) const {
  NIMBUS_CHECK(!dataset.empty());
  double sum = 0.0;
  for (const Example& e : dataset.examples()) {
    const double r = linalg::Dot(w, e.features) - e.target;
    sum += r * r;
  }
  return sum / (2.0 * dataset.num_examples());
}

Vector SquaredLoss::Gradient(const Vector& w, const Dataset& dataset) const {
  NIMBUS_CHECK(!dataset.empty());
  Vector grad = linalg::Zeros(dataset.num_features());
  for (const Example& e : dataset.examples()) {
    const double r = linalg::Dot(w, e.features) - e.target;
    linalg::AxpyInPlace(r, e.features, grad);
  }
  return linalg::Scale(grad, 1.0 / dataset.num_examples());
}

double LogisticLoss::Value(const Vector& w, const Dataset& dataset) const {
  NIMBUS_CHECK(!dataset.empty());
  double sum = 0.0;
  for (const Example& e : dataset.examples()) {
    sum += Log1pExp(-e.target * linalg::Dot(w, e.features));
  }
  return sum / dataset.num_examples();
}

Vector LogisticLoss::Gradient(const Vector& w, const Dataset& dataset) const {
  NIMBUS_CHECK(!dataset.empty());
  Vector grad = linalg::Zeros(dataset.num_features());
  for (const Example& e : dataset.examples()) {
    const double margin = e.target * linalg::Dot(w, e.features);
    // d/dw log(1+exp(-m)) = -y sigmoid(-m) x.
    const double coeff = -e.target * Sigmoid(-margin);
    linalg::AxpyInPlace(coeff, e.features, grad);
  }
  return linalg::Scale(grad, 1.0 / dataset.num_examples());
}

double HingeLoss::Value(const Vector& w, const Dataset& dataset) const {
  NIMBUS_CHECK(!dataset.empty());
  double sum = 0.0;
  for (const Example& e : dataset.examples()) {
    sum += std::max(0.0, 1.0 - e.target * linalg::Dot(w, e.features));
  }
  return sum / dataset.num_examples();
}

Vector HingeLoss::Gradient(const Vector& w, const Dataset& dataset) const {
  NIMBUS_CHECK(!dataset.empty());
  Vector grad = linalg::Zeros(dataset.num_features());
  for (const Example& e : dataset.examples()) {
    if (e.target * linalg::Dot(w, e.features) < 1.0) {
      linalg::AxpyInPlace(-e.target, e.features, grad);
    }
  }
  return linalg::Scale(grad, 1.0 / dataset.num_examples());
}

namespace {

// exp with the argument clamped so extreme weight vectors probed by line
// searches do not overflow to inf (the clamp is far outside any region a
// fitted model visits).
double SafeExp(double z) { return std::exp(std::min(z, 500.0)); }

}  // namespace

double PoissonLoss::Value(const Vector& w, const Dataset& dataset) const {
  NIMBUS_CHECK(!dataset.empty());
  double sum = 0.0;
  for (const Example& e : dataset.examples()) {
    const double z = linalg::Dot(w, e.features);
    sum += SafeExp(z) - e.target * z;
  }
  return sum / dataset.num_examples();
}

Vector PoissonLoss::Gradient(const Vector& w, const Dataset& dataset) const {
  NIMBUS_CHECK(!dataset.empty());
  Vector grad = linalg::Zeros(dataset.num_features());
  for (const Example& e : dataset.examples()) {
    const double z = linalg::Dot(w, e.features);
    linalg::AxpyInPlace(SafeExp(z) - e.target, e.features, grad);
  }
  return linalg::Scale(grad, 1.0 / dataset.num_examples());
}

double ZeroOneLoss::Value(const Vector& w, const Dataset& dataset) const {
  NIMBUS_CHECK(!dataset.empty());
  int errors = 0;
  for (const Example& e : dataset.examples()) {
    const double pred = linalg::Dot(w, e.features) > 0.0 ? 1.0 : -1.0;
    if (pred != e.target) {
      ++errors;
    }
  }
  return static_cast<double>(errors) / dataset.num_examples();
}

RegularizedLoss::RegularizedLoss(std::shared_ptr<const Loss> base, double mu)
    : base_(std::move(base)), mu_(mu) {
  NIMBUS_CHECK(base_ != nullptr);
  NIMBUS_CHECK_GE(mu_, 0.0);
}

double RegularizedLoss::Value(const Vector& w, const Dataset& dataset) const {
  return base_->Value(w, dataset) + mu_ * linalg::SquaredNorm2(w);
}

Vector RegularizedLoss::Gradient(const Vector& w,
                                 const Dataset& dataset) const {
  Vector grad = base_->Gradient(w, dataset);
  linalg::AxpyInPlace(2.0 * mu_, w, grad);
  return grad;
}

bool RegularizedLoss::IsDifferentiable() const {
  return base_->IsDifferentiable();
}

std::string RegularizedLoss::name() const {
  return base_->name() + "+l2(" + std::to_string(mu_) + ")";
}

}  // namespace nimbus::ml
