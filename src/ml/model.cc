#include "ml/model.h"

#include "common/logging.h"
#include "ml/trainer.h"

namespace nimbus::ml {

std::string_view ModelKindToString(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLinearRegression:
      return "linear_regression";
    case ModelKind::kPoissonRegression:
      return "poisson_regression";
    case ModelKind::kLogisticRegression:
      return "logistic_regression";
    case ModelKind::kLinearSvm:
      return "linear_svm";
  }
  return "unknown";
}

StatusOr<ModelKind> ModelKindFromString(std::string_view name) {
  for (ModelKind kind :
       {ModelKind::kLinearRegression, ModelKind::kLogisticRegression,
        ModelKind::kLinearSvm, ModelKind::kPoissonRegression}) {
    if (name == ModelKindToString(kind)) {
      return kind;
    }
  }
  return InvalidArgumentError("unknown model kind '" + std::string(name) +
                              "'");
}

StatusOr<ModelSpec> ModelSpec::Create(ModelKind kind, double ridge_mu) {
  if (ridge_mu < 0.0) {
    return InvalidArgumentError("ridge_mu must be non-negative");
  }
  std::shared_ptr<const Loss> base;
  switch (kind) {
    case ModelKind::kLinearRegression:
      base = std::make_shared<SquaredLoss>();
      break;
    case ModelKind::kLogisticRegression:
      base = std::make_shared<LogisticLoss>();
      break;
    case ModelKind::kLinearSvm:
      if (ridge_mu <= 0.0) {
        return InvalidArgumentError("the L2 linear SVM requires ridge_mu > 0");
      }
      base = std::make_shared<HingeLoss>();
      break;
    case ModelKind::kPoissonRegression:
      base = std::make_shared<PoissonLoss>();
      break;
  }
  std::shared_ptr<const Loss> training =
      ridge_mu > 0.0
          ? std::shared_ptr<const Loss>(
                std::make_shared<RegularizedLoss>(base, ridge_mu))
          : base;
  // Report losses ε are the unregularized base losses of Table 2: the
  // regularizer is a training device, not part of the accuracy report.
  std::vector<std::shared_ptr<const Loss>> report_losses = {base};
  if (kind == ModelKind::kLogisticRegression || kind == ModelKind::kLinearSvm) {
    report_losses.push_back(std::make_shared<ZeroOneLoss>());
  }
  return ModelSpec(kind, ridge_mu, std::move(training),
                   std::move(report_losses));
}

StatusOr<std::shared_ptr<const Loss>> ModelSpec::FindReportLoss(
    const std::string& name) const {
  for (const std::shared_ptr<const Loss>& loss : report_losses_) {
    if (loss->name() == name) {
      return loss;
    }
  }
  return NotFoundError("model '" + std::string(ModelKindToString(kind_)) +
                       "' does not support report loss '" + name + "'");
}

StatusOr<linalg::Vector> ModelSpec::FitOptimal(
    const data::Dataset& train) const {
  if (!IsCompatibleWith(train)) {
    return InvalidArgumentError(
        "dataset task does not match model '" +
        std::string(ModelKindToString(kind_)) + "'");
  }
  switch (kind_) {
    case ModelKind::kLinearRegression:
      return FitLinearRegressionClosedForm(train, ridge_mu_);
    case ModelKind::kLogisticRegression: {
      if (ridge_mu_ > 0.0) {
        NIMBUS_ASSIGN_OR_RETURN(TrainResult result,
                                FitLogisticRegressionNewton(train, ridge_mu_));
        return result.weights;
      }
      NIMBUS_ASSIGN_OR_RETURN(
          TrainResult result,
          MinimizeWithGradientDescent(*training_loss_, train));
      return result.weights;
    }
    case ModelKind::kLinearSvm:
    case ModelKind::kPoissonRegression: {
      GradientDescentOptions options;
      options.max_iterations = 5000;
      NIMBUS_ASSIGN_OR_RETURN(
          TrainResult result,
          MinimizeWithGradientDescent(*training_loss_, train, options));
      return result.weights;
    }
  }
  return InternalError("unreachable model kind");
}

bool ModelSpec::IsCompatibleWith(const data::Dataset& dataset) const {
  const bool needs_regression = kind_ == ModelKind::kLinearRegression ||
                                kind_ == ModelKind::kPoissonRegression;
  return needs_regression == (dataset.task() == data::Task::kRegression);
}

double PredictScore(const linalg::Vector& w, const linalg::Vector& x) {
  return linalg::Dot(w, x);
}

double PredictLabel(const linalg::Vector& w, const linalg::Vector& x) {
  return PredictScore(w, x) > 0.0 ? 1.0 : -1.0;
}

}  // namespace nimbus::ml
