#include "ml/naive_bayes.h"

#include <cmath>

#include "common/logging.h"

namespace nimbus::ml {

linalg::Vector NaiveBayesModel::Flatten() const {
  const int d = num_features();
  NIMBUS_CHECK_EQ(static_cast<int>(mean_negative.size()), d);
  NIMBUS_CHECK_EQ(static_cast<int>(log_variance.size()), d);
  linalg::Vector flat;
  flat.reserve(static_cast<size_t>(ParameterDim(d)));
  flat.push_back(prior_logit);
  flat.insert(flat.end(), mean_positive.begin(), mean_positive.end());
  flat.insert(flat.end(), mean_negative.begin(), mean_negative.end());
  flat.insert(flat.end(), log_variance.begin(), log_variance.end());
  return flat;
}

StatusOr<NaiveBayesModel> NaiveBayesModel::FromFlat(
    const linalg::Vector& flat) {
  if (flat.size() < 4 || (flat.size() - 1) % 3 != 0) {
    return InvalidArgumentError(
        "flattened Naive Bayes parameters must have size 3d + 1");
  }
  const size_t d = (flat.size() - 1) / 3;
  NaiveBayesModel model;
  model.prior_logit = flat[0];
  model.mean_positive.assign(flat.begin() + 1, flat.begin() + 1 + d);
  model.mean_negative.assign(flat.begin() + 1 + d, flat.begin() + 1 + 2 * d);
  model.log_variance.assign(flat.begin() + 1 + 2 * d, flat.end());
  return model;
}

double NaiveBayesModel::Score(const linalg::Vector& x) const {
  NIMBUS_CHECK_EQ(x.size(), mean_positive.size());
  // With a pooled variance the Gaussian normalizers cancel and the
  // log-odds reduce to a quadratic-difference form per feature.
  double score = prior_logit;
  for (size_t j = 0; j < x.size(); ++j) {
    const double inv_var = std::exp(-log_variance[j]);
    const double dp = x[j] - mean_positive[j];
    const double dn = x[j] - mean_negative[j];
    score += 0.5 * inv_var * (dn * dn - dp * dp);
  }
  return score;
}

double NaiveBayesModel::Predict(const linalg::Vector& x) const {
  return Score(x) > 0.0 ? 1.0 : -1.0;
}

StatusOr<NaiveBayesModel> FitGaussianNaiveBayes(const data::Dataset& dataset,
                                                double variance_floor) {
  if (dataset.empty()) {
    return InvalidArgumentError("cannot fit on an empty dataset");
  }
  if (!(variance_floor > 0.0)) {
    return InvalidArgumentError("variance_floor must be positive");
  }
  const int d = dataset.num_features();
  int n_pos = 0;
  int n_neg = 0;
  linalg::Vector sum_pos = linalg::Zeros(d);
  linalg::Vector sum_neg = linalg::Zeros(d);
  for (const data::Example& e : dataset.examples()) {
    if (e.target == 1.0) {
      ++n_pos;
      linalg::AxpyInPlace(1.0, e.features, sum_pos);
    } else if (e.target == -1.0) {
      ++n_neg;
      linalg::AxpyInPlace(1.0, e.features, sum_neg);
    } else {
      return InvalidArgumentError("labels must be +1 / -1");
    }
  }
  if (n_pos == 0 || n_neg == 0) {
    return FailedPreconditionError(
        "both classes must be present to fit Naive Bayes");
  }
  NaiveBayesModel model;
  model.prior_logit = std::log(static_cast<double>(n_pos) /
                               static_cast<double>(n_neg));
  model.mean_positive = linalg::Scale(sum_pos, 1.0 / n_pos);
  model.mean_negative = linalg::Scale(sum_neg, 1.0 / n_neg);
  // Pooled within-class variance per feature (maximum likelihood).
  linalg::Vector pooled = linalg::Zeros(d);
  for (const data::Example& e : dataset.examples()) {
    const linalg::Vector& mean =
        e.target == 1.0 ? model.mean_positive : model.mean_negative;
    for (int j = 0; j < d; ++j) {
      const double diff = e.features[static_cast<size_t>(j)] -
                          mean[static_cast<size_t>(j)];
      pooled[static_cast<size_t>(j)] += diff * diff;
    }
  }
  model.log_variance.resize(static_cast<size_t>(d));
  for (int j = 0; j < d; ++j) {
    const double variance = std::max(
        variance_floor,
        pooled[static_cast<size_t>(j)] / dataset.num_examples());
    model.log_variance[static_cast<size_t>(j)] = std::log(variance);
  }
  return model;
}

double NaiveBayesZeroOneLoss::Value(const linalg::Vector& flat_params,
                                    const data::Dataset& dataset) const {
  NIMBUS_CHECK(!dataset.empty());
  StatusOr<NaiveBayesModel> model = NaiveBayesModel::FromFlat(flat_params);
  NIMBUS_CHECK(model.ok()) << model.status();
  NIMBUS_CHECK_EQ(model->num_features(), dataset.num_features());
  int errors = 0;
  for (const data::Example& e : dataset.examples()) {
    if (model->Predict(e.features) != e.target) {
      ++errors;
    }
  }
  return static_cast<double>(errors) / dataset.num_examples();
}

}  // namespace nimbus::ml
