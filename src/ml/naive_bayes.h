#ifndef NIMBUS_ML_NAIVE_BAYES_H_
#define NIMBUS_ML_NAIVE_BAYES_H_

#include "common/statusor.h"
#include "data/dataset.h"
#include "linalg/vector_ops.h"
#include "ml/loss.h"

namespace nimbus::ml {

// Gaussian Naive Bayes for binary labels in {−1, +1} with a pooled
// diagonal covariance. §2 lists Naive Bayes among the model families a
// broker should support; this class shows the MBP machinery extends
// beyond GLMs: the model's parameters flatten into one real vector, the
// noise mechanisms perturb that vector, and the empirical error
// transformation (§6.1) applies unchanged.
//
// Parameter layout (dimension 3d + 1):
//   [ prior_logit | mean_positive (d) | mean_negative (d) | log_variance (d) ]
// Storing log-variances keeps every noisy version a valid model — the
// variance stays positive no matter what noise is added.
struct NaiveBayesModel {
  double prior_logit = 0.0;        // log(P(+1) / P(−1)).
  linalg::Vector mean_positive;    // Per-feature class-conditional means.
  linalg::Vector mean_negative;
  linalg::Vector log_variance;     // Pooled per-feature log variances.

  int num_features() const {
    return static_cast<int>(mean_positive.size());
  }

  // Number of flattened parameters for a d-feature model.
  static int ParameterDim(int num_features) { return 3 * num_features + 1; }

  // Serializes the parameters into one vector (see layout above).
  linalg::Vector Flatten() const;

  // Rebuilds a model from a flattened vector; the size must be 3d + 1
  // for some d >= 1.
  static StatusOr<NaiveBayesModel> FromFlat(const linalg::Vector& flat);

  // Log-odds log P(+1 | x) − log P(−1 | x).
  double Score(const linalg::Vector& x) const;

  // Hard prediction in {−1, +1}.
  double Predict(const linalg::Vector& x) const;
};

// Fits the model by maximum likelihood (class priors, class-conditional
// means, pooled within-class variances, floored at `variance_floor`).
// Fails when either class is absent.
StatusOr<NaiveBayesModel> FitGaussianNaiveBayes(
    const data::Dataset& dataset, double variance_floor = 1e-6);

// 0/1 misclassification rate over the *flattened* parameter vector, so
// Naive Bayes models plug into mechanism::EstimateExpectedError and
// pricing::ErrorCurve like any linear model.
class NaiveBayesZeroOneLoss final : public Loss {
 public:
  double Value(const linalg::Vector& flat_params,
               const data::Dataset& dataset) const override;
  bool IsDifferentiable() const override { return false; }
  bool IsConvex() const override { return false; }
  std::string name() const override { return "naive_bayes_zero_one"; }
};

}  // namespace nimbus::ml

#endif  // NIMBUS_ML_NAIVE_BAYES_H_
