#include "ml/trainer.h"

#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/telemetry.h"
#include "linalg/cholesky.h"
#include "linalg/matrix.h"

namespace nimbus::ml {

using data::Dataset;
using data::Example;
using linalg::Matrix;
using linalg::Vector;

namespace {

telemetry::Counter& GdIterationsCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("ml_gd_iterations_total");
  return counter;
}

telemetry::Histogram& GdFitLatency() {
  static telemetry::Histogram& histogram =
      telemetry::Registry::Global().GetHistogram("ml_gd_fit_latency_us");
  return histogram;
}

telemetry::Counter& ClosedFormFitsCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("ml_closed_form_fits_total");
  return counter;
}

telemetry::Histogram& ClosedFormFitLatency() {
  static telemetry::Histogram& histogram = telemetry::Registry::Global()
      .GetHistogram("ml_closed_form_fit_latency_us");
  return histogram;
}

telemetry::Counter& NewtonIterationsCounter() {
  static telemetry::Counter& counter =
      telemetry::Registry::Global().GetCounter("ml_newton_iterations_total");
  return counter;
}

}  // namespace

StatusOr<TrainResult> MinimizeWithGradientDescent(
    const Loss& loss, const Dataset& dataset,
    const GradientDescentOptions& options) {
  if (dataset.empty()) {
    return InvalidArgumentError("cannot train on an empty dataset");
  }
  if (!loss.IsDifferentiable()) {
    return InvalidArgumentError("loss '" + loss.name() +
                                "' is not differentiable");
  }
  telemetry::TraceSpan span("ml.gd_fit");
  telemetry::ScopedTimer timer(GdFitLatency());
  TrainResult result;
  result.weights = linalg::Zeros(dataset.num_features());
  double value = loss.Value(result.weights, dataset);
  double step = options.initial_step;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    const Vector grad = loss.Gradient(result.weights, dataset);
    const double grad_norm = linalg::NormInf(grad);
    result.iterations = iter;
    if (grad_norm < options.gradient_tolerance) {
      result.converged = true;
      break;
    }
    // Backtracking line search along -grad (Armijo condition).
    const double grad_sq = linalg::SquaredNorm2(grad);
    double t = step;
    bool accepted = false;
    for (int backtrack = 0; backtrack < 60; ++backtrack) {
      Vector candidate = result.weights;
      linalg::AxpyInPlace(-t, grad, candidate);
      const double candidate_value = loss.Value(candidate, dataset);
      if (candidate_value <= value - options.armijo_c * t * grad_sq) {
        result.weights = std::move(candidate);
        value = candidate_value;
        accepted = true;
        break;
      }
      t *= options.backtracking_beta;
    }
    if (!accepted) {
      // Step collapsed to numerical noise: treat as converged.
      result.converged = true;
      break;
    }
    // Allow the step to grow back so progress is not permanently throttled
    // by one bad region.
    step = std::min(options.initial_step, t / options.backtracking_beta);
  }
  GdIterationsCounter().Increment(result.iterations);
  result.final_loss = value;
  return result;
}

StatusOr<Vector> FitLinearRegressionClosedForm(const Dataset& dataset,
                                               double ridge_mu) {
  if (dataset.empty()) {
    return InvalidArgumentError("cannot train on an empty dataset");
  }
  if (ridge_mu < 0.0) {
    return InvalidArgumentError("ridge_mu must be non-negative");
  }
  telemetry::TraceSpan span("ml.closed_form_fit");
  telemetry::ScopedTimer timer(ClosedFormFitLatency());
  ClosedFormFitsCounter().Increment();
  const int d = dataset.num_features();
  const int n = dataset.num_examples();
  // Materialize the design matrix once and use the fused (and, for large
  // inputs, parallel) Gram kernel for Xᵀ X plus the raw-pointer
  // transposed product for Xᵀ y.
  Matrix x(n, d);
  Vector y(static_cast<size_t>(n));
  {
    int r = 0;
    for (const Example& e : dataset.examples()) {
      for (int i = 0; i < d; ++i) {
        x.At(r, i) = e.features[static_cast<size_t>(i)];
      }
      y[static_cast<size_t>(r)] = e.target;
      ++r;
    }
  }
  Matrix gram = x.Gram();
  const Vector xty = x.TransposeMatVec(y);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (int i = 0; i < d; ++i) {
    for (int j = 0; j < d; ++j) {
      gram.At(i, j) *= inv_n;
    }
  }
  gram.AddToDiagonal(2.0 * ridge_mu);
  return linalg::SolveSpd(gram, linalg::Scale(xty, inv_n));
}

StatusOr<TrainResult> FitLogisticRegressionNewton(const Dataset& dataset,
                                                  double ridge_mu,
                                                  int max_iterations,
                                                  double gradient_tolerance) {
  if (dataset.empty()) {
    return InvalidArgumentError("cannot train on an empty dataset");
  }
  if (ridge_mu <= 0.0) {
    return InvalidArgumentError(
        "FitLogisticRegressionNewton requires ridge_mu > 0");
  }
  const int d = dataset.num_features();
  const int n = dataset.num_examples();
  const RegularizedLoss loss(std::make_shared<LogisticLoss>(), ridge_mu);

  telemetry::TraceSpan span("ml.newton_fit");
  TrainResult result;
  result.weights = linalg::Zeros(d);
  for (int iter = 0; iter < max_iterations; ++iter) {
    result.iterations = iter;
    const Vector grad = loss.Gradient(result.weights, dataset);
    if (linalg::NormInf(grad) < gradient_tolerance) {
      result.converged = true;
      break;
    }
    // Hessian = 1/n Σ σ(m)(1−σ(m)) x xᵀ + 2µ I, with m = y wᵀx.
    Matrix hessian(d, d);
    for (const Example& e : dataset.examples()) {
      const double margin = e.target * linalg::Dot(result.weights, e.features);
      const double s = Sigmoid(-margin);
      const double weight = s * (1.0 - s);
      if (weight == 0.0) {
        continue;
      }
      for (int i = 0; i < d; ++i) {
        const double xi = e.features[static_cast<size_t>(i)];
        if (xi == 0.0) {
          continue;
        }
        for (int j = i; j < d; ++j) {
          hessian.At(i, j) += weight * xi * e.features[static_cast<size_t>(j)];
        }
      }
    }
    for (int i = 0; i < d; ++i) {
      for (int j = i + 1; j < d; ++j) {
        hessian.At(j, i) = hessian.At(i, j);
      }
    }
    const double inv_n = 1.0 / static_cast<double>(n);
    for (int i = 0; i < d; ++i) {
      for (int j = 0; j < d; ++j) {
        hessian.At(i, j) *= inv_n;
      }
    }
    hessian.AddToDiagonal(2.0 * ridge_mu);

    StatusOr<Vector> direction = linalg::SolveSpd(hessian, grad);
    if (!direction.ok()) {
      // Degenerate Hessian: fall back to first-order minimization.
      return MinimizeWithGradientDescent(loss, dataset);
    }
    // Damped Newton: halve the step until the objective decreases.
    const double value = loss.Value(result.weights, dataset);
    double t = 1.0;
    bool accepted = false;
    for (int backtrack = 0; backtrack < 50; ++backtrack) {
      Vector candidate = result.weights;
      linalg::AxpyInPlace(-t, *direction, candidate);
      if (loss.Value(candidate, dataset) < value) {
        result.weights = std::move(candidate);
        accepted = true;
        break;
      }
      t *= 0.5;
    }
    if (!accepted) {
      result.converged = true;
      break;
    }
  }
  NewtonIterationsCounter().Increment(result.iterations);
  result.final_loss = loss.Value(result.weights, dataset);
  return result;
}

}  // namespace nimbus::ml
