#ifndef NIMBUS_ML_LOSS_H_
#define NIMBUS_ML_LOSS_H_

#include <memory>
#include <string>

#include "data/dataset.h"
#include "linalg/vector_ops.h"

namespace nimbus::ml {

// Error function λ(h, D) / ε(h, D) of the paper (§3.1, Table 2): maps a
// linear-model instance h (a weight vector) and a dataset to a
// non-negative real. All losses are averaged over the examples, matching
// the paper's convention.
class Loss {
 public:
  virtual ~Loss() = default;

  // Loss value at weights `w` on `dataset`.
  virtual double Value(const linalg::Vector& w,
                       const data::Dataset& dataset) const = 0;

  // Gradient with respect to `w`. Only valid when IsDifferentiable();
  // non-differentiable losses abort.
  virtual linalg::Vector Gradient(const linalg::Vector& w,
                                  const data::Dataset& dataset) const;

  // Whether Gradient() is available (the 0/1 loss is not).
  virtual bool IsDifferentiable() const { return true; }

  // Whether the loss is convex in `w` (the 0/1 loss is not). Strictly
  // convex losses admit the error-inverse map of Theorem 6.
  virtual bool IsConvex() const { return true; }

  // Short identifier, e.g. "squared" or "zero_one".
  virtual std::string name() const = 0;
};

// Least-squares loss of Example 2:
//   λ(h, D) = 1/(2|D|) Σ (hᵀx_i − y_i)².
class SquaredLoss final : public Loss {
 public:
  double Value(const linalg::Vector& w,
               const data::Dataset& dataset) const override;
  linalg::Vector Gradient(const linalg::Vector& w,
                          const data::Dataset& dataset) const override;
  std::string name() const override { return "squared"; }
};

// Logistic loss for labels y ∈ {−1, +1}:
//   λ(h, D) = 1/|D| Σ log(1 + exp(−y_i hᵀx_i)).
class LogisticLoss final : public Loss {
 public:
  double Value(const linalg::Vector& w,
               const data::Dataset& dataset) const override;
  linalg::Vector Gradient(const linalg::Vector& w,
                          const data::Dataset& dataset) const override;
  std::string name() const override { return "logistic"; }
};

// Hinge loss for L2 linear SVM (Table 2):
//   λ(h, D) = 1/|D| Σ max(0, 1 − y_i hᵀx_i).
// Differentiable almost everywhere; Gradient returns a subgradient.
class HingeLoss final : public Loss {
 public:
  double Value(const linalg::Vector& w,
               const data::Dataset& dataset) const override;
  linalg::Vector Gradient(const linalg::Vector& w,
                          const data::Dataset& dataset) const override;
  std::string name() const override { return "hinge"; }
};

// Poisson-regression negative log-likelihood (dropping the y!-term that
// does not depend on h) for count targets y >= 0 with rate exp(hᵀx):
//   λ(h, D) = 1/|D| Σ (exp(hᵀx_i) − y_i hᵀx_i).
// Strictly convex, so it supports the Theorem 6 error-inverse map like
// the other GLM losses (an extension beyond the paper's Table 2).
class PoissonLoss final : public Loss {
 public:
  double Value(const linalg::Vector& w,
               const data::Dataset& dataset) const override;
  linalg::Vector Gradient(const linalg::Vector& w,
                          const data::Dataset& dataset) const override;
  std::string name() const override { return "poisson"; }
};

// Misclassification rate (Table 2's 0/1 error for ε):
//   ε(h, D) = 1/|D| Σ 1[sign(hᵀx_i) ≠ y_i].
class ZeroOneLoss final : public Loss {
 public:
  double Value(const linalg::Vector& w,
               const data::Dataset& dataset) const override;
  bool IsDifferentiable() const override { return false; }
  bool IsConvex() const override { return false; }
  std::string name() const override { return "zero_one"; }
};

// Wraps a base loss with L2 (ridge) regularization, the optional
// `+ µ‖w‖²` of Table 2.
class RegularizedLoss final : public Loss {
 public:
  RegularizedLoss(std::shared_ptr<const Loss> base, double mu);

  double Value(const linalg::Vector& w,
               const data::Dataset& dataset) const override;
  linalg::Vector Gradient(const linalg::Vector& w,
                          const data::Dataset& dataset) const override;
  bool IsDifferentiable() const override;
  std::string name() const override;

  double mu() const { return mu_; }
  const Loss& base() const { return *base_; }

 private:
  std::shared_ptr<const Loss> base_;
  double mu_;
};

}  // namespace nimbus::ml

#endif  // NIMBUS_ML_LOSS_H_
