#ifndef NIMBUS_ML_METRICS_H_
#define NIMBUS_ML_METRICS_H_

#include "common/statusor.h"
#include "data/dataset.h"
#include "linalg/vector_ops.h"

namespace nimbus::ml {

// Standard holdout evaluation scores (§2: "the predictive power of a
// model instance is often evaluated using standard scores"). These are
// what a buyer would compute on the delivered model instance.

struct RegressionMetrics {
  double mse = 0.0;   // Mean squared error.
  double rmse = 0.0;  // Root mean squared error.
  double mae = 0.0;   // Mean absolute error.
  double r2 = 0.0;    // Coefficient of determination.
};

struct ClassificationMetrics {
  double accuracy = 0.0;
  double precision = 0.0;  // Of predicted positives (0 when none).
  double recall = 0.0;     // Of actual positives (0 when none).
  double f1 = 0.0;
  double auc = 0.0;  // Area under the ROC curve via the rank statistic.
  int true_positives = 0;
  int true_negatives = 0;
  int false_positives = 0;
  int false_negatives = 0;
};

// Scores a linear model on a regression dataset. Fails on an empty
// dataset or a dimension mismatch.
StatusOr<RegressionMetrics> EvaluateRegression(const linalg::Vector& weights,
                                               const data::Dataset& dataset);

// Scores a linear classifier (predicting sign(w.x)) on a classification
// dataset with labels in {-1, +1}.
StatusOr<ClassificationMetrics> EvaluateClassification(
    const linalg::Vector& weights, const data::Dataset& dataset);

}  // namespace nimbus::ml

#endif  // NIMBUS_ML_METRICS_H_
