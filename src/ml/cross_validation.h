#ifndef NIMBUS_ML_CROSS_VALIDATION_H_
#define NIMBUS_ML_CROSS_VALIDATION_H_

#include <utility>
#include <vector>

#include "common/random.h"
#include "common/statusor.h"
#include "data/dataset.h"
#include "ml/model.h"

namespace nimbus::ml {

// K-fold cross-validation for regularizer selection. §7 names model
// selection and iterative refinement as the next step for the MBP
// framework; this is the minimal substrate for it — the broker can use
// it to pick the µ of each menu entry before pricing versions.

// Partitions {0, ..., n-1} into k near-equal shuffled folds.
// Requires 2 <= k <= n.
StatusOr<std::vector<std::vector<int>>> KFoldIndices(int n, int k, Rng& rng);

struct CrossValidationResult {
  double best_mu = 0.0;
  double best_score = 0.0;  // Mean held-out error at best_mu.
  // (µ, mean held-out error) for every candidate, in input order.
  std::vector<std::pair<double, double>> scores;
};

// Sweeps `mu_candidates` for the given model kind: for each µ, trains on
// k−1 folds and scores the model's first report loss (the 0/1 rate for
// classifiers, the squared loss for regression) on the held-out fold,
// averaged over folds. Returns the candidate with the lowest mean error.
// Candidates that are invalid for the model kind (e.g. µ = 0 for the
// SVM) fail fast with kInvalidArgument.
// The (µ, fold) train-and-score jobs run in parallel (NIMBUS_THREADS
// wide) and their errors are reduced in job order, so the result is
// bit-identical at every thread count.
StatusOr<CrossValidationResult> CrossValidateRidge(
    const data::Dataset& dataset, ModelKind kind,
    const std::vector<double>& mu_candidates, int folds, uint64_t seed);

}  // namespace nimbus::ml

#endif  // NIMBUS_ML_CROSS_VALIDATION_H_
