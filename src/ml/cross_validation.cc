#include "ml/cross_validation.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/parallel.h"
#include "ml/loss.h"

namespace nimbus::ml {

StatusOr<std::vector<std::vector<int>>> KFoldIndices(int n, int k, Rng& rng) {
  if (k < 2) {
    return InvalidArgumentError("need at least two folds");
  }
  if (k > n) {
    return InvalidArgumentError("more folds than examples");
  }
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[static_cast<size_t>(rng.UniformInt(i))]);
  }
  std::vector<std::vector<int>> folds(static_cast<size_t>(k));
  for (int i = 0; i < n; ++i) {
    folds[static_cast<size_t>(i % k)].push_back(order[static_cast<size_t>(i)]);
  }
  return folds;
}

StatusOr<CrossValidationResult> CrossValidateRidge(
    const data::Dataset& dataset, ModelKind kind,
    const std::vector<double>& mu_candidates, int folds, uint64_t seed) {
  if (mu_candidates.empty()) {
    return InvalidArgumentError("need at least one mu candidate");
  }
  // Validate every candidate up front (the SVM rejects µ = 0, etc.).
  for (double mu : mu_candidates) {
    NIMBUS_RETURN_IF_ERROR(ModelSpec::Create(kind, mu).status());
  }
  Rng rng(seed);
  NIMBUS_ASSIGN_OR_RETURN(std::vector<std::vector<int>> fold_indices,
                          KFoldIndices(dataset.num_examples(), folds, rng));

  // Pre-build the per-fold train/validation datasets once.
  std::vector<data::Dataset> train_sets;
  std::vector<data::Dataset> valid_sets;
  for (int f = 0; f < folds; ++f) {
    std::vector<int> train_idx;
    for (int g = 0; g < folds; ++g) {
      if (g == f) {
        continue;
      }
      const std::vector<int>& fold = fold_indices[static_cast<size_t>(g)];
      train_idx.insert(train_idx.end(), fold.begin(), fold.end());
    }
    train_sets.push_back(dataset.Subset(train_idx));
    valid_sets.push_back(
        dataset.Subset(fold_indices[static_cast<size_t>(f)]));
  }

  // Every (µ, fold) pair is an independent train-and-score job; flatten
  // them into one parallel sweep. Each job builds its own ModelSpec so no
  // mutable state is shared across threads, and the fold errors are
  // reduced serially in (µ, fold) order — deterministic at every
  // NIMBUS_THREADS setting.
  const int64_t num_jobs =
      static_cast<int64_t>(mu_candidates.size()) * folds;
  std::vector<double> fold_error(static_cast<size_t>(num_jobs), 0.0);
  std::vector<Status> fold_status(static_cast<size_t>(num_jobs));
  ParallelFor(0, num_jobs, [&](int64_t job) {
    const size_t mi = static_cast<size_t>(job / folds);
    const size_t f = static_cast<size_t>(job % folds);
    StatusOr<ModelSpec> spec = ModelSpec::Create(kind, mu_candidates[mi]);
    if (!spec.ok()) {
      fold_status[static_cast<size_t>(job)] = spec.status();
      return;
    }
    StatusOr<linalg::Vector> weights = spec->FitOptimal(train_sets[f]);
    if (!weights.ok()) {
      fold_status[static_cast<size_t>(job)] = weights.status();
      return;
    }
    const Loss& score_loss = *spec->report_losses().back();
    fold_error[static_cast<size_t>(job)] =
        score_loss.Value(*weights, valid_sets[f]);
  });

  CrossValidationResult result;
  result.best_score = std::numeric_limits<double>::infinity();
  for (size_t mi = 0; mi < mu_candidates.size(); ++mi) {
    double total = 0.0;
    for (int f = 0; f < folds; ++f) {
      const size_t job = mi * static_cast<size_t>(folds) +
                         static_cast<size_t>(f);
      NIMBUS_RETURN_IF_ERROR(fold_status[job]);
      total += fold_error[job];
    }
    const double mean_error = total / folds;
    result.scores.emplace_back(mu_candidates[mi], mean_error);
    if (mean_error < result.best_score) {
      result.best_score = mean_error;
      result.best_mu = mu_candidates[mi];
    }
  }
  return result;
}

}  // namespace nimbus::ml
