#include "ml/model_io.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/fault.h"

namespace nimbus::ml {
namespace {

constexpr char kHeader[] = "nimbus-model v1";

}  // namespace

std::string SerializeWeights(const linalg::Vector& weights) {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << kHeader << '\n' << weights.size() << '\n';
  for (double w : weights) {
    out << w << '\n';
  }
  return out.str();
}

StatusOr<linalg::Vector> DeserializeWeights(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  if (!std::getline(in, header) || header != kHeader) {
    return InvalidArgumentError("missing or unknown model header");
  }
  long long dim = -1;
  if (!(in >> dim) || dim < 0 || dim > 100000000) {
    return InvalidArgumentError("bad model dimension");
  }
  linalg::Vector weights(static_cast<size_t>(dim));
  for (long long i = 0; i < dim; ++i) {
    if (!(in >> weights[static_cast<size_t>(i)])) {
      return InvalidArgumentError("truncated model file at weight " +
                                  std::to_string(i));
    }
  }
  double extra = 0.0;
  if (in >> extra) {
    return InvalidArgumentError("trailing data after declared weights");
  }
  return weights;
}

Status SaveWeights(const linalg::Vector& weights, const std::string& path) {
  FAULT_POINT("io.write");
  std::ofstream file(path);
  if (!file) {
    return InvalidArgumentError("cannot create '" + path + "'");
  }
  file << SerializeWeights(weights);
  file.flush();
  if (!file) {
    return InternalError("write to '" + path + "' failed");
  }
  return OkStatus();
}

StatusOr<linalg::Vector> LoadWeights(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return NotFoundError("cannot open '" + path + "'");
  }
  std::ostringstream content;
  content << file.rdbuf();
  return DeserializeWeights(content.str());
}

}  // namespace nimbus::ml
