#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace nimbus::ml {
namespace {

Status ValidateInput(const linalg::Vector& weights,
                     const data::Dataset& dataset) {
  if (dataset.empty()) {
    return InvalidArgumentError("cannot evaluate on an empty dataset");
  }
  if (static_cast<int>(weights.size()) != dataset.num_features()) {
    return InvalidArgumentError("weight / feature dimension mismatch");
  }
  return OkStatus();
}

}  // namespace

StatusOr<RegressionMetrics> EvaluateRegression(const linalg::Vector& weights,
                                               const data::Dataset& dataset) {
  NIMBUS_RETURN_IF_ERROR(ValidateInput(weights, dataset));
  const int n = dataset.num_examples();
  double sum_sq = 0.0;
  double sum_abs = 0.0;
  double target_sum = 0.0;
  for (const data::Example& e : dataset.examples()) {
    const double residual = linalg::Dot(weights, e.features) - e.target;
    sum_sq += residual * residual;
    sum_abs += std::fabs(residual);
    target_sum += e.target;
  }
  const double target_mean = target_sum / n;
  double total_variance = 0.0;
  for (const data::Example& e : dataset.examples()) {
    const double centred = e.target - target_mean;
    total_variance += centred * centred;
  }
  RegressionMetrics metrics;
  metrics.mse = sum_sq / n;
  metrics.rmse = std::sqrt(metrics.mse);
  metrics.mae = sum_abs / n;
  metrics.r2 = total_variance > 0.0 ? 1.0 - sum_sq / total_variance
                                    : (sum_sq == 0.0 ? 1.0 : 0.0);
  return metrics;
}

StatusOr<ClassificationMetrics> EvaluateClassification(
    const linalg::Vector& weights, const data::Dataset& dataset) {
  NIMBUS_RETURN_IF_ERROR(ValidateInput(weights, dataset));
  ClassificationMetrics metrics;
  // Scores with labels, for the AUC rank statistic.
  std::vector<std::pair<double, bool>> scored;
  scored.reserve(static_cast<size_t>(dataset.num_examples()));
  for (const data::Example& e : dataset.examples()) {
    if (e.target != 1.0 && e.target != -1.0) {
      return InvalidArgumentError("classification labels must be +1 / -1");
    }
    const double score = linalg::Dot(weights, e.features);
    const bool actual_positive = e.target > 0.0;
    const bool predicted_positive = score > 0.0;
    if (predicted_positive && actual_positive) {
      ++metrics.true_positives;
    } else if (predicted_positive && !actual_positive) {
      ++metrics.false_positives;
    } else if (!predicted_positive && actual_positive) {
      ++metrics.false_negatives;
    } else {
      ++metrics.true_negatives;
    }
    scored.emplace_back(score, actual_positive);
  }
  const int n = dataset.num_examples();
  metrics.accuracy =
      static_cast<double>(metrics.true_positives + metrics.true_negatives) /
      n;
  const int predicted_pos = metrics.true_positives + metrics.false_positives;
  const int actual_pos = metrics.true_positives + metrics.false_negatives;
  metrics.precision =
      predicted_pos > 0
          ? static_cast<double>(metrics.true_positives) / predicted_pos
          : 0.0;
  metrics.recall = actual_pos > 0 ? static_cast<double>(
                                        metrics.true_positives) /
                                        actual_pos
                                  : 0.0;
  metrics.f1 = (metrics.precision + metrics.recall) > 0.0
                   ? 2.0 * metrics.precision * metrics.recall /
                         (metrics.precision + metrics.recall)
                   : 0.0;

  // AUC = P(score of a random positive > score of a random negative),
  // computed from ranks with midrank tie handling.
  const int actual_neg = n - actual_pos;
  if (actual_pos == 0 || actual_neg == 0) {
    metrics.auc = 0.5;  // Degenerate: one class absent.
    return metrics;
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  double positive_rank_sum = 0.0;
  size_t i = 0;
  while (i < scored.size()) {
    size_t j = i;
    while (j < scored.size() && scored[j].first == scored[i].first) {
      ++j;
    }
    // Midrank for the tie block [i, j); ranks are 1-based.
    const double midrank = 0.5 * (static_cast<double>(i + 1) +
                                  static_cast<double>(j));
    for (size_t k = i; k < j; ++k) {
      if (scored[k].second) {
        positive_rank_sum += midrank;
      }
    }
    i = j;
  }
  metrics.auc = (positive_rank_sum -
                 0.5 * actual_pos * (actual_pos + 1.0)) /
                (static_cast<double>(actual_pos) * actual_neg);
  return metrics;
}

}  // namespace nimbus::ml
