#include "data/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/fault.h"

namespace nimbus::data {
namespace {

// Splits one CSV line into numeric fields. Returns an error on any
// non-numeric or empty field.
StatusOr<std::vector<double>> ParseLine(const std::string& line,
                                        int line_number) {
  std::vector<double> fields;
  size_t start = 0;
  while (start <= line.size()) {
    size_t end = line.find(',', start);
    if (end == std::string::npos) {
      end = line.size();
    }
    const std::string token = line.substr(start, end - start);
    if (token.empty()) {
      return InvalidArgumentError("empty field on line " +
                                  std::to_string(line_number));
    }
    errno = 0;
    char* parse_end = nullptr;
    const double value = std::strtod(token.c_str(), &parse_end);
    if (errno != 0 || parse_end == token.c_str() || *parse_end != '\0') {
      return InvalidArgumentError("non-numeric field '" + token +
                                  "' on line " + std::to_string(line_number));
    }
    fields.push_back(value);
    if (end == line.size()) {
      break;
    }
    start = end + 1;
  }
  return fields;
}

}  // namespace

StatusOr<Dataset> ParseCsvString(const std::string& content, Task task) {
  std::istringstream in(content);
  std::string line;
  int line_number = 0;
  int width = -1;
  std::vector<std::vector<double>> rows;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty()) {
      continue;
    }
    NIMBUS_ASSIGN_OR_RETURN(std::vector<double> fields,
                            ParseLine(line, line_number));
    if (width == -1) {
      width = static_cast<int>(fields.size());
      if (width < 2) {
        return InvalidArgumentError(
            "CSV rows need at least one feature and a target");
      }
    } else if (static_cast<int>(fields.size()) != width) {
      return InvalidArgumentError("ragged row on line " +
                                  std::to_string(line_number));
    }
    rows.push_back(std::move(fields));
  }
  if (rows.empty()) {
    return InvalidArgumentError("CSV contains no data rows");
  }
  Dataset out(width - 1, task);
  for (std::vector<double>& row : rows) {
    const double target = row.back();
    row.pop_back();
    out.Add(std::move(row), target);
  }
  return out;
}

StatusOr<Dataset> ReadCsv(const std::string& path, Task task) {
  std::ifstream file(path);
  if (!file) {
    return NotFoundError("cannot open '" + path + "'");
  }
  std::ostringstream content;
  content << file.rdbuf();
  return ParseCsvString(content.str(), task);
}

Status WriteCsv(const Dataset& dataset, const std::string& path) {
  FAULT_POINT("io.write");
  std::ofstream file(path);
  if (!file) {
    return InvalidArgumentError("cannot create '" + path + "'");
  }
  file.precision(17);
  for (const Example& e : dataset.examples()) {
    for (double v : e.features) {
      file << v << ',';
    }
    file << e.target << '\n';
  }
  file.flush();
  if (!file) {
    return InternalError("write to '" + path + "' failed");
  }
  return OkStatus();
}

}  // namespace nimbus::data
