#ifndef NIMBUS_DATA_DATASET_H_
#define NIMBUS_DATA_DATASET_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/statusor.h"
#include "linalg/vector_ops.h"

namespace nimbus::data {

// Learning task a dataset is labeled for. Regression targets are real
// numbers; classification targets are +1 / -1.
enum class Task { kRegression, kClassification };

// One labeled example z = (x, y): a feature vector and a target.
struct Example {
  linalg::Vector features;
  double target = 0.0;
};

// In-memory relational dataset of labeled examples, all with the same
// feature dimension. This is the `D` of the paper (§3.1): a single
// relation whose attributes are the feature columns X plus the target Y.
class Dataset {
 public:
  // Creates an empty dataset with the given feature dimension.
  Dataset(int num_features, Task task);

  // Appends one example; aborts if the feature dimension mismatches.
  void Add(linalg::Vector features, double target);

  int num_examples() const { return static_cast<int>(examples_.size()); }
  int num_features() const { return num_features_; }
  Task task() const { return task_; }
  bool empty() const { return examples_.empty(); }

  const Example& example(int i) const {
    return examples_[static_cast<size_t>(i)];
  }
  const std::vector<Example>& examples() const { return examples_; }

  // Returns all targets as one vector.
  linalg::Vector Targets() const;

  // Returns the mean of every feature column.
  linalg::Vector FeatureMeans() const;

  // Returns the (sample) standard deviation of every feature column.
  linalg::Vector FeatureStddevs() const;

  // Returns a dataset containing the rows at `indices` (in that order).
  Dataset Subset(const std::vector<int>& indices) const;

  // Returns a copy with rows shuffled by `rng`.
  Dataset Shuffled(Rng& rng) const;

 private:
  int num_features_;
  Task task_;
  std::vector<Example> examples_;
};

// A dataset split into the (train, test) pair the paper's seller provides.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

// Splits `dataset` by assigning the first round(train_fraction * n) rows
// (after shuffling with `rng`) to train and the rest to test.
// train_fraction must be in (0, 1).
TrainTestSplit Split(const Dataset& dataset, double train_fraction, Rng& rng);

// Standardizes features to zero mean / unit variance using statistics
// from a reference dataset (fit on train, apply to both).
class Standardizer {
 public:
  // Learns per-column means and stddevs from `reference`. Columns with
  // zero variance are left unscaled.
  static Standardizer Fit(const Dataset& reference);

  // Returns a standardized copy of `dataset`.
  Dataset Transform(const Dataset& dataset) const;

  const linalg::Vector& means() const { return means_; }
  const linalg::Vector& stddevs() const { return stddevs_; }

 private:
  Standardizer(linalg::Vector means, linalg::Vector stddevs)
      : means_(std::move(means)), stddevs_(std::move(stddevs)) {}

  linalg::Vector means_;
  linalg::Vector stddevs_;
};

}  // namespace nimbus::data

#endif  // NIMBUS_DATA_DATASET_H_
