#include "data/feature_map.h"

namespace nimbus::data {

int PolynomialOutputDim(int d, const PolynomialOptions& options) {
  int out = d;  // Linear terms are always kept.
  if (options.include_bias) {
    ++out;
  }
  if (options.include_squares) {
    out += d;
  }
  if (options.include_interactions) {
    out += d * (d - 1) / 2;
  }
  return out;
}

linalg::Vector ExpandPolynomial(const linalg::Vector& features,
                                const PolynomialOptions& options) {
  const int d = static_cast<int>(features.size());
  linalg::Vector out;
  out.reserve(static_cast<size_t>(PolynomialOutputDim(d, options)));
  if (options.include_bias) {
    out.push_back(1.0);
  }
  out.insert(out.end(), features.begin(), features.end());
  if (options.include_squares) {
    for (double v : features) {
      out.push_back(v * v);
    }
  }
  if (options.include_interactions) {
    for (int i = 0; i < d; ++i) {
      for (int j = i + 1; j < d; ++j) {
        out.push_back(features[static_cast<size_t>(i)] *
                      features[static_cast<size_t>(j)]);
      }
    }
  }
  return out;
}

StatusOr<Dataset> ExpandPolynomialFeatures(const Dataset& dataset,
                                           const PolynomialOptions& options) {
  const int out_dim = PolynomialOutputDim(dataset.num_features(), options);
  if (out_dim < 1) {
    return InvalidArgumentError("expansion produces no features");
  }
  Dataset out(out_dim, dataset.task());
  for (const Example& e : dataset.examples()) {
    out.Add(ExpandPolynomial(e.features, options), e.target);
  }
  return out;
}

}  // namespace nimbus::data
