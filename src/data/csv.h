#ifndef NIMBUS_DATA_CSV_H_
#define NIMBUS_DATA_CSV_H_

#include <string>

#include "common/statusor.h"
#include "data/dataset.h"

namespace nimbus::data {

// Reads a headerless numeric CSV where every row is
// `feature_0,...,feature_{d-1},target`. All rows must have the same
// width. Fails with kInvalidArgument on malformed input and kNotFound
// when the file cannot be opened.
StatusOr<Dataset> ReadCsv(const std::string& path, Task task);

// Writes `dataset` in the same format. Returns a non-OK status when the
// file cannot be created.
Status WriteCsv(const Dataset& dataset, const std::string& path);

// Parses CSV content from a string (same format as ReadCsv); used by
// tests and by callers that already hold the bytes.
StatusOr<Dataset> ParseCsvString(const std::string& content, Task task);

}  // namespace nimbus::data

#endif  // NIMBUS_DATA_CSV_H_
