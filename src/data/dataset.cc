#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace nimbus::data {

Dataset::Dataset(int num_features, Task task)
    : num_features_(num_features), task_(task) {
  NIMBUS_CHECK_GE(num_features, 1);
}

void Dataset::Add(linalg::Vector features, double target) {
  NIMBUS_CHECK_EQ(static_cast<int>(features.size()), num_features_);
  examples_.push_back(Example{std::move(features), target});
}

linalg::Vector Dataset::Targets() const {
  linalg::Vector out;
  out.reserve(examples_.size());
  for (const Example& e : examples_) {
    out.push_back(e.target);
  }
  return out;
}

linalg::Vector Dataset::FeatureMeans() const {
  linalg::Vector means(static_cast<size_t>(num_features_), 0.0);
  if (examples_.empty()) {
    return means;
  }
  for (const Example& e : examples_) {
    for (int j = 0; j < num_features_; ++j) {
      means[static_cast<size_t>(j)] += e.features[static_cast<size_t>(j)];
    }
  }
  const double inv_n = 1.0 / static_cast<double>(examples_.size());
  for (double& m : means) {
    m *= inv_n;
  }
  return means;
}

linalg::Vector Dataset::FeatureStddevs() const {
  linalg::Vector stddevs(static_cast<size_t>(num_features_), 0.0);
  if (examples_.size() < 2) {
    return stddevs;
  }
  const linalg::Vector means = FeatureMeans();
  for (const Example& e : examples_) {
    for (int j = 0; j < num_features_; ++j) {
      const double d =
          e.features[static_cast<size_t>(j)] - means[static_cast<size_t>(j)];
      stddevs[static_cast<size_t>(j)] += d * d;
    }
  }
  const double inv = 1.0 / static_cast<double>(examples_.size() - 1);
  for (double& s : stddevs) {
    s = std::sqrt(s * inv);
  }
  return stddevs;
}

Dataset Dataset::Subset(const std::vector<int>& indices) const {
  Dataset out(num_features_, task_);
  for (int i : indices) {
    NIMBUS_CHECK_GE(i, 0);
    NIMBUS_CHECK_LT(i, num_examples());
    const Example& e = examples_[static_cast<size_t>(i)];
    out.Add(e.features, e.target);
  }
  return out;
}

Dataset Dataset::Shuffled(Rng& rng) const {
  std::vector<int> indices(static_cast<size_t>(num_examples()));
  std::iota(indices.begin(), indices.end(), 0);
  // Fisher-Yates with our deterministic Rng.
  for (size_t i = indices.size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(rng.UniformInt(i));
    std::swap(indices[i - 1], indices[j]);
  }
  return Subset(indices);
}

TrainTestSplit Split(const Dataset& dataset, double train_fraction, Rng& rng) {
  NIMBUS_CHECK_GT(train_fraction, 0.0);
  NIMBUS_CHECK_LT(train_fraction, 1.0);
  const Dataset shuffled = dataset.Shuffled(rng);
  const int n = shuffled.num_examples();
  const int n_train = std::clamp(
      static_cast<int>(std::lround(train_fraction * n)), 1, n - 1);
  std::vector<int> train_idx(static_cast<size_t>(n_train));
  std::iota(train_idx.begin(), train_idx.end(), 0);
  std::vector<int> test_idx(static_cast<size_t>(n - n_train));
  std::iota(test_idx.begin(), test_idx.end(), n_train);
  return TrainTestSplit{shuffled.Subset(train_idx), shuffled.Subset(test_idx)};
}

Standardizer Standardizer::Fit(const Dataset& reference) {
  return Standardizer(reference.FeatureMeans(), reference.FeatureStddevs());
}

Dataset Standardizer::Transform(const Dataset& dataset) const {
  NIMBUS_CHECK_EQ(dataset.num_features(), static_cast<int>(means_.size()));
  Dataset out(dataset.num_features(), dataset.task());
  for (const Example& e : dataset.examples()) {
    linalg::Vector scaled(e.features.size());
    for (size_t j = 0; j < scaled.size(); ++j) {
      const double s = stddevs_[j];
      scaled[j] = s > 0.0 ? (e.features[j] - means_[j]) / s
                          : e.features[j] - means_[j];
    }
    out.Add(std::move(scaled), e.target);
  }
  return out;
}

}  // namespace nimbus::data
