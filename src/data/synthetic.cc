#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "linalg/vector_ops.h"

namespace nimbus::data {
namespace {

linalg::Vector DrawHyperplane(int d, double weight_scale, Rng& rng) {
  linalg::Vector w(static_cast<size_t>(d));
  for (double& v : w) {
    v = rng.Uniform(-weight_scale, weight_scale);
  }
  return w;
}

// Table 3 row sizes (paper scale).
struct Table3Row {
  const char* name;
  Task task;
  int n_train;
  int n_test;
  int d;
  double noise;  // regression noise stddev / classification flip control
};

constexpr Table3Row kTable3[] = {
    // Noise levels are calibrated so the irreducible error floor is
    // comparable to the noise-injection range, reproducing Figure 6's
    // sharp-drop-then-plateau shape on every dataset.
    {"Simulated1", Task::kRegression, 7500000, 2500000, 20, 0.1},
    {"YearMSD", Task::kRegression, 386509, 128836, 90, 0.9},
    {"CASP", Task::kRegression, 34298, 11433, 9, 0.7},
    {"Simulated2", Task::kClassification, 7500000, 2500000, 20, 0.95},
    {"CovType", Task::kClassification, 435759, 145253, 54, 0.88},
    {"SUSY", Task::kClassification, 3750000, 1250000, 18, 0.80},
};

}  // namespace

Dataset GenerateRegression(const RegressionSpec& spec, Rng& rng) {
  NIMBUS_CHECK_GE(spec.num_examples, 1);
  NIMBUS_CHECK_GE(spec.num_features, 1);
  const linalg::Vector w =
      DrawHyperplane(spec.num_features, spec.weight_scale, rng);
  Dataset out(spec.num_features, Task::kRegression);
  for (int i = 0; i < spec.num_examples; ++i) {
    linalg::Vector x = rng.GaussianVector(spec.num_features);
    const double y = linalg::Dot(w, x) + rng.Gaussian(0.0, spec.noise_stddev);
    out.Add(std::move(x), y);
  }
  return out;
}

Dataset GenerateClassification(const ClassificationSpec& spec, Rng& rng) {
  NIMBUS_CHECK_GE(spec.num_examples, 1);
  NIMBUS_CHECK_GE(spec.num_features, 1);
  NIMBUS_CHECK_GE(spec.positive_prob, 0.5);
  NIMBUS_CHECK_LE(spec.positive_prob, 1.0);
  const linalg::Vector w =
      DrawHyperplane(spec.num_features, spec.weight_scale, rng);
  Dataset out(spec.num_features, Task::kClassification);
  for (int i = 0; i < spec.num_examples; ++i) {
    linalg::Vector x = rng.GaussianVector(spec.num_features);
    const bool above = linalg::Dot(w, x) > 0.0;
    const bool keep = rng.Bernoulli(spec.positive_prob);
    const double label = (above == keep) ? 1.0 : -1.0;
    out.Add(std::move(x), label);
  }
  return out;
}

Dataset GeneratePoissonRegression(const PoissonSpec& spec, Rng& rng) {
  NIMBUS_CHECK_GE(spec.num_examples, 1);
  NIMBUS_CHECK_GE(spec.num_features, 1);
  const linalg::Vector w =
      DrawHyperplane(spec.num_features, spec.weight_scale, rng);
  Dataset out(spec.num_features, Task::kRegression);
  for (int i = 0; i < spec.num_examples; ++i) {
    linalg::Vector x = rng.GaussianVector(spec.num_features);
    for (double& v : x) {
      v *= spec.feature_scale;
    }
    const double rate = std::exp(std::min(linalg::Dot(w, x), 30.0));
    const double y = static_cast<double>(rng.Poisson(rate));
    out.Add(std::move(x), y);
  }
  return out;
}

std::vector<NamedDataset> MakePaperDatasets(int size_divisor, uint64_t seed) {
  NIMBUS_CHECK_GE(size_divisor, 1);
  Rng master(seed);
  std::vector<NamedDataset> out;
  for (const Table3Row& row : kTable3) {
    Rng rng = master.Fork();
    const int n_train = std::max(row.n_train / size_divisor, 32);
    const int n_test = std::max(row.n_test / size_divisor, 32);
    TrainTestSplit split{Dataset(row.d, row.task), Dataset(row.d, row.task)};
    if (row.task == Task::kRegression) {
      RegressionSpec spec;
      spec.num_features = row.d;
      spec.noise_stddev = row.noise;
      spec.num_examples = n_train + n_test;
      Dataset all = GenerateRegression(spec, rng);
      Rng split_rng = rng.Fork();
      split = Split(all, static_cast<double>(n_train) / (n_train + n_test),
                    split_rng);
    } else {
      ClassificationSpec spec;
      spec.num_features = row.d;
      spec.positive_prob = row.noise;
      spec.num_examples = n_train + n_test;
      Dataset all = GenerateClassification(spec, rng);
      Rng split_rng = rng.Fork();
      split = Split(all, static_cast<double>(n_train) / (n_train + n_test),
                    split_rng);
    }
    out.push_back(NamedDataset{row.name, row.task, std::move(split)});
  }
  return out;
}

void PrintTable3(const std::vector<NamedDataset>& datasets) {
  std::printf("%-12s %-14s %10s %10s %6s\n", "DataSet", "Task", "n1", "n2",
              "d");
  for (const NamedDataset& ds : datasets) {
    std::printf("%-12s %-14s %10d %10d %6d\n", ds.name.c_str(),
                ds.task == Task::kRegression ? "Regression" : "Classification",
                ds.split.train.num_examples(), ds.split.test.num_examples(),
                ds.split.train.num_features());
  }
}

}  // namespace nimbus::data
