#ifndef NIMBUS_DATA_SYNTHETIC_H_
#define NIMBUS_DATA_SYNTHETIC_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "data/dataset.h"

namespace nimbus::data {

// Generators for the six datasets of Table 3. Simulated1/Simulated2 follow
// the paper's construction exactly; the four UCI datasets (YearMSD, CASP,
// CovType, SUSY) are replaced by synthetic stand-ins matched on
// (n_train, n_test, d, task) with calibrated label noise — see DESIGN.md
// for why this substitution preserves the Figure 6 behaviour.

// Parameters for a linear-regression data generator:
//   y = w* . x + N(0, noise_stddev^2),  x ~ N(0, I_d).
struct RegressionSpec {
  int num_examples = 0;
  int num_features = 0;
  double noise_stddev = 0.0;
  // Scale of the ground-truth hyperplane entries (drawn U[-w, w]).
  double weight_scale = 1.0;
};

// Parameters for a linear-classification data generator. A point above
// the ground-truth hyperplane gets label +1 with probability
// `positive_prob` (Simulated2 uses 0.95), otherwise -1; symmetrically for
// points below.
struct ClassificationSpec {
  int num_examples = 0;
  int num_features = 0;
  double positive_prob = 0.95;
  double weight_scale = 1.0;
};

// Draws a regression dataset according to `spec`.
Dataset GenerateRegression(const RegressionSpec& spec, Rng& rng);

// Draws a classification dataset (labels in {-1, +1}).
Dataset GenerateClassification(const ClassificationSpec& spec, Rng& rng);

// Parameters for a Poisson-regression generator:
//   y ~ Poisson(exp(w* . x)),  x ~ N(0, feature_scale² I).
// Keep weight_scale * feature_scale small (rates stay moderate).
struct PoissonSpec {
  int num_examples = 0;
  int num_features = 0;
  double weight_scale = 0.3;
  double feature_scale = 1.0;
};

// Draws a count-regression dataset (targets are non-negative integers).
Dataset GeneratePoissonRegression(const PoissonSpec& spec, Rng& rng);

// One named dataset of the Table 3 suite, already split into train/test.
struct NamedDataset {
  std::string name;
  Task task;
  TrainTestSplit split;
};

// Returns the six datasets of Table 3 with sizes divided by
// `size_divisor` (>= 1). Pass 1 to reproduce the paper-scale row counts
// (tens of millions of rows for the simulated sets — slow but supported).
std::vector<NamedDataset> MakePaperDatasets(int size_divisor, uint64_t seed);

// Prints the Table 3 "Dataset Statistics" rows (name, n1, n2, d) for the
// given suite to stdout.
void PrintTable3(const std::vector<NamedDataset>& datasets);

}  // namespace nimbus::data

#endif  // NIMBUS_DATA_SYNTHETIC_H_
