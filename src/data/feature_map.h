#ifndef NIMBUS_DATA_FEATURE_MAP_H_
#define NIMBUS_DATA_FEATURE_MAP_H_

#include "common/statusor.h"
#include "data/dataset.h"

namespace nimbus::data {

// Degree-2 polynomial feature expansion. §7 notes that non-relational
// data "might require complex feature extraction"; this is the simplest
// member of that family, letting the linear models in the menu capture
// quadratic structure while every downstream piece (training, noise
// mechanisms, pricing) stays unchanged — only the model dimension grows.

struct PolynomialOptions {
  bool include_bias = true;          // Prepend a constant-1 feature.
  bool include_squares = true;       // x_j².
  bool include_interactions = true;  // x_i x_j for i < j.
};

// Output dimension of the expansion for `d` input features.
int PolynomialOutputDim(int d, const PolynomialOptions& options);

// Expands one feature vector.
linalg::Vector ExpandPolynomial(const linalg::Vector& features,
                                const PolynomialOptions& options);

// Expands every row of `dataset` (targets are untouched). Fails when the
// expansion would produce no features at all.
StatusOr<Dataset> ExpandPolynomialFeatures(const Dataset& dataset,
                                           const PolynomialOptions& options);

}  // namespace nimbus::data

#endif  // NIMBUS_DATA_FEATURE_MAP_H_
