file(REMOVE_RECURSE
  "CMakeFiles/revenue_optimization.dir/revenue_optimization.cc.o"
  "CMakeFiles/revenue_optimization.dir/revenue_optimization.cc.o.d"
  "revenue_optimization"
  "revenue_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revenue_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
