# Empty compiler generated dependencies file for revenue_optimization.
# This may be replaced when dependencies are built.
