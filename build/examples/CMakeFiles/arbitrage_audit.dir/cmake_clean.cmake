file(REMOVE_RECURSE
  "CMakeFiles/arbitrage_audit.dir/arbitrage_audit.cc.o"
  "CMakeFiles/arbitrage_audit.dir/arbitrage_audit.cc.o.d"
  "arbitrage_audit"
  "arbitrage_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbitrage_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
