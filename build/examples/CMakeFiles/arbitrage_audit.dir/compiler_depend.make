# Empty compiler generated dependencies file for arbitrage_audit.
# This may be replaced when dependencies are built.
