# Empty dependencies file for nimbus_repl.
# This may be replaced when dependencies are built.
