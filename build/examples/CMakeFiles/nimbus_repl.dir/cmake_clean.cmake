file(REMOVE_RECURSE
  "CMakeFiles/nimbus_repl.dir/nimbus_repl.cc.o"
  "CMakeFiles/nimbus_repl.dir/nimbus_repl.cc.o.d"
  "nimbus_repl"
  "nimbus_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nimbus_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
