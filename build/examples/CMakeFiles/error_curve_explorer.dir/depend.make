# Empty dependencies file for error_curve_explorer.
# This may be replaced when dependencies are built.
