file(REMOVE_RECURSE
  "CMakeFiles/error_curve_explorer.dir/error_curve_explorer.cc.o"
  "CMakeFiles/error_curve_explorer.dir/error_curve_explorer.cc.o.d"
  "error_curve_explorer"
  "error_curve_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_curve_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
