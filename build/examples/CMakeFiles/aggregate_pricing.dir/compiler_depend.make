# Empty compiler generated dependencies file for aggregate_pricing.
# This may be replaced when dependencies are built.
