file(REMOVE_RECURSE
  "CMakeFiles/aggregate_pricing.dir/aggregate_pricing.cc.o"
  "CMakeFiles/aggregate_pricing.dir/aggregate_pricing.cc.o.d"
  "aggregate_pricing"
  "aggregate_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregate_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
