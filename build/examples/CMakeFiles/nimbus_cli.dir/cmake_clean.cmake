file(REMOVE_RECURSE
  "CMakeFiles/nimbus_cli.dir/nimbus_cli.cc.o"
  "CMakeFiles/nimbus_cli.dir/nimbus_cli.cc.o.d"
  "nimbus_cli"
  "nimbus_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nimbus_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
