# Empty dependencies file for nimbus_cli.
# This may be replaced when dependencies are built.
