# Empty compiler generated dependencies file for marketplace_demo.
# This may be replaced when dependencies are built.
