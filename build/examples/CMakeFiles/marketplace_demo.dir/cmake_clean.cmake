file(REMOVE_RECURSE
  "CMakeFiles/marketplace_demo.dir/marketplace_demo.cc.o"
  "CMakeFiles/marketplace_demo.dir/marketplace_demo.cc.o.d"
  "marketplace_demo"
  "marketplace_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marketplace_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
