# Empty dependencies file for model_selection.
# This may be replaced when dependencies are built.
