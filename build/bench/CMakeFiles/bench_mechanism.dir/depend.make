# Empty dependencies file for bench_mechanism.
# This may be replaced when dependencies are built.
