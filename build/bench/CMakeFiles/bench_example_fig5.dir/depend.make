# Empty dependencies file for bench_example_fig5.
# This may be replaced when dependencies are built.
