file(REMOVE_RECURSE
  "CMakeFiles/bench_example_fig5.dir/bench_example_fig5.cc.o"
  "CMakeFiles/bench_example_fig5.dir/bench_example_fig5.cc.o.d"
  "bench_example_fig5"
  "bench_example_fig5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example_fig5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
