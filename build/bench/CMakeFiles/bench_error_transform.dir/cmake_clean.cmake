file(REMOVE_RECURSE
  "CMakeFiles/bench_error_transform.dir/bench_error_transform.cc.o"
  "CMakeFiles/bench_error_transform.dir/bench_error_transform.cc.o.d"
  "bench_error_transform"
  "bench_error_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_error_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
