# Empty dependencies file for bench_error_transform.
# This may be replaced when dependencies are built.
