file(REMOVE_RECURSE
  "CMakeFiles/bench_revenue_affordability.dir/bench_revenue_affordability.cc.o"
  "CMakeFiles/bench_revenue_affordability.dir/bench_revenue_affordability.cc.o.d"
  "bench_revenue_affordability"
  "bench_revenue_affordability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_revenue_affordability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
