# Empty dependencies file for bench_revenue_affordability.
# This may be replaced when dependencies are built.
