file(REMOVE_RECURSE
  "CMakeFiles/nimbus_mechanism.dir/noise_mechanism.cc.o"
  "CMakeFiles/nimbus_mechanism.dir/noise_mechanism.cc.o.d"
  "CMakeFiles/nimbus_mechanism.dir/privacy.cc.o"
  "CMakeFiles/nimbus_mechanism.dir/privacy.cc.o.d"
  "libnimbus_mechanism.a"
  "libnimbus_mechanism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nimbus_mechanism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
