file(REMOVE_RECURSE
  "libnimbus_mechanism.a"
)
