# Empty compiler generated dependencies file for nimbus_mechanism.
# This may be replaced when dependencies are built.
