file(REMOVE_RECURSE
  "CMakeFiles/nimbus_revenue.dir/baselines.cc.o"
  "CMakeFiles/nimbus_revenue.dir/baselines.cc.o.d"
  "CMakeFiles/nimbus_revenue.dir/brute_force.cc.o"
  "CMakeFiles/nimbus_revenue.dir/brute_force.cc.o.d"
  "CMakeFiles/nimbus_revenue.dir/buyer_model.cc.o"
  "CMakeFiles/nimbus_revenue.dir/buyer_model.cc.o.d"
  "CMakeFiles/nimbus_revenue.dir/dp_optimizer.cc.o"
  "CMakeFiles/nimbus_revenue.dir/dp_optimizer.cc.o.d"
  "CMakeFiles/nimbus_revenue.dir/fairness.cc.o"
  "CMakeFiles/nimbus_revenue.dir/fairness.cc.o.d"
  "CMakeFiles/nimbus_revenue.dir/interpolation.cc.o"
  "CMakeFiles/nimbus_revenue.dir/interpolation.cc.o.d"
  "CMakeFiles/nimbus_revenue.dir/research_io.cc.o"
  "CMakeFiles/nimbus_revenue.dir/research_io.cc.o.d"
  "CMakeFiles/nimbus_revenue.dir/sensitivity.cc.o"
  "CMakeFiles/nimbus_revenue.dir/sensitivity.cc.o.d"
  "libnimbus_revenue.a"
  "libnimbus_revenue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nimbus_revenue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
