file(REMOVE_RECURSE
  "libnimbus_revenue.a"
)
