# Empty dependencies file for nimbus_revenue.
# This may be replaced when dependencies are built.
