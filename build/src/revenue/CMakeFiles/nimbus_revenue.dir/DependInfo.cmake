
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/revenue/baselines.cc" "src/revenue/CMakeFiles/nimbus_revenue.dir/baselines.cc.o" "gcc" "src/revenue/CMakeFiles/nimbus_revenue.dir/baselines.cc.o.d"
  "/root/repo/src/revenue/brute_force.cc" "src/revenue/CMakeFiles/nimbus_revenue.dir/brute_force.cc.o" "gcc" "src/revenue/CMakeFiles/nimbus_revenue.dir/brute_force.cc.o.d"
  "/root/repo/src/revenue/buyer_model.cc" "src/revenue/CMakeFiles/nimbus_revenue.dir/buyer_model.cc.o" "gcc" "src/revenue/CMakeFiles/nimbus_revenue.dir/buyer_model.cc.o.d"
  "/root/repo/src/revenue/dp_optimizer.cc" "src/revenue/CMakeFiles/nimbus_revenue.dir/dp_optimizer.cc.o" "gcc" "src/revenue/CMakeFiles/nimbus_revenue.dir/dp_optimizer.cc.o.d"
  "/root/repo/src/revenue/fairness.cc" "src/revenue/CMakeFiles/nimbus_revenue.dir/fairness.cc.o" "gcc" "src/revenue/CMakeFiles/nimbus_revenue.dir/fairness.cc.o.d"
  "/root/repo/src/revenue/interpolation.cc" "src/revenue/CMakeFiles/nimbus_revenue.dir/interpolation.cc.o" "gcc" "src/revenue/CMakeFiles/nimbus_revenue.dir/interpolation.cc.o.d"
  "/root/repo/src/revenue/research_io.cc" "src/revenue/CMakeFiles/nimbus_revenue.dir/research_io.cc.o" "gcc" "src/revenue/CMakeFiles/nimbus_revenue.dir/research_io.cc.o.d"
  "/root/repo/src/revenue/sensitivity.cc" "src/revenue/CMakeFiles/nimbus_revenue.dir/sensitivity.cc.o" "gcc" "src/revenue/CMakeFiles/nimbus_revenue.dir/sensitivity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nimbus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pricing/CMakeFiles/nimbus_pricing.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/nimbus_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/mechanism/CMakeFiles/nimbus_mechanism.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/nimbus_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/nimbus_data.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/nimbus_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
