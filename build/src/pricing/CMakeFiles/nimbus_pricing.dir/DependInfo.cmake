
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pricing/analytic_error.cc" "src/pricing/CMakeFiles/nimbus_pricing.dir/analytic_error.cc.o" "gcc" "src/pricing/CMakeFiles/nimbus_pricing.dir/analytic_error.cc.o.d"
  "/root/repo/src/pricing/arbitrage.cc" "src/pricing/CMakeFiles/nimbus_pricing.dir/arbitrage.cc.o" "gcc" "src/pricing/CMakeFiles/nimbus_pricing.dir/arbitrage.cc.o.d"
  "/root/repo/src/pricing/error_curve.cc" "src/pricing/CMakeFiles/nimbus_pricing.dir/error_curve.cc.o" "gcc" "src/pricing/CMakeFiles/nimbus_pricing.dir/error_curve.cc.o.d"
  "/root/repo/src/pricing/optimal_attack.cc" "src/pricing/CMakeFiles/nimbus_pricing.dir/optimal_attack.cc.o" "gcc" "src/pricing/CMakeFiles/nimbus_pricing.dir/optimal_attack.cc.o.d"
  "/root/repo/src/pricing/pricing_function.cc" "src/pricing/CMakeFiles/nimbus_pricing.dir/pricing_function.cc.o" "gcc" "src/pricing/CMakeFiles/nimbus_pricing.dir/pricing_function.cc.o.d"
  "/root/repo/src/pricing/pricing_io.cc" "src/pricing/CMakeFiles/nimbus_pricing.dir/pricing_io.cc.o" "gcc" "src/pricing/CMakeFiles/nimbus_pricing.dir/pricing_io.cc.o.d"
  "/root/repo/src/pricing/subadditive_tools.cc" "src/pricing/CMakeFiles/nimbus_pricing.dir/subadditive_tools.cc.o" "gcc" "src/pricing/CMakeFiles/nimbus_pricing.dir/subadditive_tools.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nimbus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/nimbus_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/nimbus_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/nimbus_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/mechanism/CMakeFiles/nimbus_mechanism.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
