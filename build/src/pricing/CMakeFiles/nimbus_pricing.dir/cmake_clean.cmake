file(REMOVE_RECURSE
  "CMakeFiles/nimbus_pricing.dir/analytic_error.cc.o"
  "CMakeFiles/nimbus_pricing.dir/analytic_error.cc.o.d"
  "CMakeFiles/nimbus_pricing.dir/arbitrage.cc.o"
  "CMakeFiles/nimbus_pricing.dir/arbitrage.cc.o.d"
  "CMakeFiles/nimbus_pricing.dir/error_curve.cc.o"
  "CMakeFiles/nimbus_pricing.dir/error_curve.cc.o.d"
  "CMakeFiles/nimbus_pricing.dir/optimal_attack.cc.o"
  "CMakeFiles/nimbus_pricing.dir/optimal_attack.cc.o.d"
  "CMakeFiles/nimbus_pricing.dir/pricing_function.cc.o"
  "CMakeFiles/nimbus_pricing.dir/pricing_function.cc.o.d"
  "CMakeFiles/nimbus_pricing.dir/pricing_io.cc.o"
  "CMakeFiles/nimbus_pricing.dir/pricing_io.cc.o.d"
  "CMakeFiles/nimbus_pricing.dir/subadditive_tools.cc.o"
  "CMakeFiles/nimbus_pricing.dir/subadditive_tools.cc.o.d"
  "libnimbus_pricing.a"
  "libnimbus_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nimbus_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
