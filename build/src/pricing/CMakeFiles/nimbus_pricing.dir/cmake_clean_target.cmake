file(REMOVE_RECURSE
  "libnimbus_pricing.a"
)
