# Empty dependencies file for nimbus_pricing.
# This may be replaced when dependencies are built.
