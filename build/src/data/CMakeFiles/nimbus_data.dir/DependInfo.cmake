
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv.cc" "src/data/CMakeFiles/nimbus_data.dir/csv.cc.o" "gcc" "src/data/CMakeFiles/nimbus_data.dir/csv.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/nimbus_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/nimbus_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/feature_map.cc" "src/data/CMakeFiles/nimbus_data.dir/feature_map.cc.o" "gcc" "src/data/CMakeFiles/nimbus_data.dir/feature_map.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/data/CMakeFiles/nimbus_data.dir/synthetic.cc.o" "gcc" "src/data/CMakeFiles/nimbus_data.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nimbus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/nimbus_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
