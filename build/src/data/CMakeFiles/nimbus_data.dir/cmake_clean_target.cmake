file(REMOVE_RECURSE
  "libnimbus_data.a"
)
