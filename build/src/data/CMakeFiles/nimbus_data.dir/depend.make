# Empty dependencies file for nimbus_data.
# This may be replaced when dependencies are built.
