file(REMOVE_RECURSE
  "CMakeFiles/nimbus_data.dir/csv.cc.o"
  "CMakeFiles/nimbus_data.dir/csv.cc.o.d"
  "CMakeFiles/nimbus_data.dir/dataset.cc.o"
  "CMakeFiles/nimbus_data.dir/dataset.cc.o.d"
  "CMakeFiles/nimbus_data.dir/feature_map.cc.o"
  "CMakeFiles/nimbus_data.dir/feature_map.cc.o.d"
  "CMakeFiles/nimbus_data.dir/synthetic.cc.o"
  "CMakeFiles/nimbus_data.dir/synthetic.cc.o.d"
  "libnimbus_data.a"
  "libnimbus_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nimbus_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
