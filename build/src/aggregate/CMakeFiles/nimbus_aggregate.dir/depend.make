# Empty dependencies file for nimbus_aggregate.
# This may be replaced when dependencies are built.
