file(REMOVE_RECURSE
  "libnimbus_aggregate.a"
)
