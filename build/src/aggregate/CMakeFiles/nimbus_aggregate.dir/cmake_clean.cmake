file(REMOVE_RECURSE
  "CMakeFiles/nimbus_aggregate.dir/aggregate_market.cc.o"
  "CMakeFiles/nimbus_aggregate.dir/aggregate_market.cc.o.d"
  "libnimbus_aggregate.a"
  "libnimbus_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nimbus_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
