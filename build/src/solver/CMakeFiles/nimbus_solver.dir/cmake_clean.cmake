file(REMOVE_RECURSE
  "CMakeFiles/nimbus_solver.dir/dykstra.cc.o"
  "CMakeFiles/nimbus_solver.dir/dykstra.cc.o.d"
  "CMakeFiles/nimbus_solver.dir/isotonic.cc.o"
  "CMakeFiles/nimbus_solver.dir/isotonic.cc.o.d"
  "CMakeFiles/nimbus_solver.dir/lp.cc.o"
  "CMakeFiles/nimbus_solver.dir/lp.cc.o.d"
  "CMakeFiles/nimbus_solver.dir/milp.cc.o"
  "CMakeFiles/nimbus_solver.dir/milp.cc.o.d"
  "libnimbus_solver.a"
  "libnimbus_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nimbus_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
