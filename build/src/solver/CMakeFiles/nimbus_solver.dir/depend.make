# Empty dependencies file for nimbus_solver.
# This may be replaced when dependencies are built.
