file(REMOVE_RECURSE
  "libnimbus_solver.a"
)
