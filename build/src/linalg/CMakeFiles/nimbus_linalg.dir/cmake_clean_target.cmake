file(REMOVE_RECURSE
  "libnimbus_linalg.a"
)
