file(REMOVE_RECURSE
  "CMakeFiles/nimbus_linalg.dir/cholesky.cc.o"
  "CMakeFiles/nimbus_linalg.dir/cholesky.cc.o.d"
  "CMakeFiles/nimbus_linalg.dir/matrix.cc.o"
  "CMakeFiles/nimbus_linalg.dir/matrix.cc.o.d"
  "CMakeFiles/nimbus_linalg.dir/vector_ops.cc.o"
  "CMakeFiles/nimbus_linalg.dir/vector_ops.cc.o.d"
  "libnimbus_linalg.a"
  "libnimbus_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nimbus_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
