# Empty dependencies file for nimbus_linalg.
# This may be replaced when dependencies are built.
