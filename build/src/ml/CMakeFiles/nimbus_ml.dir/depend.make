# Empty dependencies file for nimbus_ml.
# This may be replaced when dependencies are built.
