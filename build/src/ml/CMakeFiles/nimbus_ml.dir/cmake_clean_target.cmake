file(REMOVE_RECURSE
  "libnimbus_ml.a"
)
