file(REMOVE_RECURSE
  "CMakeFiles/nimbus_ml.dir/cross_validation.cc.o"
  "CMakeFiles/nimbus_ml.dir/cross_validation.cc.o.d"
  "CMakeFiles/nimbus_ml.dir/loss.cc.o"
  "CMakeFiles/nimbus_ml.dir/loss.cc.o.d"
  "CMakeFiles/nimbus_ml.dir/metrics.cc.o"
  "CMakeFiles/nimbus_ml.dir/metrics.cc.o.d"
  "CMakeFiles/nimbus_ml.dir/model.cc.o"
  "CMakeFiles/nimbus_ml.dir/model.cc.o.d"
  "CMakeFiles/nimbus_ml.dir/model_io.cc.o"
  "CMakeFiles/nimbus_ml.dir/model_io.cc.o.d"
  "CMakeFiles/nimbus_ml.dir/naive_bayes.cc.o"
  "CMakeFiles/nimbus_ml.dir/naive_bayes.cc.o.d"
  "CMakeFiles/nimbus_ml.dir/sgd.cc.o"
  "CMakeFiles/nimbus_ml.dir/sgd.cc.o.d"
  "CMakeFiles/nimbus_ml.dir/trainer.cc.o"
  "CMakeFiles/nimbus_ml.dir/trainer.cc.o.d"
  "libnimbus_ml.a"
  "libnimbus_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nimbus_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
