file(REMOVE_RECURSE
  "libnimbus_common.a"
)
