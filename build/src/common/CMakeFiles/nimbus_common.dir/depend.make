# Empty dependencies file for nimbus_common.
# This may be replaced when dependencies are built.
