file(REMOVE_RECURSE
  "CMakeFiles/nimbus_common.dir/logging.cc.o"
  "CMakeFiles/nimbus_common.dir/logging.cc.o.d"
  "CMakeFiles/nimbus_common.dir/math_util.cc.o"
  "CMakeFiles/nimbus_common.dir/math_util.cc.o.d"
  "CMakeFiles/nimbus_common.dir/random.cc.o"
  "CMakeFiles/nimbus_common.dir/random.cc.o.d"
  "CMakeFiles/nimbus_common.dir/status.cc.o"
  "CMakeFiles/nimbus_common.dir/status.cc.o.d"
  "libnimbus_common.a"
  "libnimbus_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nimbus_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
