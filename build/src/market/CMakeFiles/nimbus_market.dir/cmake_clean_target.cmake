file(REMOVE_RECURSE
  "libnimbus_market.a"
)
