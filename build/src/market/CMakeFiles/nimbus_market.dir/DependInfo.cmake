
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/market/broker.cc" "src/market/CMakeFiles/nimbus_market.dir/broker.cc.o" "gcc" "src/market/CMakeFiles/nimbus_market.dir/broker.cc.o.d"
  "/root/repo/src/market/buyer_advisor.cc" "src/market/CMakeFiles/nimbus_market.dir/buyer_advisor.cc.o" "gcc" "src/market/CMakeFiles/nimbus_market.dir/buyer_advisor.cc.o.d"
  "/root/repo/src/market/collusion.cc" "src/market/CMakeFiles/nimbus_market.dir/collusion.cc.o" "gcc" "src/market/CMakeFiles/nimbus_market.dir/collusion.cc.o.d"
  "/root/repo/src/market/curves.cc" "src/market/CMakeFiles/nimbus_market.dir/curves.cc.o" "gcc" "src/market/CMakeFiles/nimbus_market.dir/curves.cc.o.d"
  "/root/repo/src/market/ledger.cc" "src/market/CMakeFiles/nimbus_market.dir/ledger.cc.o" "gcc" "src/market/CMakeFiles/nimbus_market.dir/ledger.cc.o.d"
  "/root/repo/src/market/market_simulator.cc" "src/market/CMakeFiles/nimbus_market.dir/market_simulator.cc.o" "gcc" "src/market/CMakeFiles/nimbus_market.dir/market_simulator.cc.o.d"
  "/root/repo/src/market/marketplace.cc" "src/market/CMakeFiles/nimbus_market.dir/marketplace.cc.o" "gcc" "src/market/CMakeFiles/nimbus_market.dir/marketplace.cc.o.d"
  "/root/repo/src/market/population.cc" "src/market/CMakeFiles/nimbus_market.dir/population.cc.o" "gcc" "src/market/CMakeFiles/nimbus_market.dir/population.cc.o.d"
  "/root/repo/src/market/research_estimation.cc" "src/market/CMakeFiles/nimbus_market.dir/research_estimation.cc.o" "gcc" "src/market/CMakeFiles/nimbus_market.dir/research_estimation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nimbus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/nimbus_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/nimbus_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/mechanism/CMakeFiles/nimbus_mechanism.dir/DependInfo.cmake"
  "/root/repo/build/src/pricing/CMakeFiles/nimbus_pricing.dir/DependInfo.cmake"
  "/root/repo/build/src/revenue/CMakeFiles/nimbus_revenue.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/nimbus_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/nimbus_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
