# Empty dependencies file for nimbus_market.
# This may be replaced when dependencies are built.
