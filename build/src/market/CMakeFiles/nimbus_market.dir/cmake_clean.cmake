file(REMOVE_RECURSE
  "CMakeFiles/nimbus_market.dir/broker.cc.o"
  "CMakeFiles/nimbus_market.dir/broker.cc.o.d"
  "CMakeFiles/nimbus_market.dir/buyer_advisor.cc.o"
  "CMakeFiles/nimbus_market.dir/buyer_advisor.cc.o.d"
  "CMakeFiles/nimbus_market.dir/collusion.cc.o"
  "CMakeFiles/nimbus_market.dir/collusion.cc.o.d"
  "CMakeFiles/nimbus_market.dir/curves.cc.o"
  "CMakeFiles/nimbus_market.dir/curves.cc.o.d"
  "CMakeFiles/nimbus_market.dir/ledger.cc.o"
  "CMakeFiles/nimbus_market.dir/ledger.cc.o.d"
  "CMakeFiles/nimbus_market.dir/market_simulator.cc.o"
  "CMakeFiles/nimbus_market.dir/market_simulator.cc.o.d"
  "CMakeFiles/nimbus_market.dir/marketplace.cc.o"
  "CMakeFiles/nimbus_market.dir/marketplace.cc.o.d"
  "CMakeFiles/nimbus_market.dir/population.cc.o"
  "CMakeFiles/nimbus_market.dir/population.cc.o.d"
  "CMakeFiles/nimbus_market.dir/research_estimation.cc.o"
  "CMakeFiles/nimbus_market.dir/research_estimation.cc.o.d"
  "libnimbus_market.a"
  "libnimbus_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nimbus_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
