# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("linalg")
subdirs("data")
subdirs("ml")
subdirs("mechanism")
subdirs("pricing")
subdirs("aggregate")
subdirs("solver")
subdirs("revenue")
subdirs("market")
