file(REMOVE_RECURSE
  "CMakeFiles/analytic_error_test.dir/analytic_error_test.cc.o"
  "CMakeFiles/analytic_error_test.dir/analytic_error_test.cc.o.d"
  "analytic_error_test"
  "analytic_error_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytic_error_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
