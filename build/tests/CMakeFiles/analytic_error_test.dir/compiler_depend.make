# Empty compiler generated dependencies file for analytic_error_test.
# This may be replaced when dependencies are built.
