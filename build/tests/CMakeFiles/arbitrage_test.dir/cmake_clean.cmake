file(REMOVE_RECURSE
  "CMakeFiles/arbitrage_test.dir/arbitrage_test.cc.o"
  "CMakeFiles/arbitrage_test.dir/arbitrage_test.cc.o.d"
  "arbitrage_test"
  "arbitrage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbitrage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
