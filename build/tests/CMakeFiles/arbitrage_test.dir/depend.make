# Empty dependencies file for arbitrage_test.
# This may be replaced when dependencies are built.
