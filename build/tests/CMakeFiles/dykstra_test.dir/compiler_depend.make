# Empty compiler generated dependencies file for dykstra_test.
# This may be replaced when dependencies are built.
