file(REMOVE_RECURSE
  "CMakeFiles/dykstra_test.dir/dykstra_test.cc.o"
  "CMakeFiles/dykstra_test.dir/dykstra_test.cc.o.d"
  "dykstra_test"
  "dykstra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dykstra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
