# Empty compiler generated dependencies file for buyer_model_test.
# This may be replaced when dependencies are built.
