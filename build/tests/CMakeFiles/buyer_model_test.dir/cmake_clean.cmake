file(REMOVE_RECURSE
  "CMakeFiles/buyer_model_test.dir/buyer_model_test.cc.o"
  "CMakeFiles/buyer_model_test.dir/buyer_model_test.cc.o.d"
  "buyer_model_test"
  "buyer_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buyer_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
