file(REMOVE_RECURSE
  "CMakeFiles/pricing_function_test.dir/pricing_function_test.cc.o"
  "CMakeFiles/pricing_function_test.dir/pricing_function_test.cc.o.d"
  "pricing_function_test"
  "pricing_function_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pricing_function_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
