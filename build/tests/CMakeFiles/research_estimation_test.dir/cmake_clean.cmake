file(REMOVE_RECURSE
  "CMakeFiles/research_estimation_test.dir/research_estimation_test.cc.o"
  "CMakeFiles/research_estimation_test.dir/research_estimation_test.cc.o.d"
  "research_estimation_test"
  "research_estimation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/research_estimation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
