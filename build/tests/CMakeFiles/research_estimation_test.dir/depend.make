# Empty dependencies file for research_estimation_test.
# This may be replaced when dependencies are built.
