file(REMOVE_RECURSE
  "CMakeFiles/market_sweep_test.dir/market_sweep_test.cc.o"
  "CMakeFiles/market_sweep_test.dir/market_sweep_test.cc.o.d"
  "market_sweep_test"
  "market_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
