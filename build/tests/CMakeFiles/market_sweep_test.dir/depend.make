# Empty dependencies file for market_sweep_test.
# This may be replaced when dependencies are built.
