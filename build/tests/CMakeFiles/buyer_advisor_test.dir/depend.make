# Empty dependencies file for buyer_advisor_test.
# This may be replaced when dependencies are built.
