file(REMOVE_RECURSE
  "CMakeFiles/buyer_advisor_test.dir/buyer_advisor_test.cc.o"
  "CMakeFiles/buyer_advisor_test.dir/buyer_advisor_test.cc.o.d"
  "buyer_advisor_test"
  "buyer_advisor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buyer_advisor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
