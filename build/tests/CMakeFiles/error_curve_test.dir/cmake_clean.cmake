file(REMOVE_RECURSE
  "CMakeFiles/error_curve_test.dir/error_curve_test.cc.o"
  "CMakeFiles/error_curve_test.dir/error_curve_test.cc.o.d"
  "error_curve_test"
  "error_curve_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_curve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
