# Empty compiler generated dependencies file for error_curve_test.
# This may be replaced when dependencies are built.
