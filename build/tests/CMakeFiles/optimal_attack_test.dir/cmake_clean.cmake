file(REMOVE_RECURSE
  "CMakeFiles/optimal_attack_test.dir/optimal_attack_test.cc.o"
  "CMakeFiles/optimal_attack_test.dir/optimal_attack_test.cc.o.d"
  "optimal_attack_test"
  "optimal_attack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimal_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
