file(REMOVE_RECURSE
  "CMakeFiles/isotonic_test.dir/isotonic_test.cc.o"
  "CMakeFiles/isotonic_test.dir/isotonic_test.cc.o.d"
  "isotonic_test"
  "isotonic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isotonic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
