file(REMOVE_RECURSE
  "CMakeFiles/marketplace_test.dir/marketplace_test.cc.o"
  "CMakeFiles/marketplace_test.dir/marketplace_test.cc.o.d"
  "marketplace_test"
  "marketplace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marketplace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
