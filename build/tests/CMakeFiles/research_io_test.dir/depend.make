# Empty dependencies file for research_io_test.
# This may be replaced when dependencies are built.
