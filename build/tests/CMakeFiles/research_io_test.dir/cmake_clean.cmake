file(REMOVE_RECURSE
  "CMakeFiles/research_io_test.dir/research_io_test.cc.o"
  "CMakeFiles/research_io_test.dir/research_io_test.cc.o.d"
  "research_io_test"
  "research_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/research_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
