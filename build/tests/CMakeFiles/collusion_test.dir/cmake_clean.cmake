file(REMOVE_RECURSE
  "CMakeFiles/collusion_test.dir/collusion_test.cc.o"
  "CMakeFiles/collusion_test.dir/collusion_test.cc.o.d"
  "collusion_test"
  "collusion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collusion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
