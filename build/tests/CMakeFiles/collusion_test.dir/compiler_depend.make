# Empty compiler generated dependencies file for collusion_test.
# This may be replaced when dependencies are built.
