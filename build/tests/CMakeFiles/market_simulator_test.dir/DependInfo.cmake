
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/market_simulator_test.cc" "tests/CMakeFiles/market_simulator_test.dir/market_simulator_test.cc.o" "gcc" "tests/CMakeFiles/market_simulator_test.dir/market_simulator_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/market/CMakeFiles/nimbus_market.dir/DependInfo.cmake"
  "/root/repo/build/src/aggregate/CMakeFiles/nimbus_aggregate.dir/DependInfo.cmake"
  "/root/repo/build/src/revenue/CMakeFiles/nimbus_revenue.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/nimbus_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/pricing/CMakeFiles/nimbus_pricing.dir/DependInfo.cmake"
  "/root/repo/build/src/mechanism/CMakeFiles/nimbus_mechanism.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/nimbus_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/nimbus_data.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/nimbus_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nimbus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
