file(REMOVE_RECURSE
  "CMakeFiles/market_simulator_test.dir/market_simulator_test.cc.o"
  "CMakeFiles/market_simulator_test.dir/market_simulator_test.cc.o.d"
  "market_simulator_test"
  "market_simulator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
