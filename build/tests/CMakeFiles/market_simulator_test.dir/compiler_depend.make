# Empty compiler generated dependencies file for market_simulator_test.
# This may be replaced when dependencies are built.
