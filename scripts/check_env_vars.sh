#!/bin/sh
# Every NIMBUS_* environment variable the code actually reads must be
# documented in DESIGN.md or bench/README.md. An undocumented knob is a
# support trap: an operator cannot discover it, and a documented-but-
# removed one (checked in reverse by doc drift review) misleads. Catch
# the forward direction statically on every build. Run from anywhere;
# takes the repo root as optional $1.
set -eu

root="${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}"

docs="$root/DESIGN.md $root/bench/README.md"
for doc in $docs; do
    if [ ! -f "$doc" ]; then
        echo "check_env_vars: missing $doc" >&2
        exit 1
    fi
done

# Every env var read in production/bench code: getenv("NIMBUS_...").
used=$(grep -rhoE 'getenv\("NIMBUS_[A-Z_]+"\)' "$root/src" "$root/bench" \
       2>/dev/null | sed -E 's/getenv\("([^"]+)"\)/\1/' | sort -u)

status=0
for name in $used; do
    # shellcheck disable=SC2086
    if ! grep -qw "$name" $docs; then
        echo "error: env var '$name' is read by the code but documented" \
             "in neither DESIGN.md nor bench/README.md" >&2
        status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo "check_env_vars: FAILED (document the variables above)" >&2
else
    n_used=$(printf '%s\n' "$used" | grep -c . || true)
    echo "check_env_vars: OK ($n_used documented env vars)"
fi
exit "$status"
