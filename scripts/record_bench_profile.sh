#!/usr/bin/env bash
# Regenerates BENCH_profile.json (repo root): the committed evidence
# behind two claims the continuous-profiling PR makes —
#
#   1. Arming the 199 Hz CPU sampler for a whole chaos soak costs a
#      negligible slice of process CPU: the profiler's self-measured
#      handler-time / process-CPU-time ratio must come in under 2%.
#      (The per-run throughput deltas are recorded too, but on a busy
#      or single-core box run-to-run scheduling noise swamps a
#      sub-percent effect, so the ratio is the asserted number.)
#   2. Profiling is observation-only: the soak's booked outcomes (ok
#      counts, retries, revenue per run — everything but wall-clock)
#      must be identical with the profiler off and on. The soak already
#      byte-compares ledger CSVs across workers {1,4,8} x cache on/off
#      within each run; comparing the fingerprints across the two runs
#      extends that to profiler off vs on.
#
# Usage: scripts/record_bench_profile.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SOAK="$BUILD/bench/bench_soak"
if [ ! -x "$SOAK" ]; then
  echo "error: $SOAK not built (cmake -B $BUILD -S . && cmake --build $BUILD -j)" >&2
  exit 2
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

run_soak() { # $1 = tag, remaining args = extra soak flags
  local tag="$1"
  shift
  "$SOAK" --bench-json="$tmp/$tag.json" "$@" | tee "$tmp/$tag.out"
  # Determinism fingerprint: the booked per-run outcomes with every
  # timing field stripped (the "(... req/s, p99 ...)" suffix).
  grep -E 'workers=[0-9]+ cache=' "$tmp/$tag.out" | sed -E 's/ *\(.*//' \
    > "$tmp/$tag.fingerprint"
}

echo "== soak, profiler off"
run_soak off
echo "== soak, profiler on (--profile)"
run_soak on --profile="$tmp/on.folded"

if ! diff -u "$tmp/off.fingerprint" "$tmp/on.fingerprint"; then
  echo "FAIL: profiler changed booked market output" >&2
  exit 1
fi
echo "ok: booked outcomes identical with profiler off/on"

if [ ! -s "$tmp/on.folded" ]; then
  echo "FAIL: profiled soak produced an empty folded capture" >&2
  exit 1
fi

overhead="$(sed -nE 's/.*handler overhead ([0-9.]+)% of process CPU.*/\1/p' \
  "$tmp/on.out" | head -1)"
if [ -z "$overhead" ]; then
  echo "FAIL: no self-measured overhead line in the profiled run" >&2
  exit 1
fi

python3 - "$tmp/off.json" "$tmp/on.json" "$overhead" > BENCH_profile.json <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    off = json.load(f)
with open(sys.argv[2]) as f:
    on = json.load(f)
overhead_pct = float(sys.argv[3])

def by_key(report):
    return {(r["phase"], r["workers"]): r for r in report["runs"]}

off_runs, on_runs = by_key(off), by_key(on)
rows = []
for key in off_runs:
    if key not in on_runs:
        continue
    rps_off = off_runs[key]["requests_per_second"]
    rps_on = on_runs[key]["requests_per_second"]
    rows.append({
        "phase": key[0],
        "workers": key[1],
        "requests_per_second_profiler_off": rps_off,
        "requests_per_second_profiler_on": rps_on,
        "throughput_delta_pct":
            round(100.0 * (rps_on - rps_off) / rps_off, 2) if rps_off else 0.0,
    })
rows.sort(key=lambda r: (r["phase"], r["workers"]))

out = {
    "benchmark": "bench_profile",
    "description": "Full chaos soak with the 199 Hz CPU sampling "
                   "profiler off vs on (--profile). Booked market output "
                   "is identical in both runs (checked by the harness); "
                   "self_measured_overhead_pct is handler CPU time over "
                   "process CPU time for the profiled run and is asserted "
                   "< 2%. Throughput deltas are recorded for context; "
                   "run-to-run scheduling noise dominates them.",
    "requests": off.get("requests"),
    "self_measured_overhead_pct": overhead_pct,
    "overhead_budget_pct": 2.0,
    "runs": rows,
}
json.dump(out, sys.stdout, indent=2)
print()

if overhead_pct >= 2.0:
    print(f"FAIL: profiler overhead {overhead_pct}% >= 2%", file=sys.stderr)
    sys.exit(1)
PY

echo "ok: profiler overhead ${overhead}% < 2%"
echo "BENCH_profile.json written"
