#!/bin/sh
# Static companion to Registry::GetOrCreate's runtime kind check: scans
# every Get{Counter,Gauge,Histogram}("literal") and
# Get{Counter,Gauge,Histogram}Vec("literal", "label_key") call site and
# fails the build if the same metric name is requested with two
# different kinds or two different label keys (either would
# NIMBUS_CHECK-fail at runtime on whichever path runs second). Run from
# anywhere; takes the repo root as optional $1.
set -eu

root="${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}"

# Flatten each source file to one line so registrations split across
# lines by clang-format ("GetCounterVec(\"name\",\n  \"key\")") still
# match, then emit one "name signature" pair per registration:
#   scalar:  name Counter
#   labeled: name CounterVec:label_key
scan() {
    for dir in "$@"; do
        [ -d "$dir" ] || continue
        find "$dir" \( -name '*.cc' -o -name '*.h' \) -print
    done | while IFS= read -r f; do
        tr '\n' ' ' < "$f"
        printf '\n'
    done | {
        grep -oE 'Get(Counter|Gauge|Histogram)(Vec)?\( *"[^"]+"(, *"[^"]+")?' || true
    } | sed -E \
        -e 's/Get(Counter|Gauge|Histogram)Vec\( *"([^"]+)", *"([^"]+)"/\2 \1Vec:\3/' \
        -e 's/Get(Counter|Gauge|Histogram)\( *"([^"]+)".*/\2 \1/' |
      grep -vE 'Vec\( *"' | sort -u
}

pairs=$(scan "$root/src" "$root/bench" "$root/tests" "$root/examples")

status=0
dupes=$(printf '%s\n' "$pairs" | awk '{print $1}' | sort | uniq -d)
for name in $dupes; do
    echo "error: metric '$name' is registered with multiple kinds/label keys:" >&2
    printf '%s\n' "$pairs" | awk -v n="$name" '$1 == n {print "  " $2}' >&2
    status=1
done

# Every production (src/) registration — scalar or labeled family —
# must appear in DESIGN.md's metrics table so operators can look up
# what a scrape exports. Tests and benches may register throwaway
# names; they are exempt.
src_names=$(scan "$root/src" | awk '{print $1}' | sort -u)
for name in $src_names; do
    if ! grep -q "\`$name\`" "$root/DESIGN.md"; then
        echo "error: metric '$name' is registered in src/ but missing from DESIGN.md's metrics table" >&2
        status=1
    fi
done

# The economic-audit surface is load-bearing for operators (alerts and
# the CI drill grep these families by name): require the auditor's and
# the metric-history ring's registrations to exist in src/ AND be
# documented, so a refactor cannot silently rename or drop them.
required_families="audit_violations_total audit_offering_violations_total \
audit_samples_total audit_commits_observed_total audit_ring_dropped_total \
audit_passes_total audit_lanes timeseries_samples_total \
timeseries_evictions_total timeseries_series"
for name in $required_families; do
    if ! printf '%s\n' "$src_names" | grep -qx "$name"; then
        echo "error: required audit/timeseries metric '$name' is not registered anywhere in src/" >&2
        status=1
    fi
    if ! grep -q "\`$name\`" "$root/DESIGN.md"; then
        echo "error: required audit/timeseries metric '$name' is missing from DESIGN.md's metrics table" >&2
        status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo "check_metrics_names: FAILED (fix the kind clash / missing doc rows above)" >&2
else
    count=$(printf '%s\n' "$pairs" | grep -c . || true)
    echo "check_metrics_names: OK ($count distinct metric registrations)"
fi
exit "$status"
