#!/bin/sh
# Static companion to fault::Configure's catalog check: every
# FAULT_POINT("name") / ShouldFail("name") call site must name an entry
# in the catalog between the FAULT-POINT-CATALOG markers in
# src/common/fault.cc, and the catalog itself must be duplicate-free.
# An unregistered point would make NIMBUS_FAULTS reject drills that the
# code would actually honor; catch the drift statically. Run from
# anywhere; takes the repo root as optional $1.
set -eu

root="${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}"
catalog_file="$root/src/common/fault.cc"

if [ ! -f "$catalog_file" ]; then
    echo "check_fault_points: missing $catalog_file" >&2
    exit 1
fi

# The compiled-in catalog: quoted strings between the markers.
catalog=$(sed -n '/FAULT-POINT-CATALOG-BEGIN/,/FAULT-POINT-CATALOG-END/p' \
    "$catalog_file" | grep -oE '"[^"]+"' | tr -d '"' | sort)

status=0
if [ -z "$catalog" ]; then
    echo "error: empty fault-point catalog in $catalog_file" >&2
    status=1
fi

dupes=$(printf '%s\n' "$catalog" | uniq -d)
for name in $dupes; do
    echo "error: fault point '$name' appears twice in the catalog" >&2
    status=1
done

# Every literal call-site name (FAULT_POINT macro, plain ShouldFail, or
# the mode-aware fault::Check). fault.{h,cc} are excluded: the header's
# usage docs and the catalog itself would self-match. Tests are excluded
# too — they probe unknown names on purpose.
used=$(grep -rhoE --exclude=fault.h --exclude=fault.cc \
    '(FAULT_POINT|ShouldFail|fault::Check)\("[^"]+"\)' \
    "$root/src" "$root/bench" "$root/examples" 2>/dev/null |
    sed -E 's/(FAULT_POINT|ShouldFail|fault::Check)\("([^"]+)"\)/\2/' |
    sort -u)

for name in $used; do
    if ! printf '%s\n' "$catalog" | grep -qxF "$name"; then
        echo "error: fault point '$name' is used but not in the catalog" \
             "(src/common/fault.cc)" >&2
        status=1
    fi
done

# Reverse direction: a cataloged point with no call site is dead — a
# drill arming it would silently inject nothing and pass vacuously.
for name in $catalog; do
    if ! printf '%s\n' "$used" | grep -qxF "$name"; then
        echo "error: fault point '$name' is cataloged but never used" \
             "(no FAULT_POINT/ShouldFail call site in src|bench|examples)" >&2
        status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo "check_fault_points: FAILED (fix the catalog drift above)" >&2
else
    n_catalog=$(printf '%s\n' "$catalog" | grep -c . || true)
    n_used=$(printf '%s\n' "$used" | grep -c . || true)
    echo "check_fault_points: OK ($n_catalog cataloged, $n_used used)"
fi
exit "$status"
