// An interactive Nimbus marketplace session — the closest analogue of
// the SIGMOD demonstration's walk-up interface. Reads commands from
// stdin and prints the marketplace state; also usable non-interactively:
//
//   printf 'catalog\nbuy alice logistic_regression 25\nledger\nquit\n' |
//       ./build/examples/nimbus_repl
//
// Commands:
//   catalog                          cross-model offering summary
//   menu <model>                     price-error curve of one offering
//   buy <buyer> <model> <1/NCP>      purchase a version
//   budget <buyer> <model> <price>   best version within a price budget
//   ledger                           transaction log + top buyers
//   audit <model>                    arbitrage audit of the menu
//   quit

#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/random.h"
#include "data/synthetic.h"
#include "market/curves.h"
#include "market/market_simulator.h"
#include "market/marketplace.h"
#include "pricing/arbitrage.h"
#include "common/math_util.h"

namespace {

using namespace nimbus;  // NOLINT: example brevity.

StatusOr<ml::ModelKind> ParseModel(const std::string& name) {
  for (ml::ModelKind kind :
       {ml::ModelKind::kLogisticRegression, ml::ModelKind::kLinearSvm}) {
    if (ml::ModelKindToString(kind) == name) {
      return kind;
    }
  }
  return NotFoundError("unknown model '" + name +
                       "' (try logistic_regression or linear_svm)");
}

void PrintCatalog(market::Marketplace& marketplace) {
  auto catalog = marketplace.Catalog();
  if (!catalog.ok()) {
    std::printf("error: %s\n", catalog.status().ToString().c_str());
    return;
  }
  std::printf("%-22s %-10s %-22s %-18s\n", "model", "loss",
              "expected error range", "price range");
  for (const auto& row : *catalog) {
    std::printf("%-22s %-10s [%7.4f, %7.4f]     [%7.2f, %7.2f]\n",
                std::string(ml::ModelKindToString(row.model)).c_str(),
                row.report_loss.c_str(), row.best_expected_error,
                row.worst_expected_error, row.min_price, row.max_price);
  }
}

void PrintMenu(market::Marketplace& marketplace, const std::string& name) {
  auto kind = ParseModel(name);
  if (!kind.ok()) {
    std::printf("error: %s\n", kind.status().ToString().c_str());
    return;
  }
  auto broker = marketplace.BrokerFor(*kind);
  if (!broker.ok()) {
    std::printf("error: %s\n", broker.status().ToString().c_str());
    return;
  }
  auto menu = (*broker)->PriceErrorCurve("zero_one");
  if (!menu.ok()) {
    std::printf("error: %s\n", menu.status().ToString().c_str());
    return;
  }
  std::printf("%8s %16s %10s\n", "1/NCP", "E[0/1 error]", "price");
  for (const auto& row : *menu) {
    std::printf("%8.1f %16.4f %10.2f\n", row.inverse_ncp,
                row.expected_error, row.price);
  }
}

}  // namespace

int main() {
  // One-time marketplace setup on a synthetic classification dataset.
  Rng rng(2019);
  data::ClassificationSpec spec;
  spec.num_examples = 1500;
  spec.num_features = 10;
  spec.positive_prob = 0.92;
  data::Dataset all = data::GenerateClassification(spec, rng);
  data::TrainTestSplit split = data::Split(all, 0.75, rng);

  market::Broker::Options options;
  options.min_inverse_ncp = 1.0;
  options.max_inverse_ncp = 100.0;
  options.error_curve_points = 12;
  options.samples_per_curve_point = 150;
  market::Marketplace marketplace(std::move(split), options);

  auto research = market::MakeBuyerPoints(
      market::ValueShape::kConcave, market::DemandShape::kUniform, 15, 1.0,
      100.0, 120.0, 2.0);
  market::Seller seller = *market::Seller::Create(*research);
  auto pricing = *seller.NegotiatePricing();
  for (ml::ModelKind kind :
       {ml::ModelKind::kLogisticRegression, ml::ModelKind::kLinearSvm}) {
    const Status added = marketplace.AddOffering(kind, 0.01, pricing);
    if (!added.ok()) {
      std::fprintf(stderr, "setup failed: %s\n", added.ToString().c_str());
      return 1;
    }
  }
  std::printf(
      "Nimbus marketplace ready (2 offerings, MBP pricing installed).\n"
      "Type 'catalog', 'menu <model>', 'buy <buyer> <model> <1/NCP>',\n"
      "'budget <buyer> <model> <price>', 'ledger', 'audit <model>', "
      "'quit'.\n");

  std::string line;
  while (std::printf("nimbus> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream args(line);
    std::string command;
    if (!(args >> command)) {
      continue;
    }
    if (command == "quit" || command == "exit") {
      break;
    } else if (command == "catalog") {
      PrintCatalog(marketplace);
    } else if (command == "menu") {
      std::string model;
      args >> model;
      PrintMenu(marketplace, model);
    } else if (command == "buy") {
      std::string buyer;
      std::string model;
      double x = 0.0;
      if (!(args >> buyer >> model >> x)) {
        std::printf("usage: buy <buyer> <model> <1/NCP>\n");
        continue;
      }
      auto kind = ParseModel(model);
      if (!kind.ok()) {
        std::printf("error: %s\n", kind.status().ToString().c_str());
        continue;
      }
      auto purchase = marketplace.Buy(buyer, *kind, x, "zero_one");
      if (!purchase.ok()) {
        std::printf("error: %s\n", purchase.status().ToString().c_str());
        continue;
      }
      std::printf("%s bought %s @ 1/NCP=%.1f for %.2f (E err %.4f)\n",
                  buyer.c_str(), model.c_str(), x, purchase->price,
                  purchase->expected_error);
    } else if (command == "budget") {
      std::string buyer;
      std::string model;
      double budget = 0.0;
      if (!(args >> buyer >> model >> budget)) {
        std::printf("usage: budget <buyer> <model> <price>\n");
        continue;
      }
      auto kind = ParseModel(model);
      if (!kind.ok()) {
        std::printf("error: %s\n", kind.status().ToString().c_str());
        continue;
      }
      auto purchase =
          marketplace.BuyWithPriceBudget(buyer, *kind, budget, "zero_one");
      if (!purchase.ok()) {
        std::printf("error: %s\n", purchase.status().ToString().c_str());
        continue;
      }
      std::printf(
          "%s got the best version under %.2f: 1/NCP=%.2f for %.2f\n",
          buyer.c_str(), budget, purchase->inverse_ncp, purchase->price);
    } else if (command == "ledger") {
      std::printf("%s", marketplace.ledger().ToCsv().c_str());
      std::printf("total revenue: %.2f\n", marketplace.total_revenue());
      for (const auto& [buyer, spend] : marketplace.ledger().TopBuyers(3)) {
        std::printf("  top buyer %-12s %.2f\n", buyer.c_str(), spend);
      }
    } else if (command == "audit") {
      std::string model;
      args >> model;
      auto kind = ParseModel(model);
      if (!kind.ok()) {
        std::printf("error: %s\n", kind.status().ToString().c_str());
        continue;
      }
      auto broker = marketplace.BrokerFor(*kind);
      if (!broker.ok()) {
        std::printf("error: %s\n", broker.status().ToString().c_str());
        continue;
      }
      const pricing::AuditResult audit = pricing::AuditPricingFunction(
          (*broker)->pricing_function(), Linspace(1.0, 100.0, 30), 1e-6);
      std::printf("audit: %s\n", audit.arbitrage_free
                                     ? "arbitrage free"
                                     : audit.violation.c_str());
    } else {
      std::printf("unknown command '%s'\n", command.c_str());
    }
  }
  std::printf("\nsession over; broker collected %.2f across %lld sales.\n",
              marketplace.total_revenue(),
              static_cast<long long>(marketplace.ledger().size()));
  return 0;
}
