// Adaptive pricing loop: the seller starts without market research,
// learns the demand and value curves from observed transactions, and
// re-optimizes prices each round — the ledger-driven version of the
// Figure 1 interaction. Over a few rounds the estimated-research DP
// approaches the revenue of a seller with oracle research.
//
// Round structure:
//   1. run a stochastic buyer population against the current prices,
//   2. estimate research from the round's transactions,
//   3. install the margin-robust DP prices computed from the estimate.

#include <cstdio>
#include <limits>
#include <memory>

#include "common/math_util.h"
#include "common/random.h"
#include "data/synthetic.h"
#include "market/broker.h"
#include "market/curves.h"
#include "market/ledger.h"
#include "market/population.h"
#include "market/research_estimation.h"
#include "mechanism/noise_mechanism.h"
#include "revenue/dp_optimizer.h"

int main() {
  using namespace nimbus;  // NOLINT: example brevity.

  Rng rng(321);
  data::RegressionSpec spec;
  spec.num_examples = 600;
  spec.num_features = 6;
  spec.noise_stddev = 0.3;
  data::Dataset all = data::GenerateRegression(spec, rng);
  data::TrainTestSplit split = data::Split(all, 0.8, rng);

  market::Broker::Options options;
  options.min_inverse_ncp = 1.0;
  options.max_inverse_ncp = 100.0;
  options.error_curve_points = 10;
  options.samples_per_curve_point = 100;
  auto model = ml::ModelSpec::Create(ml::ModelKind::kLinearRegression, 0.0);
  auto broker = market::Broker::Create(
      std::move(split), *std::move(model),
      std::make_unique<mechanism::GaussianMechanism>(), options);
  if (!broker.ok()) {
    std::fprintf(stderr, "%s\n", broker.status().ToString().c_str());
    return 1;
  }

  // The TRUE population (unknown to the seller): concave value curve.
  market::PopulationSpec population;
  population.num_buyers = 400;
  population.value_shape = market::ValueShape::kConcave;
  population.demand_shape = market::DemandShape::kUnimodal;
  population.v_max = 80.0;
  population.value_floor = 2.0;
  population.valuation_noise = 0.1;

  // Oracle benchmark: DP on the true curves.
  auto oracle_points = market::MakeBuyerPoints(
      population.value_shape, population.demand_shape, 20, 1.0, 100.0,
      population.v_max, population.value_floor);
  auto oracle_dp = revenue::OptimizeRevenueDpWithMargin(*oracle_points, 0.1);
  std::printf("oracle research DP (10%% margin) expects %.2f per unit "
              "demand mass\n\n",
              oracle_dp->revenue);

  // Round 0: no research — a cautious cheap linear price to gather data.
  broker->SetPricingFunction(std::make_shared<pricing::LinearPricing>(
      0.1, std::numeric_limits<double>::infinity(), "bootstrap"));

  market::Ledger ledger;
  const std::vector<double> grid = Linspace(1.0, 100.0, 20);
  for (int round = 0; round < 6; ++round) {
    Rng round_rng(1000 + static_cast<uint64_t>(round));
    const double revenue_before = broker->revenue_collected();
    auto outcome =
        market::RunPopulation(*broker, population, "squared", round_rng);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
      return 1;
    }
    const double round_revenue = broker->revenue_collected() - revenue_before;
    std::printf(
        "round %d: pricing '%s' served %3d/%3d buyers, revenue %8.2f\n",
        round, broker->pricing_function().name().c_str(), outcome->served,
        outcome->buyers, round_revenue);

    // Probe population with PRICE EXPLORATION: transactions only reveal
    // a lower bound on willingness to pay, so a learner that never
    // offers above its current price can never raise its estimate.
    // Randomly marking some offers up (rejected offers are simply not
    // recorded) lets the ledger discover the real value curve.
    market::PopulationSpec probe = population;
    probe.num_buyers = 120;
    Rng probe_rng(5000 + static_cast<uint64_t>(round));
    for (int i = 0; i < probe.num_buyers; ++i) {
      const double t =
          market::SampleDemandPosition(probe.demand_shape, probe_rng);
      const double x = 1.0 + t * 99.0;
      const double value =
          (probe.value_floor +
           (probe.v_max - probe.value_floor) *
               market::NormalizedValueAt(probe.value_shape, t)) *
          std::max(0.0, 1.0 + probe.valuation_noise * probe_rng.Gaussian());
      const double list_price =
          broker->pricing_function().PriceAtInverseNcp(x);
      const double offered =
          list_price * probe_rng.Uniform(1.0, 3.0) + probe_rng.Uniform(0, 2);
      if (offered <= value) {
        (void)ledger.Record("probe", ml::ModelKind::kLinearRegression, x,
                            offered, 0.0);
      }
    }

    // Re-estimate research and reprice with a 10% robustness margin.
    auto estimated = market::EstimateResearchFromLedger(
        ledger, ml::ModelKind::kLinearRegression, grid);
    if (!estimated.ok()) {
      std::printf("  (no transactions yet; keeping bootstrap prices)\n");
      continue;
    }
    auto dp = revenue::OptimizeRevenueDpWithMargin(*estimated, 0.1);
    auto curve = revenue::MakeDpPricingFunction(*estimated, *dp);
    if (curve.ok()) {
      broker->SetPricingFunction(
          std::make_shared<pricing::PiecewiseLinearPricing>(*curve));
    }
  }
  std::printf(
      "\nfinal prices were learned purely from transactions; compare the "
      "last rounds' revenue against the oracle above.\n");
  return 0;
}
