// Model selection through the marketplace (§7 future work: "users often
// perform model selection and explore different ML models ... and refine
// their choices iteratively").
//
// A budget-conscious buyer:
//   1. browses the marketplace catalog (logistic regression and linear
//      SVM, each with a cross-validated regularizer),
//   2. buys a CHEAP noisy version of every candidate model,
//   3. scores the noisy versions on their own validation data,
//   4. then spends the remaining budget on a precise version of the
//      winner only.
// The cheap exploration is exactly what accuracy-tiered versioning
// enables: probing all models at full precision would cost a multiple.

#include <cstdio>
#include <memory>

#include "common/random.h"
#include "data/synthetic.h"
#include "market/curves.h"
#include "market/market_simulator.h"
#include "market/marketplace.h"
#include "ml/cross_validation.h"
#include "ml/metrics.h"

int main() {
  using namespace nimbus;  // NOLINT: example brevity.

  // Seller side: dataset, cross-validated menu, MBP pricing.
  Rng rng(7);
  data::ClassificationSpec spec;
  spec.num_examples = 1200;
  spec.num_features = 8;
  spec.positive_prob = 0.9;
  data::Dataset all = data::GenerateClassification(spec, rng);
  data::TrainTestSplit split = data::Split(all, 0.75, rng);

  // The buyer's private validation sample (they own a little data).
  data::TrainTestSplit buyer_split = data::Split(all, 0.9, rng);
  const data::Dataset& buyer_validation = buyer_split.test;

  market::Broker::Options options;
  options.min_inverse_ncp = 1.0;
  options.max_inverse_ncp = 100.0;
  options.error_curve_points = 12;
  options.samples_per_curve_point = 150;
  market::Marketplace marketplace({split.train, split.test}, options);

  auto research = market::MakeBuyerPoints(
      market::ValueShape::kConcave, market::DemandShape::kUniform, 15, 1.0,
      100.0, 60.0, 1.0);
  market::Seller seller = *market::Seller::Create(*research);
  auto pricing = *seller.NegotiatePricing();

  for (ml::ModelKind kind :
       {ml::ModelKind::kLogisticRegression, ml::ModelKind::kLinearSvm}) {
    auto cv = ml::CrossValidateRidge(split.train, kind,
                                     {0.001, 0.01, 0.1}, 4, 99);
    if (!cv.ok()) {
      std::fprintf(stderr, "%s\n", cv.status().ToString().c_str());
      return 1;
    }
    std::printf("seller cross-validated %s: best mu = %g (cv 0/1 = %.4f)\n",
                std::string(ml::ModelKindToString(kind)).c_str(),
                cv->best_mu, cv->best_score);
    const Status added = marketplace.AddOffering(kind, cv->best_mu, pricing);
    if (!added.ok()) {
      std::fprintf(stderr, "%s\n", added.ToString().c_str());
      return 1;
    }
  }

  // Buyer side: catalog, cheap probes, expensive winner.
  auto catalog = marketplace.Catalog();
  std::printf("\ncatalog:\n");
  for (const auto& row : *catalog) {
    std::printf("  %-20s %-9s err in [%.4f, %.4f], price in [%.2f, %.2f]\n",
                std::string(ml::ModelKindToString(row.model)).c_str(),
                row.report_loss.c_str(), row.best_expected_error,
                row.worst_expected_error, row.min_price, row.max_price);
  }

  const double kProbeVersion = 5.0;    // Cheap and noisy.
  const double kFinalVersion = 100.0;  // The most precise version.
  std::printf("\nprobing every model at 1/NCP = %.0f:\n", kProbeVersion);
  ml::ModelKind best_kind = ml::ModelKind::kLogisticRegression;
  double best_probe_accuracy = -1.0;
  double spent_on_probes = 0.0;
  for (ml::ModelKind kind : marketplace.Offerings()) {
    auto probe = marketplace.Buy("explorer", kind, kProbeVersion, "zero_one");
    if (!probe.ok()) {
      std::fprintf(stderr, "%s\n", probe.status().ToString().c_str());
      return 1;
    }
    spent_on_probes += probe->price;
    auto metrics =
        ml::EvaluateClassification(probe->model, buyer_validation);
    std::printf("  %-20s probe accuracy %.4f (paid %.2f)\n",
                std::string(ml::ModelKindToString(kind)).c_str(),
                metrics->accuracy, probe->price);
    if (metrics->accuracy > best_probe_accuracy) {
      best_probe_accuracy = metrics->accuracy;
      best_kind = kind;
    }
  }

  auto final_purchase =
      marketplace.Buy("explorer", best_kind, kFinalVersion, "zero_one");
  auto final_metrics =
      ml::EvaluateClassification(final_purchase->model, buyer_validation);
  std::printf(
      "\nwinner: %s — bought the precise version for %.2f "
      "(validation accuracy %.4f)\n",
      std::string(ml::ModelKindToString(best_kind)).c_str(),
      final_purchase->price, final_metrics->accuracy);
  std::printf(
      "total spend: %.2f (probes %.2f + final %.2f); probing both models "
      "at full precision would have cost %.2f\n",
      marketplace.ledger().TotalRevenue(), spent_on_probes,
      final_purchase->price, 2.0 * final_purchase->price);
  return 0;
}
