// Quickstart: the smallest end-to-end Nimbus session.
//
// A seller lists a regression dataset; the broker trains the optimal
// model once; the seller's market research is turned into an
// arbitrage-free pricing curve with the revenue DP; and one buyer
// purchases a mid-accuracy model instance.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "common/random.h"
#include "data/synthetic.h"
#include "market/broker.h"
#include "market/curves.h"
#include "market/market_simulator.h"
#include "mechanism/noise_mechanism.h"

int main() {
  using namespace nimbus;  // NOLINT: example brevity.

  // 1. The seller's dataset: 1000 rows, 8 features, a linear target.
  Rng rng(42);
  data::RegressionSpec spec;
  spec.num_examples = 1000;
  spec.num_features = 8;
  spec.noise_stddev = 0.3;
  data::Dataset dataset = data::GenerateRegression(spec, rng);
  data::TrainTestSplit split = data::Split(dataset, 0.8, rng);

  // 2. The broker trains the optimal least-squares model (one-time cost)
  //    and prepares Gaussian-mechanism versioning.
  auto model = ml::ModelSpec::Create(ml::ModelKind::kLinearRegression, 0.0);
  market::Broker::Options options;
  options.min_inverse_ncp = 1.0;
  options.max_inverse_ncp = 100.0;
  auto broker = market::Broker::Create(
      std::move(split), *std::move(model),
      std::make_unique<mechanism::GaussianMechanism>(), options);
  if (!broker.ok()) {
    std::fprintf(stderr, "broker setup failed: %s\n",
                 broker.status().ToString().c_str());
    return 1;
  }

  // 3. Market research: concave value curve, uniform demand over 20
  //    versions; the seller negotiates the revenue-optimal
  //    arbitrage-free pricing function (Algorithm 1).
  auto research = market::MakeBuyerPoints(
      market::ValueShape::kConcave, market::DemandShape::kUniform, 20, 1.0,
      100.0, 50.0);
  auto seller = market::Seller::Create(*research);
  auto pricing = seller->NegotiatePricing();
  broker->SetPricingFunction(*pricing);
  std::printf("Seller expects revenue %.2f from the research population.\n",
              seller->predicted_revenue());

  // 4. A buyer asks for the price-error menu and buys with an error
  //    budget.
  auto menu = broker->PriceErrorCurve("squared");
  std::printf("\n%8s %14s %10s\n", "1/NCP", "expected error", "price");
  for (const auto& row : *menu) {
    std::printf("%8.1f %14.4f %10.2f\n", row.inverse_ncp, row.expected_error,
                row.price);
  }

  const double budget = (*menu)[menu->size() / 2].expected_error;
  auto purchase = broker->BuyWithErrorBudget(budget, "squared");
  if (!purchase.ok()) {
    std::fprintf(stderr, "purchase failed: %s\n",
                 purchase.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nBuyer purchased a model with expected error %.4f for %.2f "
      "(NCP delta = %.4f).\n",
      purchase->expected_error, purchase->price, purchase->ncp);
  std::printf("Broker revenue so far: %.2f across %d sale(s).\n",
              broker->revenue_collected(), broker->sales_count());
  return 0;
}
