// The Nimbus demonstration scenario: a full marketplace session with one
// seller, one broker, and three buyer personas exercising all three
// purchase options of §3.2 on a classification model priced by the 0/1
// misclassification rate.
//
//   * "startup"   — tight price budget, takes the best model it affords;
//   * "lab"       — strict error budget, pays whatever that costs;
//   * "hobbyist"  — picks a cheap point straight off the menu.

#include <cstdio>
#include <memory>

#include "common/random.h"
#include "data/synthetic.h"
#include "market/broker.h"
#include "market/curves.h"
#include "market/market_simulator.h"
#include "mechanism/noise_mechanism.h"
#include "ml/loss.h"

namespace {

void ReportPurchase(const char* persona,
                    const nimbus::StatusOr<nimbus::market::Broker::Purchase>&
                        purchase) {
  if (!purchase.ok()) {
    std::printf("%-10s could not buy: %s\n", persona,
                purchase.status().ToString().c_str());
    return;
  }
  std::printf(
      "%-10s bought 1/NCP=%6.2f  expected 0/1 error=%.4f  paid %7.2f\n",
      persona, purchase->inverse_ncp, purchase->expected_error,
      purchase->price);
}

}  // namespace

int main() {
  using namespace nimbus;  // NOLINT: example brevity.

  // Seller's dataset: a noisy linearly separable classification problem
  // (a miniature SUSY stand-in).
  Rng rng(2019);
  data::ClassificationSpec spec;
  spec.num_examples = 2000;
  spec.num_features = 12;
  spec.positive_prob = 0.92;
  data::Dataset dataset = data::GenerateClassification(spec, rng);
  data::TrainTestSplit split = data::Split(dataset, 0.75, rng);

  std::printf("=== Nimbus marketplace demo ===\n");
  std::printf("Dataset: %d train / %d test rows, %d features.\n\n",
              split.train.num_examples(), split.test.num_examples(),
              split.train.num_features());

  // Broker setup: logistic regression menu, Gaussian mechanism.
  auto model = ml::ModelSpec::Create(ml::ModelKind::kLogisticRegression, 1e-3);
  market::Broker::Options options;
  options.min_inverse_ncp = 1.0;
  options.max_inverse_ncp = 100.0;
  options.error_curve_points = 20;
  options.samples_per_curve_point = 300;
  auto broker = market::Broker::Create(
      std::move(split), *std::move(model),
      std::make_unique<mechanism::GaussianMechanism>(), options);
  if (!broker.ok()) {
    std::fprintf(stderr, "broker setup failed: %s\n",
                 broker.status().ToString().c_str());
    return 1;
  }
  std::printf("Broker trained the optimal logistic model (one-time cost).\n");

  // Seller market research and pricing negotiation.
  auto research = market::MakeBuyerPoints(
      market::ValueShape::kSigmoid, market::DemandShape::kBimodal, 25, 1.0,
      100.0, 200.0);
  auto seller = market::Seller::Create(*research);
  auto pricing = seller->NegotiatePricing();
  broker->SetPricingFunction(*pricing);
  std::printf(
      "Seller installed the MBP pricing curve (predicted revenue %.2f).\n\n",
      seller->predicted_revenue());

  // Show the buyer-facing price-error menu (Figure 2d).
  auto menu = broker->PriceErrorCurve("zero_one");
  std::printf("Price-error menu (0/1 misclassification rate):\n");
  std::printf("%8s %16s %10s\n", "1/NCP", "expected error", "price");
  for (size_t i = 0; i < menu->size(); i += 4) {
    const auto& row = (*menu)[i];
    std::printf("%8.1f %16.4f %10.2f\n", row.inverse_ncp, row.expected_error,
                row.price);
  }
  std::printf("\n");

  // Persona 1: price budget.
  ReportPurchase("startup", broker->BuyWithPriceBudget(40.0, "zero_one"));
  // Persona 2: error budget, slightly looser than the best version.
  const double best_error = menu->back().expected_error;
  ReportPurchase("lab",
                 broker->BuyWithErrorBudget(best_error * 1.1, "zero_one"));
  // Persona 3: a point straight off the menu.
  ReportPurchase("hobbyist", broker->BuyAtInverseNcp(5.0, "zero_one"));
  // Persona 4: an impossible ask, to show graceful failure.
  ReportPurchase("dreamer", broker->BuyWithErrorBudget(0.0, "zero_one"));

  // Finally, replay the research population through the market.
  auto sim = market::SimulateMarket(*broker, *research, "zero_one");
  std::printf(
      "\nPopulation replay: revenue %.2f, affordability %.1f%%, %d "
      "transactions, mean delivered error %.4f.\n",
      sim->revenue, 100.0 * sim->affordability, sim->transactions,
      sim->mean_delivered_error);
  std::printf("Broker till: %.2f across %d sales.\n",
              broker->revenue_collected(), broker->sales_count());
  return 0;
}
