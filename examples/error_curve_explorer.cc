// Explores the error-transformation step (Figure 2b) interactively from
// the command line: pick a model, a mechanism, and a report loss, and
// print the expected-error curve plus the error-inverse lookups the
// broker uses to serve error-budget purchases.
//
// Usage:
//   error_curve_explorer [model] [mechanism] [loss]
//     model:     linreg | logreg | svm          (default linreg)
//     mechanism: gaussian | laplace | additive_uniform (default gaussian)
//     loss:      squared | logistic | hinge | zero_one (default: model's)

#include <cstdio>
#include <memory>
#include <string>

#include "common/math_util.h"
#include "common/random.h"
#include "data/synthetic.h"
#include "mechanism/noise_mechanism.h"
#include "ml/model.h"
#include "pricing/error_curve.h"

int main(int argc, char** argv) {
  using namespace nimbus;  // NOLINT: example brevity.
  const std::string model_arg = argc > 1 ? argv[1] : "linreg";
  const std::string mech_arg = argc > 2 ? argv[2] : "gaussian";

  ml::ModelKind kind = ml::ModelKind::kLinearRegression;
  if (model_arg == "logreg") {
    kind = ml::ModelKind::kLogisticRegression;
  } else if (model_arg == "svm") {
    kind = ml::ModelKind::kLinearSvm;
  } else if (model_arg != "linreg") {
    std::fprintf(stderr, "unknown model '%s'\n", model_arg.c_str());
    return 1;
  }

  auto mechanism = mechanism::MakeMechanism(mech_arg);
  if (!mechanism.ok()) {
    std::fprintf(stderr, "%s\n", mechanism.status().ToString().c_str());
    return 1;
  }

  auto model = ml::ModelSpec::Create(kind, 0.01);
  Rng rng(11);
  data::Dataset dataset(1, data::Task::kRegression);
  if (kind == ml::ModelKind::kLinearRegression) {
    data::RegressionSpec spec;
    spec.num_examples = 800;
    spec.num_features = 8;
    spec.noise_stddev = 0.4;
    dataset = data::GenerateRegression(spec, rng);
  } else {
    data::ClassificationSpec spec;
    spec.num_examples = 800;
    spec.num_features = 8;
    spec.positive_prob = 0.93;
    dataset = data::GenerateClassification(spec, rng);
  }
  data::TrainTestSplit split = data::Split(dataset, 0.75, rng);

  const std::string loss_arg =
      argc > 3 ? argv[3] : model->report_losses().front()->name();
  auto loss = model->FindReportLoss(loss_arg);
  if (!loss.ok()) {
    std::fprintf(stderr, "%s\n", loss.status().ToString().c_str());
    return 1;
  }

  auto optimal = model->FitOptimal(split.train);
  if (!optimal.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 optimal.status().ToString().c_str());
    return 1;
  }
  std::printf("Trained %s; exploring %s error under the %s mechanism.\n\n",
              std::string(ml::ModelKindToString(kind)).c_str(),
              (*loss)->name().c_str(), (*mechanism)->name().c_str());

  auto curve = pricing::ErrorCurve::Estimate(
      **mechanism, *optimal, **loss, split.test, Linspace(1.0, 100.0, 15),
      500, rng);
  if (!curve.ok()) {
    std::fprintf(stderr, "estimation failed: %s\n",
                 curve.status().ToString().c_str());
    return 1;
  }
  std::printf("%8s %14s\n", "1/NCP", "E[error]");
  for (const auto& p : curve->points()) {
    std::printf("%8.1f %14.5f\n", p.inverse_ncp, p.expected_error);
  }

  std::printf("\nError-inverse lookups (the broker's option two):\n");
  const double hi = curve->points().front().expected_error;
  const double lo = curve->points().back().expected_error;
  for (double t : {0.75, 0.5, 0.25, 0.05}) {
    const double budget = lo + t * (hi - lo);
    auto x = curve->MinInverseNcpForErrorBudget(budget);
    if (x.ok()) {
      std::printf("  error budget %8.5f -> cheapest version 1/NCP = %7.2f\n",
                  budget, *x);
    }
  }
  return 0;
}
